//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small but *functional* property-testing engine exposing the `proptest`
//! API subset its tests use: the [`proptest!`] macro, the
//! [`Strategy`](strategy::Strategy) trait
//! with `prop_map` / `prop_flat_map` / `boxed`, integer-range and tuple
//! strategies, `any::<T>()`, `Just`, `prop_oneof!`, `prop::collection::vec` /
//! `btree_set`, and `prop::sample::select`.
//!
//! Differences from real proptest, by design:
//!
//! * cases are generated from a deterministic per-test RNG (seeded from the
//!   test's module path and name), so runs are reproducible without a
//!   persistence file;
//! * there is no shrinking — on failure the case index and panic message are
//!   reported, and the whole run can be replayed deterministically;
//! * `prop_assert*!` delegate to the standard `assert*!` macros.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    /// `prop::collection::vec(..)`, `prop::sample::select(..)` etc., exactly
    /// as the real proptest prelude exposes them.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Each body runs `config.cases` times with freshly
/// generated inputs from a deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __guard = $crate::test_runner::CaseGuard::new(stringify!($name), __case);
                { $body }
                drop(__guard);
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// One-of strategy: picks one of the listed strategies uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption does not hold. (Real proptest
/// rejects and retries; skipping keeps the engine minimal.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

//! Sampling strategies: uniform selection from a fixed set of values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct Select<T> {
    values: Vec<T>,
}

/// Strategy that picks one of `values` uniformly. Accepts anything that
/// converts into a `Vec` (slices included), mirroring proptest's
/// `impl Into<Arc<[T]>>` flexibility for temporaries.
pub fn select<T: Clone>(values: impl Into<Vec<T>>) -> Select<T> {
    let values = values.into();
    assert!(!values.is_empty(), "select over an empty set");
    Select { values }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.values[rng.index(self.values.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_draws_every_value() {
        let s = select(&[10u8, 20, 30][..]);
        let mut rng = TestRng::deterministic("sample::select");
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![10, 20, 30]);
    }
}

//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;

/// Anything usable as a collection size: an exact length or a range.
pub trait SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.index(self.end - self.start)
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty size range");
        self.start() + rng.index(self.end() - self.start() + 1)
    }
}

pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

/// Strategy for `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

pub struct BTreeSetStrategy<S, R> {
    element: S,
    size: R,
}

/// Strategy for `BTreeSet`s with a target size drawn from `size`. If the
/// element domain is too small to reach the target, the set saturates at
/// whatever distinct values were drawn (matching proptest's best-effort
/// behavior for duplicate-heavy domains).
pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: SizeRange,
{
    BTreeSetStrategy { element, size }
}

impl<S, R> Strategy for BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: SizeRange,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Generous attempt budget: covers coupon-collector behavior for the
        // small domains used in tests without risking an unbounded loop.
        let budget = 16 * target + 64;
        for _ in 0..budget {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_in_range() {
        let s = vec(0u8..10, 2..=5);
        let mut rng = TestRng::deterministic("collection::vec");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_reaches_full_domain() {
        // Domain of 8 values, target 8: must collect all of them.
        let s = btree_set(0usize..8, 8usize..=8);
        let mut rng = TestRng::deterministic("collection::btree_set");
        for _ in 0..32 {
            assert_eq!(s.generate(&mut rng).len(), 8);
        }
    }

    #[test]
    fn btree_set_respects_minimum() {
        let s = btree_set(0usize..8, 1..=8);
        let mut rng = TestRng::deterministic("collection::btree_min");
        for _ in 0..100 {
            assert!(!s.generate(&mut rng).is_empty());
        }
    }
}

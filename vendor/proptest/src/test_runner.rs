//! Test configuration and the deterministic case RNG.

/// Configuration for a `proptest!` block. Only `cases` is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator used to produce test cases (SplitMix64, seeded
/// from the test's fully-qualified name so each property gets an independent
/// but reproducible stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty domain");
        (self.next_u64() % n as u64) as usize
    }
}

/// Reports the failing case index when a property body panics, so the
/// deterministic run can be narrowed down quickly.
pub struct CaseGuard {
    name: &'static str,
    case: u32,
}

impl CaseGuard {
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard { name, case }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed at deterministic case index {}",
                self.name, self.case
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn index_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for n in 1..64usize {
            for _ in 0..32 {
                assert!(rng.index(n) < n);
            }
        }
    }
}

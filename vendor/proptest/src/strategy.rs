//! The [`Strategy`] trait and the core combinators.

use crate::test_runner::TestRng;

/// A generator of test-case values. Unlike real proptest there is no value
/// tree and no shrinking: a strategy simply produces a value per case.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy::tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3u16..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let w = (-5i16..=5).generate(&mut r);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let s = (0u8..4, 10u8..12).prop_map(|(a, b)| a as u16 + b as u16);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((10..16).contains(&v));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}

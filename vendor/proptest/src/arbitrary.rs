//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(PhantomData<T>);

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_hits_both_values() {
        let mut rng = TestRng::deterministic("arbitrary::bool");
        let mut t = false;
        let mut f = false;
        for _ in 0..64 {
            if any::<bool>().generate(&mut rng) {
                t = true;
            } else {
                f = true;
            }
        }
        assert!(t && f);
    }

    #[test]
    fn u16_covers_high_bits() {
        let mut rng = TestRng::deterministic("arbitrary::u16");
        assert!((0..256).any(|_| any::<u16>().generate(&mut rng) > 0x7FFF));
    }
}

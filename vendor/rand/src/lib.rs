//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny slice of `rand` it actually uses: `StdRng`, `SeedableRng` and
//! `Rng::gen` / `Rng::gen_range`. The generator is SplitMix64 — not
//! cryptographic, but statistically solid and fully deterministic per seed,
//! which is all the synthetic-ECG generator needs.

pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

use rngs::StdRng;

/// Seeding support for [`StdRng`].
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // One scramble round so that nearby seeds diverge immediately.
        let mut rng = StdRng { state };
        rng.next_u64();
        rng
    }
}

/// Types that `Rng::gen` can produce (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// The `Rng` extension trait: value generation on top of the raw generator.
pub trait Rng {
    fn gen<T: Standard>(&mut self) -> T;

    /// Uniform integer in `[range.start, range.end)`.
    fn gen_range(&mut self, range: std::ops::Range<i64>) -> i64;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal wall-clock bench harness exposing the criterion API subset its
//! benches use: `criterion_group!` / `criterion_main!`, `Criterion`,
//! benchmark groups with `sample_size` / `throughput` / `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `Throughput` and `black_box`.
//!
//! Measurement model: each benchmark body is warmed up once, then timed over
//! adaptively-chosen iteration batches until the sample budget is spent; the
//! per-iteration mean, minimum and maximum are printed. No statistics files,
//! plots or comparisons — this harness guards that the benches *run*, and
//! gives a usable first-order number.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings shared by a `Criterion` instance and its groups.
#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    /// Wall-clock budget per benchmark.
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_millis(300),
        }
    }
}

#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings.clone();
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings,
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.into(), &self.settings, None, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, &self.settings, self.throughput.as_ref(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, &self.settings, self.throughput.as_ref(), &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier; renders as the criterion `name/parameter` form.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    settings: Settings,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and batch-size calibration: aim for samples of >= ~1ms so
        // Instant overhead is negligible, without exceeding the time budget.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(50));
        let per_sample = self.settings.measurement_time / self.settings.sample_size as u32;
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

fn run_one(
    label: &str,
    settings: &Settings,
    throughput: Option<&Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        settings: settings.clone(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} elem/s", *n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} B/s", *n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{label:<40} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]{rate}");
}

/// Declares a bench group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a wall-clock
            // harness has no options to parse, so they are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default();
        c.settings.measurement_time = Duration::from_millis(5);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        c.settings.measurement_time = Duration::from_millis(5);
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::from_parameter("p"), |b| b.iter(|| 2 + 2));
        group.bench_with_input(BenchmarkId::new("i", 7), &7u32, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal wall-clock bench harness exposing the criterion API subset its
//! benches use: `criterion_group!` / `criterion_main!`, `Criterion`,
//! benchmark groups with `sample_size` / `throughput` / `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `Throughput` and `black_box`.
//!
//! Measurement model: each benchmark body is warmed up once, then timed over
//! adaptively-chosen iteration batches until the sample budget is spent; the
//! per-iteration mean, minimum and maximum are printed. No statistics plots
//! or comparisons — this harness guards that the benches *run*, and gives a
//! usable first-order number.
//!
//! Two environment variables feed the CI perf gate:
//!
//! * `ULP_BENCH_QUICK=1` — shrink the per-benchmark budget (fewer samples,
//!   shorter measurement window) so a full bench binary finishes in
//!   seconds; the numbers stay comparable run-to-run on the same machine.
//! * `ULP_BENCH_JSON_DIR=<dir>` — after printing, also write one
//!   `BENCH_<label>.json` file per benchmark into `<dir>` containing the
//!   label, the mean per-iteration time and the derived rate. The
//!   `perfgate` bin compares these records against a checked-in baseline.
//!   Pass an *absolute* path: cargo runs bench binaries with the package
//!   directory, not the workspace root, as their working directory.

use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings shared by a `Criterion` instance and its groups.
#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    /// Wall-clock budget per benchmark.
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        if quick_mode() {
            return Settings {
                sample_size: 5,
                measurement_time: Duration::from_millis(60),
            };
        }
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_millis(300),
        }
    }
}

/// Whether `ULP_BENCH_QUICK` requests the abbreviated CI budget.
fn quick_mode() -> bool {
    std::env::var("ULP_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The directory `ULP_BENCH_JSON_DIR` requests machine-readable records in.
fn json_dir() -> Option<PathBuf> {
    std::env::var_os("ULP_BENCH_JSON_DIR")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings.clone();
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings,
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.into(), &self.settings, None, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, &self.settings, self.throughput.as_ref(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, &self.settings, self.throughput.as_ref(), &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier; renders as the criterion `name/parameter` form.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    settings: Settings,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and batch-size calibration: aim for samples of >= ~1ms so
        // Instant overhead is negligible, without exceeding the time budget.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(50));
        let per_sample = self.settings.measurement_time / self.settings.sample_size as u32;
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            // 1ns resolution floor: a routine cheaper than 1ns/iteration
            // (constant-folded in release builds) would otherwise floor to
            // a zero sample, making the mean zero and suppressing the
            // per_sec rate and the perf-gate JSON record.
            self.samples
                .push((start.elapsed() / batch as u32).max(Duration::from_nanos(1)));
        }
    }
}

fn run_one(
    label: &str,
    settings: &Settings,
    throughput: Option<&Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        settings: settings.clone(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} elem/s", *n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} B/s", *n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{label:<40} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]{rate}");
    if let Some(dir) = json_dir() {
        emit_json(&dir, label, *min, mean, *max, throughput);
    }
}

/// Writes one `BENCH_<label>.json` record for the perf gate. `per_sec` is
/// the throughput rate when one was declared (elements or bytes per
/// second), otherwise iterations per second — either way, higher is
/// faster, which is the direction the gate checks.
fn emit_json(
    dir: &std::path::Path,
    label: &str,
    min: Duration,
    mean: Duration,
    max: Duration,
    throughput: Option<&Throughput>,
) {
    if mean.is_zero() {
        return;
    }
    let per_sec = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
            *n as f64 / mean.as_secs_f64()
        }
        None => 1.0 / mean.as_secs_f64(),
    };
    // Sanitization is lossy ("a/b" and "a_b" collide), so the file name
    // carries an FNV-1a hash of the raw label — two distinct labels never
    // overwrite each other's record. The gate keys on the embedded label,
    // not the file name.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let sanitized: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .chain(format!("_{:08x}", hash as u32).chars())
        .collect();
    // Labels are caller-controlled; escape them so the record stays
    // valid JSON even for labels containing quotes or backslashes.
    let escaped = label.replace('\\', "\\\\").replace('"', "\\\"");
    let record = format!(
        "{{\"label\":\"{escaped}\",\"mean_ns\":{:.3},\"min_ns\":{:.3},\"max_ns\":{:.3},\"per_sec\":{per_sec:.3}}}\n",
        mean.as_secs_f64() * 1e9,
        min.as_secs_f64() * 1e9,
        max.as_secs_f64() * 1e9,
    );
    let path = dir.join(format!("BENCH_{sanitized}.json"));
    let written = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, record));
    if let Err(e) = written {
        eprintln!("criterion shim: cannot write {}: {e}", path.display());
    }
}

/// Declares a bench group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a wall-clock
            // harness has no options to parse, so they are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `json_emission_writes_a_record_per_benchmark` mutates process
    /// environment; every test that runs benchmarks takes this lock so a
    /// concurrently running sibling never observes (or races the cleanup
    /// of) the temporary `ULP_BENCH_JSON_DIR`.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn bench_function_produces_samples() {
        let _env = ENV_LOCK.lock().unwrap();
        let mut c = Criterion::default();
        c.settings.measurement_time = Duration::from_millis(5);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn json_emission_writes_a_record_per_benchmark() {
        let _env = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("ulp-bench-json-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Criterion::default();
        c.settings.measurement_time = Duration::from_millis(5);
        std::env::set_var("ULP_BENCH_JSON_DIR", &dir);
        let mut group = c.benchmark_group("json_smoke");
        group.throughput(Throughput::Elements(100));
        group.bench_function("emit/1", |b| b.iter(|| black_box(3 * 7)));
        group.finish();
        std::env::remove_var("ULP_BENCH_JSON_DIR");

        let record = std::fs::read_dir(&dir)
            .expect("json dir exists")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find_map(|p| {
                let name = p.file_name()?.to_str()?;
                (name.starts_with("BENCH_json_smoke_emit_1_") && name.ends_with(".json"))
                    .then(|| std::fs::read_to_string(&p).expect("record readable"))
            })
            .expect("record written");
        assert!(record.contains("\"label\":\"json_smoke/emit/1\""));
        assert!(record.contains("\"mean_ns\":"));
        assert!(record.contains("\"per_sec\":"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_api_composes() {
        let _env = ENV_LOCK.lock().unwrap();
        let mut c = Criterion::default();
        c.settings.measurement_time = Duration::from_millis(5);
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::from_parameter("p"), |b| b.iter(|| 2 + 2));
        group.bench_with_input(BenchmarkId::new("i", 7), &7u32, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}

//! An end-to-end multi-channel ECG analysis pipeline on the simulated
//! platform: morphological conditioning (MRPFLTR) followed by delineation
//! (MRPDLN), validated bit-exactly against the golden models and scored
//! against the generator's ground-truth R peaks.
//!
//! ```sh
//! cargo run --release --example ecg_pipeline
//! ```

use ulp_lockstep::biosignal::metrics::{detections_from_mark_words, score_detections};
use ulp_lockstep::biosignal::{self, DelineationConfig, EcgConfig};
use ulp_lockstep::kernels::{run_benchmark, Benchmark, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = WorkloadConfig {
        n: 256,
        ecg: EcgConfig {
            noise_rms: 15.0,
            ..EcgConfig::default()
        },
        delineation: DelineationConfig {
            threshold: 250,
            ..DelineationConfig::default()
        },
        ..WorkloadConfig::paper()
    };

    // ---- stage 1: conditioning on the platform ------------------------
    let fltr = run_benchmark(Benchmark::Mrpfltr, true, &cfg)?;
    fltr.verify()?;
    println!(
        "MRPFLTR: 8 channels x {} samples in {} cycles ({:.2} ops/cycle), outputs bit-exact",
        cfg.n,
        fltr.stats.cycles,
        fltr.stats.ops_per_cycle()
    );

    // ---- stage 2: delineation on the platform -------------------------
    let dln = run_benchmark(Benchmark::Mrpdln, true, &cfg)?;
    dln.verify()?;
    println!(
        "MRPDLN : 8 channels x {} samples in {} cycles ({:.2} ops/cycle), outputs bit-exact",
        cfg.n,
        dln.stats.cycles,
        dln.stats.ops_per_cycle()
    );

    // ---- score the detected peaks against the generator's ground truth
    let channels = biosignal::generate_channels(&cfg.ecg, 8, cfg.n);
    println!();
    println!("channel | true R | detected | sens. |  +pred. | loc.err (samples)");
    let mut total_true = 0;
    let mut total_tp = 0;
    for (ch, sig) in channels.iter().enumerate() {
        let detections = detections_from_mark_words(&dln.outputs[ch]);
        let score = score_detections(&sig.r_peaks, &detections, 3);
        total_true += sig.r_peaks.len();
        total_tp += score.true_positives;
        println!(
            "{ch:>7} | {:>6} | {:>8} | {:>4.0}% | {:>6.0}% | {:>7.2}",
            sig.r_peaks.len(),
            detections.len(),
            score.sensitivity() * 100.0,
            score.positive_predictivity() * 100.0,
            score.mean_abs_error,
        );
    }
    println!();
    println!(
        "overall sensitivity: {total_tp}/{total_true} ground-truth R peaks found on the platform"
    );
    assert!(
        total_tp * 10 >= total_true * 8,
        "delineator should find at least 80 % of the R peaks"
    );
    Ok(())
}

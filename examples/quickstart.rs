//! Quickstart: assemble an SPMD program, run it on both platform designs
//! and compare their behaviour.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The program is the paper's Listing-1 pattern: every core repeatedly
//! enters a data-dependent section (a loop whose trip count depends on its
//! own data), so the cores drift apart on the baseline design and
//! resynchronize at every check-out on the improved one.
//!
//! This example drives one platform by hand. To run *batches* of
//! benchmark jobs — mixed core counts, both designs, results streamed as
//! they finish — submit them to the simulation service instead; see
//! `examples/batch_service.rs` and the `ulp_lockstep::service` docs.

use ulp_lockstep::isa::asm::assemble;
use ulp_lockstep::platform::{Platform, PlatformConfig};

const PROGRAM: &str = "
        rdid r1            ; who am I?
        mov  r2, r1
        shl  r2, #11       ; private DM bank base
        li   r3, 18432     ; sync array (bank 9)
        wrsync r3
        mov  r4, r1        ; rolling per-core value
        movi r6, #32       ; iterations
loop:   sinc #0            ; -- check-in (Listing 1) ------------------
        add  r4, r1
        addi r4, #3
        mov  r5, r4
        movi r0, #7
        and  r5, r0        ; n = value & 7 : data-dependent trip count
        inc  r5
spin:   addi r5, #-1
        bne  spin
        sdec #0            ; -- check-out: sleep until everyone is out -
        addi r6, #-1
        bne  loop
        movi r5, #42
        st   r5, [r2]      ; result into my own bank
        halt";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(PROGRAM)?;

    println!("design          cycles  ops/cycle  IM accesses  lockstep width");
    for with_sync in [false, true] {
        let mut platform = Platform::new(PlatformConfig::paper(with_sync))?;
        platform.load_program(&program);
        platform.run()?;
        let stats = platform.stats();

        // Every core finished and produced its result.
        for core in 0..platform.num_cores() as u16 {
            assert_eq!(platform.dm(core * 2048), 42);
        }

        println!(
            "{:<14} {:>7}  {:>9.2}  {:>11}  {:>14.2}",
            if with_sync { "with sync" } else { "baseline" },
            stats.cycles,
            stats.ops_per_cycle(),
            stats.im.total_accesses(),
            stats.avg_lockstep_width(),
        );
    }
    println!();
    println!("The improved design finishes the same work in fewer cycles and");
    println!("with far fewer physical instruction-memory accesses, because");
    println!("lockstep cores share one broadcast fetch (Dogan et al., DATE'13).");
    Ok(())
}

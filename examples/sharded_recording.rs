//! Plan → run → merge a recording 10× the paper's evaluation window on
//! the batch simulation service, and price the whole recording with the
//! power model: the end-to-end tour of the workload-sharding subsystem.
//!
//! ```sh
//! cargo run --release --example sharded_recording
//! ```

use ulp_lockstep::kernels::{Benchmark, WorkloadConfig};
use ulp_lockstep::power::PowerModel;
use ulp_lockstep::service::ObserverSelection;
use ulp_lockstep::shard::{merge_verified, required_halo, ShardPlan, ShardRunConfig, ShardRunner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2560-sample recording (≈ 10 s of ECG at 250 Hz) — 10× the paper's
    // 256-sample window and far beyond one platform's per-channel buffer.
    let mut workload = WorkloadConfig::paper();
    workload.n = 2560;
    let benchmark = Benchmark::Mrpdln;

    // 1. Plan: ≤ 256-sample shards with the delineator's exact warm-up
    //    halo, so merging is provably lossless.
    let halo = required_halo(benchmark, &workload);
    let plan = ShardPlan::for_workload(benchmark, &workload, 256)?;
    println!(
        "plan: {} samples -> {} shards of <= {} core samples, halo {halo}",
        plan.total(),
        plan.len(),
        plan.shards()[0].core_len(),
    );

    // 2. Run: every shard is an ordinary service job; the work-stealing
    //    pool executes them concurrently over cached platforms. A per-bank
    //    DM heat map rides on every shard and is merged onto the
    //    recording's global cycle axis below.
    let runner = ShardRunner::new(
        ShardRunConfig::new(benchmark, true, 8, workload.clone())
            .with_observers(ObserverSelection::BankHeatMap { window: 4096 }),
        plan,
    )?;
    let start = std::time::Instant::now();
    let sharded = runner.run_local(0)?;
    let wall = start.elapsed();

    // 3. Merge: stitch outputs (dropping halo duplicates), sum statistics,
    //    and verify against a single full-recording golden pass.
    let merged = merge_verified(&sharded)?;
    let stats = &merged.run.stats;
    println!(
        "merged: {} cycles over {} shards ({} useful ops, {:.2} ops/cycle), verified bit-exact",
        stats.cycles,
        merged.shard_cycles.len(),
        stats.useful_ops(),
        stats.ops_per_cycle(),
    );
    let events = merged.events();
    println!(
        "delineation: {} events across 8 channels ({} peaks)",
        events.len(),
        events.iter().filter(|e| e.is_peak).count(),
    );
    let heatmap = merged
        .artifacts
        .bank_heat_map()
        .expect("the heat map survives the merge");
    let totals = heatmap.totals();
    let peak = totals.iter().copied().max().unwrap_or(0);
    println!(
        "heat map: {} rows x {} banks on the global cycle axis, {} DM accesses (peak bank {})",
        heatmap.rows.len(),
        heatmap.banks(),
        totals.iter().sum::<u64>(),
        peak,
    );

    // 4. Energy: fold the recording's activity into the power model at
    //    the paper's Table I workload of 8 MOps/s.
    let model = PowerModel::calibrated_default();
    let energy = merged
        .energy_uj(&model, 8.0)
        .expect("8 MOps/s is feasible for the improved design");
    println!(
        "energy: {energy:.1} uJ for the whole recording at 8 MOps/s \
         ({:.2} nJ/op); simulated in {:.2} s wall",
        energy * 1e3 / stats.useful_ops() as f64,
        wall.as_secs_f64(),
    );

    assert!(!events.is_empty(), "a 10 s ECG must contain events");
    Ok(())
}

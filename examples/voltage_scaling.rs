//! Explores the voltage-scaled power model (Fig. 3 of the paper): for a
//! range of workloads, print the frequency, minimum feasible supply
//! voltage and total power of both designs running MRPFLTR, and the
//! resulting saving.
//!
//! ```sh
//! cargo run --release --example voltage_scaling
//! ```

use ulp_lockstep::kernels::{run_benchmark, Benchmark, WorkloadConfig};
use ulp_lockstep::power::{Activity, PowerModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = WorkloadConfig::paper();
    eprintln!("simulating MRPFLTR on both designs ...");
    let with = run_benchmark(Benchmark::Mrpfltr, true, &cfg)?;
    with.verify()?;
    let without = run_benchmark(Benchmark::Mrpfltr, false, &cfg)?;
    without.verify()?;
    let act_with = Activity::from_stats(&with.stats);
    let act_without = Activity::from_stats(&without.stats);

    let model = PowerModel::calibrated_default();
    let max_without = model.max_workload(&act_without);
    let max_with = model.max_workload(&act_with);

    println!();
    println!("MRPFLTR, voltage scaling enabled (floor 0.5 V, nominal 1.2 V):");
    println!(
        "{:>9} | {:>22} | {:>22} | {:>7}",
        "MOps/s", "baseline f/V/P", "with sync f/V/P", "saving"
    );
    println!("{}", "-".repeat(72));
    for w in [2.0, 8.0, 20.0, 50.0, 100.0, 150.0, max_without, max_with] {
        let fmt = |p: Option<ulp_lockstep::power::PowerPoint>| match p {
            Some(p) => format!(
                "{:5.1} MHz {:.2} V {:5.2} mW",
                p.f_mhz, p.voltage, p.total_mw
            ),
            None => format!("{:>21}", "infeasible"),
        };
        let a = model.power_at_workload(&act_without, w);
        let b = model.power_at_workload(&act_with, w);
        let saving = match (&a, &b) {
            (Some(a), Some(b)) => format!("{:>6.1}%", (1.0 - b.total_mw / a.total_mw) * 100.0),
            _ => "    -".to_string(),
        };
        println!("{w:>9.1} | {} | {} | {saving}", fmt(a), fmt(b));
    }
    println!();
    println!(
        "max workload at 1.2 V: baseline {max_without:.0} MOps/s, with synchronizer {max_with:.0} MOps/s"
    );
    println!("below the voltage floor both curves scale linearly with the workload;");
    println!("above it the required voltage rises and power grows superlinearly —");
    println!("the knee and endpoints of Fig. 3 in the paper.");
    Ok(())
}

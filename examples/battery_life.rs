//! Battery-life estimation for an autonomous 8-channel monitor — the
//! paper's motivating scenario (portable biosignal analysis with a limited
//! energy supply).
//!
//! ```sh
//! cargo run --release --example battery_life
//! ```
//!
//! For each benchmark, the real-time workload of continuous 8-channel
//! processing at 250 Hz is derived from the measured instruction counts;
//! both designs are then placed at their minimum feasible voltage and the
//! runtime on a CR2032 coin cell is computed.

use ulp_lockstep::kernels::{run_benchmark, Benchmark, WorkloadConfig};
use ulp_lockstep::power::{Activity, PowerModel};

/// Usable energy of a CR2032 coin cell (225 mAh at 3.0 V nominal) behind a
/// 90 %-efficient regulator, in joules.
const BATTERY_J: f64 = 0.225 * 3600.0 * 3.0 * 0.90;

/// ECG sampling rate in Hz.
const FS: f64 = 250.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = WorkloadConfig::paper();
    let model = PowerModel::calibrated_default();

    println!("CR2032 budget: {BATTERY_J:.0} J; continuous 8-channel processing at {FS} Hz");
    println!();
    println!(
        "{:<8} | {:>10} | {:>26} | {:>26}",
        "bench", "MOps/s", "baseline P / battery life", "with sync P / battery life"
    );
    println!("{}", "-".repeat(84));
    for benchmark in Benchmark::ALL {
        let with = run_benchmark(benchmark, true, &cfg)?;
        with.verify()?;
        let without = run_benchmark(benchmark, false, &cfg)?;
        without.verify()?;

        // Useful operations per processed sample-channel (design
        // independent: both run the same algorithm).
        let ops_per_sample = with.stats.useful_ops() as f64 / (8.0 * cfg.n as f64);
        // Continuous real-time workload in MOps/s.
        let w_mops = ops_per_sample * FS * 8.0 / 1e6;

        let fmt = |act: &Activity| {
            let point = model
                .power_at_workload(act, w_mops)
                .expect("real-time load is tiny");
            let days = BATTERY_J / (point.total_mw * 1e-3) / 86_400.0;
            format!("{:>7.4} mW / {:>6.1} days", point.total_mw, days)
        };
        println!(
            "{:<8} | {:>10.3} | {:>26} | {:>26}",
            benchmark.name(),
            w_mops,
            fmt(&Activity::from_stats(&without.stats)),
            fmt(&Activity::from_stats(&with.stats)),
        );
    }
    println!();
    println!("At these near-floor workloads both designs sit at the minimum supply");
    println!("voltage, so the advantage equals the activity (IM access) saving;");
    println!("the voltage-scaling gap opens at higher sampling rates or channel");
    println!("counts — see `cargo run --release --example voltage_scaling`.");
    Ok(())
}

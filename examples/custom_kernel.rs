//! Authoring your own instrumented SPMD kernel with [`AsmBuilder`]: a
//! moving-average filter over each core's channel, built with the same
//! code-generation helpers the paper benchmarks use, run on both designs
//! and validated against a host-side reference.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use ulp_lockstep::isa::asm::assemble;
use ulp_lockstep::kernels::layout::{buffer_base, SHARED_BASE};
use ulp_lockstep::kernels::{AsmBuilder, KernelOptions};
use ulp_lockstep::platform::{Platform, PlatformConfig};

const N: u16 = 96;

/// Builds a kernel computing, per core, a 3-tap moving average of buf0
/// into buf1 and then clamping it against a shared threshold read from
/// the constants bank (the clamp is the data-dependent section).
fn moving_average_kernel(options: &KernelOptions) -> String {
    let mut b = AsmBuilder::new(*options);
    b.prologue();

    b.comment("y[i] = (x[i-1] + x[i] + x[i+1]) / 3 approximated as");
    b.comment("       (x[i-1] + 2*x[i] + x[i+1]) >> 2, edges copied");
    b.load_buffer_base("r7", "r0", 0); // x
    b.load_buffer_base("r6", "r0", 1); // y

    // Edges: y[0] = x[0], y[n-1] = x[n-1].
    b.line("ld   r0, [r7]");
    b.line("st   r0, [r6]");
    b.line(&format!("li   r1, {}", N - 1));
    b.line("mov  r3, r7");
    b.line("add  r3, r1");
    b.line("ld   r0, [r3]");
    b.line("mov  r3, r6");
    b.line("add  r3, r1");
    b.line("st   r0, [r3]");

    b.line("movi r1, #1");
    b.label("avg");
    b.line("mov  r3, r7");
    b.line("add  r3, r1");
    b.line("ld   r4, [r3, #-1]");
    b.line("ld   r5, [r3]");
    b.line("ld   r0, [r3, #1]");
    b.line("add  r4, r5");
    b.line("add  r4, r5");
    b.line("add  r4, r0");
    b.line("asr  r4, #2");
    // Data-dependent clamp against the shared threshold (broadcast read).
    b.line(&format!("li   r5, {SHARED_BASE}"));
    b.line("ld   r5, [r5]");
    let sp = b.section_enter();
    b.line("cmp  r4, r5");
    b.line("ble  keep");
    b.line("mov  r4, r5");
    b.label("keep");
    b.section_leave(sp);
    b.line("mov  r3, r6");
    b.line("add  r3, r1");
    b.line("st   r4, [r3]");
    b.line("inc  r1");
    b.line(&format!("li   r0, {}", N - 1));
    b.line("cmp  r1, r0");
    b.line("blt  avg");

    b.epilogue();
    b.into_source()
}

/// Host-side reference of the same arithmetic.
fn reference(x: &[i16], threshold: i16) -> Vec<i16> {
    let n = x.len();
    let mut y = x.to_vec();
    for i in 1..n - 1 {
        let avg = ((x[i - 1] as i32 + 2 * x[i] as i32 + x[i + 1] as i32) >> 2) as i16;
        y[i] = avg.min(threshold);
    }
    y
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threshold = 150i16;
    println!("design     cycles  ops/cycle  IM accesses");
    for with_sync in [false, true] {
        let options = KernelOptions::for_design(with_sync);
        let source = moving_average_kernel(&options);
        let program = assemble(&source)?;

        let mut platform = Platform::new(PlatformConfig::paper(with_sync))?;
        platform.load_program(&program);
        platform.set_dm(SHARED_BASE, threshold as u16);

        // Per-core input: a phase-shifted triangle wave.
        let mut inputs = Vec::new();
        for core in 0..8usize {
            let x: Vec<i16> = (0..N as i64)
                .map(|i| {
                    let p = (i + 11 * core as i64) % 64;
                    (if p < 32 { p * 12 } else { (64 - p) * 12 }) as i16 - 180
                })
                .collect();
            let words: Vec<u16> = x.iter().map(|&v| v as u16).collect();
            platform.load_dm(buffer_base(options.layout, core, 0), &words);
            inputs.push(x);
        }

        platform.run()?;
        let stats = platform.stats();
        println!(
            "{:<9} {:>7}  {:>9.2}  {:>11}",
            if with_sync { "with sync" } else { "baseline" },
            stats.cycles,
            stats.ops_per_cycle(),
            stats.im.total_accesses()
        );

        // Validate every core against the host reference.
        for (core, x) in inputs.iter().enumerate() {
            let out: Vec<i16> = platform
                .dm_slice(buffer_base(options.layout, core, 1), N as usize)
                .into_iter()
                .map(|w| w as i16)
                .collect();
            assert_eq!(out, reference(x, threshold), "core {core}");
        }
    }
    println!("\nall outputs match the host reference on both designs");
    Ok(())
}

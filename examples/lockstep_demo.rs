//! Visualizes lockstep execution and its loss — the behaviour sketched in
//! Fig. 2 of the paper — by tracing every core's fetch PC cycle by cycle.
//!
//! ```sh
//! cargo run --release --example lockstep_demo
//! ```
//!
//! Each printed row is one cycle; each column one core. A `.` means the
//! core did not fetch that cycle (execute phase, stalled, asleep or done).
//! On the baseline design the columns drift apart after the data-dependent
//! section; on the improved design the `SDEC` barrier pulls them back into
//! a single column of identical addresses.

use ulp_lockstep::isa::asm::assemble;
use ulp_lockstep::platform::{PcTrace, Platform, PlatformConfig};

const PROGRAM: &str = "
        rdid r1
        li   r3, 18432
        wrsync r3
        sinc #0            ; A  (check-in, Fig. 2)
        mov  r5, r1
        inc  r5
spin:   addi r5, #-1       ; per-core trip count: id + 1
        bne  spin
        sdec #0            ; A' (check-out: resynchronize)
        movi r0, #3
post:   add  r2, r2        ; lockstep SIMD region
        add  r2, r2
        addi r0, #-1
        bne  post
        halt";

fn render(trace: &PcTrace, title: &str, cycles: usize) {
    println!("== {title} ==");
    println!("cycle | c0   c1   c2   c3   c4   c5   c6   c7   | same-PC fetch width");
    for (cycle, row) in trace.rows().iter().enumerate().take(cycles) {
        let mut line = format!("{:>5} | ", cycle + 1);
        for pc in row {
            match pc {
                Some(a) => line.push_str(&format!("{a:<4} ")),
                None => line.push_str(".    "),
            }
        }
        let mut pcs: Vec<u16> = row.iter().flatten().copied().collect();
        pcs.sort_unstable();
        let width = pcs
            .chunk_by(|a, b| a == b)
            .map(|g| g.len())
            .max()
            .unwrap_or(0);
        if width > 0 {
            line.push_str(&format!("| {width}"));
        } else {
            line.push('|');
        }
        println!("{line}");
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(PROGRAM)?;
    for with_sync in [true, false] {
        let mut platform = Platform::new(PlatformConfig::paper(with_sync))?;
        platform.load_program(&program);
        let mut trace = PcTrace::new(64);
        platform.run_with(&mut [&mut trace])?;
        render(
            &trace,
            if with_sync {
                "improved design (SDEC barrier restores lockstep)"
            } else {
                "baseline design (cores drift apart for good)"
            },
            64,
        );
        let s = platform.stats();
        println!(
            "   -> {} cycles, average lockstep width {:.2}, {} physical IM accesses\n",
            s.cycles,
            s.avg_lockstep_width(),
            s.im.total_accesses()
        );
    }
    Ok(())
}

//! Batch simulation service demo: submit a mixed-size grid of benchmark
//! jobs to a [`SimService`] worker pool and consume the results as a
//! stream, then inspect the scheduling statistics (steals, platform-cache
//! hits) that make work-stealing quality observable.
//!
//! ```sh
//! cargo run --release --example batch_service
//! ```
//!
//! The grid is deliberately lopsided — cheap 2-core cells next to 8-core
//! cells — which is exactly the shape the service's work stealing exists
//! for: a worker that finishes its small cells early steals the tail of a
//! busy worker's backlog instead of idling.

use std::sync::Arc;
use ulp_lockstep::kernels::{Benchmark, WorkloadConfig};
use ulp_lockstep::service::{JobSpec, ServiceConfig, SimService};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Arc::new(WorkloadConfig::quick_test());
    let mut service = SimService::start(ServiceConfig::with_workers(4));

    // A mixed-size grid: every benchmark, both designs, small and large
    // platforms interleaved.
    let mut submitted = 0;
    for benchmark in Benchmark::ALL {
        for with_sync in [true, false] {
            for cores in [2, 8] {
                service.submit(JobSpec::new(benchmark, with_sync, cores, workload.clone()));
                submitted += 1;
            }
        }
    }
    println!(
        "submitted {submitted} jobs to {} workers",
        service.workers()
    );
    println!();

    // Results stream back in completion order, not submission order.
    while let Some(result) = service.recv() {
        let output = result.outcome?;
        output.run.verify()?;
        println!(
            "job {:>2} on worker {}{}: {:<7} {:<8} {} cores  {:>8} cycles  {:.2} ops/cycle",
            result.id,
            result.worker,
            if result.stolen {
                " (stolen)"
            } else {
                "         "
            },
            output.run.benchmark.name(),
            if output.run.with_sync {
                "sync"
            } else {
                "baseline"
            },
            output.cores,
            output.run.stats.cycles,
            output.run.stats.ops_per_cycle(),
        );
    }

    let stats = service.finish();
    println!();
    println!(
        "service: {} jobs on {} workers in {:.2} s — {} steals, {} platform-cache hits, {} platforms built",
        stats.jobs_run,
        stats.workers,
        stats.wall.as_secs_f64(),
        stats.steals,
        stats.platform_cache_hits,
        stats.platforms_built,
    );
    Ok(())
}

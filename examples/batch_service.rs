//! Batch simulation service demo: submit a mixed-size grid of benchmark
//! jobs to a [`SimService`] worker pool and consume the results as a
//! stream, then drive a *bounded* pool to saturation to show explicit
//! backpressure — `AtCapacity` rejections, retry-after-drain handling,
//! deadline misses and the latency percentiles the service accumulates —
//! and finally share one pool between a greedy and a polite tenant to
//! show quotas and fair-share scheduling.
//!
//! ```sh
//! cargo run --release --example batch_service
//! ```
//!
//! The grid is deliberately lopsided — cheap 2-core cells next to 8-core
//! cells — which is exactly the shape the service's half-batch work
//! stealing exists for: a worker that finishes its small cells early
//! steals the older half of a busy worker's backlog instead of idling.
//!
//! CI runs this example as its backpressure smoke: the `saturation:` line
//! must report at least one rejection with every accepted job completing,
//! and the `tenants:` line must report at least one quota rejection for
//! the greedy tenant with every polite job completing.

use std::sync::Arc;
use ulp_lockstep::kernels::{Benchmark, WorkloadConfig};
use ulp_lockstep::service::{
    JobSpec, Priority, ServiceConfig, SimService, SubmitError, TenantId, TenantPolicy,
};
use ulp_lockstep::telemetry::Telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    streaming_grid_demo()?;
    saturation_demo()?;
    tenant_demo()
}

/// Part 1: the streaming mixed grid from the service's happy path, now
/// with a priority, a deadline and a live telemetry handle in the mix.
fn streaming_grid_demo() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Arc::new(WorkloadConfig::quick_test());
    // An enabled handle traces every job's lifecycle into per-worker
    // rings; `telemetry.chrome_trace()` would render them as a
    // Perfetto-loadable file (the sweep/shard bins expose that as
    // `--trace-out`). The default is `Telemetry::disabled()` — zero cost.
    let telemetry = Telemetry::enabled();
    let mut service = SimService::start(
        ServiceConfig::builder()
            .workers(4)
            .telemetry(telemetry.clone())
            .build(),
    );

    // A mixed-size grid: every benchmark, both designs, small and large
    // platforms interleaved. The 8-core cells ride at high priority with
    // a simulated-cycle deadline only the synchronizer design can make.
    let mut submitted = 0;
    for benchmark in Benchmark::ALL {
        for with_sync in [true, false] {
            for cores in [2, 8] {
                let mut spec =
                    JobSpec::new(benchmark, cores, workload.clone()).with_sync(with_sync);
                if cores == 8 {
                    spec = spec.priority(Priority::High).deadline_cycles(40_000);
                }
                service.submit(spec)?;
                submitted += 1;
            }
        }
    }
    println!(
        "submitted {submitted} jobs to {} workers",
        service.workers()
    );
    println!();

    // Results stream back in completion order, not submission order.
    while let Some(result) = service.recv() {
        let output = result.outcome?;
        output.run.verify()?;
        println!(
            "job {:>2} on worker {}{}: {:<7} {:<8} {} cores  {:>8} cycles  {:.2} ops/cycle  \
             wait {:>7.1?}  run {:>7.1?}{}",
            result.id,
            result.worker,
            if result.stolen {
                " (stolen)"
            } else {
                "         "
            },
            output.run.benchmark.name(),
            if output.run.with_sync {
                "sync"
            } else {
                "baseline"
            },
            output.cores,
            output.run.stats.cycles,
            output.run.stats.ops_per_cycle(),
            result.queue_wait,
            result.run_time,
            if result.deadline_missed {
                "  DEADLINE MISSED"
            } else {
                ""
            },
        );
    }

    let stats = service.finish();
    println!();
    println!(
        "service: {} jobs on {} workers in {:.2} s — {} steals ({} jobs moved, max batch {}), \
         {} platform-cache hits, {} platforms built, {} deadline misses",
        stats.jobs_run,
        stats.workers,
        stats.wall.as_secs_f64(),
        stats.steals,
        stats.jobs_stolen,
        stats.steal_batch_max,
        stats.platform_cache_hits,
        stats.platforms_built,
        stats.deadline_misses,
    );
    let events = telemetry.collect();
    println!(
        "telemetry: {events} lifecycle events across {} tracks ({} dropped), \
         trace JSON is {} bytes",
        telemetry.track_count(),
        telemetry.dropped(),
        telemetry.chrome_trace().len(),
    );
    Ok(())
}

/// Part 2: a deliberately tiny bounded queue fed far more jobs than it
/// can hold. `submit` returns [`SubmitError::AtCapacity`] carrying the
/// spec back — this demo counts the rejections and retries each rejected
/// spec once after draining a result (the other standard moves: drop it,
/// or fall back to the blocking `submit_blocking`).
fn saturation_demo() -> Result<(), Box<dyn std::error::Error>> {
    // A heavier workload so the single worker is the bottleneck and the
    // queue really saturates while the submission loop runs.
    let workload = Arc::new(WorkloadConfig {
        n: 128,
        ..WorkloadConfig::quick_test()
    });
    let capacity = 2;
    let mut service = SimService::start(
        ServiceConfig::builder()
            .workers(1)
            .queue_capacity(capacity)
            .build(),
    );

    println!();
    println!(
        "saturating a bounded queue: capacity {capacity}, {} worker",
        service.workers()
    );

    let attempts = 32;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut completed = 0u64;
    for i in 0..attempts {
        let spec = JobSpec::new(Benchmark::Sqrt32, 2, workload.clone()).with_sync(i % 2 == 0);
        match service.submit(spec) {
            Ok(_) => accepted += 1,
            Err(error) => {
                rejected += 1;
                // Backpressure handling: drain one result (blocking), then
                // retry the returned spec once — it may be rejected again
                // if the queue refilled, in which case it is dropped.
                if let Some(result) = service.recv() {
                    result.outcome?.run.verify()?;
                    completed += 1;
                }
                let spec = error
                    .into_spec()
                    .expect("capacity rejections carry the spec");
                if service.submit(spec).is_ok() {
                    accepted += 1;
                } else {
                    rejected += 1;
                }
            }
        }
    }
    // Drain everything that was accepted.
    while let Some(result) = service.recv() {
        result.outcome?.run.verify()?;
        completed += 1;
    }

    let stats = service.finish();
    assert_eq!(stats.rejections, rejected, "the pool counts what we saw");
    assert_eq!(completed, accepted, "every accepted job completes");
    // CI parses this line: rejections must be observed and every accepted
    // job must come back.
    println!("saturation: attempts={attempts} accepted={accepted} rejected={rejected} completed={completed}");
    println!(
        "latency: p50 {:?}, p95 {:?}, max {:?} over {} jobs",
        stats.latency.p50, stats.latency.p95, stats.latency.max, stats.latency.samples,
    );
    Ok(())
}

/// Part 3: two tenants on one pool — a greedy tenant flooding jobs under
/// an admission quota, and a polite tenant submitting a handful. The
/// quota bounds how much of the pool the flood can hold at once
/// ([`SubmitError::QuotaExceeded`]), the per-tenant round-robin serves
/// both lanes, and the final stats break latency down per tenant.
fn tenant_demo() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Arc::new(WorkloadConfig {
        n: 128,
        ..WorkloadConfig::quick_test()
    });
    let greedy = TenantId(1);
    let polite = TenantId(2);
    let mut service = SimService::start(
        ServiceConfig::builder()
            .workers(1)
            .tenant(greedy, TenantPolicy::quota(4))
            .build(),
    );

    println!();
    println!(
        "two tenants on {} worker: greedy tenant {greedy} under a 4-job quota,          polite tenant {polite} unlimited",
        service.workers()
    );

    // The greedy tenant floods; beyond 4 admitted-and-unfinished jobs the
    // quota turns submissions away with the spec handed back.
    let mut greedy_accepted = 0u64;
    let mut greedy_quota_rejected = 0u64;
    for _ in 0..16 {
        match service.submit(JobSpec::new(Benchmark::Sqrt32, 2, workload.clone()).tenant(greedy)) {
            Ok(_) => greedy_accepted += 1,
            Err(SubmitError::QuotaExceeded { .. }) => greedy_quota_rejected += 1,
            Err(other) => return Err(other.into()),
        }
    }
    // The polite tenant's handful all admit: quotas are per tenant.
    let polite_submitted = 4u64;
    for _ in 0..polite_submitted {
        service.submit(JobSpec::new(Benchmark::Sqrt32, 2, workload.clone()).tenant(polite))?;
    }

    let mut polite_completed = 0u64;
    let mut greedy_completed = 0u64;
    while let Some(result) = service.recv() {
        let out = result.outcome?;
        out.run.verify()?;
        if result.tenant == polite {
            polite_completed += 1;
        } else {
            greedy_completed += 1;
        }
    }

    let stats = service.finish();
    assert_eq!(stats.quota_rejections, greedy_quota_rejected);
    assert_eq!(greedy_completed, greedy_accepted);
    // CI parses this line: the quota must actually bind and every polite
    // job must complete.
    println!(
        "tenants: greedy_accepted={greedy_accepted} \
         greedy_quota_rejected={greedy_quota_rejected} \
         polite_submitted={polite_submitted} \
         polite_completed={polite_completed}"
    );
    for row in &stats.per_tenant {
        println!(
            "tenant {} latency: p50 {:?}, p95 {:?}, max {:?} over {} jobs (peak admitted {})",
            row.tenant,
            row.latency.p50,
            row.latency.p95,
            row.latency.max,
            row.latency.samples,
            row.peak_admitted,
        );
    }
    Ok(())
}

//! The MRPDLN benchmark kernel: ECG delineation by multiscale
//! morphological derivatives.
//!
//! Stage map (mirrors [`ulp_biosignal::delineate`]); buffer indices placed
//! by the configured [`crate::layout::BufferLayout`]:
//!
//! ```text
//! buf0: x (input)              buf5: marks (0 none, 1 peak, 2 pit)
//! VARS: +0 d1 scratch, +1 d[i-1], +2 d[i-2]
//! ```
//!
//! The kernel is a **streaming** implementation, as a memory-frugal
//! embedded programmer would write it: one loop over the samples computes
//! both scales' windows with the branch-free sign-mask min/max idiom,
//! keeps a three-element rolling window of the combined derivative in the
//! scalar spill area, and classifies sample `i-1` as soon as `d[i]` is
//! known. The classification is the only data-dependent conditional (one
//! section per sample, Listing 1); its threshold is *read from the
//! shared-constants bank*, so lockstep cores broadcast the read. On the
//! baseline design the classification's divergence carries into the next
//! sample's window arithmetic and accumulates — with the synchronizer the
//! per-sample barrier repairs it, which is why the paper's MRPDLN reaches
//! the platform's 4.0 Ops/cycle ceiling with sync but halves without.

use crate::builder::{AsmBuilder, KernelOptions};
use crate::layout::SHARED_BASE;
use ulp_biosignal::DelineationConfig;

/// Word offset of the threshold inside the shared-constants bank.
pub const SHARED_THRESHOLD: u16 = 4;

/// Parameters of the generated MRPDLN kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrpdlnParams {
    /// Samples per channel.
    pub n: u16,
    /// Small-scale half-width (samples).
    pub scale_small: u16,
    /// Large-scale half-width (samples).
    pub scale_large: u16,
    /// Detection threshold (written to the shared bank by the loader).
    pub threshold: i16,
}

impl MrpdlnParams {
    /// Builds kernel parameters from the golden-model configuration.
    pub fn from_config(n: usize, cfg: &DelineationConfig) -> MrpdlnParams {
        MrpdlnParams {
            n: n as u16,
            scale_small: cfg.scale_small as u16,
            scale_large: cfg.scale_large as u16,
            threshold: cfg.threshold,
        }
    }

    /// The equivalent golden-model configuration.
    pub fn to_config(self) -> DelineationConfig {
        DelineationConfig {
            scale_small: self.scale_small as usize,
            scale_large: self.scale_large as usize,
            threshold: self.threshold,
        }
    }
}

/// Emits one branch-free min/max window phase for sample `i` (in `r1`):
/// leaves `d_scale = dilation + erosion - 2*x[i]` in `r4`.
///
/// Register plan: `r7` = x base, `r3`/`r5` = window pointers, `r4` = min
/// accumulator, `r6` = max accumulator, `r0`/`r2` = scratch.
fn minmax_phase(b: &mut AsmBuilder, half: u16, n: u16) {
    let lo_ok = b.fresh("mlo");
    let hi_ok = b.fresh("mhi");
    let inner = b.fresh("min");
    let done = b.fresh("mdn");
    b.comment(&format!("window phase, half={half}: d -> r4"));
    b.line("rdid r7");
    b.line("shl  r7, #11"); // x = buf0 sits at the core's own bank
    b.line("mov  r3, r1");
    b.line(&format!("li   r0, {half}"));
    b.line("sub  r3, r0");
    b.line(&format!("bge  {lo_ok}"));
    b.line("clr  r3");
    b.label(&lo_ok);
    b.line("mov  r5, r1");
    b.line("add  r5, r0");
    b.line(&format!("li   r0, {}", n - 1));
    b.line("cmp  r5, r0");
    b.line(&format!("ble  {hi_ok}"));
    b.line("mov  r5, r0");
    b.label(&hi_ok);
    b.line("add  r3, r7");
    b.line("add  r5, r7");
    b.line("ldp  r4, [r3]");
    b.line("mov  r6, r4");
    b.label(&inner);
    b.line("cmp  r3, r5");
    b.line(&format!("bgt  {done}"));
    b.line("ldp  r0, [r3]");
    // Branch-free min into r4: d = acc - v; acc = v + (d & (d >> 15)).
    b.line("mov  r2, r4");
    b.line("sub  r2, r0");
    b.line("mov  r4, r2");
    b.line("asr  r4, #15");
    b.line("and  r2, r4");
    b.line("mov  r4, r0");
    b.line("add  r4, r2");
    // Branch-free max into r6 (complemented mask).
    b.line("mov  r2, r6");
    b.line("sub  r2, r0");
    b.line("mov  r6, r2");
    b.line("asr  r6, #15");
    b.line("not  r6");
    b.line("and  r2, r6");
    b.line("mov  r6, r0");
    b.line("add  r6, r2");
    b.line(&format!("br   {inner}"));
    b.label(&done);
    // d = min + max - 2*x[i].
    b.line("mov  r0, r7");
    b.line("add  r0, r1");
    b.line("ld   r0, [r0]");
    b.line("add  r4, r6");
    b.line("sub  r4, r0");
    b.line("sub  r4, r0");
}

/// Generates the MRPDLN kernel source (input in buf0, marks in buf5).
pub fn mrpdln_source(p: &MrpdlnParams, options: &KernelOptions) -> String {
    assert!(p.scale_small >= 1 && p.scale_large >= 1);
    assert!(p.n >= 4, "streaming delineation needs at least 4 samples");
    let n = p.n;
    let mut b = AsmBuilder::new(*options);
    b.prologue();

    // Edge samples are never marked.
    b.comment("marks[0] = marks[n-1] = 0");
    b.store_const(5, 0, 0);
    b.store_const(5, n - 1, 0);
    b.comment("rolling derivative window (VARS +1 = d[i-1], +2 = d[i-2])");
    b.load_vars_base("r3", "r0");
    b.line("clr  r0");
    b.line("st   r0, [r3, #1]");
    b.line("st   r0, [r3, #2]");

    b.line("clr  r1"); // i = 0
    b.label("main");
    // d1 at the small scale -> r4 -> VARS+0.
    minmax_phase(&mut b, p.scale_small, n);
    b.load_vars_base("r2", "r0");
    b.line("st   r4, [r2]");
    // d2 at the large scale -> r4; combined d = (d1 + d2) >> 1 -> r5.
    minmax_phase(&mut b, p.scale_large, n);
    b.load_vars_base("r2", "r0");
    b.line("ld   r0, [r2]");
    b.line("add  r4, r0");
    b.line("asr  r4, #1");
    b.line("mov  r5, r4"); // d[i] lives in r5 from here on

    // Classify sample t = i-1 once d[t+1] is known (needs i >= 2).
    b.line("cmpi r1, #2");
    b.line("blt  skipcls");
    b.comment("r3/r4/r5 = d[t-1], d[t], d[t+1]");
    b.line("ld   r4, [r2, #1]");
    b.line("ld   r3, [r2, #2]");
    b.comment("r7 = threshold from the shared bank (broadcast read)");
    b.line(&format!("li   r7, {}", SHARED_BASE + SHARED_THRESHOLD));
    b.line("ld   r7, [r7]");
    let sp = b.section_enter();
    b.line("clr  r0");
    b.comment("peak: d[t] < -thr && d[t] <= d[t-1] && d[t] < d[t+1]");
    b.line("neg  r7");
    b.line("cmp  r4, r7");
    b.line("bge  trypit");
    b.line("cmp  r4, r3");
    b.line("bgt  clsdone");
    b.line("cmp  r4, r5");
    b.line("bge  clsdone");
    b.line("movi r0, #1");
    b.line("br   clsdone");
    b.label("trypit");
    b.comment("pit: d[t] > thr && d[t] >= d[t-1] && d[t] > d[t+1]");
    b.line("neg  r7");
    b.line("cmp  r4, r7");
    b.line("ble  clsdone");
    b.line("cmp  r4, r3");
    b.line("blt  clsdone");
    b.line("cmp  r4, r5");
    b.line("ble  clsdone");
    b.line("movi r0, #2");
    b.label("clsdone");
    b.section_leave(sp);
    b.comment("marks[t] = r0");
    b.load_buffer_base("r6", "r2", 5);
    b.line("add  r6, r1");
    b.line("st   r0, [r6, #-1]");
    b.label("skipcls");

    // Roll the derivative window: d[i-2] <- d[i-1] <- d[i].
    b.load_vars_base("r2", "r0");
    b.line("ld   r0, [r2, #1]");
    b.line("st   r0, [r2, #2]");
    b.line("st   r5, [r2, #1]");
    b.line("inc  r1");
    b.line(&format!("li   r0, {n}"));
    b.line("cmp  r1, r0");
    // The streaming body exceeds the conditional branch's ±127-word
    // reach; close the loop with a JAL trampoline (r7 is dead here).
    b.line("bge  mdone");
    b.line("jal  main");
    b.label("mdone");

    b.epilogue();
    b.into_source()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{buffer_base, BufferLayout};
    use ulp_biosignal::{delineate, Mark};
    use ulp_cpu::SimpleHost;
    use ulp_isa::asm::assemble;

    fn params() -> MrpdlnParams {
        MrpdlnParams {
            n: 80,
            scale_small: 2,
            scale_large: 6,
            threshold: 120,
        }
    }

    #[test]
    fn assembles_both_variants() {
        for instrumented in [false, true] {
            let src = mrpdln_source(&params(), &KernelOptions::for_design(instrumented));
            assemble(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
            assert_eq!(src.contains("sinc"), instrumented);
        }
    }

    #[test]
    fn only_the_classification_is_synchronized() {
        let src = mrpdln_source(&params(), &KernelOptions::for_design(true));
        assert_eq!(
            src.matches("sinc #").count(),
            1,
            "branchless scans need no sync points"
        );
    }

    #[test]
    fn single_core_matches_golden() {
        let p = params();
        let layout = BufferLayout::Packed;
        let src = mrpdln_source(&p, &KernelOptions::for_design(true));
        let prog = assemble(&src).unwrap();
        let mut host = SimpleHost::new(&prog.to_vec(0, prog.extent()));

        // Spiky test signal with clear peaks and pits.
        let x: Vec<i16> = (0..p.n as i64)
            .map(|i| match i % 20 {
                5 => 800,
                6 => 900,
                7 => 750,
                13 => -600,
                _ => ((i * 13) % 50) as i16,
            })
            .collect();
        let in_base = buffer_base(layout, 0, 0);
        for (i, &v) in x.iter().enumerate() {
            host.set_dm(in_base + i as u16, v as u16);
        }
        host.set_dm(SHARED_BASE + SHARED_THRESHOLD, p.threshold as u16);
        host.run(20_000_000).unwrap();

        let golden: Vec<u16> = delineate(&x, &p.to_config())
            .into_iter()
            .map(u16::from)
            .collect();
        let out_base = buffer_base(layout, 0, 5);
        let out: Vec<u16> = (0..p.n).map(|i| host.dm(out_base + i)).collect();
        assert_eq!(out, golden);
        assert!(
            golden.iter().any(|&m| m == u16::from(Mark::Peak)),
            "test signal must actually contain peaks"
        );
        assert!(golden.iter().any(|&m| m == u16::from(Mark::Pit)));
    }
}

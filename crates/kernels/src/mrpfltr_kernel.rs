//! The MRPFLTR benchmark kernel: morphological ECG conditioning.
//!
//! Mirrors [`ulp_biosignal::mrpfltr`] stage by stage on the platform.
//! Buffer indices (placed by the configured [`crate::layout::BufferLayout`]):
//!
//! ```text
//! buf0: x (input channel)
//! buf1: t        erosion/dilation ping buffer
//! buf2: t'       pong buffer
//! buf3: b        baseline estimate, then opening(c)
//! buf4: c        baseline-corrected signal, then closing(c)
//! buf5: y        output
//! ```
//!
//! The window scans use the fast *amortized* sliding-extremum algorithm
//! (lazy rescan when the extremum leaves the window), whose data-dependent
//! rescan path makes MRPFLTR the most divergence-heavy of the three
//! benchmarks — in the paper it shows both the lowest Ops/cycle (most
//! barrier sleeps with the synchronizer, most stalls without) and the
//! largest saving from synchronization. The per-element ablation build
//! (A5) uses the naive rescanning scan instead.

use crate::builder::{AsmBuilder, KernelOptions, SyncGranularity};
use ulp_biosignal::MrpfltrConfig;

/// Parameters of the generated MRPFLTR kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrpfltrParams {
    /// Samples per channel.
    pub n: u16,
    /// Baseline opening element length (odd).
    pub baseline_open: u16,
    /// Baseline closing element length (odd).
    pub baseline_close: u16,
    /// Noise-suppression element length (odd).
    pub noise: u16,
}

impl MrpfltrParams {
    /// Builds kernel parameters from the golden-model configuration.
    pub fn from_config(n: usize, cfg: &MrpfltrConfig) -> MrpfltrParams {
        MrpfltrParams {
            n: n as u16,
            baseline_open: cfg.baseline_open as u16,
            baseline_close: cfg.baseline_close as u16,
            noise: cfg.noise as u16,
        }
    }

    /// The equivalent golden-model configuration.
    pub fn to_config(self) -> MrpfltrConfig {
        MrpfltrConfig {
            baseline_open: self.baseline_open as usize,
            baseline_close: self.baseline_close as usize,
            noise: self.noise as usize,
        }
    }
}

/// Generates the MRPFLTR kernel source (input in buf0, output in buf5).
pub fn mrpfltr_source(p: &MrpfltrParams, options: &KernelOptions) -> String {
    assert!(p.baseline_open % 2 == 1 && p.baseline_close % 2 == 1 && p.noise % 2 == 1);
    let n = p.n;
    let ho = p.baseline_open / 2;
    let hc = p.baseline_close / 2;
    let hn = p.noise / 2;

    let mut b = AsmBuilder::new(*options);
    // The default (per-sample) build uses the fast amortized sliding-
    // extremum scans; the per-element ablation uses the naive rescanning
    // scan with a section around every compare-and-update.
    let scan = |b: &mut AsmBuilder, src: usize, dst: usize, h: u16, max: bool| {
        if b.options().granularity == SyncGranularity::PerSample {
            b.window_scan_amortized(src, dst, h, n, max);
        } else {
            b.window_scan(src, dst, h, n, max);
        }
    };
    b.prologue();

    // Baseline estimate: b = closing(opening(x, Lo), Lc).
    scan(&mut b, 0, 1, ho, false); // erode x    -> t
    scan(&mut b, 1, 2, ho, true); // dilate t    -> t'   (opening)
    scan(&mut b, 2, 1, hc, true); // dilate t'   -> t
    scan(&mut b, 1, 3, hc, false); // erode t    -> b    (closing)

    // Corrected signal: c = x - b.
    b.elementwise2(0, 3, 4, n, "c = x - b", |b| {
        b.line("sub  r5, r3");
    });

    // Opening of c with the short element -> buf3 (b no longer needed).
    scan(&mut b, 4, 1, hn, false);
    scan(&mut b, 1, 3, hn, true);
    // Closing of c -> buf1.
    scan(&mut b, 4, 2, hn, true);
    scan(&mut b, 2, 1, hn, false);

    // y = (opening + closing) >> 1 (floor average, matches ASR).
    b.elementwise2(3, 1, 5, n, "y = (o + c) >> 1", |b| {
        b.line("add  r5, r3");
        b.line("asr  r5, #1");
    });

    b.epilogue();
    b.into_source()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{buffer_base, BufferLayout};
    use ulp_isa::asm::assemble;

    fn params() -> MrpfltrParams {
        MrpfltrParams {
            n: 64,
            baseline_open: 9,
            baseline_close: 13,
            noise: 5,
        }
    }

    #[test]
    fn assembles_both_variants() {
        for instrumented in [false, true] {
            let src = mrpfltr_source(&params(), &KernelOptions::for_design(instrumented));
            let prog = assemble(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
            assert!(prog.len() > 100, "non-trivial kernel");
            assert_eq!(src.contains("sinc"), instrumented);
        }
    }

    #[test]
    fn config_round_trip() {
        let cfg = MrpfltrConfig::default();
        let p = MrpfltrParams::from_config(128, &cfg);
        assert_eq!(p.to_config(), cfg);
        assert_eq!(p.n, 128);
    }

    /// Bit-exact check against the golden model on a single simulated core
    /// (the fast functional path; the full 8-core run lives in the runner
    /// tests).
    #[test]
    fn single_core_matches_golden_in_both_layouts() {
        use ulp_cpu::SimpleHost;

        for layout in [BufferLayout::Packed, BufferLayout::PrivateBank] {
            let p = params();
            let options = KernelOptions {
                layout,
                ..KernelOptions::for_design(true)
            };
            let src = mrpfltr_source(&p, &options);
            let prog = assemble(&src).unwrap();
            let mut host = SimpleHost::new(&prog.to_vec(0, prog.extent()));

            // Synthetic ramp with spikes as the input channel of core 0.
            let x: Vec<i16> = (0..p.n as i64)
                .map(|i| (((i * 23) % 401) - 200 + if i % 37 == 0 { 300 } else { 0 }) as i16)
                .collect();
            let in_base = buffer_base(layout, 0, 0);
            for (i, &v) in x.iter().enumerate() {
                host.set_dm(in_base + i as u16, v as u16);
            }
            host.run(60_000_000).unwrap();

            let golden = ulp_biosignal::mrpfltr(&x, &p.to_config());
            let out_base = buffer_base(layout, 0, 5);
            let out: Vec<i16> = (0..p.n).map(|i| host.dm(out_base + i) as i16).collect();
            assert_eq!(out, golden, "layout {layout:?}");
        }
    }
}

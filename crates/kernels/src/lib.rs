//! # ulp-kernels — the paper's ECG benchmarks in ULP16 assembly
//!
//! The three reference benchmarks of Section II of Dogan et al. (DATE
//! 2013), hand-written in platform assembly and executed on the simulated
//! multi-core:
//!
//! * [`Benchmark::Mrpfltr`] — morphological filtering (baseline wander
//!   correction + noise suppression);
//! * [`Benchmark::Mrpdln`] — delineation by multiscale morphological
//!   derivatives;
//! * [`Benchmark::Sqrt32`] — 32-bit integer square root for multi-lead
//!   combination.
//!
//! Every kernel is SPMD: the same program runs on all eight cores, each
//! processing its own ECG channel held in its own data-memory bank (see
//! [`layout`]). Synchronization points are inserted around every
//! data-dependent conditional exactly as in Listing 1 of the paper;
//! building with `instrumented = false` yields the baseline binary for the
//! design without the synchronization ISE.
//!
//! [`run_benchmark`] executes a benchmark on both platform variants and validates
//! the outputs *bit-exactly* against the golden models of
//! [`ulp_biosignal`].
//!
//! ## Example
//!
//! ```
//! use ulp_kernels::{run_benchmark, Benchmark, WorkloadConfig};
//!
//! let cfg = WorkloadConfig::quick_test();
//! let run = run_benchmark(Benchmark::Sqrt32, true, &cfg).unwrap();
//! assert_eq!(run.outputs, run.expected, "kernel matches the golden model");
//! assert!(run.stats.ops_per_cycle() > 0.0);
//! ```

mod builder;
pub mod layout;
mod mrpdln_kernel;
mod mrpfltr_kernel;
mod runner;
mod sqrt32_kernel;

pub use builder::{AsmBuilder, KernelOptions, SyncGranularity};
pub use layout::BufferLayout;
pub use mrpdln_kernel::{mrpdln_source, MrpdlnParams};
pub use mrpfltr_kernel::{mrpfltr_source, MrpfltrParams};
pub use runner::{
    golden_outputs, kernel_source, resume_benchmark_checkpointed, run_benchmark,
    run_benchmark_checkpointed, run_benchmark_on, run_benchmark_reusing,
    run_benchmark_reusing_with, Benchmark, BenchmarkRun, CheckpointControl, RunnerError,
    SourceWindow, WorkloadConfig,
};
pub use sqrt32_kernel::{sqrt32_source, Sqrt32Params};

//! The data-memory map shared by every kernel.
//!
//! ```text
//! DM (32 Ki words, 16 banks x 2 Ki):
//!   banks 0..7            six signal buffers per core, placed by the
//!                         configured BufferLayout (see below); plus each
//!                         core's scalar spill area and stack at the top
//!                         of its own bank
//!   bank 8  (@16384)      shared read-only constants
//!   bank 9  (@18432)      synchronization array (RSYNC base)
//! ```
//!
//! Under the default [`BufferLayout::Packed`] placement, buffer `b` of
//! core `c` lives in bank `(c + b) mod 8`: cores in lockstep touch one
//! buffer kind at a time — eight distinct banks, conflict-free — while
//! divergent cores collide across banks, producing exactly the data access
//! conflicts Section IV of the paper handles. Shared constants are read at
//! identical addresses and therefore broadcast (Section III).

/// Words per data-memory bank.
pub const BANK_WORDS: u16 = 2048;

/// Base address of core `c`'s private bank.
pub const fn core_base(core: usize) -> u16 {
    (core as u16) * BANK_WORDS
}

/// Maximum samples per channel supported by the six-buffer layout.
pub const MAX_N: usize = 300;

/// Number of signal buffers per core.
pub const NUM_BUFFERS: usize = 6;

/// How the six per-core signal buffers are placed across the DM banks
/// (ablation A6 of `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BufferLayout {
    /// Realistic linker packing: buffer `b` of core `c` lives in bank
    /// `(c + b) mod 8`, so different cores' buffers share banks. Cores in
    /// lockstep access one buffer kind at a time and therefore hit eight
    /// *distinct* banks (conflict-free), while divergent cores collide —
    /// exactly the data-access-conflict scenario Section IV of the paper
    /// addresses with the enhanced serving policy. Default.
    #[default]
    Packed,
    /// Idealized placement: all six buffers of core `c` inside its own
    /// bank `c`. No cross-core DM conflicts can ever occur, which hides
    /// most of the baseline's degradation.
    PrivateBank,
}

/// Word address of element 0 of buffer `buf` (0..6) of core `core`.
pub const fn buffer_base(layout: BufferLayout, core: usize, buf: usize) -> u16 {
    let slot = (buf as u16) * MAX_N as u16;
    match layout {
        BufferLayout::Packed => (((core + buf) % 8) as u16) * BANK_WORDS + slot,
        BufferLayout::PrivateBank => core_base(core) + slot,
    }
}

/// Scalar spill area (loop indices etc.), always in the core's own bank.
pub const VARS: u16 = 1800;

/// Initial stack pointer offset within the private bank.
pub const STACK_TOP: u16 = 2047;

/// Base address of the shared constants bank.
pub const SHARED_BASE: u16 = 8 * BANK_WORDS;

/// Base address of the synchronization array; loaded into `RSYNC` by the
/// kernel prologue.
pub const SYNC_BASE: u16 = 9 * BANK_WORDS;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_banks_cover_cores() {
        for c in 0..8 {
            let base = core_base(c);
            assert_eq!(base % BANK_WORDS, 0);
            assert_eq!((base / BANK_WORDS) as usize, c);
        }
    }

    // Compile-time layout invariants.
    const _: () = assert!(NUM_BUFFERS as u16 * MAX_N as u16 <= VARS);
    const _: () = assert!(VARS < STACK_TOP);
    const _: () = assert!(STACK_TOP < BANK_WORDS);

    #[test]
    fn buffers_fit_and_never_overlap() {
        for layout in [BufferLayout::Packed, BufferLayout::PrivateBank] {
            let mut regions: Vec<(u16, u16)> = Vec::new();
            for core in 0..8 {
                for buf in 0..NUM_BUFFERS {
                    let base = buffer_base(layout, core, buf);
                    regions.push((base, base + MAX_N as u16));
                    // Buffers never spill into the VARS/stack area.
                    assert!(base % BANK_WORDS + MAX_N as u16 <= VARS);
                }
            }
            regions.sort_unstable();
            for w in regions.windows(2) {
                assert!(w[0].1 <= w[1].0, "{layout:?}: overlap {w:?}");
            }
        }
    }

    #[test]
    fn packed_layout_rotates_banks() {
        // Lockstep access to one buffer kind hits eight distinct banks.
        for buf in 0..NUM_BUFFERS {
            let banks: std::collections::BTreeSet<u16> = (0..8)
                .map(|c| buffer_base(BufferLayout::Packed, c, buf) / BANK_WORDS)
                .collect();
            assert_eq!(banks.len(), 8, "buffer {buf}");
        }
        // A single core's buffers are spread over several banks.
        let own: std::collections::BTreeSet<u16> = (0..NUM_BUFFERS)
            .map(|b| buffer_base(BufferLayout::Packed, 3, b) / BANK_WORDS)
            .collect();
        assert!(own.len() >= 4);
    }

    #[test]
    fn private_layout_confines_each_core() {
        for core in 0..8 {
            for buf in 0..NUM_BUFFERS {
                let base = buffer_base(BufferLayout::PrivateBank, core, buf);
                assert_eq!(base / BANK_WORDS, core as u16);
            }
        }
    }

    #[test]
    fn shared_and_sync_banks_are_distinct() {
        assert_eq!(SHARED_BASE / BANK_WORDS, 8);
        assert_eq!(SYNC_BASE / BANK_WORDS, 9);
    }
}

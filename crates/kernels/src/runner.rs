//! Benchmark execution harness: run a kernel on both platform designs and
//! validate against the golden models.

use crate::builder::{KernelOptions, SyncGranularity};
use crate::layout::{buffer_base, BufferLayout, SHARED_BASE};
use crate::mrpdln_kernel::{mrpdln_source, MrpdlnParams, SHARED_THRESHOLD};
use crate::mrpfltr_kernel::{mrpfltr_source, MrpfltrParams};
use crate::sqrt32_kernel::{sqrt32_source, Sqrt32Params};
use std::fmt;
use ulp_biosignal::{
    combine_two_leads, delineate, generate_channels, generate_channels_window, mrpfltr,
    DelineationConfig, EcgConfig, EcgSignal, MrpfltrConfig,
};
use ulp_isa::asm::{assemble, AsmError};
use ulp_platform::{
    Checkpoint, ConfigError, Observer, Platform, PlatformConfig, PlatformError, RestoreError,
    RunProgress, SimStats,
};

/// One of the paper's three reference benchmarks (Section II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Morphological filtering: baseline wander correction and noise
    /// suppression.
    Mrpfltr,
    /// Delineation by multiscale morphological derivatives.
    Mrpdln,
    /// 32-bit integer square root for multi-lead combination.
    Sqrt32,
}

impl Benchmark {
    /// All benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 3] = [Benchmark::Mrpfltr, Benchmark::Mrpdln, Benchmark::Sqrt32];

    /// The paper's name for the benchmark.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Mrpfltr => "MRPFLTR",
            Benchmark::Mrpdln => "MRPDLN",
            Benchmark::Sqrt32 => "SQRT32",
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a workload's `n` samples come from when they are a slice of a
/// longer recording: the `n` samples starting at `offset` of a
/// `total`-sample recording generated from the workload's [`EcgConfig`].
///
/// This is the kernel-layer half of workload sharding: a shard's job is an
/// ordinary [`WorkloadConfig`] whose `source` names its time window, so
/// the service executes it like any other job while the inputs (and golden
/// expectations) are bit-identical to the corresponding region of the full
/// recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceWindow {
    /// First sample (inclusive) of the window within the recording.
    pub offset: usize,
    /// Total length of the source recording in samples (may far exceed
    /// [`crate::layout::MAX_N`]; only the window itself must fit the
    /// platform's buffers).
    pub total: usize,
}

/// Workload parameters shared by all benchmark runs.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Samples per channel (≤ [`crate::layout::MAX_N`]).
    pub n: usize,
    /// When set, the `n` samples are the given window of a longer
    /// recording instead of a standalone `n`-sample recording.
    pub source: Option<SourceWindow>,
    /// Synthetic ECG recording parameters (one channel per core).
    pub ecg: EcgConfig,
    /// MRPFLTR structuring elements.
    pub mrpfltr: MrpfltrConfig,
    /// MRPDLN scales and threshold.
    pub delineation: DelineationConfig,
    /// Simulation cycle budget.
    pub max_cycles: u64,
    /// Synchronization-point placement (ablation A5).
    pub granularity: SyncGranularity,
    /// Buffer-to-bank placement (ablation A6).
    pub layout: BufferLayout,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::paper()
    }
}

impl WorkloadConfig {
    /// The evaluation workload: 256 samples (≈ 1 s of ECG at 250 Hz) per
    /// channel with the default filter parameters.
    pub fn paper() -> WorkloadConfig {
        WorkloadConfig {
            n: 256,
            source: None,
            // Independent per-channel sources (separate sensor streams):
            // the multi-channel scenario with the richest data-dependent
            // divergence, which the synchronization technique targets.
            ecg: EcgConfig {
                independent_channels: true,
                ..EcgConfig::default()
            },
            mrpfltr: MrpfltrConfig::default(),
            delineation: DelineationConfig::default(),
            max_cycles: 400_000_000,
            granularity: SyncGranularity::PerSample,
            layout: BufferLayout::Packed,
        }
    }

    /// A small configuration for fast functional tests.
    pub fn quick_test() -> WorkloadConfig {
        WorkloadConfig {
            n: 48,
            source: None,
            ecg: EcgConfig {
                independent_channels: true,
                ..EcgConfig::default()
            },
            mrpfltr: MrpfltrConfig {
                baseline_open: 7,
                baseline_close: 11,
                noise: 3,
            },
            delineation: DelineationConfig {
                scale_small: 2,
                scale_large: 5,
                threshold: 150,
            },
            max_cycles: 80_000_000,
            granularity: SyncGranularity::PerSample,
            layout: BufferLayout::Packed,
        }
    }

    /// This workload restricted to the `len`-sample window at `offset` of
    /// the recording it currently describes: the result runs on the same
    /// signal data, sliced. Treats the current config as the *full*
    /// recording (its `n` becomes the window's `total`); windowing an
    /// already-windowed workload re-slices the same underlying recording.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` exceeds the recording length.
    #[must_use]
    pub fn windowed(&self, offset: usize, len: usize) -> WorkloadConfig {
        let (base, total) = match self.source {
            // Re-slicing: offsets compose within the original recording.
            Some(w) => (w.offset, w.total),
            None => (0, self.n),
        };
        assert!(
            base + offset + len <= total,
            "window {}..{} outside recording of {total} samples",
            base + offset,
            base + offset + len
        );
        WorkloadConfig {
            n: len,
            source: Some(SourceWindow {
                offset: base + offset,
                total,
            }),
            ..self.clone()
        }
    }

    /// The per-core input channels of this workload: windowed generation
    /// when `source` is set, a standalone `n`-sample recording otherwise.
    pub fn channels(&self, num_cores: usize) -> Vec<EcgSignal> {
        match self.source {
            Some(w) => {
                generate_channels_window(&self.ecg, num_cores, w.total, w.offset..w.offset + self.n)
            }
            None => generate_channels(&self.ecg, num_cores, self.n),
        }
    }
}

/// Result of one benchmark execution.
#[derive(Debug, Clone)]
pub struct BenchmarkRun {
    /// Which benchmark ran.
    pub benchmark: Benchmark,
    /// Whether the platform had the synchronization feature.
    pub with_sync: bool,
    /// Simulation statistics (the power model's input).
    pub stats: SimStats,
    /// Per-core output buffers as read from data memory.
    pub outputs: Vec<Vec<u16>>,
    /// Per-core golden-model outputs.
    pub expected: Vec<Vec<u16>>,
}

impl BenchmarkRun {
    /// Whether every core's output matches the golden model bit-exactly.
    pub fn is_valid(&self) -> bool {
        self.outputs == self.expected
    }

    /// Validates the outputs.
    ///
    /// # Errors
    ///
    /// [`RunnerError::OutputMismatch`] naming the first mismatching core.
    pub fn verify(&self) -> Result<(), RunnerError> {
        for (core, (got, want)) in self.outputs.iter().zip(&self.expected).enumerate() {
            if got != want {
                let index = got
                    .iter()
                    .zip(want)
                    .position(|(g, w)| g != w)
                    .unwrap_or_default();
                return Err(RunnerError::OutputMismatch {
                    benchmark: self.benchmark,
                    core,
                    index,
                });
            }
        }
        Ok(())
    }
}

/// Errors of the benchmark harness.
#[derive(Debug)]
pub enum RunnerError {
    /// The generated kernel failed to assemble (a bug in the generator).
    Asm(AsmError),
    /// Invalid platform configuration.
    Config(ConfigError),
    /// The simulation failed.
    Platform(PlatformError),
    /// A checkpoint could not be restored onto the platform.
    Restore(RestoreError),
    /// A core's output differs from the golden model.
    OutputMismatch {
        /// The benchmark that mismatched.
        benchmark: Benchmark,
        /// First mismatching core.
        core: usize,
        /// First mismatching element index.
        index: usize,
    },
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::Asm(e) => write!(f, "kernel assembly failed: {e}"),
            RunnerError::Config(e) => write!(f, "platform configuration invalid: {e}"),
            RunnerError::Platform(e) => write!(f, "simulation failed: {e}"),
            RunnerError::Restore(e) => write!(f, "checkpoint restore failed: {e}"),
            RunnerError::OutputMismatch {
                benchmark,
                core,
                index,
            } => write!(
                f,
                "{benchmark}: core {core} output differs from golden model at element {index}"
            ),
        }
    }
}

impl std::error::Error for RunnerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunnerError::Asm(e) => Some(e),
            RunnerError::Config(e) => Some(e),
            RunnerError::Platform(e) => Some(e),
            RunnerError::Restore(e) => Some(e),
            RunnerError::OutputMismatch { .. } => None,
        }
    }
}

impl From<RestoreError> for RunnerError {
    fn from(e: RestoreError) -> Self {
        RunnerError::Restore(e)
    }
}

impl From<AsmError> for RunnerError {
    fn from(e: AsmError) -> Self {
        RunnerError::Asm(e)
    }
}

impl From<ConfigError> for RunnerError {
    fn from(e: ConfigError) -> Self {
        RunnerError::Config(e)
    }
}

impl From<PlatformError> for RunnerError {
    fn from(e: PlatformError) -> Self {
        RunnerError::Platform(e)
    }
}

/// Generates the kernel source for a benchmark.
pub fn kernel_source(benchmark: Benchmark, cfg: &WorkloadConfig, instrumented: bool) -> String {
    let options = KernelOptions {
        instrumented,
        granularity: cfg.granularity,
        layout: cfg.layout,
    };
    match benchmark {
        Benchmark::Mrpfltr => {
            mrpfltr_source(&MrpfltrParams::from_config(cfg.n, &cfg.mrpfltr), &options)
        }
        Benchmark::Mrpdln => mrpdln_source(
            &MrpdlnParams::from_config(cfg.n, &cfg.delineation),
            &options,
        ),
        Benchmark::Sqrt32 => sqrt32_source(&Sqrt32Params { n: cfg.n as u16 }, &options),
    }
}

/// Golden-model outputs for every core of a `num_cores`-channel run of
/// `cfg`, computed purely in Rust — no platform, no [`crate::layout`]
/// capacity limit. This is what a *full-recording* reference pass uses to
/// check a sharded run: `cfg.n` may be arbitrarily long.
pub fn golden_outputs(
    benchmark: Benchmark,
    cfg: &WorkloadConfig,
    num_cores: usize,
) -> Vec<Vec<u16>> {
    let channels = cfg.channels(num_cores);
    (0..num_cores)
        .map(|core| golden_output(benchmark, cfg, &channels, core))
        .collect()
}

/// Golden-model output for one core's channel.
fn golden_output(
    benchmark: Benchmark,
    cfg: &WorkloadConfig,
    channels: &[EcgSignal],
    core: usize,
) -> Vec<u16> {
    let x = &channels[core].samples;
    match benchmark {
        Benchmark::Mrpfltr => mrpfltr(x, &cfg.mrpfltr)
            .into_iter()
            .map(|v| v as u16)
            .collect(),
        Benchmark::Mrpdln => delineate(x, &cfg.delineation)
            .into_iter()
            .map(u16::from)
            .collect(),
        Benchmark::Sqrt32 => {
            let pair = &channels[(core + 1) % channels.len()].samples;
            combine_two_leads(x, pair)
        }
    }
}

/// Runs `benchmark` on the platform with or without the synchronization
/// feature, returning statistics and bit-exact output comparison data.
///
/// The *with-sync* run uses the instrumented kernel on the improved
/// platform; the *without-sync* run uses the uninstrumented kernel on the
/// baseline platform — the two designs of Section V of the paper.
///
/// # Errors
///
/// Any [`RunnerError`] other than `OutputMismatch` (mismatches are
/// reported via [`BenchmarkRun::verify`] so callers can inspect the data).
pub fn run_benchmark(
    benchmark: Benchmark,
    with_sync: bool,
    cfg: &WorkloadConfig,
) -> Result<BenchmarkRun, RunnerError> {
    let platform_cfg = PlatformConfig::paper(with_sync).with_max_cycles(cfg.max_cycles);
    run_benchmark_on(benchmark, platform_cfg, cfg)
}

/// [`run_benchmark`] with an explicit platform configuration (ablation
/// studies: bank mappings, serving policies, core counts). The kernel is
/// instrumented with sync points exactly when the platform has the
/// synchronizer.
///
/// # Errors
///
/// See [`run_benchmark`].
///
/// # Panics
///
/// Panics if `cfg.n` is outside the buffer layout's capacity or the
/// platform has more than 8 cores (one private DM bank per core).
pub fn run_benchmark_on(
    benchmark: Benchmark,
    platform_cfg: PlatformConfig,
    cfg: &WorkloadConfig,
) -> Result<BenchmarkRun, RunnerError> {
    let mut platform = Platform::new(platform_cfg)?;
    run_benchmark_reusing(benchmark, &mut platform, cfg)
}

/// [`run_benchmark_on`] on a caller-owned platform: the platform is
/// [reset](Platform::reset), loaded and run in place, so its memories and
/// cycle buffers are reused instead of reallocated. This is what the sweep
/// runner uses to amortize platform construction over a grid of runs.
///
/// # Errors
///
/// See [`run_benchmark`].
///
/// # Panics
///
/// Panics if `cfg.n` is outside the buffer layout's capacity or the
/// platform has more than 8 cores (one private DM bank per core).
pub fn run_benchmark_reusing(
    benchmark: Benchmark,
    platform: &mut Platform,
    cfg: &WorkloadConfig,
) -> Result<BenchmarkRun, RunnerError> {
    run_benchmark_reusing_with(benchmark, platform, cfg, &mut [])
}

/// [`run_benchmark_reusing`] with observers attached to the run: the
/// benchmark executes through [`Platform::run_with`], so PC traces, VCD
/// dumps or custom probes can watch a reused-platform run. This is the
/// execution path of the batch simulation service, whose jobs carry an
/// observer selection.
///
/// # Errors
///
/// See [`run_benchmark`].
///
/// # Panics
///
/// See [`run_benchmark_reusing`].
pub fn run_benchmark_reusing_with(
    benchmark: Benchmark,
    platform: &mut Platform,
    cfg: &WorkloadConfig,
    observers: &mut [&mut dyn Observer],
) -> Result<BenchmarkRun, RunnerError> {
    let channels = load_workload(benchmark, platform, cfg)?;
    platform.run_with(observers)?;
    Ok(collect_run(benchmark, platform, cfg, &channels))
}

/// Resets the platform, assembles and loads the kernel, and loads the
/// per-core inputs; returns the generated channels (needed again for the
/// golden comparison after the run).
fn load_workload(
    benchmark: Benchmark,
    platform: &mut Platform,
    cfg: &WorkloadConfig,
) -> Result<Vec<EcgSignal>, RunnerError> {
    assert!(
        cfg.n >= 4 && cfg.n <= crate::layout::MAX_N,
        "n = {} outside supported range",
        cfg.n
    );
    assert!(
        platform.config().num_cores <= 8,
        "kernels assume one private DM bank per core"
    );
    let with_sync = platform.config().synchronizer;
    let num_cores = platform.config().num_cores;
    let channels = cfg.channels(num_cores);

    let source = kernel_source(benchmark, cfg, with_sync);
    let program = assemble(&source)?;
    platform.reset();
    platform.load_program(&program);

    // Load per-core inputs at their configured buffer placement.
    for core in 0..num_cores {
        let x: Vec<u16> = channels[core].samples.iter().map(|&v| v as u16).collect();
        platform.load_dm(buffer_base(cfg.layout, core, 0), &x);
        if benchmark == Benchmark::Sqrt32 {
            let pair: Vec<u16> = channels[(core + 1) % num_cores]
                .samples
                .iter()
                .map(|&v| v as u16)
                .collect();
            platform.load_dm(buffer_base(cfg.layout, core, 1), &pair);
        }
    }
    if benchmark == Benchmark::Mrpdln {
        platform.set_dm(
            SHARED_BASE + SHARED_THRESHOLD,
            cfg.delineation.threshold as u16,
        );
    }
    Ok(channels)
}

/// Extracts the outputs of a completed run and pairs them with the golden
/// model.
fn collect_run(
    benchmark: Benchmark,
    platform: &Platform,
    cfg: &WorkloadConfig,
    channels: &[EcgSignal],
) -> BenchmarkRun {
    let num_cores = platform.config().num_cores;
    let out_buf = match benchmark {
        Benchmark::Mrpfltr | Benchmark::Mrpdln => 5,
        Benchmark::Sqrt32 => 2,
    };
    let outputs: Vec<Vec<u16>> = (0..num_cores)
        .map(|core| platform.dm_slice(buffer_base(cfg.layout, core, out_buf), cfg.n))
        .collect();
    let expected: Vec<Vec<u16>> = (0..num_cores)
        .map(|core| golden_output(benchmark, cfg, channels, core))
        .collect();

    BenchmarkRun {
        benchmark,
        with_sync: platform.config().synchronizer,
        stats: platform.stats(),
        outputs,
        expected,
    }
}

/// Decision returned by the checkpoint callback of
/// [`run_benchmark_checkpointed`]: keep running the next slice, or park
/// the job (the last checkpoint handed to the callback is the resume
/// point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointControl {
    /// Run the next slice.
    Continue,
    /// Stop here; the run resumes later from the checkpoint just taken.
    Park,
}

/// [`run_benchmark_reusing`] sliced into checkpointable pieces: the
/// benchmark runs `every` cycles at a time, and after each slice a
/// [`Platform::snapshot`] is handed to `on_checkpoint`. Returning
/// [`CheckpointControl::Park`] abandons the run (yielding `Ok(None)`);
/// resuming it later from that checkpoint — on this platform or any
/// structurally identical one, via [`resume_benchmark_checkpointed`] —
/// produces a [`BenchmarkRun`] bit-identical to an uninterrupted run.
///
/// Observers must be [attached](Platform::attach) rather than passed as a
/// slice so their state rides along in the checkpoints.
///
/// # Errors
///
/// See [`run_benchmark`].
///
/// # Panics
///
/// See [`run_benchmark_reusing`]; additionally panics if `every == 0`.
pub fn run_benchmark_checkpointed(
    benchmark: Benchmark,
    platform: &mut Platform,
    cfg: &WorkloadConfig,
    every: u64,
    on_checkpoint: impl FnMut(Checkpoint) -> CheckpointControl,
) -> Result<Option<BenchmarkRun>, RunnerError> {
    let channels = load_workload(benchmark, platform, cfg)?;
    drive_checkpointed(benchmark, platform, cfg, &channels, every, on_checkpoint)
}

/// Picks a parked benchmark run back up from its checkpoint and drives it
/// to completion (still checkpointing every `every` cycles — the resumed
/// job stays migratable). The platform only needs to be structurally
/// compatible with the checkpoint; nothing is reloaded, the checkpoint
/// carries the whole machine state. Attach any observers *before* calling
/// so their checkpointed state has somewhere to land.
///
/// # Errors
///
/// See [`run_benchmark`]; additionally any [`RestoreError`] via
/// [`RunnerError::Restore`].
///
/// # Panics
///
/// Panics if `every == 0`.
pub fn resume_benchmark_checkpointed(
    benchmark: Benchmark,
    platform: &mut Platform,
    cfg: &WorkloadConfig,
    ckpt: &Checkpoint,
    every: u64,
    on_checkpoint: impl FnMut(Checkpoint) -> CheckpointControl,
) -> Result<Option<BenchmarkRun>, RunnerError> {
    let channels = cfg.channels(ckpt.config.num_cores);
    platform.restore_from(ckpt)?;
    drive_checkpointed(benchmark, platform, cfg, &channels, every, on_checkpoint)
}

fn drive_checkpointed(
    benchmark: Benchmark,
    platform: &mut Platform,
    cfg: &WorkloadConfig,
    channels: &[EcgSignal],
    every: u64,
    mut on_checkpoint: impl FnMut(Checkpoint) -> CheckpointControl,
) -> Result<Option<BenchmarkRun>, RunnerError> {
    assert!(every > 0, "checkpoint interval must be positive");
    loop {
        let limit = platform.cycle().saturating_add(every);
        match platform.run_until(limit)? {
            RunProgress::Done(_) => {
                return Ok(Some(collect_run(benchmark, platform, cfg, channels)));
            }
            RunProgress::Paused => {
                if on_checkpoint(platform.snapshot()) == CheckpointControl::Park {
                    return Ok(None);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_match_golden_on_both_designs() {
        let cfg = WorkloadConfig::quick_test();
        for benchmark in Benchmark::ALL {
            for with_sync in [true, false] {
                let run = run_benchmark(benchmark, with_sync, &cfg)
                    .unwrap_or_else(|e| panic!("{benchmark} sync={with_sync}: {e}"));
                run.verify()
                    .unwrap_or_else(|e| panic!("{benchmark} sync={with_sync}: {e}"));
                assert_eq!(run.outputs.len(), 8);
            }
        }
    }

    #[test]
    fn sync_design_improves_ops_per_cycle_on_every_benchmark() {
        let cfg = WorkloadConfig::quick_test();
        for benchmark in Benchmark::ALL {
            let with = run_benchmark(benchmark, true, &cfg).unwrap();
            let without = run_benchmark(benchmark, false, &cfg).unwrap();
            if benchmark == Benchmark::Mrpdln {
                // The streaming delineator only diverges at classification
                // events, which are too sparse in this 48-sample smoke
                // signal for the baseline to degrade; its speed-up is
                // asserted at realistic lengths by the integration tests.
                // Broadcasting still cuts the IM traffic, and the barrier
                // overhead must stay marginal.
                assert!(
                    with.stats.ops_per_cycle() > 0.98 * without.stats.ops_per_cycle(),
                    "{benchmark}: {:.2} vs {:.2}",
                    with.stats.ops_per_cycle(),
                    without.stats.ops_per_cycle()
                );
            } else {
                assert!(
                    with.stats.ops_per_cycle() > without.stats.ops_per_cycle(),
                    "{benchmark}: {:.2} vs {:.2}",
                    with.stats.ops_per_cycle(),
                    without.stats.ops_per_cycle()
                );
            }
            // IM traffic must never grow; the large reductions need the
            // baseline to actually diverge, which MRPDLN's only does at
            // realistic signal lengths.
            assert!(
                with.stats.im_accesses_per_op() < 1.02 * without.stats.im_accesses_per_op(),
                "{benchmark}: IM/op {:.3} vs {:.3}",
                with.stats.im_accesses_per_op(),
                without.stats.im_accesses_per_op()
            );
        }
    }

    #[test]
    fn reused_platform_matches_fresh_runs() {
        let cfg = WorkloadConfig::quick_test();
        let mut platform =
            Platform::new(PlatformConfig::paper(true).with_max_cycles(cfg.max_cycles)).unwrap();
        for benchmark in Benchmark::ALL {
            let fresh = run_benchmark(benchmark, true, &cfg).unwrap();
            let reused = run_benchmark_reusing(benchmark, &mut platform, &cfg).unwrap();
            reused.verify().unwrap();
            assert_eq!(fresh.stats, reused.stats, "{benchmark}");
            assert_eq!(fresh.outputs, reused.outputs, "{benchmark}");
        }
    }

    #[test]
    fn windowed_workload_runs_on_the_recording_slice() {
        // A window of a longer recording loads exactly the sliced samples,
        // and the golden model scores the same slice — so the run stays
        // bit-exact while the underlying recording exceeds MAX_N.
        let full = WorkloadConfig {
            n: 2 * crate::layout::MAX_N,
            ..WorkloadConfig::quick_test()
        };
        let shard = full.windowed(150, 64);
        assert_eq!(shard.n, 64);
        assert_eq!(
            shard.source,
            Some(SourceWindow {
                offset: 150,
                total: 2 * crate::layout::MAX_N
            })
        );
        let run = run_benchmark(Benchmark::Sqrt32, true, &shard).unwrap();
        run.verify().unwrap();
        // The loaded inputs equal the slice of the full recording; SQRT32
        // is pointwise, so the outputs equal the slice of the full golden.
        let golden_full = golden_outputs(Benchmark::Sqrt32, &full, 8);
        for (core, out) in run.outputs.iter().enumerate() {
            assert_eq!(out[..], golden_full[core][150..214], "core {core}");
        }
        // Re-windowing composes offsets within the original recording.
        let nested = shard.windowed(10, 16);
        assert_eq!(
            nested.source,
            Some(SourceWindow {
                offset: 160,
                total: 2 * crate::layout::MAX_N
            })
        );
    }

    #[test]
    #[should_panic(expected = "outside recording")]
    fn window_past_the_recording_end_panics() {
        let _ = WorkloadConfig::quick_test().windowed(40, 9);
    }

    #[test]
    fn checkpointed_run_without_parking_matches_plain_run() {
        let cfg = WorkloadConfig::quick_test();
        let mut platform =
            Platform::new(PlatformConfig::paper(true).with_max_cycles(cfg.max_cycles)).unwrap();
        let plain = run_benchmark(Benchmark::Mrpfltr, true, &cfg).unwrap();
        let mut checkpoints = 0usize;
        let sliced =
            run_benchmark_checkpointed(Benchmark::Mrpfltr, &mut platform, &cfg, 50_000, |_ckpt| {
                checkpoints += 1;
                CheckpointControl::Continue
            })
            .unwrap()
            .expect("run completes");
        assert!(checkpoints > 0, "run is long enough to checkpoint");
        sliced.verify().unwrap();
        assert_eq!(plain.stats, sliced.stats);
        assert_eq!(plain.outputs, sliced.outputs);
    }

    #[test]
    fn parked_run_resumes_on_another_platform_bit_identically() {
        let cfg = WorkloadConfig::quick_test();
        let platform_cfg = PlatformConfig::paper(true).with_max_cycles(cfg.max_cycles);
        for benchmark in Benchmark::ALL {
            let plain = run_benchmark(benchmark, true, &cfg).unwrap();
            // An interval that always pauses at least once before the end.
            let every = (plain.stats.cycles / 3).max(1);

            // First worker: parks the job at its first checkpoint.
            let mut first = Platform::new(platform_cfg.clone()).unwrap();
            let mut parked = None;
            let early = run_benchmark_checkpointed(benchmark, &mut first, &cfg, every, |ckpt| {
                parked = Some(ckpt);
                CheckpointControl::Park
            })
            .unwrap();
            assert!(early.is_none(), "{benchmark}: parked, not completed");
            let ckpt = parked.expect("checkpoint taken before parking");
            assert!(ckpt.cycle > 0 && ckpt.cycle < plain.stats.cycles);

            // Second worker: picks the job up from the checkpoint — after
            // having run something unrelated on its cached platform.
            let mut second = Platform::new(platform_cfg.clone()).unwrap();
            run_benchmark_reusing(Benchmark::Sqrt32, &mut second, &cfg)
                .unwrap()
                .verify()
                .unwrap();
            let resumed =
                resume_benchmark_checkpointed(benchmark, &mut second, &cfg, &ckpt, every, |_| {
                    CheckpointControl::Continue
                })
                .unwrap()
                .expect("resumed run completes");
            resumed.verify().unwrap();
            assert_eq!(plain.stats, resumed.stats, "{benchmark}");
            assert_eq!(plain.outputs, resumed.outputs, "{benchmark}");
        }
    }

    #[test]
    fn benchmark_names() {
        assert_eq!(Benchmark::Mrpfltr.to_string(), "MRPFLTR");
        assert_eq!(Benchmark::ALL.len(), 3);
    }

    #[test]
    fn mismatch_error_is_informative() {
        let cfg = WorkloadConfig::quick_test();
        let mut run = run_benchmark(Benchmark::Sqrt32, true, &cfg).unwrap();
        run.outputs[3][7] ^= 1;
        let err = run.verify().unwrap_err();
        assert_eq!(
            err.to_string(),
            "SQRT32: core 3 output differs from golden model at element 7"
        );
    }
}

#[cfg(test)]
mod footprint_tests {
    use super::*;

    /// The SPMD lockstep story assumes the whole kernel image fits in one
    /// blocked IM bank (6144 words); verify it for every benchmark at the
    /// largest supported workload, both variants, both granularities.
    #[test]
    fn kernels_fit_one_im_bank() {
        let mut cfg = WorkloadConfig::paper();
        cfg.n = crate::layout::MAX_N;
        for granularity in [SyncGranularity::PerSample, SyncGranularity::PerElement] {
            cfg.granularity = granularity;
            for benchmark in Benchmark::ALL {
                for instrumented in [true, false] {
                    let source = kernel_source(benchmark, &cfg, instrumented);
                    let program = ulp_isa::asm::assemble(&source).unwrap_or_else(|e| panic!("{e}"));
                    assert!(
                        program.extent() <= ulp_isa::arch::IM_BANK_WORDS,
                        "{benchmark} ({granularity:?}, instrumented={instrumented}): \
                         {} words exceed one IM bank",
                        program.extent()
                    );
                }
            }
        }
    }

    /// Kernel listings disassemble cleanly: every emitted word of every
    /// kernel is a valid instruction (no stray data in the code image).
    #[test]
    fn kernel_images_are_pure_code() {
        let cfg = WorkloadConfig::quick_test();
        for benchmark in Benchmark::ALL {
            let source = kernel_source(benchmark, &cfg, true);
            let program = ulp_isa::asm::assemble(&source).unwrap();
            for (addr, word) in program.iter() {
                assert!(
                    ulp_isa::decode(word).is_ok(),
                    "{benchmark}: word {word:#06x} at {addr:#06x} does not decode"
                );
            }
        }
    }
}

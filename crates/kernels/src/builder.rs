//! Assembly source builder with the shared kernel idioms.
//!
//! Kernels are generated as assembler text so that structuring-element
//! lengths, buffer placement and sample counts are baked in as constants —
//! the same specialization a C compiler with constant propagation would
//! perform for the platform. The builder also implements Listing 1 of the
//! paper: when *instrumented*, every data-dependent conditional is wrapped
//! in a `SINC`/`SDEC` pair with its own synchronization-array index.
//!
//! ### Register conventions inside generated kernels
//!
//! * `r1` — element index of the active loop;
//! * `r7`, `r6`, `r2` — buffer base pointers of the active pass
//!   (the leaf kernels use no stack and make no calls, so `r6`/`r7` are
//!   free);
//! * `r0`, `r3`–`r5` — scratch.

use crate::layout::{self, BufferLayout};
use std::fmt::Write as _;

/// Where synchronization points are inserted (ablation A5 of `DESIGN.md`).
///
/// The paper instruments "each data-dependent conditional statement"
/// (Listing 1) but reports a DM-access increase below 10 %, which implies
/// the instrumented conditionals are the *outer* per-sample statements,
/// not every inner compare: a check-in/check-out pair per window element
/// would multiply DM traffic. Both placements are supported:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SyncGranularity {
    /// One section per output sample: the whole data-dependent window
    /// update (or digit loop) is bracketed once. Divergence inside a
    /// sample is bounded and repaired at the sample barrier. This matches
    /// the paper's reported sync overhead and is the default.
    #[default]
    PerSample,
    /// One section per data-dependent `if`: the finest possible placement,
    /// maximal lockstep at maximal sync traffic.
    PerElement,
}

/// Code-generation options common to all kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelOptions {
    /// Insert `SINC`/`SDEC` synchronization points (the improved design's
    /// binary); without, the source contains no synchronization ISE at all
    /// (the baseline design's binary).
    pub instrumented: bool,
    /// Synchronization-point placement.
    pub granularity: SyncGranularity,
    /// Buffer-to-bank placement.
    pub layout: BufferLayout,
}

impl KernelOptions {
    /// The canonical options of one of the paper's two designs.
    pub fn for_design(with_sync: bool) -> KernelOptions {
        KernelOptions {
            instrumented: with_sync,
            ..KernelOptions::default()
        }
    }
}

/// Incremental builder of one kernel's assembler source.
#[derive(Debug, Clone)]
pub struct AsmBuilder {
    text: String,
    labels: usize,
    sync_points: u8,
    options: KernelOptions,
}

impl AsmBuilder {
    /// Starts a kernel with the given options.
    pub fn new(options: KernelOptions) -> AsmBuilder {
        AsmBuilder {
            text: String::new(),
            labels: 0,
            sync_points: 0,
            options,
        }
    }

    /// The active options.
    pub fn options(&self) -> &KernelOptions {
        &self.options
    }

    /// Number of synchronization points allocated so far.
    pub fn sync_points(&self) -> u8 {
        self.sync_points
    }

    /// Appends one line of assembly.
    pub fn line(&mut self, s: &str) {
        writeln!(self.text, "        {s}").expect("string write");
    }

    /// Appends a label definition.
    pub fn label(&mut self, name: &str) {
        writeln!(self.text, "{name}:").expect("string write");
    }

    /// Appends a comment line.
    pub fn comment(&mut self, s: &str) {
        writeln!(self.text, "; {s}").expect("string write");
    }

    /// Returns a fresh unique label with the given prefix.
    pub fn fresh(&mut self, prefix: &str) -> String {
        self.labels += 1;
        format!("{prefix}_{}", self.labels)
    }

    /// Allocates the next synchronization-point index.
    fn alloc_sync(&mut self) -> u8 {
        let idx = self.sync_points;
        self.sync_points = self
            .sync_points
            .checked_add(1)
            .expect("more than 256 sync points");
        idx
    }

    /// Opens a data-dependent section (emits `SINC #idx` when
    /// instrumented) and returns the index to close it with.
    pub fn section_enter(&mut self) -> u8 {
        let idx = self.alloc_sync();
        if self.options.instrumented {
            self.line(&format!("sinc #{idx}"));
        }
        idx
    }

    /// Closes a data-dependent section (emits `SDEC #idx`).
    pub fn section_leave(&mut self, idx: u8) {
        if self.options.instrumented {
            self.line(&format!("sdec #{idx}"));
        }
    }

    /// The finished source text.
    pub fn into_source(self) -> String {
        self.text
    }

    // ---- kernel idioms ---------------------------------------------------

    /// Standard prologue: set `RSYNC` to the sync array. Leaf kernels use
    /// no stack, so no stack pointer is established.
    pub fn prologue(&mut self) {
        self.comment("prologue: RSYNC");
        self.line(&format!("li   r0, {}", layout::SYNC_BASE));
        self.line("wrsync r0");
    }

    /// Epilogue: halt.
    pub fn epilogue(&mut self) {
        self.line("halt");
    }

    /// Emits code leaving the base address of this core's buffer `buf` in
    /// register `dst`, clobbering `tmp` (`dst != tmp`, neither `r1`).
    pub fn load_buffer_base(&mut self, dst: &str, tmp: &str, buf: usize) {
        debug_assert!(dst != tmp);
        debug_assert!(buf < layout::NUM_BUFFERS);
        let slot = buf * layout::MAX_N;
        match self.options.layout {
            BufferLayout::Packed => {
                self.line(&format!("rdid {dst}"));
                if buf > 0 {
                    self.line(&format!("addi {dst}, #{buf}"));
                }
                self.line(&format!("movi {tmp}, #7"));
                self.line(&format!("and  {dst}, {tmp}"));
                self.line(&format!("shl  {dst}, #11"));
                if slot > 0 {
                    self.line(&format!("li   {tmp}, {slot}"));
                    self.line(&format!("add  {dst}, {tmp}"));
                }
            }
            BufferLayout::PrivateBank => {
                self.line(&format!("rdid {dst}"));
                self.line(&format!("shl  {dst}, #11"));
                if slot > 0 {
                    self.line(&format!("li   {tmp}, {slot}"));
                    self.line(&format!("add  {dst}, {tmp}"));
                }
            }
        }
    }

    /// Emits code leaving the address of this core's scalar spill area in
    /// `dst`, clobbering `tmp`.
    pub fn load_vars_base(&mut self, dst: &str, tmp: &str) {
        self.line(&format!("rdid {dst}"));
        self.line(&format!("shl  {dst}, #11"));
        self.line(&format!("li   {tmp}, {}", layout::VARS));
        self.line(&format!("add  {dst}, {tmp}"));
    }

    /// Emits a running-min (`max = false`) or running-max (`max = true`)
    /// window scan: `dst[i] = min/max(src[i-h ..= i+h])` for `i in 0..n`,
    /// with the window clipped at the borders — the morphological
    /// erosion/dilation primitive. `src`/`dst` are buffer indices.
    ///
    /// The per-element compare-and-update (the branchy embedded-C idiom)
    /// is a data-dependent conditional; with `branchless = true` the scan
    /// instead uses the sign-mask select idiom, which keeps lockstep
    /// without any synchronization (how a power-aware programmer would
    /// write a pure min/max scan).
    pub fn window_scan(&mut self, src: usize, dst: usize, half: u16, n: u16, max: bool) {
        self.window_scan_impl(src, dst, half, n, max, false);
    }

    /// Branch-free variant of [`AsmBuilder::window_scan`].
    pub fn window_scan_branchless(&mut self, src: usize, dst: usize, half: u16, n: u16, max: bool) {
        self.window_scan_impl(src, dst, half, n, max, true);
    }

    fn window_scan_impl(
        &mut self,
        src: usize,
        dst: usize,
        half: u16,
        n: u16,
        max: bool,
        branchless: bool,
    ) {
        assert!(half >= 1, "window half-width must be at least 1");
        assert!(n as usize <= layout::MAX_N, "n exceeds buffer capacity");
        let outer = self.fresh("wl");
        let lo_ok = self.fresh("wlo");
        let hi_ok = self.fresh("whi");
        let inner = self.fresh("wi");
        let no_upd = self.fresh("wnu");
        let idone = self.fresh("wid");
        let op = if max { "dilation" } else { "erosion" };
        let per_sample = self.options.granularity == SyncGranularity::PerSample;
        self.comment(&format!(
            "{op}: buf{src} -> buf{dst}, half={half}, n={n}{}",
            if branchless { " (branchless)" } else { "" }
        ));
        self.load_buffer_base("r7", "r0", src);
        self.load_buffer_base("r6", "r0", dst);

        self.line("clr  r1");
        self.label(&outer);
        let sample_sp = if per_sample && !branchless {
            Some(self.section_enter())
        } else {
            None
        };
        // lo = max(i - h, 0)
        self.line("mov  r3, r1");
        self.line(&format!("li   r0, {half}"));
        self.line("sub  r3, r0");
        self.line(&format!("bge  {lo_ok}"));
        self.line("clr  r3");
        self.label(&lo_ok);
        // hi = min(i + h, n - 1)
        self.line("mov  r5, r1");
        self.line("add  r5, r0");
        self.line(&format!("li   r0, {}", n - 1));
        self.line("cmp  r5, r0");
        self.line(&format!("ble  {hi_ok}"));
        self.line("mov  r5, r0");
        self.label(&hi_ok);
        // r3 = &src[lo], r5 = &src[hi]
        self.line("add  r3, r7");
        self.line("add  r5, r7");
        self.line("ldp  r4, [r3]");
        self.label(&inner);
        self.line("cmp  r3, r5");
        self.line(&format!("bgt  {idone}"));
        self.line("ldp  r0, [r3]");
        if branchless {
            // acc = min(acc, v) without a branch (sign-mask select):
            //   d = acc - v; mask = d >> 15; acc = v + (d & mask)
            // and dually for max with mask = ~(d >> 15).
            self.line("mov  r2, r4");
            self.line("sub  r2, r0"); // d = acc - v
            self.line("mov  r4, r2");
            self.line("asr  r4, #15"); // mask = d < 0 ? 0xFFFF : 0
            if max {
                self.line("not  r4"); // select the larger instead
            }
            self.line("and  r2, r4"); // d & mask
            self.line("mov  r4, r0");
            self.line("add  r4, r2"); // v + (d & mask)
        } else {
            // Data-dependent min/max update (Listing 1 of the paper).
            let element_sp = if per_sample {
                None
            } else {
                Some(self.section_enter())
            };
            self.line("cmp  r0, r4");
            self.line(&format!("{}  {no_upd}", if max { "ble" } else { "bge" }));
            self.line("mov  r4, r0");
            self.label(&no_upd);
            if let Some(sp) = element_sp {
                self.section_leave(sp);
            }
        }
        self.line(&format!("br   {inner}"));
        self.label(&idone);
        // dst[i] = acc
        self.line("mov  r0, r6");
        self.line("add  r0, r1");
        self.line("st   r4, [r0]");
        if let Some(sp) = sample_sp {
            self.section_leave(sp);
        }
        self.line("inc  r1");
        self.line(&format!("li   r0, {n}"));
        self.line("cmp  r1, r0");
        self.line(&format!("blt  {outer}"));
    }

    /// Emits an **amortized** running-min/max window scan: instead of
    /// rescanning the whole window per output sample, it keeps the current
    /// extremum and handles the three cases of a sliding window:
    ///
    /// * the window grew (left border): merge the incoming sample;
    /// * the outgoing sample was *not* the extremum: merge the incoming
    ///   sample (two comparisons, the common fast path);
    /// * the outgoing sample *was* the extremum: rescan the window.
    ///
    /// This is the classic fast implementation of morphological
    /// erosion/dilation — amortized O(1) comparisons per sample with a
    /// data-dependent O(window) rescan path. The enormous path-length
    /// difference between fast path and rescan is what makes this kernel
    /// the most divergent of the benchmarks: without synchronization the
    /// cores fragment completely, and with it they sleep at the per-sample
    /// barrier until the rescanning cores catch up.
    pub fn window_scan_amortized(&mut self, src: usize, dst: usize, half: u16, n: u16, max: bool) {
        assert!(half >= 1, "window half-width must be at least 1");
        assert!(n as usize <= layout::MAX_N, "n exceeds buffer capacity");
        let outer = self.fresh("al");
        let hi_ok = self.fresh("ahi");
        let merge_in = self.fresh("amg");
        let rescan = self.fresh("ars");
        let lo_ok = self.fresh("alo");
        let rescan_loop = self.fresh("ail");
        let no_upd = self.fresh("anu");
        let store = self.fresh("ast");
        let op = if max { "dilation" } else { "erosion" };
        let keep = if max { "ble" } else { "bge" };
        self.comment(&format!(
            "{op} (amortized): buf{src} -> buf{dst}, half={half}, n={n}"
        ));
        self.load_buffer_base("r7", "r0", src);
        self.load_buffer_base("r6", "r0", dst);

        self.line("clr  r1");
        self.label(&outer);
        // The whole per-sample update is data-dependent (three-way path).
        let sp = self.section_enter();
        // hi = min(i + h, n - 1) -> r5.
        self.line("mov  r5, r1");
        self.line(&format!("li   r0, {half}"));
        self.line("add  r5, r0");
        self.line(&format!("li   r0, {}", n - 1));
        self.line("cmp  r5, r0");
        self.line(&format!("ble  {hi_ok}"));
        self.line("mov  r5, r0");
        self.label(&hi_ok);
        // First sample: establish the extremum with a full scan.
        self.line("cmpi r1, #0");
        self.line(&format!("beq  {rescan}"));
        // Outgoing index i - h - 1; negative while the window still grows.
        self.line("mov  r3, r1");
        self.line(&format!("li   r0, {}", half + 1));
        self.line("sub  r3, r0");
        self.line(&format!("blt  {merge_in}"));
        // Did the extremum just leave the window?
        self.line("add  r3, r7");
        self.line("ld   r0, [r3]");
        self.line("cmp  r0, r4");
        self.line(&format!("beq  {rescan}"));
        self.label(&merge_in);
        // Fast path: merge the incoming sample x[hi].
        self.line("mov  r3, r5");
        self.line("add  r3, r7");
        self.line("ld   r0, [r3]");
        self.line("cmp  r0, r4");
        self.line(&format!("{keep}  {store}"));
        self.line("mov  r4, r0");
        self.line(&format!("br   {store}"));
        self.label(&rescan);
        // Slow path: full rescan of [max(i-h,0) ..= hi].
        self.line("mov  r3, r1");
        self.line(&format!("li   r0, {half}"));
        self.line("sub  r3, r0");
        self.line(&format!("bge  {lo_ok}"));
        self.line("clr  r3");
        self.label(&lo_ok);
        self.line("add  r3, r7");
        self.line("mov  r2, r5");
        self.line("add  r2, r7");
        self.line("ldp  r4, [r3]");
        self.label(&rescan_loop);
        self.line("cmp  r3, r2");
        self.line(&format!("bgt  {store}"));
        self.line("ldp  r0, [r3]");
        self.line("cmp  r0, r4");
        self.line(&format!("{keep}  {no_upd}"));
        self.line("mov  r4, r0");
        self.label(&no_upd);
        self.line(&format!("br   {rescan_loop}"));
        self.label(&store);
        self.line("mov  r0, r6");
        self.line("add  r0, r1");
        self.line("st   r4, [r0]");
        self.section_leave(sp);
        self.line("inc  r1");
        self.line(&format!("li   r0, {n}"));
        self.line("cmp  r1, r0");
        self.line(&format!("blt  {outer}"));
    }

    /// Emits a branch-free element-wise loop over `i in 0..n` whose body is
    /// produced by `body` with: `r5` holding `src1[i]`, `r3` holding
    /// `src2[i]`; the body must leave the result in `r5` (scratch: `r0`,
    /// `r4`). The result is stored to `dst[i]`. All three are buffer
    /// indices.
    pub fn elementwise2(
        &mut self,
        src1: usize,
        src2: usize,
        dst: usize,
        n: u16,
        comment: &str,
        body: impl FnOnce(&mut AsmBuilder),
    ) {
        let looplab = self.fresh("el");
        self.comment(&format!(
            "elementwise ({comment}): buf{src1},buf{src2} -> buf{dst}, n={n}"
        ));
        self.load_buffer_base("r7", "r0", src1);
        self.load_buffer_base("r6", "r0", src2);
        self.load_buffer_base("r2", "r0", dst);
        self.line("clr  r1");
        self.label(&looplab);
        self.line("mov  r3, r7");
        self.line("add  r3, r1");
        self.line("ld   r5, [r3]");
        self.line("mov  r3, r6");
        self.line("add  r3, r1");
        self.line("ld   r3, [r3]");
        body(self);
        self.line("mov  r4, r2");
        self.line("add  r4, r1");
        self.line("st   r5, [r4]");
        self.line("inc  r1");
        self.line(&format!("li   r0, {n}"));
        self.line("cmp  r1, r0");
        self.line(&format!("blt  {looplab}"));
    }

    /// Stores the immediate `value` to element `index` of buffer `dst`
    /// (scratch: `r0`, `r3`).
    pub fn store_const(&mut self, dst: usize, index: u16, value: u16) {
        self.load_buffer_base("r0", "r3", dst);
        if index > 0 {
            self.line(&format!("li   r3, {index}"));
            self.line("add  r0, r3");
        }
        self.line(&format!("li   r3, {value}"));
        self.line("st   r3, [r0]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_isa::asm::assemble;

    fn opts(instrumented: bool) -> KernelOptions {
        KernelOptions::for_design(instrumented)
    }

    #[test]
    fn fresh_labels_are_unique() {
        let mut b = AsmBuilder::new(opts(true));
        let a = b.fresh("x");
        let c = b.fresh("x");
        assert_ne!(a, c);
    }

    #[test]
    fn sections_allocate_indices_in_order() {
        let mut b = AsmBuilder::new(opts(true));
        assert_eq!(b.section_enter(), 0);
        b.section_leave(0);
        assert_eq!(b.section_enter(), 1);
        assert_eq!(b.sync_points(), 2);
    }

    #[test]
    fn uninstrumented_builder_emits_no_sync_ops() {
        let mut b = AsmBuilder::new(opts(false));
        b.prologue();
        b.window_scan(0, 1, 2, 16, false);
        b.epilogue();
        let src = b.into_source();
        assert!(!src.contains("sinc"));
        assert!(!src.contains("sdec"));
        assemble(&src).expect("valid assembly");
    }

    #[test]
    fn instrumented_scan_assembles_with_sync() {
        let mut b = AsmBuilder::new(opts(true));
        b.prologue();
        b.window_scan(0, 1, 2, 16, true);
        b.epilogue();
        let src = b.into_source();
        assert!(src.contains("sinc #0"));
        assert!(src.contains("sdec #0"));
        assemble(&src).expect("valid assembly");
    }

    #[test]
    fn branchless_scan_needs_no_sync_points() {
        let mut b = AsmBuilder::new(opts(true));
        b.prologue();
        b.window_scan_branchless(0, 1, 2, 16, false);
        b.epilogue();
        assert_eq!(b.sync_points(), 0, "no data-dependent control flow");
        let src = b.into_source();
        assert!(!src.contains("sinc"));
        assemble(&src).expect("valid assembly");
    }

    #[test]
    fn elementwise_assembles() {
        let mut b = AsmBuilder::new(opts(true));
        b.prologue();
        b.elementwise2(0, 1, 2, 16, "sub", |b| b.line("sub  r5, r3"));
        b.epilogue();
        assemble(&b.into_source()).expect("valid assembly");
    }

    #[test]
    fn both_layouts_generate_valid_base_loads() {
        for layout in [BufferLayout::Packed, BufferLayout::PrivateBank] {
            let mut b = AsmBuilder::new(KernelOptions {
                instrumented: false,
                granularity: SyncGranularity::PerSample,
                layout,
            });
            b.load_buffer_base("r7", "r0", 3);
            b.line("halt");
            assemble(&b.into_source()).expect("valid assembly");
        }
    }
}

//! The SQRT32 benchmark kernel: multi-lead combination by 32-bit integer
//! square root.
//!
//! Per sample, the kernel squares the core's own lead and its paired lead
//! (16x16 -> 32-bit via `MUL`/`MULH`), sums them with carry
//! (`ADD`/`ADC`) and extracts the floor square root with the
//! digit-by-digit algorithm of Rolfe (1987) — 16 rounds, each ending in
//! the data-dependent *conditional subtraction* that breaks lockstep on
//! the baseline design.
//!
//! Buffer indices: `buf0` = own lead, `buf1` = paired lead, `buf2` =
//! output magnitudes; the per-core sample index lives in the scalar spill
//! area.

use crate::builder::{AsmBuilder, KernelOptions, SyncGranularity};

/// Parameters of the generated SQRT32 kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sqrt32Params {
    /// Samples per channel.
    pub n: u16,
}

/// Generates the SQRT32 kernel source (leads in buf0/buf1, magnitudes to
/// buf2).
pub fn sqrt32_source(p: &Sqrt32Params, options: &KernelOptions) -> String {
    let n = p.n;
    let per_sample = options.granularity == SyncGranularity::PerSample;
    let mut b = AsmBuilder::new(*options);
    b.prologue();
    b.comment("i = 0");
    b.load_vars_base("r3", "r0");
    b.line("clr  r0");
    b.line("st   r0, [r3]");

    b.label("sample");
    b.comment("r1 = i");
    b.load_vars_base("r3", "r0");
    b.line("ld   r1, [r3]");
    b.comment("r4 = a[i] (own lead)");
    b.load_buffer_base("r5", "r0", 0);
    b.line("add  r5, r1");
    b.line("ld   r4, [r5]");
    b.comment("r5 = b[i] (paired lead)");
    b.load_buffer_base("r5", "r0", 1);
    b.line("add  r5, r1");
    b.line("ld   r5, [r5]");
    b.comment("x = a*a + b*b (32-bit in r2:r1)");
    b.line("mov  r1, r4");
    b.line("mul  r1, r4"); // lo(a^2)
    b.line("mov  r2, r4");
    b.line("mulh r2, r4"); // hi(a^2)
    b.line("mov  r3, r5");
    b.line("mul  r3, r5"); // lo(b^2)
    b.line("mov  r4, r5");
    b.line("mulh r4, r5"); // hi(b^2)
    b.line("add  r1, r3");
    b.line("adc  r2, r4");
    b.comment("rem (r4:r3) = 0, root (r5) = 0, 16 rounds in r6");
    let sample_sp = if per_sample {
        Some(b.section_enter())
    } else {
        None
    };
    b.line("clr  r3");
    b.line("clr  r4");
    b.line("clr  r5");
    b.line("movi r6, #16");

    b.label("round");
    b.comment("rem = (rem << 2) | top two bits of x; x <<= 2");
    b.line("shl  r4, #2");
    b.line("mov  r0, r3");
    b.line("shr  r0, #14");
    b.line("or   r4, r0");
    b.line("shl  r3, #2");
    b.line("mov  r0, r2");
    b.line("shr  r0, #14");
    b.line("or   r3, r0");
    b.line("shl  r2, #2");
    b.line("mov  r0, r1");
    b.line("shr  r0, #14");
    b.line("or   r2, r0");
    b.line("shl  r1, #2");
    b.comment("trial (r7:r0) = (root << 2) | 1; root <<= 1");
    b.line("mov  r7, r5");
    b.line("shr  r7, #14");
    b.line("mov  r0, r5");
    b.line("shl  r0, #2");
    b.line("addi r0, #1");
    b.line("shl  r5, #1");
    b.comment("if rem >= trial { rem -= trial; root |= 1 }");
    let round_sp = if per_sample {
        None
    } else {
        Some(b.section_enter())
    };
    b.line("cmp  r4, r7");
    b.line("bult skip");
    b.line("bne  dosub");
    b.line("cmp  r3, r0");
    b.line("bult skip");
    b.label("dosub");
    b.line("sub  r3, r0");
    b.line("sbc  r4, r7");
    b.line("addi r5, #1");
    b.label("skip");
    if let Some(sp) = round_sp {
        b.section_leave(sp);
    }
    b.line("addi r6, #-1");
    b.line("bne  round");
    if let Some(sp) = sample_sp {
        b.section_leave(sp);
    }

    b.comment("store root, advance i");
    b.load_buffer_base("r0", "r7", 2);
    b.load_vars_base("r7", "r2");
    b.line("ld   r1, [r7]"); // i
    b.line("add  r0, r1");
    b.line("st   r5, [r0]");
    b.line("inc  r1");
    b.line("st   r1, [r7]");
    b.line(&format!("li   r0, {n}"));
    b.line("cmp  r1, r0");
    b.line("blt  sample");
    b.epilogue();
    b.into_source()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{buffer_base, BufferLayout};
    use ulp_biosignal::combine_two_leads;
    use ulp_cpu::SimpleHost;
    use ulp_isa::asm::assemble;

    #[test]
    fn assembles_both_variants() {
        for instrumented in [false, true] {
            let src = sqrt32_source(
                &Sqrt32Params { n: 32 },
                &KernelOptions::for_design(instrumented),
            );
            assemble(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
            assert_eq!(src.contains("sinc"), instrumented);
        }
    }

    fn run_single_core(layout: BufferLayout, a: &[i16], b: &[i16]) -> Vec<u16> {
        let p = Sqrt32Params { n: a.len() as u16 };
        let options = KernelOptions {
            layout,
            ..KernelOptions::for_design(true)
        };
        let src = sqrt32_source(&p, &options);
        let prog = assemble(&src).unwrap();
        let mut host = SimpleHost::new(&prog.to_vec(0, prog.extent()));
        let a_base = buffer_base(layout, 0, 0);
        let b_base = buffer_base(layout, 0, 1);
        for i in 0..a.len() {
            host.set_dm(a_base + i as u16, a[i] as u16);
            host.set_dm(b_base + i as u16, b[i] as u16);
        }
        host.run(10_000_000).unwrap();
        let out_base = buffer_base(layout, 0, 2);
        (0..p.n).map(|i| host.dm(out_base + i)).collect()
    }

    #[test]
    fn single_core_matches_golden_in_both_layouts() {
        let a: Vec<i16> = (0..48i64)
            .map(|i| ((i * 131) % 4095 - 2047) as i16)
            .collect();
        let b: Vec<i16> = (0..48i64)
            .map(|i| ((i * 37 + 1000) % 4095 - 2047) as i16)
            .collect();
        let golden = combine_two_leads(&a, &b);
        for layout in [BufferLayout::Packed, BufferLayout::PrivateBank] {
            assert_eq!(run_single_core(layout, &a, &b), golden, "{layout:?}");
        }
    }

    #[test]
    fn extreme_values_are_exact() {
        let a = [2047i16, -2047, 0, 1];
        let b = [2047i16, 2047, 0, -1];
        let golden = combine_two_leads(&a, &b);
        let out = run_single_core(BufferLayout::Packed, &a, &b);
        assert_eq!(out, golden);
        assert_eq!(out[0], 2894);
    }
}

//! The metrics registry: counters, gauges and bounded histograms.
//!
//! Publishers register a metric once and hold a cheap handle
//! ([`Counter`], [`Gauge`], [`Histogram`]); the hot path is then a single
//! relaxed atomic op with no string lookup and no lock. Handles from a
//! disabled registry are no-ops (their `Option` is `None`), so the same
//! instrumentation code runs everywhere and costs one branch when
//! telemetry is off.
//!
//! Histograms are bounded by construction: power-of-two buckets
//! (`< 1`, `< 2`, `< 4`, … `< 2^62`, overflow), so a histogram is 64
//! atomics regardless of how many samples it absorbs — recording never
//! allocates and the registry's memory is fixed at registration time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: value `v` lands in bucket
/// `64 - v.leading_zeros()` clamped to the last bucket, i.e. bucket `i`
/// counts samples in `[2^(i-1), 2^i)` (bucket 0 is `v == 0`).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter handle. Cloning shares the
/// underlying cell; a handle from a disabled registry is a no-op.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that ignores every increment (disabled telemetry).
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A gauge handle: a value that can move both ways (queue depth,
/// in-flight jobs). No-op when built from a disabled registry.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A handle that ignores every update (disabled telemetry).
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A bounded log2-bucket histogram handle. Recording is two relaxed
/// atomic adds; memory is fixed at 64 buckets however many samples are
/// observed. No-op when built from a disabled registry.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCells>>);

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// A handle that ignores every observation (disabled telemetry).
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(cells) = &self.0 {
            cells.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            cells.count.fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of all samples (saturating only at `u64::MAX` wraparound,
    /// which a bounded run never reaches).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// An upper bound on the `q`-quantile (`0.0..=1.0`): the exclusive
    /// upper edge of the bucket holding the `ceil(q * count)`-th sample.
    /// Returns 0 for an empty histogram. The bound is within 2× of the
    /// true value by construction of the power-of-two buckets.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let Some(cells) = &self.0 else { return 0 };
        let count = cells.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in cells.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i covers [2^(i-1), 2^i); bucket 0 is exactly 0.
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        u64::MAX
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics. Registration takes a lock; recording
/// through the returned handles never does.
///
/// Registering the same name twice returns a handle to the *same*
/// underlying metric, so independent subsystems can safely share a name.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or re-opens) a counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Some(Arc::new(AtomicU64::new(0))))))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Registers (or re-opens) a gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Some(Arc::new(AtomicI64::new(0))))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Registers (or re-opens) a histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(Histogram(Some(Arc::new(HistogramCells {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }))))
        }) {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// One JSON object with every registered metric, sorted by name.
    /// Counters and gauges export their value; histograms export
    /// `{"count":N,"sum":S,"p50":…,"p95":…,"max":…}` (quantiles are
    /// bucket upper bounds).
    pub fn snapshot_json(&self) -> String {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut out = String::from("{");
        for (i, (name, metric)) in metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("\"{name}\":{}", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("\"{name}\":{}", g.get()));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        "\"{name}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"max\":{}}}",
                        h.count(),
                        h.sum(),
                        h.quantile_upper_bound(0.50),
                        h.quantile_upper_bound(0.95),
                        h.quantile_upper_bound(1.0),
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handles_cost_nothing_and_read_zero() {
        let c = Counter::noop();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 0);
        let h = Histogram::noop();
        h.observe(100);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn registry_shares_handles_by_name() {
        let reg = Registry::new();
        let a = reg.counter("jobs");
        let b = reg.counter("jobs");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.add(5);
        g.add(-3);
        assert_eq!(g.get(), 2);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("latency");
        // 0 lands in bucket 0; quantile bound for an all-zero histogram
        // is 0.
        h.observe(0);
        assert_eq!(h.quantile_upper_bound(1.0), 0);
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        // p50 of {0,1,2,3,100,1000}: rank 3 → sample 2 → bucket [2,4) →
        // bound 4.
        assert_eq!(h.quantile_upper_bound(0.5), 4);
        // max: 1000 lands in [512,2048)? No — [512,1024): bound 1024.
        assert_eq!(h.quantile_upper_bound(1.0), 1024);
        // Quantile bound is always >= the true quantile and within 2x.
        assert!(h.quantile_upper_bound(0.95) >= 1000);
    }

    #[test]
    fn snapshot_json_is_valid_shape() {
        let reg = Registry::new();
        reg.counter("a").add(7);
        reg.gauge("b").set(-1);
        let h = reg.histogram("c");
        h.observe(3);
        let json = reg.snapshot_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a\":7"));
        assert!(json.contains("\"b\":-1"));
        assert!(json.contains("\"c\":{\"count\":1,\"sum\":3,"));
        // Sorted by name: a before b before c.
        let (pa, pb) = (json.find("\"a\"").unwrap(), json.find("\"b\"").unwrap());
        assert!(pa < pb);
    }

    #[test]
    fn bucket_of_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }
}

//! Chrome trace-event JSON export.
//!
//! [`chrome_trace`] turns a collected event stream into the Trace Event
//! Format that `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! load directly: one *thread track* per telemetry track (track 0 is the
//! submitting client, track `i + 1` is worker `i`), named with `"M"`
//! metadata events; complete `"X"` spans for the phases that have a
//! well-defined start and end (`queued` from [`EventKind::Queued`] to
//! [`EventKind::Claimed`], `platform-build`/`platform-cache-hit` from
//! claim to platform readiness, `run` from [`EventKind::RunStart`] to
//! [`EventKind::RunEnd`]); and `"i"` instant events for point incidents
//! (submission, steals, evictions, rejections, merge and stream).
//!
//! Spans are drawn on the track of the event that *closes* them, so a
//! queued span appears on the claiming worker's row and the viewer shows
//! exactly which worker picked each job up. Timestamps are microseconds
//! (fractional, nanosecond precision) on the sink's shared epoch.

use crate::event::{EventKind, JobEvent, CLIENT_TRACK, NO_JOB};
use std::collections::BTreeMap;

fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

fn priority_name(p: u8) -> &'static str {
    match p {
        0 => "high",
        1 => "normal",
        _ => "low",
    }
}

fn tier_name(t: u8) -> &'static str {
    if t == 1 {
        "compiled"
    } else {
        "interpreted"
    }
}

fn args_json(e: &JobEvent) -> String {
    if e.job == NO_JOB {
        format!(
            "{{\"tenant\":{},\"priority\":\"{}\"}}",
            e.tenant,
            priority_name(e.priority)
        )
    } else {
        format!(
            "{{\"job\":{},\"tenant\":{},\"priority\":\"{}\",\"tier\":\"{}\"}}",
            e.job,
            e.tenant,
            priority_name(e.priority),
            tier_name(e.exec_tier)
        )
    }
}

fn complete_event(name: &str, tid: u32, start_ns: u64, end_ns: u64, args: &str) -> String {
    format!(
        "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid},\"args\":{args}}}",
        us(start_ns),
        us(end_ns.saturating_sub(start_ns)),
    )
}

fn instant_event(e: &JobEvent) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
        e.kind.name(),
        us(e.at_ns),
        e.track,
        args_json(e)
    )
}

/// The human-readable name of a track: the client row or a worker row.
pub fn track_name(track: u32) -> String {
    if track == CLIENT_TRACK {
        "client".to_string()
    } else {
        format!("worker {}", track - 1)
    }
}

/// Renders `events` as a Chrome trace-event JSON document covering
/// `tracks` thread tracks (pass the sink's track count so idle workers
/// still get a named row). `dropped` is surfaced in `otherData` so a
/// truncated trace is visibly truncated.
pub fn chrome_trace(events: &[JobEvent], tracks: u32, dropped: u64) -> String {
    let mut out: Vec<String> = Vec::new();
    // Process + track naming metadata first.
    out.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"ulp-service\"}}"
            .to_string(),
    );
    let highest = events
        .iter()
        .map(|e| e.track)
        .max()
        .map_or(0, |m| m + 1)
        .max(tracks);
    for track in 0..highest {
        out.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{track},\"args\":{{\"name\":\"{}\"}}}}",
            track_name(track)
        ));
        // sort_index keeps the client row on top and workers in order.
        out.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{track},\"args\":{{\"sort_index\":{track}}}}}"
        ));
    }

    // Group per job, keeping the recorded order within a job (events are
    // collected in ring order; sort by timestamp to be safe across
    // tracks).
    let mut by_job: BTreeMap<u64, Vec<&JobEvent>> = BTreeMap::new();
    for e in events {
        if e.job != NO_JOB {
            by_job.entry(e.job).or_default().push(e);
        } else {
            // Admission rejections have no job id: plain instants.
            out.push(instant_event(e));
        }
    }

    for job_events in by_job.values_mut() {
        job_events.sort_by_key(|e| (e.at_ns, e.kind));
        let mut queued_at: Option<u64> = None;
        let mut claimed_at: Option<u64> = None;
        let mut run_started: Option<u64> = None;
        for e in job_events.iter() {
            match e.kind {
                EventKind::Queued => queued_at = Some(e.at_ns),
                EventKind::Claimed => {
                    if let Some(start) = queued_at.take() {
                        out.push(complete_event(
                            "queued",
                            e.track,
                            start,
                            e.at_ns,
                            &args_json(e),
                        ));
                    }
                    claimed_at = Some(e.at_ns);
                }
                EventKind::PlatformBuilt | EventKind::PlatformCacheHit => {
                    if let Some(start) = claimed_at.take() {
                        out.push(complete_event(
                            e.kind.name(),
                            e.track,
                            start,
                            e.at_ns,
                            &args_json(e),
                        ));
                    }
                }
                EventKind::RunStart => run_started = Some(e.at_ns),
                EventKind::RunEnd => {
                    if let Some(start) = run_started.take() {
                        out.push(complete_event(
                            "run",
                            e.track,
                            start,
                            e.at_ns,
                            &args_json(e),
                        ));
                    }
                }
                EventKind::Evicted => {
                    // An evicted job's queued span ends at the eviction
                    // decision, on the evicting worker's row.
                    if let Some(start) = queued_at.take() {
                        out.push(complete_event(
                            "queued",
                            e.track,
                            start,
                            e.at_ns,
                            &args_json(e),
                        ));
                    }
                    out.push(instant_event(e));
                }
                EventKind::Submitted
                | EventKind::Stolen
                | EventKind::Merged
                | EventKind::Streamed
                | EventKind::QuotaRejected
                | EventKind::CapacityRejected
                | EventKind::Snapshot
                | EventKind::Restored
                | EventKind::Migrated => out.push(instant_event(e)),
            }
        }
        // A job cut off mid-phase (collection raced completion) still
        // shows its open span as an instant rather than vanishing.
        for (open, name) in [(queued_at, "queued"), (run_started, "run")] {
            if let Some(start) = open {
                let last = job_events.last().expect("non-empty");
                let probe = JobEvent {
                    at_ns: start,
                    ..**last
                };
                out.push(format!(
                    "{{\"name\":\"{name}-open\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
                    us(start),
                    probe.track,
                    args_json(&probe)
                ));
            }
        }
    }

    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":{dropped}}}}}",
        out.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::worker_track;

    fn ev(kind: EventKind, at_ns: u64, job: u64, track: u32) -> JobEvent {
        JobEvent {
            at_ns,
            kind,
            job,
            tenant: 3,
            priority: 1,
            exec_tier: 0,
            track,
        }
    }

    #[test]
    fn full_lifecycle_emits_three_spans_on_worker_track() {
        let w = worker_track(0);
        let events = vec![
            ev(EventKind::Submitted, 0, 7, CLIENT_TRACK),
            ev(EventKind::Queued, 10, 7, CLIENT_TRACK),
            ev(EventKind::Claimed, 100, 7, w),
            ev(EventKind::PlatformBuilt, 200, 7, w),
            ev(EventKind::RunStart, 210, 7, w),
            ev(EventKind::RunEnd, 1210, 7, w),
            ev(EventKind::Merged, 1500, 7, CLIENT_TRACK),
        ];
        let json = chrome_trace(&events, 2, 0);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"queued\",\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"platform-build\",\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"run\",\"ph\":\"X\""));
        // The run span: 210ns..1210ns → ts 0.210us dur 1.000us.
        assert!(json.contains("\"ts\":0.210,\"dur\":1.000"));
        // Named tracks for client and the worker.
        assert!(json.contains("\"name\":\"client\""));
        assert!(json.contains("\"name\":\"worker 0\""));
        // Instants for submit and merge on the client row.
        assert!(json.contains("\"name\":\"submitted\",\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"merged\",\"ph\":\"i\""));
        assert!(json.contains("\"dropped_events\":0"));
    }

    #[test]
    fn eviction_closes_the_queued_span() {
        let w = worker_track(1);
        let events = vec![
            ev(EventKind::Queued, 0, 1, CLIENT_TRACK),
            ev(EventKind::Evicted, 500, 1, w),
        ];
        let json = chrome_trace(&events, 3, 0);
        assert!(json.contains("\"name\":\"queued\",\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"evicted\",\"ph\":\"i\""));
        // The span lands on the evicting worker's track (tid 2).
        assert!(json.contains("\"tid\":2"));
    }

    #[test]
    fn idle_workers_still_get_named_tracks() {
        let json = chrome_trace(&[], 4, 0);
        for t in 0..4 {
            assert!(json.contains(&format!(
                "\"tid\":{t},\"args\":{{\"name\":\"{}\"}}",
                track_name(t)
            )));
        }
    }

    #[test]
    fn rejections_without_job_ids_are_instants() {
        let e = JobEvent {
            at_ns: 5,
            kind: EventKind::QuotaRejected,
            job: NO_JOB,
            tenant: 9,
            priority: 0,
            exec_tier: 0,
            track: CLIENT_TRACK,
        };
        let json = chrome_trace(&[e], 1, 2);
        assert!(json.contains("\"name\":\"quota-rejected\",\"ph\":\"i\""));
        assert!(json.contains("\"tenant\":9"));
        assert!(!json.contains("\"job\":"));
        assert!(json.contains("\"dropped_events\":2"));
    }

    #[test]
    fn open_spans_surface_as_instants() {
        let events = vec![ev(EventKind::Queued, 10, 3, CLIENT_TRACK)];
        let json = chrome_trace(&events, 1, 0);
        assert!(json.contains("\"name\":\"queued-open\""));
    }
}

//! End-to-end telemetry for the simulation service stack.
//!
//! This crate gives the service, shard and sweep layers a shared
//! observability spine with three pieces:
//!
//! - **Job-lifecycle tracing** ([`event`], [`ring`]): every phase of a
//!   job (submitted → queued → claimed → platform build or cache hit →
//!   run → merged/streamed, plus steals, evictions and admission
//!   rejections) is a typed, `Copy` [`JobEvent`] pushed onto a bounded
//!   lock-free per-track ring. Workers never block and never allocate to
//!   record; a full ring drops and counts instead.
//! - **A metrics registry** ([`metrics`]): named counters, gauges and
//!   bounded log2-bucket histograms behind cheap atomic handles that
//!   degrade to no-ops when telemetry is disabled.
//! - **Exporters** ([`trace`], [`Telemetry::snapshot_json`]): Chrome
//!   trace-event JSON loadable in Perfetto (one named track per worker
//!   plus a client track), and a compact one-line JSON snapshot suitable
//!   for interleaving into streaming output.
//!
//! The entry point is [`Telemetry`]: a cheap cloneable handle that is
//! either *disabled* (every operation is a branch on a `None` and
//! nothing else — the hot path cost the issue budget allows is "within
//! 5% of baseline", and a skipped branch is far under it) or *enabled*
//! around a shared [`Sink`].
//!
//! ```
//! use ulp_telemetry::{EventKind, Telemetry, CLIENT_TRACK};
//!
//! let telemetry = Telemetry::enabled();
//! let track = telemetry.track(CLIENT_TRACK);
//! track.record(EventKind::Submitted, 1, 0, 1, 0);
//! track.record(EventKind::Queued, 1, 0, 1, 0);
//! telemetry.counter("jobs_submitted").inc();
//! assert_eq!(telemetry.collect(), 2);
//! let json = telemetry.chrome_trace();
//! assert!(json.contains("\"submitted\""));
//! ```

pub mod event;
pub mod metrics;
pub mod ring;
pub mod trace;

pub use event::{worker_track, EventKind, JobEvent, CLIENT_TRACK, NO_JOB};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use ring::EventRing;
pub use trace::{chrome_trace, track_name};

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-track ring capacity (events). At seven events per job a
/// track absorbs ~9k jobs between collections before dropping.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// The shared state behind an enabled [`Telemetry`] handle: the common
/// clock epoch, the per-track rings, the collected-event store and the
/// metrics registry.
pub struct Sink {
    epoch: Instant,
    ring_capacity: usize,
    tracks: Mutex<Vec<Arc<EventRing>>>,
    /// Highest track index ever opened + 1, readable without the lock.
    track_count: AtomicU32,
    collected: Mutex<Vec<JobEvent>>,
    registry: Registry,
}

impl Sink {
    fn new(ring_capacity: usize) -> Sink {
        Sink {
            epoch: Instant::now(),
            ring_capacity,
            tracks: Mutex::new(Vec::new()),
            track_count: AtomicU32::new(0),
            collected: Mutex::new(Vec::new()),
            registry: Registry::new(),
        }
    }

    fn ring(&self, track: u32) -> Arc<EventRing> {
        let mut tracks = self.tracks.lock().expect("telemetry tracks poisoned");
        while tracks.len() <= track as usize {
            tracks.push(Arc::new(EventRing::with_capacity(self.ring_capacity)));
        }
        self.track_count.fetch_max(track + 1, Ordering::Relaxed);
        Arc::clone(&tracks[track as usize])
    }
}

/// A per-thread recording handle bound to one track's ring. Obtained
/// once (e.g. at the top of a worker loop) so the per-event cost is a
/// timestamp read and a ring push — no locks, no lookups.
#[derive(Clone)]
pub struct Track {
    inner: Option<TrackInner>,
}

#[derive(Clone)]
struct TrackInner {
    ring: Arc<EventRing>,
    epoch: Instant,
    track: u32,
}

impl Track {
    /// A handle that records nothing (disabled telemetry).
    pub fn noop() -> Track {
        Track { inner: None }
    }

    /// Whether records through this handle are stored.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one lifecycle event stamped now. A no-op (single branch)
    /// when telemetry is disabled; drop-and-count when the ring is full.
    #[inline]
    pub fn record(&self, kind: EventKind, job: u64, tenant: u32, priority: u8, exec_tier: u8) {
        if let Some(inner) = &self.inner {
            inner.ring.push(JobEvent {
                at_ns: inner.epoch.elapsed().as_nanos() as u64,
                kind,
                job,
                tenant,
                priority,
                exec_tier,
                track: inner.track,
            });
        }
    }
}

/// The telemetry handle threaded through service, shard and sweep
/// configuration. Cloning shares the sink; [`Telemetry::disabled`]
/// handles make every recording call a no-op.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<Sink>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl std::fmt::Debug for Track {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Track")
            .field("enabled", &self.is_enabled())
            .field("track", &self.inner.as_ref().map(|i| i.track))
            .finish()
    }
}

impl Telemetry {
    /// A handle that records nothing; all hooks reduce to one branch.
    pub fn disabled() -> Telemetry {
        Telemetry { sink: None }
    }

    /// An enabled handle with the default per-track ring capacity.
    pub fn enabled() -> Telemetry {
        Telemetry::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled handle whose per-track rings hold `ring_capacity`
    /// events (rounded up to a power of two).
    pub fn with_capacity(ring_capacity: usize) -> Telemetry {
        Telemetry {
            sink: Some(Arc::new(Sink::new(ring_capacity))),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Nanoseconds since the sink's epoch (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.sink
            .as_ref()
            .map_or(0, |s| s.epoch.elapsed().as_nanos() as u64)
    }

    /// Opens (creating if needed) the recording handle for `track`.
    /// Workers call this once with [`worker_track`]`(index)`; the
    /// client side uses [`CLIENT_TRACK`].
    pub fn track(&self, track: u32) -> Track {
        match &self.sink {
            None => Track::noop(),
            Some(sink) => Track {
                inner: Some(TrackInner {
                    ring: sink.ring(track),
                    epoch: sink.epoch,
                    track,
                }),
            },
        }
    }

    /// Number of tracks opened so far.
    pub fn track_count(&self) -> u32 {
        self.sink
            .as_ref()
            .map_or(0, |s| s.track_count.load(Ordering::Relaxed))
    }

    /// Drains every track's ring into the collected store, returning how
    /// many events were moved. Call this periodically from the client
    /// thread on long runs so rings never fill.
    pub fn collect(&self) -> usize {
        let Some(sink) = &self.sink else { return 0 };
        let rings: Vec<Arc<EventRing>> = sink
            .tracks
            .lock()
            .expect("telemetry tracks poisoned")
            .clone();
        let mut collected = sink.collected.lock().expect("telemetry events poisoned");
        let mut moved = 0;
        for ring in rings {
            moved += ring.drain_into(&mut collected);
        }
        moved
    }

    /// All events collected so far (collects pending ring contents
    /// first). Empty when disabled.
    pub fn events(&self) -> Vec<JobEvent> {
        self.collect();
        self.sink.as_ref().map_or_else(Vec::new, |s| {
            s.collected
                .lock()
                .expect("telemetry events poisoned")
                .clone()
        })
    }

    /// Total events discarded across all rings because a ring was full.
    pub fn dropped(&self) -> u64 {
        let Some(sink) = &self.sink else { return 0 };
        sink.tracks
            .lock()
            .expect("telemetry tracks poisoned")
            .iter()
            .map(|r| r.dropped())
            .sum()
    }

    /// Registers (or re-opens) a counter; no-op handle when disabled.
    pub fn counter(&self, name: &str) -> Counter {
        self.sink
            .as_ref()
            .map_or_else(Counter::noop, |s| s.registry.counter(name))
    }

    /// Registers (or re-opens) a gauge; no-op handle when disabled.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.sink
            .as_ref()
            .map_or_else(Gauge::noop, |s| s.registry.gauge(name))
    }

    /// Registers (or re-opens) a histogram; no-op handle when disabled.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.sink
            .as_ref()
            .map_or_else(Histogram::noop, |s| s.registry.histogram(name))
    }

    /// Renders everything collected (after a final drain) as a Chrome
    /// trace-event JSON document. `"{}"`-shaped empty trace when
    /// disabled.
    pub fn chrome_trace(&self) -> String {
        self.collect();
        match &self.sink {
            None => chrome_trace(&[], 0, 0),
            Some(sink) => {
                let events = sink
                    .collected
                    .lock()
                    .expect("telemetry events poisoned")
                    .clone();
                chrome_trace(&events, self.track_count(), self.dropped())
            }
        }
    }

    /// One compact JSON object for live streaming: uptime, event
    /// accounting and the full metrics registry. `{}` when disabled.
    pub fn snapshot_json(&self) -> String {
        let Some(sink) = &self.sink else {
            return "{}".to_string();
        };
        self.collect();
        let events = sink
            .collected
            .lock()
            .expect("telemetry events poisoned")
            .len();
        format!(
            "{{\"uptime_ns\":{},\"events_collected\":{},\"events_dropped\":{},\"tracks\":{},\"metrics\":{}}}",
            self.now_ns(),
            events,
            self.dropped(),
            self.track_count(),
            sink.registry.snapshot_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let track = t.track(CLIENT_TRACK);
        assert!(!track.is_enabled());
        track.record(EventKind::Submitted, 1, 0, 0, 0);
        assert_eq!(t.collect(), 0);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.now_ns(), 0);
        assert_eq!(t.snapshot_json(), "{}");
        t.counter("x").inc();
        assert_eq!(t.counter("x").get(), 0);
    }

    #[test]
    fn events_flow_from_tracks_to_collection() {
        let t = Telemetry::enabled();
        let client = t.track(CLIENT_TRACK);
        let worker = t.track(worker_track(0));
        client.record(EventKind::Submitted, 42, 7, 1, 0);
        client.record(EventKind::Queued, 42, 7, 1, 0);
        worker.record(EventKind::Claimed, 42, 7, 1, 1);
        assert_eq!(t.collect(), 3);
        let events = t.events();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.job == 42 && e.tenant == 7));
        let claimed = events
            .iter()
            .find(|e| e.kind == EventKind::Claimed)
            .expect("claimed recorded");
        assert_eq!(claimed.track, worker_track(0));
        assert_eq!(claimed.exec_tier, 1);
        assert_eq!(t.track_count(), 2);
    }

    #[test]
    fn timestamps_are_monotone_per_track() {
        let t = Telemetry::enabled();
        let track = t.track(CLIENT_TRACK);
        for i in 0..100 {
            track.record(EventKind::Queued, i, 0, 1, 0);
        }
        let events = t.events();
        for pair in events.windows(2) {
            assert!(pair[0].at_ns <= pair[1].at_ns);
        }
    }

    #[test]
    fn clones_share_the_sink() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        t.track(CLIENT_TRACK)
            .record(EventKind::Submitted, 1, 0, 0, 0);
        t2.counter("shared").add(5);
        assert_eq!(t2.events().len(), 1);
        assert_eq!(t.counter("shared").get(), 5);
    }

    #[test]
    fn snapshot_json_shape() {
        let t = Telemetry::enabled();
        t.counter("jobs").add(3);
        t.track(CLIENT_TRACK)
            .record(EventKind::Submitted, 1, 0, 0, 0);
        let snap = t.snapshot_json();
        assert!(snap.starts_with("{\"uptime_ns\":"));
        assert!(snap.contains("\"events_collected\":1"));
        assert!(snap.contains("\"events_dropped\":0"));
        assert!(snap.contains("\"metrics\":{\"jobs\":3}"));
    }

    #[test]
    fn chrome_trace_of_disabled_is_still_valid_shape() {
        let t = Telemetry::disabled();
        let json = t.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn overflow_surfaces_in_dropped_and_snapshot() {
        let t = Telemetry::with_capacity(4);
        let track = t.track(CLIENT_TRACK);
        for i in 0..10 {
            track.record(EventKind::Queued, i, 0, 1, 0);
        }
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.events().len(), 4);
        assert!(t.snapshot_json().contains("\"events_dropped\":6"));
    }
}

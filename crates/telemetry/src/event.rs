//! The typed job-lifecycle event model.
//!
//! Every phase transition of a service job is one fixed-size [`JobEvent`]:
//! a nanosecond timestamp on the sink's shared epoch, the lifecycle
//! [`EventKind`], the job id, and the scheduling tags (tenant, priority,
//! execution tier, track). Events are plain `Copy` data — no strings, no
//! allocation — so recording one is a few stores into a pre-allocated
//! ring slot and the hot path never touches the heap.

/// The track a client-side event is recorded on (submission, merge and
/// stream events happen on the thread that owns the service handle, not
/// on any worker). Worker `i` records on track `i + 1`.
pub const CLIENT_TRACK: u32 = 0;

/// The track index worker `i` records on: `i + 1` (track
/// [`CLIENT_TRACK`] belongs to the submitting client).
pub fn worker_track(worker: usize) -> u32 {
    worker as u32 + 1
}

/// The job id carried by events that fire before a job id exists — a
/// quota or capacity rejection happens at admission, so there is no
/// assigned id to tag.
pub const NO_JOB: u64 = u64::MAX;

/// One lifecycle phase transition or scheduling incident.
///
/// The happy path of a job is the ordered chain `Submitted` → `Queued` →
/// `Claimed` → (`PlatformBuilt` | `PlatformCacheHit`) → `RunStart` →
/// `RunEnd`, optionally followed by client-side `Merged` (the job's cell
/// or recording merged) and `Streamed` (the merged result reported to a
/// consumer). `Stolen`, `Evicted`, `QuotaRejected` and
/// `CapacityRejected` are incidents: they mark scheduling decisions, not
/// phases every job passes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// The client called submit and admission succeeded.
    Submitted,
    /// The job landed on a worker deque (immediately after `Submitted`;
    /// the queued *span* ends at `Claimed`).
    Queued,
    /// A worker took the job off a deque for execution.
    Claimed,
    /// The executing worker constructed a new platform for the job.
    PlatformBuilt,
    /// The executing worker served the job from its platform cache.
    PlatformCacheHit,
    /// The simulation started.
    RunStart,
    /// The simulation finished (successfully or with a run error).
    RunEnd,
    /// The client merged this job's output into a larger result (a shard
    /// into its recording, a cell into its sweep).
    Merged,
    /// The client reported the job's (merged) result to a consumer — the
    /// streaming callback fired, or the final gather returned it.
    Streamed,
    /// The job was relocated by a work steal (it stays queued; recorded
    /// on the thief's track).
    Stolen,
    /// The scheduler evicted the job: its deadline budget provably could
    /// not be met, so it never ran.
    Evicted,
    /// Admission rejected a submission because the tenant was at its
    /// quota. Carries [`NO_JOB`]: no job id was ever assigned.
    QuotaRejected,
    /// Admission rejected a submission because the bounded queue was at
    /// capacity. Carries [`NO_JOB`].
    CapacityRejected,
    /// The executing worker took a mid-run checkpoint of the job's
    /// platform (the job keeps running unless a `Migrated` event
    /// follows).
    Snapshot,
    /// A worker restored the job's platform from a checkpoint and
    /// resumed the run where an earlier worker parked it.
    Restored,
    /// The job was parked at a checkpoint and re-queued — cooperative
    /// yield to urgent work, or recovery from a killed worker. The next
    /// `Claimed`/`Restored` pair may land on a different worker.
    Migrated,
}

impl EventKind {
    /// Stable lowercase name, used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Submitted => "submitted",
            EventKind::Queued => "queued",
            EventKind::Claimed => "claimed",
            EventKind::PlatformBuilt => "platform-build",
            EventKind::PlatformCacheHit => "platform-cache-hit",
            EventKind::RunStart => "run-start",
            EventKind::RunEnd => "run-end",
            EventKind::Merged => "merged",
            EventKind::Streamed => "streamed",
            EventKind::Stolen => "stolen",
            EventKind::Evicted => "evicted",
            EventKind::QuotaRejected => "quota-rejected",
            EventKind::CapacityRejected => "capacity-rejected",
            EventKind::Snapshot => "snapshot",
            EventKind::Restored => "restored",
            EventKind::Migrated => "migrated",
        }
    }
}

/// One recorded lifecycle event. `Copy` and pointer-free by design: the
/// lock-free rings move these by value and never allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobEvent {
    /// Nanoseconds since the sink's epoch (the moment telemetry was
    /// enabled), so events from every track share one clock.
    pub at_ns: u64,
    /// Which lifecycle transition this is.
    pub kind: EventKind,
    /// The job the event belongs to ([`NO_JOB`] for admission
    /// rejections, which fire before an id is assigned).
    pub job: u64,
    /// Tenant the job was submitted as.
    pub tenant: u32,
    /// Priority class index (0 = most urgent), mirroring
    /// `ulp_service::Priority::index`.
    pub priority: u8,
    /// Execution tier: 0 = interpreted, 1 = compiled.
    pub exec_tier: u8,
    /// The track the event was recorded on: [`CLIENT_TRACK`] for
    /// client-side events, [`worker_track`]`(i)` for worker `i`.
    pub track: u32,
}

//! Bounded lock-free event rings.
//!
//! One [`EventRing`] backs each telemetry track. The hot path is the
//! producer side: a worker (or the submitting client) pushes one
//! [`JobEvent`] per lifecycle transition and must never block, never
//! allocate, and never spin unboundedly — a full ring *drops* the event
//! and counts the drop instead ([`EventRing::dropped`]), so a slow or
//! absent consumer can only ever cost observability, not throughput.
//!
//! The implementation is the classic bounded queue with per-slot
//! sequence numbers (Vyukov): each slot carries an atomic sequence that
//! encodes whether it is free for the producer or holds data for the
//! consumer, so multiple producers and consumers are safe without locks.
//! In the service each ring has exactly one producer (its worker), but
//! the client track is also pushed to by shard/sweep merge bookkeeping,
//! and paying one extra compare-exchange per event buys an API that
//! cannot be misused across threads.

use crate::event::JobEvent;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct Slot {
    /// Free for the producer when `seq == pos`; holds data for the
    /// consumer when `seq == pos + 1` (for the `pos` of the push that
    /// filled it).
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<JobEvent>>,
}

/// A bounded lock-free multi-producer multi-consumer ring of
/// [`JobEvent`]s with drop-and-count overflow semantics.
pub struct EventRing {
    slots: Box<[Slot]>,
    /// Power-of-two capacity minus one, for masking positions to slots.
    mask: usize,
    /// Next push position.
    head: AtomicUsize,
    /// Next pop position.
    tail: AtomicUsize,
    /// Events discarded because the ring was full when they were pushed.
    dropped: AtomicU64,
}

// SAFETY: slots are only accessed through the seq protocol below — a
// producer writes a slot's value only after winning the head CAS for a
// position whose slot sequence marked it free, and publishes with a
// release store the consumer acquires before reading.
unsafe impl Send for EventRing {}
unsafe impl Sync for EventRing {}

impl EventRing {
    /// A ring holding up to `capacity` events (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(capacity: usize) -> EventRing {
        let capacity = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot]> = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        EventRing {
            slots,
            mask: capacity - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The ring's slot count.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Pushes one event; on a full ring the event is discarded and the
    /// drop counter incremented — the producer never blocks or spins on
    /// a slow consumer. Returns whether the event was stored.
    pub fn push(&self, event: JobEvent) -> bool {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // The slot is free for this position: claim it.
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS for `pos` gives this
                        // thread exclusive write access to the slot until
                        // the release store below hands it to a consumer.
                        unsafe { (*slot.value.get()).write(event) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(current) => pos = current,
                }
            } else if (seq as isize).wrapping_sub(pos as isize) < 0 {
                // The slot still holds the value from one lap ago: the
                // ring is full. Drop-and-count.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                // Another producer claimed this position; advance.
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops the oldest event, or `None` when the ring is empty.
    pub fn pop(&self) -> Option<JobEvent> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let expected = pos.wrapping_add(1);
            if seq == expected {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS for `pos` gives this
                        // thread exclusive read access; the acquire load
                        // of `seq` ordered the producer's write before it.
                        let event = unsafe { (*slot.value.get()).assume_init() };
                        // Mark the slot free for the producer one lap on.
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(event);
                    }
                    Err(current) => pos = current,
                }
            } else if (seq as isize).wrapping_sub(expected as isize) < 0 {
                // The slot has not been published for this lap: empty.
                return None;
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Drains every currently-available event into `out`, returning how
    /// many were moved.
    pub fn drain_into(&self, out: &mut Vec<JobEvent>) -> usize {
        let mut n = 0;
        while let Some(event) = self.pop() {
            out.push(event);
            n += 1;
        }
        n
    }

    /// Events discarded so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, JobEvent};

    fn event(job: u64) -> JobEvent {
        JobEvent {
            at_ns: job * 10,
            kind: EventKind::Queued,
            job,
            tenant: 0,
            priority: 1,
            exec_tier: 0,
            track: 0,
        }
    }

    #[test]
    fn fifo_roundtrip() {
        let ring = EventRing::with_capacity(8);
        for i in 0..5 {
            assert!(ring.push(event(i)));
        }
        for i in 0..5 {
            assert_eq!(ring.pop().expect("event present").job, i);
        }
        assert!(ring.pop().is_none());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_drops_and_counts_instead_of_blocking() {
        let ring = EventRing::with_capacity(4);
        for i in 0..4 {
            assert!(ring.push(event(i)));
        }
        // Full: the next pushes are dropped, not queued and not blocking.
        assert!(!ring.push(event(4)));
        assert!(!ring.push(event(5)));
        assert_eq!(ring.dropped(), 2);
        // The stored prefix survives intact.
        let mut out = Vec::new();
        assert_eq!(ring.drain_into(&mut out), 4);
        assert_eq!(out.iter().map(|e| e.job).collect::<Vec<_>>(), [0, 1, 2, 3]);
        // Space freed: pushes succeed again.
        assert!(ring.push(event(6)));
        assert_eq!(ring.pop().expect("stored").job, 6);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::with_capacity(0).capacity(), 2);
        assert_eq!(EventRing::with_capacity(3).capacity(), 4);
        assert_eq!(EventRing::with_capacity(8).capacity(), 8);
        assert_eq!(EventRing::with_capacity(100).capacity(), 128);
    }

    #[test]
    fn wraparound_many_laps() {
        let ring = EventRing::with_capacity(4);
        for lap in 0..100u64 {
            for i in 0..3 {
                assert!(ring.push(event(lap * 3 + i)));
            }
            for i in 0..3 {
                assert_eq!(ring.pop().expect("event").job, lap * 3 + i);
            }
        }
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn concurrent_producers_lose_nothing_but_overflow() {
        use std::sync::Arc;
        let ring = Arc::new(EventRing::with_capacity(1024));
        let producers = 4;
        let per_thread = 10_000u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    ring.push(event(p * per_thread + i));
                }
            }));
        }
        // Concurrent consumer drains while producers push.
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                loop {
                    ring.drain_into(&mut seen);
                    if seen.len() as u64 + ring.dropped() >= producers * per_thread {
                        break;
                    }
                    std::thread::yield_now();
                }
                seen
            })
        };
        for handle in handles {
            handle.join().expect("producer");
        }
        let mut seen = consumer.join().expect("consumer");
        ring.drain_into(&mut seen);
        // Every event was either delivered exactly once or counted as
        // dropped — none were lost or duplicated.
        assert_eq!(seen.len() as u64 + ring.dropped(), producers * per_thread);
        let mut jobs: Vec<u64> = seen.iter().map(|e| e.job).collect();
        jobs.sort_unstable();
        jobs.dedup();
        assert_eq!(jobs.len(), seen.len(), "no event delivered twice");
    }
}

//! The data crossbar (D-Xbar) and its serving policies.
//!
//! A data access conflict occurs when a DM bank is accessed by more than
//! one core at different memory locations. The baseline crossbar serves the
//! conflicting cores in sequence; cores that have been served continue code
//! execution immediately, which breaks lockstep. The paper's enhancement
//! (Section IV) changes the serving policy: when the conflicting cores are
//! *synchronous* — detected by comparing their program counters — the cores
//! served early are stalled (held) until every synchronous core has been
//! served, so the group resumes in lockstep.

use crate::banked::BankedMemory;

/// The direction and payload of a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Read one word.
    Read,
    /// Write one word.
    Write(u16),
}

/// One core's data-memory request for this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmRequest {
    /// Requesting core id.
    pub core: usize,
    /// The core's current PC (used for synchrony detection).
    pub pc: u16,
    /// Word address.
    pub addr: u16,
    /// Read or write.
    pub access: Access,
}

/// How a served core proceeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmGrant {
    /// Served; the core completes its execute phase this cycle.
    Complete {
        /// Served core id.
        core: usize,
        /// Read data (`None` for writes).
        data: Option<u16>,
    },
    /// Served, but held by the enhanced policy until its synchronous group
    /// drains; the read data is latched by the core.
    Hold {
        /// Served-but-held core id.
        core: usize,
        /// Latched read data (`None` for writes).
        data: Option<u16>,
    },
}

/// The data-serving policy of the D-Xbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ServingPolicy {
    /// Serve conflicting cores in sequence; served cores continue
    /// immediately (the architecture *without* the synchronization
    /// feature).
    Baseline,
    /// The paper's enhancement: PC-synchronous cores stay together — cores
    /// served early are held until the whole synchronous group has been
    /// served.
    #[default]
    SyncAware,
}

/// Statistics of the data crossbar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DXbarStats {
    /// Data requests presented (per cycle per core).
    pub requests: u64,
    /// Requests granted (complete or hold).
    pub grants: u64,
    /// Requests stalled by bank conflicts or locks.
    pub stalls: u64,
    /// Cycles in which at least one bank had a conflict.
    pub conflict_cycles: u64,
    /// Grants that were held by the enhanced policy.
    pub holds: u64,
    /// Held cores released (lockstep restored after a conflict).
    pub releases: u64,
    /// Requests stalled because their word was locked by the synchronizer.
    pub lock_stalls: u64,
    /// Crossbar data transfers (one per grant).
    pub transfers: u64,
}

impl DXbarStats {
    /// Adds another crossbar's counters into this one (multi-run
    /// aggregates, e.g. summing shard statistics). Kept next to the
    /// fields so a new counter cannot be forgotten here.
    pub fn merge(&mut self, other: &DXbarStats) {
        self.requests += other.requests;
        self.grants += other.grants;
        self.stalls += other.stalls;
        self.conflict_cycles += other.conflict_cycles;
        self.holds += other.holds;
        self.releases += other.releases;
        self.lock_stalls += other.lock_stalls;
        self.transfers += other.transfers;
    }
}

/// Result of one arbitration cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DXbarOutcome {
    /// Grants issued this cycle (complete or hold).
    pub grants: Vec<DmGrant>,
    /// Cores released from hold this cycle (their latched instruction
    /// completes now; no new grant is issued for them).
    pub releases: Vec<usize>,
}

/// The complete mutable state of one [`DXbar`]: rotating-priority
/// pointers, the held synchronous groups, and the counters. The per-cycle
/// scratch buffers are excluded — they are rebuilt every cycle and carry no
/// history. The serving policy is configuration, not state, and belongs to
/// the platform configuration a checkpoint carries separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DXbarSnapshot {
    /// Rotating-priority pointer per bank.
    pub rr: Vec<usize>,
    /// Synchronous-group PC each core is held under (`None` = not held),
    /// indexed by core id. The length is whatever the arbiter had grown to.
    pub held_pc: Vec<Option<u16>>,
    /// Aggregate arbitration counters.
    pub stats: DXbarStats,
}

/// The data crossbar arbiter with pluggable serving policy.
#[derive(Debug, Clone)]
pub struct DXbar {
    policy: ServingPolicy,
    rr: Vec<usize>,
    /// Synchronous-group PC each core is held under (`None` = not held),
    /// indexed by core id; grown on demand.
    held_pc: Vec<Option<u16>>,
    /// Scratch: bank and lock state of each request, resolved once per
    /// cycle so the per-bank passes never recompute them.
    req_info: Vec<(usize, bool)>,
    /// Scratch: requests served this cycle with their read data.
    serve: Vec<(DmRequest, Option<u16>)>,
    /// Scratch: per-PC count of requesters left unserved this cycle.
    unserved: Vec<(u16, usize)>,
    stats: DXbarStats,
}

impl DXbar {
    /// Creates an arbiter for a memory with `banks` banks.
    pub fn new(banks: usize, policy: ServingPolicy) -> DXbar {
        DXbar {
            policy,
            rr: vec![0; banks],
            held_pc: Vec::new(),
            req_info: Vec::new(),
            serve: Vec::new(),
            unserved: Vec::new(),
            stats: DXbarStats::default(),
        }
    }

    /// The configured serving policy.
    pub fn policy(&self) -> ServingPolicy {
        self.policy
    }

    /// Statistics so far.
    pub fn stats(&self) -> &DXbarStats {
        &self.stats
    }

    /// Core ids currently held by the enhanced policy.
    pub fn held_cores(&self) -> Vec<usize> {
        self.held_pc
            .iter()
            .enumerate()
            .filter(|(_, pc)| pc.is_some())
            .map(|(core, _)| core)
            .collect()
    }

    /// Resets the rotating-priority pointers, drops all held groups and
    /// clears the statistics, so the arbiter can be reused for a fresh run.
    pub fn reset(&mut self) {
        self.rr.fill(0);
        self.held_pc.fill(None);
        self.stats = DXbarStats::default();
    }

    /// Exports the arbiter's mutable state for checkpointing.
    pub fn save(&self) -> DXbarSnapshot {
        DXbarSnapshot {
            rr: self.rr.clone(),
            held_pc: self.held_pc.clone(),
            stats: self.stats,
        }
    }

    /// Re-applies a snapshot taken by [`DXbar::save`]. Returns `false`
    /// (leaving the arbiter untouched) when the snapshot's bank count does
    /// not match this arbiter. `held_pc` adopts the snapshot's length —
    /// the vector is grown on demand during execution, so its length is
    /// part of the history being restored.
    pub fn load_snapshot(&mut self, snapshot: &DXbarSnapshot) -> bool {
        if snapshot.rr.len() != self.rr.len() {
            return false;
        }
        self.rr.copy_from_slice(&snapshot.rr);
        self.held_pc.clear();
        self.held_pc.extend_from_slice(&snapshot.held_pc);
        self.stats = snapshot.stats;
        true
    }

    /// Arbitrates one cycle of data requests, allocating a fresh outcome.
    ///
    /// Convenience wrapper around [`DXbar::arbitrate_into`].
    pub fn arbitrate(&mut self, requests: &[DmRequest], dmem: &mut BankedMemory) -> DXbarOutcome {
        let mut outcome = DXbarOutcome::default();
        self.arbitrate_into(requests, dmem, &mut outcome);
        outcome
    }

    /// Arbitrates one cycle of data requests into a caller-provided
    /// outcome buffer (cleared first).
    ///
    /// `requests` must contain at most one request per core and excludes
    /// cores currently held (they have no outstanding request; they are
    /// waiting for their group). Fills `outcome` with the grants for this
    /// cycle and the cores to release. All scratch state is reused across
    /// calls, so a caller that reuses `outcome` runs allocation-free in
    /// steady state.
    pub fn arbitrate_into(
        &mut self,
        requests: &[DmRequest],
        dmem: &mut BankedMemory,
        outcome: &mut DXbarOutcome,
    ) {
        outcome.grants.clear();
        outcome.releases.clear();
        self.stats.requests += requests.len() as u64;
        let banks = dmem.banks();
        let ncores = requests
            .iter()
            .map(|r| r.core + 1)
            .max()
            .unwrap_or(1)
            .max(self.rr.len());

        // ---- per-bank arbitration: pick and serve one address-group ----
        let mut serve = std::mem::take(&mut self.serve);
        serve.clear();
        if !requests.is_empty() {
            let mut req_info = std::mem::take(&mut self.req_info);
            req_info.clear();
            req_info.extend(
                requests
                    .iter()
                    .map(|r| (dmem.bank_of(r.addr), dmem.is_locked(r.addr))),
            );

            // Request bitmap: visit only the banks that actually have a
            // request this cycle (in ascending order, like a full sweep
            // would) instead of scanning every bank of the memory.
            if banks <= u128::BITS as usize {
                let mut pending: u128 = 0;
                for &(b, _) in &req_info {
                    pending |= 1 << b;
                }
                while pending != 0 {
                    let bank = pending.trailing_zeros() as usize;
                    pending &= pending - 1;
                    self.serve_bank(bank, ncores, requests, &req_info, dmem, &mut serve);
                }
            } else {
                for bank in 0..banks {
                    if req_info.iter().any(|&(b, _)| b == bank) {
                        self.serve_bank(bank, ncores, requests, &req_info, dmem, &mut serve);
                    }
                }
            }
            self.req_info = req_info;
        }
        self.stats.grants += serve.len() as u64;
        self.stats.transfers += serve.len() as u64;

        // ---- serving-policy post-pass: hold/release synchronous groups ----
        match self.policy {
            ServingPolicy::Baseline => {
                outcome.grants.extend(
                    serve
                        .iter()
                        .map(|&(r, data)| DmGrant::Complete { core: r.core, data }),
                );
            }
            ServingPolicy::SyncAware => {
                // Unserved requesters per PC (cores still inside the
                // conflict): the group with that PC must keep waiting.
                let mut unserved = std::mem::take(&mut self.unserved);
                unserved.clear();
                for r in requests {
                    if !serve.iter().any(|(s, _)| s.core == r.core) {
                        match unserved.iter_mut().find(|(pc, _)| *pc == r.pc) {
                            Some((_, n)) => *n += 1,
                            None => unserved.push((r.pc, 1)),
                        }
                    }
                }
                for &(r, data) in &serve {
                    let group_open = unserved.iter().any(|&(pc, n)| pc == r.pc && n > 0);
                    let group_exists = self.held_pc.contains(&Some(r.pc));
                    // Hold when synchronous peers are still unserved, or a
                    // held group for this PC already exists and peers remain.
                    if group_open {
                        self.hold(r.core, r.pc);
                        self.stats.holds += 1;
                        outcome.grants.push(DmGrant::Hold { core: r.core, data });
                    } else {
                        // Last members of the group: complete, and release
                        // any held peers.
                        if group_exists {
                            for (core, held) in self.held_pc.iter_mut().enumerate() {
                                if *held == Some(r.pc) {
                                    *held = None;
                                    self.stats.releases += 1;
                                    outcome.releases.push(core);
                                }
                            }
                        }
                        outcome
                            .grants
                            .push(DmGrant::Complete { core: r.core, data });
                    }
                }
                self.unserved = unserved;
            }
        }
        self.serve = serve;
    }

    /// Serves one requested bank: picks the winning request by rotating
    /// priority among unlocked requesters, performs the access (broadcast
    /// for same-address reads) and records the served requests.
    /// `req_info[i]` must be `(bank, locked)` of `requests[i]`.
    fn serve_bank(
        &mut self,
        bank: usize,
        ncores: usize,
        requests: &[DmRequest],
        req_info: &[(usize, bool)],
        dmem: &mut BankedMemory,
        serve: &mut Vec<(DmRequest, Option<u16>)>,
    ) {
        let mut in_bank = 0usize;
        let mut unlocked = 0usize;
        let mut first_addr = None;
        let mut conflict = false;
        for (r, &(b, locked)) in requests.iter().zip(req_info) {
            if b != bank {
                continue;
            }
            in_bank += 1;
            if !locked {
                unlocked += 1;
                match first_addr {
                    None => first_addr = Some(r.addr),
                    Some(a) if a != r.addr => conflict = true,
                    Some(_) => {}
                }
            }
        }
        let locked_out = in_bank - unlocked;
        self.stats.lock_stalls += locked_out as u64;
        if unlocked == 0 {
            self.stats.stalls += locked_out as u64;
            return;
        }
        if conflict {
            self.stats.conflict_cycles += 1;
        }

        let eligible = || {
            requests
                .iter()
                .zip(req_info)
                .filter(move |&(_, &(b, locked))| b == bank && !locked)
                .map(|(r, _)| r)
        };
        // Rotating priority in one pass: the eligible requester with the
        // smallest distance from the pointer wins (distances are distinct
        // — one request per core).
        let ptr = self.rr[bank] % ncores;
        let winner = *eligible()
            .min_by_key(|r| (r.core + ncores - ptr) % ncores)
            .expect("bank has unlocked requests");
        self.rr[bank] = (winner.core + 1) % ncores;

        match winner.access {
            Access::Write(value) => {
                // Writes never merge: serve exactly the winner.
                dmem.write(winner.addr, value);
                serve.push((winner, None));
                self.stats.stalls += (in_bank - 1 - locked_out) as u64;
            }
            Access::Read => {
                // Broadcast to every reader of the same address.
                let in_group = |r: &DmRequest| r.addr == winner.addr && r.access == Access::Read;
                let group = eligible().filter(|r| in_group(r)).count();
                let word = dmem.read_broadcast(winner.addr, group);
                self.stats.stalls += (in_bank - group - locked_out) as u64;
                for r in eligible().filter(|r| in_group(r)) {
                    serve.push((*r, Some(word)));
                }
            }
        }
    }

    fn hold(&mut self, core: usize, pc: u16) {
        if core >= self.held_pc.len() {
            self.held_pc.resize(core + 1, None);
        }
        self.held_pc[core] = Some(pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banked::BankMapping;

    fn dmem() -> BankedMemory {
        let mut m = BankedMemory::new(32 * 1024, 16, BankMapping::Blocked);
        for a in 0..4096u16 {
            m.poke(a, a.wrapping_mul(3));
        }
        m
    }

    fn read_req(core: usize, pc: u16, addr: u16) -> DmRequest {
        DmRequest {
            core,
            pc,
            addr,
            access: Access::Read,
        }
    }

    #[test]
    fn same_address_reads_broadcast() {
        let mut m = dmem();
        let mut x = DXbar::new(16, ServingPolicy::Baseline);
        let reqs: Vec<DmRequest> = (0..8).map(|c| read_req(c, 40, 100)).collect();
        let out = x.arbitrate(&reqs, &mut m);
        assert_eq!(out.grants.len(), 8);
        assert!(out
            .grants
            .iter()
            .all(|g| matches!(g, DmGrant::Complete { data: Some(d), .. } if *d == 300)));
        assert_eq!(m.stats().bank_reads, 1);
    }

    #[test]
    fn baseline_conflict_serves_in_sequence_and_lets_cores_go() {
        let mut m = dmem();
        let mut x = DXbar::new(16, ServingPolicy::Baseline);
        // Two cores, same pc, same bank (bank 0: addr < 2048), distinct addrs.
        let reqs = vec![read_req(0, 40, 10), read_req(1, 40, 20)];
        let out = x.arbitrate(&reqs, &mut m);
        assert_eq!(out.grants.len(), 1);
        assert!(matches!(out.grants[0], DmGrant::Complete { core: 0, .. }));
        assert!(out.releases.is_empty());
        assert_eq!(x.stats().stalls, 1);
    }

    #[test]
    fn sync_aware_holds_until_group_served() {
        let mut m = dmem();
        let mut x = DXbar::new(16, ServingPolicy::SyncAware);
        // Three synchronous cores conflict in bank 0.
        let reqs = vec![
            read_req(0, 40, 10),
            read_req(1, 40, 20),
            read_req(2, 40, 30),
        ];
        let out = x.arbitrate(&reqs, &mut m);
        assert_eq!(out.grants.len(), 1);
        assert!(matches!(out.grants[0], DmGrant::Hold { core: 0, .. }));
        assert_eq!(x.held_cores(), vec![0]);

        // Core 0 is now held; cores 1 and 2 retry.
        let reqs = vec![read_req(1, 40, 20), read_req(2, 40, 30)];
        let out = x.arbitrate(&reqs, &mut m);
        assert!(matches!(out.grants[0], DmGrant::Hold { core: 1, .. }));
        assert_eq!(x.held_cores(), vec![0, 1]);

        // Last member: completes and releases the held peers.
        let reqs = vec![read_req(2, 40, 30)];
        let out = x.arbitrate(&reqs, &mut m);
        assert!(matches!(out.grants[0], DmGrant::Complete { core: 2, .. }));
        let mut rel = out.releases.clone();
        rel.sort_unstable();
        assert_eq!(rel, vec![0, 1]);
        assert!(x.held_cores().is_empty());
        assert_eq!(x.stats().holds, 2);
        assert_eq!(x.stats().releases, 2);
    }

    #[test]
    fn sync_aware_ignores_asynchronous_cores() {
        let mut m = dmem();
        let mut x = DXbar::new(16, ServingPolicy::SyncAware);
        // Different PCs: not synchronous, no holding even under conflict.
        let reqs = vec![read_req(0, 40, 10), read_req(1, 99, 20)];
        let out = x.arbitrate(&reqs, &mut m);
        assert_eq!(out.grants.len(), 1);
        assert!(matches!(out.grants[0], DmGrant::Complete { core: 0, .. }));
    }

    #[test]
    fn sync_aware_cross_bank_skew_is_held_too() {
        let mut m = dmem();
        let mut x = DXbar::new(16, ServingPolicy::SyncAware);
        // Cores 0,1 synchronous. Core 0 alone in bank 1; cores 1,2 conflict
        // in bank 0 (core 2 asynchronous). Core 0 would complete while core
        // 1 stalls -> policy holds core 0 to preserve lockstep.
        let reqs = vec![
            read_req(0, 40, 2048),
            read_req(1, 40, 10),
            read_req(2, 77, 20),
        ];
        let out = x.arbitrate(&reqs, &mut m);
        // Bank 0 round-robin starts at core 0, so core 1 wins bank 0.
        // Both synchronous cores complete this cycle -> no holds.
        let completes: Vec<usize> = out
            .grants
            .iter()
            .filter_map(|g| match g {
                DmGrant::Complete { core, .. } => Some(*core),
                _ => None,
            })
            .collect();
        assert_eq!(completes, vec![1, 0], "bank order: bank0 then bank1");

        // Now make core 2 win bank 0 by advancing the pointer: cores 1,2 in
        // bank 0 again, pointer now at 2.
        let reqs = vec![
            read_req(0, 50, 2048),
            read_req(1, 50, 10),
            read_req(2, 77, 20),
        ];
        let out = x.arbitrate(&reqs, &mut m);
        // core 2 wins bank 0 (round-robin), so synchronous core 1 stalls;
        // core 0 (same pc) must be HELD even though its bank was free.
        assert!(out
            .grants
            .iter()
            .any(|g| matches!(g, DmGrant::Hold { core: 0, .. })));
    }

    #[test]
    fn writes_never_merge() {
        let mut m = dmem();
        let mut x = DXbar::new(16, ServingPolicy::Baseline);
        let reqs = vec![
            DmRequest {
                core: 0,
                pc: 1,
                addr: 10,
                access: Access::Write(111),
            },
            DmRequest {
                core: 1,
                pc: 1,
                addr: 10,
                access: Access::Write(222),
            },
        ];
        let out = x.arbitrate(&reqs, &mut m);
        assert_eq!(out.grants.len(), 1);
        assert_eq!(m.peek(10), 111, "only the winner's write landed");
        assert_eq!(m.stats().bank_writes, 1);
    }

    #[test]
    fn locked_words_stall_requesters() {
        let mut m = dmem();
        m.lock_word(10);
        let mut x = DXbar::new(16, ServingPolicy::Baseline);
        let reqs = vec![read_req(0, 1, 10), read_req(1, 1, 11)];
        let out = x.arbitrate(&reqs, &mut m);
        // Core 0 stalls on the lock; core 1 proceeds.
        assert_eq!(out.grants.len(), 1);
        assert!(matches!(out.grants[0], DmGrant::Complete { core: 1, .. }));
        assert_eq!(x.stats().lock_stalls, 1);
    }

    #[test]
    fn round_robin_rotates_between_conflicting_cores() {
        let mut m = dmem();
        let mut x = DXbar::new(16, ServingPolicy::Baseline);
        let reqs = vec![read_req(0, 1, 10), read_req(1, 1, 20)];
        let first = x.arbitrate(&reqs, &mut m);
        let second = x.arbitrate(&reqs, &mut m);
        let who = |o: &DXbarOutcome| match o.grants[0] {
            DmGrant::Complete { core, .. } => core,
            DmGrant::Hold { core, .. } => core,
        };
        assert_eq!(who(&first), 0);
        assert_eq!(who(&second), 1);
    }

    #[test]
    fn snapshot_round_trip_preserves_holds_and_rotation() {
        let mut m = dmem();
        let mut x = DXbar::new(16, ServingPolicy::SyncAware);
        // Leave core 0 held mid-conflict, then snapshot.
        let reqs = vec![read_req(0, 40, 10), read_req(1, 40, 20)];
        x.arbitrate(&reqs, &mut m);
        assert_eq!(x.held_cores(), vec![0]);
        let snap = x.save();

        let mut restored = DXbar::new(16, ServingPolicy::SyncAware);
        assert!(restored.load_snapshot(&snap));
        assert_eq!(restored.held_cores(), vec![0]);
        assert_eq!(restored.stats(), x.stats());

        // The restored arbiter finishes the group exactly like the
        // original would: core 1 completes and releases core 0.
        let reqs = vec![read_req(1, 40, 20)];
        let out = restored.arbitrate(&reqs, &mut m);
        assert!(matches!(out.grants[0], DmGrant::Complete { core: 1, .. }));
        assert_eq!(out.releases, vec![0]);
        assert!(
            !DXbar::new(8, ServingPolicy::SyncAware).load_snapshot(&snap),
            "bank count mismatch"
        );
    }

    #[test]
    fn reads_and_writes_to_same_bank_conflict() {
        let mut m = dmem();
        let mut x = DXbar::new(16, ServingPolicy::Baseline);
        let reqs = vec![
            read_req(0, 1, 10),
            DmRequest {
                core: 1,
                pc: 1,
                addr: 10,
                access: Access::Write(5),
            },
        ];
        let out = x.arbitrate(&reqs, &mut m);
        // Round-robin winner is core 0 (read); the write must wait.
        assert_eq!(out.grants.len(), 1);
        assert!(matches!(
            out.grants[0],
            DmGrant::Complete {
                core: 0,
                data: Some(_)
            }
        ));
        assert_eq!(m.peek(10), 30, "write deferred");
    }
}

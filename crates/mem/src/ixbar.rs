//! The instruction crossbar (I-Xbar).
//!
//! Each cycle, every fetching core presents its PC. Requests are grouped
//! per bank; within a bank, all requests for the *same* address merge into
//! one physical access whose data is **broadcast** to every requester. When
//! a bank faces several distinct addresses, one address-group is served per
//! cycle (rotating priority) and the remaining cores stall, clock-gated —
//! exactly the conflict behaviour of Section III of the paper.

use crate::banked::BankedMemory;

/// One core's instruction fetch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImRequest {
    /// Requesting core id.
    pub core: usize,
    /// Word address (the core's PC).
    pub addr: u16,
}

/// A granted fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImGrant {
    /// Served core id.
    pub core: usize,
    /// The fetched instruction word.
    pub word: u16,
}

/// Statistics of the instruction crossbar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IXbarStats {
    /// Fetch requests presented.
    pub requests: u64,
    /// Fetch requests granted.
    pub grants: u64,
    /// Requests left stalling because their bank served another address.
    pub stalls: u64,
    /// Cycles in which at least one bank had a conflict (≥ 2 distinct
    /// addresses requested in the same bank).
    pub conflict_cycles: u64,
    /// Crossbar data transfers (one per grant; drives interconnect energy).
    pub transfers: u64,
}

impl IXbarStats {
    /// Adds another crossbar's counters into this one (multi-run
    /// aggregates, e.g. summing shard statistics). Kept next to the
    /// fields so a new counter cannot be forgotten here.
    pub fn merge(&mut self, other: &IXbarStats) {
        self.requests += other.requests;
        self.grants += other.grants;
        self.stalls += other.stalls;
        self.conflict_cycles += other.conflict_cycles;
        self.transfers += other.transfers;
    }
}

/// The instruction crossbar arbiter.
#[derive(Debug, Clone)]
pub struct IXbar {
    rr: Vec<usize>,
    stats: IXbarStats,
}

impl IXbar {
    /// Creates an arbiter for a memory with `banks` banks.
    pub fn new(banks: usize) -> IXbar {
        IXbar {
            rr: vec![0; banks],
            stats: IXbarStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &IXbarStats {
        &self.stats
    }

    /// Resets the rotating-priority pointers and the statistics, so the
    /// arbiter can be reused for a fresh run.
    pub fn reset(&mut self) {
        self.rr.fill(0);
        self.stats = IXbarStats::default();
    }

    /// Arbitrates one cycle of fetch requests against the instruction
    /// memory, returning the granted fetches.
    ///
    /// Convenience wrapper around [`IXbar::arbitrate_into`] that allocates
    /// a fresh grant buffer per call.
    pub fn arbitrate(&mut self, requests: &[ImRequest], imem: &mut BankedMemory) -> Vec<ImGrant> {
        let mut grants = Vec::with_capacity(requests.len());
        self.arbitrate_into(requests, imem, &mut grants);
        grants
    }

    /// Arbitrates one cycle of fetch requests against the instruction
    /// memory, writing the granted fetches into `grants` (cleared first).
    /// Ungranted requesters stall.
    ///
    /// Within each bank exactly one address-group is served per cycle; the
    /// group is chosen by rotating priority so no core starves. The method
    /// performs no heap allocation beyond growing `grants` up to the core
    /// count, so a caller that reuses the buffer runs allocation-free.
    pub fn arbitrate_into(
        &mut self,
        requests: &[ImRequest],
        imem: &mut BankedMemory,
        grants: &mut Vec<ImGrant>,
    ) {
        grants.clear();
        self.stats.requests += requests.len() as u64;
        if requests.is_empty() {
            return;
        }
        let banks = imem.banks();
        let ncores = requests
            .iter()
            .map(|r| r.core + 1)
            .max()
            .unwrap_or(0)
            .max(self.rr.len().min(64));

        for bank in 0..banks {
            let mut in_bank = 0usize;
            let mut first_addr = None;
            let mut conflict = false;
            for r in requests.iter().filter(|r| imem.bank_of(r.addr) == bank) {
                in_bank += 1;
                match first_addr {
                    None => first_addr = Some(r.addr),
                    Some(a) if a != r.addr => conflict = true,
                    Some(_) => {}
                }
            }
            if in_bank == 0 {
                continue;
            }
            if conflict {
                self.stats.conflict_cycles += 1;
            }
            // Rotating priority: the first requesting core at or after the
            // pointer picks the winning address-group.
            let ptr = self.rr[bank];
            let winner_core = (0..ncores)
                .map(|i| (ptr + i) % ncores)
                .find(|c| {
                    requests
                        .iter()
                        .any(|r| r.core == *c && imem.bank_of(r.addr) == bank)
                })
                .expect("bank has requests");
            let winner_addr = requests
                .iter()
                .find(|r| r.core == winner_core && imem.bank_of(r.addr) == bank)
                .expect("winner requested")
                .addr;
            self.rr[bank] = (winner_core + 1) % ncores;

            let served = requests
                .iter()
                .filter(|r| imem.bank_of(r.addr) == bank && r.addr == winner_addr)
                .count();
            let word = imem.read_broadcast(winner_addr, served);
            self.stats.grants += served as u64;
            self.stats.transfers += served as u64;
            self.stats.stalls += (in_bank - served) as u64;
            grants.extend(
                requests
                    .iter()
                    .filter(|r| imem.bank_of(r.addr) == bank && r.addr == winner_addr)
                    .map(|r| ImGrant { core: r.core, word }),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banked::BankMapping;

    fn imem() -> BankedMemory {
        let mut m = BankedMemory::new(1024, 8, BankMapping::Blocked);
        for a in 0..1024u16 {
            m.poke(a, a ^ 0xA5A5);
        }
        m
    }

    #[test]
    fn lockstep_fetch_broadcasts() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        let reqs: Vec<ImRequest> = (0..8).map(|core| ImRequest { core, addr: 100 }).collect();
        let grants = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(grants.len(), 8, "all eight cores served at once");
        assert!(grants.iter().all(|g| g.word == 100 ^ 0xA5A5));
        assert_eq!(m.stats().bank_reads, 1, "single physical access");
        assert_eq!(m.stats().broadcast_extra, 7);
        assert_eq!(xbar.stats().stalls, 0);
    }

    #[test]
    fn divergent_fetch_serializes_in_blocked_bank() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        // All addresses in bank 0 (blocked: bank = addr / 128) but distinct.
        let reqs: Vec<ImRequest> = (0..4)
            .map(|core| ImRequest {
                core,
                addr: core as u16,
            })
            .collect();
        let grants = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(grants.len(), 1, "one address-group per cycle");
        assert_eq!(xbar.stats().stalls, 3);
        assert_eq!(xbar.stats().conflict_cycles, 1);
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        // Blocked mapping, 1024/8 = 128 words per bank.
        let reqs = vec![
            ImRequest { core: 0, addr: 0 },
            ImRequest { core: 1, addr: 128 },
            ImRequest { core: 2, addr: 256 },
        ];
        let grants = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(grants.len(), 3);
        assert_eq!(m.stats().bank_reads, 3);
        assert_eq!(xbar.stats().conflict_cycles, 0);
    }

    #[test]
    fn round_robin_is_fair() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        let reqs = vec![
            ImRequest { core: 0, addr: 1 },
            ImRequest { core: 1, addr: 2 },
        ];
        let first = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(first[0].core, 0, "pointer starts at core 0");
        let second = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(second[0].core, 1, "pointer advanced past previous winner");
        let third = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(third[0].core, 0);
    }

    #[test]
    fn partial_groups_merge() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        // Cores 0/2 at one address, cores 1/3 at another, same bank.
        let reqs = vec![
            ImRequest { core: 0, addr: 5 },
            ImRequest { core: 1, addr: 9 },
            ImRequest { core: 2, addr: 5 },
            ImRequest { core: 3, addr: 9 },
        ];
        let grants = xbar.arbitrate(&reqs, &mut m);
        let served: Vec<usize> = grants.iter().map(|g| g.core).collect();
        assert_eq!(served, vec![0, 2], "the whole winning group is served");
        assert_eq!(m.stats().bank_reads, 1);
    }

    #[test]
    fn interleaved_mapping_separates_consecutive_addresses() {
        let mut m = BankedMemory::new(1024, 8, BankMapping::Interleaved);
        let mut xbar = IXbar::new(8);
        let reqs: Vec<ImRequest> = (0..8)
            .map(|core| ImRequest {
                core,
                addr: core as u16, // eight consecutive addresses -> eight banks
            })
            .collect();
        let grants = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(grants.len(), 8, "no conflicts under interleaving");
        assert_eq!(xbar.stats().conflict_cycles, 0);
    }
}

//! The instruction crossbar (I-Xbar).
//!
//! Each cycle, every fetching core presents its PC. Requests are grouped
//! per bank; within a bank, all requests for the *same* address merge into
//! one physical access whose data is **broadcast** to every requester. When
//! a bank faces several distinct addresses, one address-group is served per
//! cycle (rotating priority) and the remaining cores stall, clock-gated —
//! exactly the conflict behaviour of Section III of the paper.

use crate::banked::BankedMemory;

/// One core's instruction fetch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImRequest {
    /// Requesting core id.
    pub core: usize,
    /// Word address (the core's PC).
    pub addr: u16,
}

/// A granted fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImGrant {
    /// Served core id.
    pub core: usize,
    /// The fetched instruction word.
    pub word: u16,
}

/// Statistics of the instruction crossbar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IXbarStats {
    /// Fetch requests presented.
    pub requests: u64,
    /// Fetch requests granted.
    pub grants: u64,
    /// Requests left stalling because their bank served another address.
    pub stalls: u64,
    /// Cycles in which at least one bank had a conflict (≥ 2 distinct
    /// addresses requested in the same bank).
    pub conflict_cycles: u64,
    /// Crossbar data transfers (one per grant; drives interconnect energy).
    pub transfers: u64,
}

/// The instruction crossbar arbiter.
#[derive(Debug, Clone)]
pub struct IXbar {
    rr: Vec<usize>,
    stats: IXbarStats,
}

impl IXbar {
    /// Creates an arbiter for a memory with `banks` banks.
    pub fn new(banks: usize) -> IXbar {
        IXbar {
            rr: vec![0; banks],
            stats: IXbarStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &IXbarStats {
        &self.stats
    }

    /// Arbitrates one cycle of fetch requests against the instruction
    /// memory, returning the granted fetches. Ungranted requesters stall.
    ///
    /// Within each bank exactly one address-group is served per cycle; the
    /// group is chosen by rotating priority so no core starves.
    pub fn arbitrate(&mut self, requests: &[ImRequest], imem: &mut BankedMemory) -> Vec<ImGrant> {
        self.stats.requests += requests.len() as u64;
        let mut grants = Vec::with_capacity(requests.len());
        let banks = imem.banks();
        let ncores = requests
            .iter()
            .map(|r| r.core + 1)
            .max()
            .unwrap_or(0)
            .max(self.rr.len().min(64));

        for bank in 0..banks {
            let in_bank: Vec<&ImRequest> = requests
                .iter()
                .filter(|r| imem.bank_of(r.addr) == bank)
                .collect();
            if in_bank.is_empty() {
                continue;
            }
            let distinct: Vec<u16> = {
                let mut addrs: Vec<u16> = in_bank.iter().map(|r| r.addr).collect();
                addrs.sort_unstable();
                addrs.dedup();
                addrs
            };
            if distinct.len() > 1 {
                self.stats.conflict_cycles += 1;
            }
            // Rotating priority: the first requesting core at or after the
            // pointer picks the winning address-group.
            let ptr = self.rr[bank];
            let winner_core = (0..ncores)
                .map(|i| (ptr + i) % ncores)
                .find(|c| in_bank.iter().any(|r| r.core == *c))
                .expect("bank has requests");
            let winner_addr = in_bank
                .iter()
                .find(|r| r.core == winner_core)
                .expect("winner requested")
                .addr;
            self.rr[bank] = (winner_core + 1) % ncores;

            let served: Vec<usize> = in_bank
                .iter()
                .filter(|r| r.addr == winner_addr)
                .map(|r| r.core)
                .collect();
            let word = imem.read_broadcast(winner_addr, served.len());
            self.stats.grants += served.len() as u64;
            self.stats.transfers += served.len() as u64;
            self.stats.stalls += (in_bank.len() - served.len()) as u64;
            grants.extend(served.into_iter().map(|core| ImGrant { core, word }));
        }
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banked::BankMapping;

    fn imem() -> BankedMemory {
        let mut m = BankedMemory::new(1024, 8, BankMapping::Blocked);
        for a in 0..1024u16 {
            m.poke(a, a ^ 0xA5A5);
        }
        m
    }

    #[test]
    fn lockstep_fetch_broadcasts() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        let reqs: Vec<ImRequest> = (0..8).map(|core| ImRequest { core, addr: 100 }).collect();
        let grants = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(grants.len(), 8, "all eight cores served at once");
        assert!(grants.iter().all(|g| g.word == 100 ^ 0xA5A5));
        assert_eq!(m.stats().bank_reads, 1, "single physical access");
        assert_eq!(m.stats().broadcast_extra, 7);
        assert_eq!(xbar.stats().stalls, 0);
    }

    #[test]
    fn divergent_fetch_serializes_in_blocked_bank() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        // All addresses in bank 0 (blocked: bank = addr / 128) but distinct.
        let reqs: Vec<ImRequest> = (0..4)
            .map(|core| ImRequest {
                core,
                addr: core as u16,
            })
            .collect();
        let grants = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(grants.len(), 1, "one address-group per cycle");
        assert_eq!(xbar.stats().stalls, 3);
        assert_eq!(xbar.stats().conflict_cycles, 1);
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        // Blocked mapping, 1024/8 = 128 words per bank.
        let reqs = vec![
            ImRequest { core: 0, addr: 0 },
            ImRequest { core: 1, addr: 128 },
            ImRequest { core: 2, addr: 256 },
        ];
        let grants = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(grants.len(), 3);
        assert_eq!(m.stats().bank_reads, 3);
        assert_eq!(xbar.stats().conflict_cycles, 0);
    }

    #[test]
    fn round_robin_is_fair() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        let reqs = vec![
            ImRequest { core: 0, addr: 1 },
            ImRequest { core: 1, addr: 2 },
        ];
        let first = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(first[0].core, 0, "pointer starts at core 0");
        let second = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(second[0].core, 1, "pointer advanced past previous winner");
        let third = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(third[0].core, 0);
    }

    #[test]
    fn partial_groups_merge() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        // Cores 0/2 at one address, cores 1/3 at another, same bank.
        let reqs = vec![
            ImRequest { core: 0, addr: 5 },
            ImRequest { core: 1, addr: 9 },
            ImRequest { core: 2, addr: 5 },
            ImRequest { core: 3, addr: 9 },
        ];
        let grants = xbar.arbitrate(&reqs, &mut m);
        let served: Vec<usize> = grants.iter().map(|g| g.core).collect();
        assert_eq!(served, vec![0, 2], "the whole winning group is served");
        assert_eq!(m.stats().bank_reads, 1);
    }

    #[test]
    fn interleaved_mapping_separates_consecutive_addresses() {
        let mut m = BankedMemory::new(1024, 8, BankMapping::Interleaved);
        let mut xbar = IXbar::new(8);
        let reqs: Vec<ImRequest> = (0..8)
            .map(|core| ImRequest {
                core,
                addr: core as u16, // eight consecutive addresses -> eight banks
            })
            .collect();
        let grants = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(grants.len(), 8, "no conflicts under interleaving");
        assert_eq!(xbar.stats().conflict_cycles, 0);
    }
}

//! The instruction crossbar (I-Xbar).
//!
//! Each cycle, every fetching core presents its PC. Requests are grouped
//! per bank; within a bank, all requests for the *same* address merge into
//! one physical access whose data is **broadcast** to every requester. When
//! a bank faces several distinct addresses, one address-group is served per
//! cycle (rotating priority) and the remaining cores stall, clock-gated —
//! exactly the conflict behaviour of Section III of the paper.

use crate::banked::BankedMemory;

/// One core's instruction fetch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImRequest {
    /// Requesting core id.
    pub core: usize,
    /// Word address (the core's PC).
    pub addr: u16,
}

/// A granted fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImGrant {
    /// Served core id.
    pub core: usize,
    /// The fetched instruction word.
    pub word: u16,
}

/// Statistics of the instruction crossbar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IXbarStats {
    /// Fetch requests presented.
    pub requests: u64,
    /// Fetch requests granted.
    pub grants: u64,
    /// Requests left stalling because their bank served another address.
    pub stalls: u64,
    /// Cycles in which at least one bank had a conflict (≥ 2 distinct
    /// addresses requested in the same bank).
    pub conflict_cycles: u64,
    /// Crossbar data transfers (one per grant; drives interconnect energy).
    pub transfers: u64,
}

impl IXbarStats {
    /// Adds another crossbar's counters into this one (multi-run
    /// aggregates, e.g. summing shard statistics). Kept next to the
    /// fields so a new counter cannot be forgotten here.
    pub fn merge(&mut self, other: &IXbarStats) {
        self.requests += other.requests;
        self.grants += other.grants;
        self.stalls += other.stalls;
        self.conflict_cycles += other.conflict_cycles;
        self.transfers += other.transfers;
    }
}

/// The complete mutable state of one [`IXbar`]: the rotating-priority
/// pointers plus the counters. The per-cycle request scratch is excluded —
/// it is rebuilt from scratch every cycle and carries no history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IXbarSnapshot {
    /// Rotating-priority pointer per bank.
    pub rr: Vec<usize>,
    /// Aggregate arbitration counters.
    pub stats: IXbarStats,
}

/// The instruction crossbar arbiter.
#[derive(Debug, Clone)]
pub struct IXbar {
    rr: Vec<usize>,
    /// Scratch: bank of each request, resolved once per cycle so the
    /// per-bank passes never recompute the address mapping.
    req_banks: Vec<usize>,
    stats: IXbarStats,
}

impl IXbar {
    /// Creates an arbiter for a memory with `banks` banks.
    pub fn new(banks: usize) -> IXbar {
        IXbar {
            rr: vec![0; banks],
            req_banks: Vec::new(),
            stats: IXbarStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &IXbarStats {
        &self.stats
    }

    /// Resets the rotating-priority pointers and the statistics, so the
    /// arbiter can be reused for a fresh run.
    pub fn reset(&mut self) {
        self.rr.fill(0);
        self.stats = IXbarStats::default();
    }

    /// Exports the arbiter's mutable state for checkpointing.
    pub fn save(&self) -> IXbarSnapshot {
        IXbarSnapshot {
            rr: self.rr.clone(),
            stats: self.stats,
        }
    }

    /// Re-applies a snapshot taken by [`IXbar::save`]. Returns `false`
    /// (leaving the arbiter untouched) when the snapshot's bank count does
    /// not match this arbiter.
    pub fn load_snapshot(&mut self, snapshot: &IXbarSnapshot) -> bool {
        if snapshot.rr.len() != self.rr.len() {
            return false;
        }
        self.rr.copy_from_slice(&snapshot.rr);
        self.stats = snapshot.stats;
        true
    }

    /// Arbitrates one cycle of fetch requests against the instruction
    /// memory, returning the granted fetches.
    ///
    /// Convenience wrapper around [`IXbar::arbitrate_into`] that allocates
    /// a fresh grant buffer per call.
    pub fn arbitrate(&mut self, requests: &[ImRequest], imem: &mut BankedMemory) -> Vec<ImGrant> {
        let mut grants = Vec::with_capacity(requests.len());
        self.arbitrate_into(requests, imem, &mut grants);
        grants
    }

    /// Arbitrates one cycle of fetch requests against the instruction
    /// memory, writing the granted fetches into `grants` (cleared first).
    /// Ungranted requesters stall.
    ///
    /// Within each bank exactly one address-group is served per cycle; the
    /// group is chosen by rotating priority so no core starves. The method
    /// performs no heap allocation beyond growing `grants` up to the core
    /// count, so a caller that reuses the buffer runs allocation-free.
    pub fn arbitrate_into(
        &mut self,
        requests: &[ImRequest],
        imem: &mut BankedMemory,
        grants: &mut Vec<ImGrant>,
    ) {
        grants.clear();
        self.stats.requests += requests.len() as u64;
        if requests.is_empty() {
            return;
        }
        let banks = imem.banks();
        let ncores = requests
            .iter()
            .map(|r| r.core + 1)
            .max()
            .unwrap_or(0)
            .max(self.rr.len().min(64));

        // Lockstep fast path: every requester at the *same* address is the
        // dominant cycle shape of SPMD code — one bank, one address-group,
        // no conflict, everyone served by a single broadcast read.
        let addr = requests[0].addr;
        if requests.iter().all(|r| r.addr == addr) {
            let bank = imem.bank_of(addr);
            let ptr = self.rr[bank] % ncores;
            let winner_core = requests
                .iter()
                .map(|r| r.core)
                .min_by_key(|&c| (c + ncores - ptr) % ncores)
                .expect("non-empty");
            self.rr[bank] = (winner_core + 1) % ncores;
            let word = imem.read_broadcast(addr, requests.len());
            self.stats.grants += requests.len() as u64;
            self.stats.transfers += requests.len() as u64;
            grants.extend(requests.iter().map(|r| ImGrant { core: r.core, word }));
            return;
        }

        let mut req_banks = std::mem::take(&mut self.req_banks);
        req_banks.clear();
        req_banks.extend(requests.iter().map(|r| imem.bank_of(r.addr)));

        // Request bitmap: visit only the banks that actually have a request
        // this cycle (in ascending order, like a full sweep would) instead
        // of scanning every bank of the memory.
        if banks <= u128::BITS as usize {
            let mut pending: u128 = 0;
            for &b in &req_banks {
                pending |= 1 << b;
            }
            while pending != 0 {
                let bank = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                self.serve_bank(bank, ncores, requests, &req_banks, imem, grants);
            }
        } else {
            for bank in 0..banks {
                if req_banks.contains(&bank) {
                    self.serve_bank(bank, ncores, requests, &req_banks, imem, grants);
                }
            }
        }
        self.req_banks = req_banks;
    }

    /// Serves one cycle in which `cores` (each id listed once) all fetch
    /// the same `addr`: the whole group is granted by a single broadcast
    /// read, exactly as [`IXbar::arbitrate_into`] would grant it —
    /// identical statistics, memory counters and rotating-priority
    /// update — without materializing request or grant buffers. Returns
    /// the fetched word. This is the uniform-lockstep hot path of the
    /// compiled execution tier.
    pub fn serve_uniform(&mut self, cores: &[usize], addr: u16, imem: &mut BankedMemory) -> u16 {
        let n = cores.len();
        self.stats.requests += n as u64;
        let ncores = cores
            .iter()
            .map(|&c| c + 1)
            .max()
            .unwrap_or(0)
            .max(self.rr.len().min(64));
        let bank = imem.bank_of(addr);
        let ptr = self.rr[bank] % ncores;
        let winner_core = cores
            .iter()
            .copied()
            .min_by_key(|&c| (c + ncores - ptr) % ncores)
            .expect("uniform group is non-empty");
        self.rr[bank] = (winner_core + 1) % ncores;
        self.stats.grants += n as u64;
        self.stats.transfers += n as u64;
        imem.read_broadcast(addr, n)
    }

    /// Serves one requested bank: picks the winning address-group by
    /// rotating priority, performs the (broadcast) read and emits the
    /// grants. `req_banks[i]` must be the bank of `requests[i]`.
    fn serve_bank(
        &mut self,
        bank: usize,
        ncores: usize,
        requests: &[ImRequest],
        req_banks: &[usize],
        imem: &mut BankedMemory,
        grants: &mut Vec<ImGrant>,
    ) {
        let in_bank = || {
            requests
                .iter()
                .zip(req_banks)
                .filter(move |&(_, &b)| b == bank)
                .map(|(r, _)| r)
        };
        let mut count = 0usize;
        let mut first_addr = None;
        let mut conflict = false;
        for r in in_bank() {
            count += 1;
            match first_addr {
                None => first_addr = Some(r.addr),
                Some(a) if a != r.addr => conflict = true,
                Some(_) => {}
            }
        }
        if conflict {
            self.stats.conflict_cycles += 1;
        }
        // Rotating priority: the first requesting core at or after the
        // pointer picks the winning address-group. Computed in one pass as
        // the requester with the smallest distance from the pointer
        // (distances are distinct — one request per core).
        let ptr = self.rr[bank] % ncores;
        let winner = in_bank()
            .min_by_key(|r| (r.core + ncores - ptr) % ncores)
            .expect("bank has requests");
        let (winner_core, winner_addr) = (winner.core, winner.addr);
        self.rr[bank] = (winner_core + 1) % ncores;

        let served = in_bank().filter(|r| r.addr == winner_addr).count();
        let word = imem.read_broadcast(winner_addr, served);
        self.stats.grants += served as u64;
        self.stats.transfers += served as u64;
        self.stats.stalls += (count - served) as u64;
        grants.extend(
            in_bank()
                .filter(|r| r.addr == winner_addr)
                .map(|r| ImGrant { core: r.core, word }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banked::BankMapping;

    fn imem() -> BankedMemory {
        let mut m = BankedMemory::new(1024, 8, BankMapping::Blocked);
        for a in 0..1024u16 {
            m.poke(a, a ^ 0xA5A5);
        }
        m
    }

    #[test]
    fn lockstep_fetch_broadcasts() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        let reqs: Vec<ImRequest> = (0..8).map(|core| ImRequest { core, addr: 100 }).collect();
        let grants = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(grants.len(), 8, "all eight cores served at once");
        assert!(grants.iter().all(|g| g.word == 100 ^ 0xA5A5));
        assert_eq!(m.stats().bank_reads, 1, "single physical access");
        assert_eq!(m.stats().broadcast_extra, 7);
        assert_eq!(xbar.stats().stalls, 0);
    }

    #[test]
    fn divergent_fetch_serializes_in_blocked_bank() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        // All addresses in bank 0 (blocked: bank = addr / 128) but distinct.
        let reqs: Vec<ImRequest> = (0..4)
            .map(|core| ImRequest {
                core,
                addr: core as u16,
            })
            .collect();
        let grants = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(grants.len(), 1, "one address-group per cycle");
        assert_eq!(xbar.stats().stalls, 3);
        assert_eq!(xbar.stats().conflict_cycles, 1);
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        // Blocked mapping, 1024/8 = 128 words per bank.
        let reqs = vec![
            ImRequest { core: 0, addr: 0 },
            ImRequest { core: 1, addr: 128 },
            ImRequest { core: 2, addr: 256 },
        ];
        let grants = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(grants.len(), 3);
        assert_eq!(m.stats().bank_reads, 3);
        assert_eq!(xbar.stats().conflict_cycles, 0);
    }

    #[test]
    fn round_robin_is_fair() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        let reqs = vec![
            ImRequest { core: 0, addr: 1 },
            ImRequest { core: 1, addr: 2 },
        ];
        let first = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(first[0].core, 0, "pointer starts at core 0");
        let second = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(second[0].core, 1, "pointer advanced past previous winner");
        let third = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(third[0].core, 0);
    }

    #[test]
    fn partial_groups_merge() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        // Cores 0/2 at one address, cores 1/3 at another, same bank.
        let reqs = vec![
            ImRequest { core: 0, addr: 5 },
            ImRequest { core: 1, addr: 9 },
            ImRequest { core: 2, addr: 5 },
            ImRequest { core: 3, addr: 9 },
        ];
        let grants = xbar.arbitrate(&reqs, &mut m);
        let served: Vec<usize> = grants.iter().map(|g| g.core).collect();
        assert_eq!(served, vec![0, 2], "the whole winning group is served");
        assert_eq!(m.stats().bank_reads, 1);
    }

    #[test]
    fn snapshot_round_trip_preserves_rotation() {
        let mut m = imem();
        let mut xbar = IXbar::new(8);
        let reqs = vec![
            ImRequest { core: 0, addr: 1 },
            ImRequest { core: 1, addr: 2 },
        ];
        xbar.arbitrate(&reqs, &mut m);
        let snap = xbar.save();

        let mut restored = IXbar::new(8);
        assert!(restored.load_snapshot(&snap));
        assert_eq!(restored.stats(), xbar.stats());
        // The restored arbiter continues the rotation exactly where the
        // original would: core 1 wins the next conflict.
        let next = restored.arbitrate(&reqs, &mut m);
        assert_eq!(next[0].core, 1);
        assert!(!IXbar::new(4).load_snapshot(&snap), "bank count mismatch");
    }

    #[test]
    fn interleaved_mapping_separates_consecutive_addresses() {
        let mut m = BankedMemory::new(1024, 8, BankMapping::Interleaved);
        let mut xbar = IXbar::new(8);
        let reqs: Vec<ImRequest> = (0..8)
            .map(|core| ImRequest {
                core,
                addr: core as u16, // eight consecutive addresses -> eight banks
            })
            .collect();
        let grants = xbar.arbitrate(&reqs, &mut m);
        assert_eq!(grants.len(), 8, "no conflicts under interleaving");
        assert_eq!(xbar.stats().conflict_cycles, 0);
    }
}

//! # ulp-mem — banked memories and broadcast-capable crossbars
//!
//! Models the shared memory subsystem of the ULP multi-core platform
//! (Section III of Dogan et al., DATE 2013):
//!
//! * [`BankedMemory`] — a word-addressed memory divided into banks, with a
//!   configurable [`BankMapping`], word-level locking (for the
//!   synchronizer's atomic read-modify-write) and access statistics;
//! * [`IXbar`] — the instruction crossbar: per-bank arbitration in which
//!   same-address fetches from several cores merge into a *single*
//!   physical bank access broadcast to all of them;
//! * [`DXbar`] — the data crossbar with the same broadcast capability plus
//!   the paper's **enhanced data-serving policy** ([`ServingPolicy`],
//!   Section IV): when PC-synchronous cores conflict in a bank, cores that
//!   are served early are *held* until the whole group has been served, so
//!   the group leaves the conflict still in lockstep.
//!
//! Waiting (stalled or held) cores are clock-gated by the platform; the
//! crossbars report every grant, hold and release so the power model can
//! account for them.

mod banked;
mod dxbar;
mod ixbar;
#[cfg(test)]
mod proptests;

pub use banked::{BankMapping, BankedMemory, MemSnapshot, MemStats};
pub use dxbar::{
    Access, DXbar, DXbarOutcome, DXbarSnapshot, DXbarStats, DmGrant, DmRequest, ServingPolicy,
};
pub use ixbar::{IXbar, IXbarSnapshot, IXbarStats, ImGrant, ImRequest};

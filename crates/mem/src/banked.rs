//! Banked word-addressed memory with locking and access statistics.

/// How word addresses map onto banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankMapping {
    /// Contiguous blocks: `bank = addr / (words / banks)`. This is the
    /// platform's layout — each core's private data region (and the single
    /// SPMD kernel image) lives inside one bank, so lockstep cores hit the
    /// *same* bank at the *same* address and broadcast, while divergent
    /// cores serialize.
    Blocked,
    /// Word-interleaved: `bank = addr % banks`. Used by the A1 ablation to
    /// quantify how much of the slowdown is bank serialization.
    Interleaved,
}

impl BankMapping {
    /// The bank `addr` belongs to in a memory of `banks` banks of
    /// `bank_words` words each (addresses wrap modulo the memory size).
    /// This is the single address-to-bank computation shared by
    /// [`BankedMemory`] and external bank-attribution observers (e.g. the
    /// platform's heat map), so a mapping change cannot desynchronize
    /// them.
    #[inline]
    pub fn bank_of(self, addr: u16, banks: usize, bank_words: usize) -> usize {
        let a = addr as usize % (banks * bank_words);
        match self {
            BankMapping::Blocked => a / bank_words,
            BankMapping::Interleaved => a % banks,
        }
    }
}

/// Physical access counters of one [`BankedMemory`].
///
/// A plain `Copy` bundle of counters, so per-run statistics collection
/// copies it instead of cloning heap state. Per-bank access counts live on
/// the memory itself ([`BankedMemory::per_bank_accesses`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Physical bank read operations (one per served address-group).
    pub bank_reads: u64,
    /// Physical bank write operations.
    pub bank_writes: u64,
    /// Requesters served on top of the first one by a broadcast read
    /// (i.e. accesses *saved* by broadcasting).
    pub broadcast_extra: u64,
}

impl MemStats {
    /// Total physical bank accesses.
    pub fn total_accesses(&self) -> u64 {
        self.bank_reads + self.bank_writes
    }

    /// Adds another memory's counters into this one (multi-run
    /// aggregates, e.g. summing shard statistics). Kept next to the
    /// fields so a new counter cannot be forgotten here.
    pub fn merge(&mut self, other: &MemStats) {
        self.bank_reads += other.bank_reads;
        self.bank_writes += other.bank_writes;
        self.broadcast_extra += other.broadcast_extra;
    }
}

/// The complete mutable state of one [`BankedMemory`], exported by
/// [`BankedMemory::save`] and re-applied by [`BankedMemory::load_snapshot`].
/// Plain data with public fields: the platform's checkpoint layer owns the
/// byte-level encoding, this crate only defines *what* the state is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Every word of the memory, in address order.
    pub words: Vec<u16>,
    /// Currently locked words (synchronizer RMWs in flight), in lock order.
    pub locked: Vec<u16>,
    /// Aggregate physical access counters.
    pub stats: MemStats,
    /// Per-bank physical access counts, indexed by bank.
    pub per_bank: Vec<u64>,
}

/// A word-addressed memory divided into equally sized banks.
///
/// Reads and writes through [`BankedMemory::read`]/[`BankedMemory::write`]
/// count as physical bank accesses; `peek`/`poke` are free backdoors for
/// loaders and tests. Words can be locked (the synchronization ISE's *lock*
/// output) to serialize non-synchronous accesses during the synchronizer's
/// read-modify-write (Section IV-B-c of the paper).
///
/// # Example
///
/// ```
/// use ulp_mem::{BankedMemory, BankMapping};
///
/// let mut dm = BankedMemory::new(32 * 1024, 16, BankMapping::Blocked);
/// assert_eq!(dm.bank_of(0), 0);
/// assert_eq!(dm.bank_of(2048), 1);
/// dm.write(5, 0xABCD);
/// assert_eq!(dm.read(5), 0xABCD);
/// assert_eq!(dm.stats().total_accesses(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BankedMemory {
    words: Vec<u16>,
    banks: usize,
    bank_words: usize,
    mapping: BankMapping,
    /// Currently locked words. A plain vector (not a set): at most a
    /// handful of words are locked at once (one per in-flight synchronizer
    /// RMW), and lock/unlock must not allocate in steady state.
    locked: Vec<u16>,
    stats: MemStats,
    per_bank: Vec<u64>,
}

impl BankedMemory {
    /// Creates a zero-initialized memory of `words` words in `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or does not divide `words`.
    pub fn new(words: usize, banks: usize, mapping: BankMapping) -> BankedMemory {
        assert!(banks > 0, "at least one bank");
        assert_eq!(words % banks, 0, "banks must divide the word count");
        BankedMemory {
            words: vec![0; words],
            banks,
            bank_words: words / banks,
            mapping,
            locked: Vec::new(),
            stats: MemStats::default(),
            per_bank: vec![0; banks],
        }
    }

    /// Memory size in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the memory has zero words (never true for a valid instance).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// The configured address-to-bank mapping.
    pub fn mapping(&self) -> BankMapping {
        self.mapping
    }

    /// The bank an address belongs to.
    #[inline]
    pub fn bank_of(&self, addr: u16) -> usize {
        self.mapping.bank_of(addr, self.banks, self.bank_words)
    }

    #[inline]
    fn index(&self, addr: u16) -> usize {
        addr as usize % self.words.len()
    }

    /// Physical read (counted).
    pub fn read(&mut self, addr: u16) -> u16 {
        let bank = self.bank_of(addr);
        self.stats.bank_reads += 1;
        self.per_bank[bank] += 1;
        self.words[self.index(addr)]
    }

    /// Physical read serving `requesters` cores at once (broadcast).
    ///
    /// Counts a single bank access; the `requesters - 1` saved accesses are
    /// recorded in [`MemStats::broadcast_extra`].
    pub fn read_broadcast(&mut self, addr: u16, requesters: usize) -> u16 {
        debug_assert!(requesters >= 1);
        self.stats.broadcast_extra += requesters.saturating_sub(1) as u64;
        self.read(addr)
    }

    /// Physical write (counted).
    pub fn write(&mut self, addr: u16, value: u16) {
        let bank = self.bank_of(addr);
        self.stats.bank_writes += 1;
        self.per_bank[bank] += 1;
        let i = self.index(addr);
        self.words[i] = value;
    }

    /// Backdoor read without access accounting (loaders, tests, traces).
    pub fn peek(&self, addr: u16) -> u16 {
        self.words[self.index(addr)]
    }

    /// Backdoor write without access accounting.
    pub fn poke(&mut self, addr: u16, value: u16) {
        let i = self.index(addr);
        self.words[i] = value;
    }

    /// Bulk backdoor load starting at `base`.
    pub fn load(&mut self, base: u16, data: &[u16]) {
        for (i, w) in data.iter().enumerate() {
            self.poke(base.wrapping_add(i as u16), *w);
        }
    }

    /// Locks a word against ordinary accesses (synchronizer RMW in flight).
    pub fn lock_word(&mut self, addr: u16) {
        if !self.locked.contains(&addr) {
            self.locked.push(addr);
        }
    }

    /// Releases a word lock.
    pub fn unlock_word(&mut self, addr: u16) {
        self.locked.retain(|&a| a != addr);
    }

    /// Whether a word is currently locked.
    pub fn is_locked(&self, addr: u16) -> bool {
        self.locked.contains(&addr)
    }

    /// Access statistics so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Per-bank physical access counts (reads + writes), indexed by bank.
    pub fn per_bank_accesses(&self) -> &[u64] {
        &self.per_bank
    }

    /// Resets the access statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.per_bank.fill(0);
    }

    /// Zeroes every word, releases all locks and resets the statistics,
    /// keeping the allocation — so a platform can be reused for another
    /// run without reallocating its memories.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.locked.clear();
        self.reset_stats();
    }

    /// Exports the memory's complete mutable state (contents, locks,
    /// counters) for checkpointing. Geometry (banks, mapping) is not part
    /// of the snapshot — it belongs to the platform configuration the
    /// checkpoint carries separately.
    pub fn save(&self) -> MemSnapshot {
        MemSnapshot {
            words: self.words.clone(),
            locked: self.locked.clone(),
            stats: self.stats,
            per_bank: self.per_bank.clone(),
        }
    }

    /// Re-applies a snapshot taken by [`BankedMemory::save`] onto a memory
    /// of the *same geometry*, reusing the existing allocations. Returns
    /// `false` (leaving the memory untouched) when the snapshot's word or
    /// bank count does not match this memory.
    pub fn load_snapshot(&mut self, snapshot: &MemSnapshot) -> bool {
        if snapshot.words.len() != self.words.len() || snapshot.per_bank.len() != self.banks {
            return false;
        }
        self.words.copy_from_slice(&snapshot.words);
        self.locked.clear();
        self.locked.extend_from_slice(&snapshot.locked);
        self.stats = snapshot.stats;
        self.per_bank.copy_from_slice(&snapshot.per_bank);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_mapping() {
        let m = BankedMemory::new(32 * 1024, 16, BankMapping::Blocked);
        assert_eq!(m.bank_of(0), 0);
        assert_eq!(m.bank_of(2047), 0);
        assert_eq!(m.bank_of(2048), 1);
        assert_eq!(m.bank_of(32767), 15);
    }

    #[test]
    fn interleaved_mapping() {
        let m = BankedMemory::new(32, 4, BankMapping::Interleaved);
        assert_eq!(m.bank_of(0), 0);
        assert_eq!(m.bank_of(1), 1);
        assert_eq!(m.bank_of(5), 1);
        assert_eq!(m.bank_of(7), 3);
    }

    #[test]
    fn counting_vs_backdoor() {
        let mut m = BankedMemory::new(64, 4, BankMapping::Blocked);
        m.poke(3, 42);
        assert_eq!(m.peek(3), 42);
        assert_eq!(m.stats().total_accesses(), 0, "backdoor is free");
        assert_eq!(m.read(3), 42);
        m.write(4, 1);
        assert_eq!(m.stats().bank_reads, 1);
        assert_eq!(m.stats().bank_writes, 1);
        assert_eq!(m.per_bank_accesses()[0], 2);
    }

    #[test]
    fn broadcast_counts_once() {
        let mut m = BankedMemory::new(64, 4, BankMapping::Blocked);
        m.poke(10, 9);
        assert_eq!(m.read_broadcast(10, 8), 9);
        assert_eq!(m.stats().bank_reads, 1, "single physical access");
        assert_eq!(m.stats().broadcast_extra, 7, "seven accesses saved");
    }

    #[test]
    fn word_locks() {
        let mut m = BankedMemory::new(64, 4, BankMapping::Blocked);
        assert!(!m.is_locked(7));
        m.lock_word(7);
        assert!(m.is_locked(7));
        assert!(!m.is_locked(8));
        m.unlock_word(7);
        assert!(!m.is_locked(7));
    }

    #[test]
    fn bulk_load_and_wraparound() {
        let mut m = BankedMemory::new(16, 4, BankMapping::Blocked);
        m.load(14, &[1, 2, 3]);
        assert_eq!(m.peek(14), 1);
        assert_eq!(m.peek(15), 2);
        assert_eq!(m.peek(0), 3, "wraps modulo size");
    }

    #[test]
    #[should_panic(expected = "banks must divide")]
    fn invalid_geometry_panics() {
        let _ = BankedMemory::new(10, 3, BankMapping::Blocked);
    }

    #[test]
    fn reset_stats() {
        let mut m = BankedMemory::new(16, 4, BankMapping::Blocked);
        m.read(0);
        m.reset_stats();
        assert_eq!(m.stats().total_accesses(), 0);
    }

    #[test]
    fn snapshot_round_trip() {
        let mut m = BankedMemory::new(16, 4, BankMapping::Blocked);
        m.write(3, 7);
        m.read(3);
        m.lock_word(9);
        let snap = m.save();

        let mut other = BankedMemory::new(16, 4, BankMapping::Blocked);
        assert!(other.load_snapshot(&snap));
        assert_eq!(other.peek(3), 7);
        assert!(other.is_locked(9));
        assert_eq!(other.stats(), m.stats());
        assert_eq!(other.per_bank_accesses(), m.per_bank_accesses());
        assert_eq!(other.save(), snap);
    }

    #[test]
    fn snapshot_rejects_geometry_mismatch() {
        let m = BankedMemory::new(16, 4, BankMapping::Blocked);
        let snap = m.save();
        let mut bigger = BankedMemory::new(32, 4, BankMapping::Blocked);
        bigger.poke(0, 5);
        assert!(!bigger.load_snapshot(&snap));
        assert_eq!(bigger.peek(0), 5, "failed load leaves state untouched");
    }
}

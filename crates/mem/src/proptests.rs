//! Property-based tests of the crossbar arbitration invariants.

use crate::{
    Access, BankMapping, BankedMemory, DXbar, DmGrant, DmRequest, IXbar, ImRequest, ServingPolicy,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn dm() -> BankedMemory {
    BankedMemory::new(4096, 16, BankMapping::Blocked)
}

/// One D-Xbar request per core with bounded fields.
fn dm_requests() -> impl Strategy<Value = Vec<DmRequest>> {
    prop::collection::btree_set(0usize..8, 1..=8).prop_flat_map(|cores| {
        let cores: Vec<usize> = cores.into_iter().collect();
        let n = cores.len();
        (
            Just(cores),
            prop::collection::vec(0u16..64, n),      // pcs
            prop::collection::vec(0u16..4096, n),    // addrs
            prop::collection::vec(any::<bool>(), n), // write?
            prop::collection::vec(any::<u16>(), n),  // write values
        )
            .prop_map(|(cores, pcs, addrs, writes, values)| {
                cores
                    .into_iter()
                    .zip(pcs)
                    .zip(addrs)
                    .zip(writes)
                    .zip(values)
                    .map(|((((core, pc), addr), write), value)| DmRequest {
                        core,
                        pc,
                        addr,
                        access: if write {
                            Access::Write(value)
                        } else {
                            Access::Read
                        },
                    })
                    .collect()
            })
    })
}

fn granted_core(g: &DmGrant) -> usize {
    match g {
        DmGrant::Complete { core, .. } | DmGrant::Hold { core, .. } => *core,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Single-cycle arbitration: every grant corresponds to exactly one
    /// request, no core is granted twice, and reads broadcast consistent
    /// data.
    #[test]
    fn one_cycle_grants_are_sound(reqs in dm_requests(), sync_aware in any::<bool>()) {
        let mut mem = dm();
        for a in 0..4096u16 {
            mem.poke(a, a.wrapping_mul(7));
        }
        let policy = if sync_aware { ServingPolicy::SyncAware } else { ServingPolicy::Baseline };
        let mut xbar = DXbar::new(16, policy);
        let out = xbar.arbitrate(&reqs, &mut mem);

        let requesters: BTreeSet<usize> = reqs.iter().map(|r| r.core).collect();
        let mut granted = BTreeSet::new();
        for g in &out.grants {
            let core = granted_core(g);
            prop_assert!(requesters.contains(&core), "grant without request");
            prop_assert!(granted.insert(core), "double grant for core {}", core);
            // Reads return the memory content of the requested address.
            let req = reqs.iter().find(|r| r.core == core).expect("requested");
            if req.access == Access::Read {
                let data = match g {
                    DmGrant::Complete { data, .. } | DmGrant::Hold { data, .. } => *data,
                };
                prop_assert_eq!(data, Some(mem.peek(req.addr)), "read data");
            }
        }
        // Nothing is released on the first cycle (nobody was held before).
        prop_assert!(out.releases.is_empty());
        // Baseline never holds.
        if !sync_aware {
            let all_complete = out
                .grants
                .iter()
                .all(|g| matches!(g, DmGrant::Complete { .. }));
            prop_assert!(all_complete, "baseline held a core");
        }
        // Per-bank exclusivity: at most one distinct address group served
        // per bank per cycle.
        let mut served_by_bank: Vec<BTreeSet<u16>> = vec![BTreeSet::new(); 16];
        for g in &out.grants {
            let req = reqs.iter().find(|r| r.core == granted_core(g)).expect("requested");
            served_by_bank[mem.bank_of(req.addr)].insert(req.addr);
        }
        for (bank, addrs) in served_by_bank.iter().enumerate() {
            prop_assert!(addrs.len() <= 1, "bank {} served {:?}", bank, addrs);
        }
    }

    /// Liveness and conservation over repeated cycles: re-presenting the
    /// unserved requests eventually serves every core exactly once, and
    /// every held core is eventually released.
    #[test]
    fn repeated_arbitration_serves_everyone(reqs in dm_requests(), sync_aware in any::<bool>()) {
        let mut mem = dm();
        let policy = if sync_aware { ServingPolicy::SyncAware } else { ServingPolicy::Baseline };
        let mut xbar = DXbar::new(16, policy);
        let mut pending = reqs.clone();
        let mut completed: BTreeSet<usize> = BTreeSet::new();
        let mut held: BTreeSet<usize> = BTreeSet::new();
        for _cycle in 0..64 {
            if pending.is_empty() && held.is_empty() {
                break;
            }
            let out = xbar.arbitrate(&pending, &mut mem);
            for g in &out.grants {
                let core = granted_core(g);
                pending.retain(|r| r.core != core);
                match g {
                    DmGrant::Complete { .. } => {
                        prop_assert!(completed.insert(core), "served twice");
                    }
                    DmGrant::Hold { .. } => {
                        prop_assert!(held.insert(core), "held twice");
                    }
                }
            }
            for core in &out.releases {
                prop_assert!(held.remove(core), "release without hold");
                prop_assert!(completed.insert(*core), "served twice via release");
            }
        }
        prop_assert!(pending.is_empty(), "starved requests: {:?}", pending);
        prop_assert!(held.is_empty(), "cores stuck in hold: {:?}", held);
        prop_assert_eq!(completed.len(), reqs.len());
    }

    /// The I-Xbar serves every fetch exactly once across repeated cycles,
    /// and same-address fetches always travel together (broadcast).
    #[test]
    fn ixbar_broadcast_and_liveness(
        addrs in prop::collection::vec(0u16..1024, 1..=8),
    ) {
        let mut mem = BankedMemory::new(1024, 8, BankMapping::Blocked);
        let mut xbar = IXbar::new(8);
        let mut pending: Vec<ImRequest> = addrs
            .iter()
            .enumerate()
            .map(|(core, &addr)| ImRequest { core, addr })
            .collect();
        let mut served: BTreeSet<usize> = BTreeSet::new();
        for _cycle in 0..16 {
            if pending.is_empty() {
                break;
            }
            let grants = xbar.arbitrate(&pending, &mut mem);
            // All same-address requests of a served address are granted in
            // the same cycle.
            let granted_addrs: BTreeSet<u16> = grants
                .iter()
                .map(|g| pending.iter().find(|r| r.core == g.core).expect("req").addr)
                .collect();
            for addr in &granted_addrs {
                let waiting = pending.iter().filter(|r| r.addr == *addr).count();
                let got = grants
                    .iter()
                    .filter(|g| {
                        pending.iter().any(|r| r.core == g.core && r.addr == *addr)
                    })
                    .count();
                prop_assert_eq!(waiting, got, "partial broadcast at {}", addr);
            }
            for g in &grants {
                prop_assert!(served.insert(g.core), "double fetch");
                pending.retain(|r| r.core != g.core);
            }
        }
        prop_assert!(pending.is_empty(), "starved fetches");
        prop_assert_eq!(served.len(), addrs.len());
    }
}

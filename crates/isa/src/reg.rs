//! General-purpose register names.

use std::fmt;

/// One of the eight 16-bit general-purpose registers of a ULP16 core.
///
/// `R6` is used as the stack pointer and `R7` as the link register by
/// software convention (the `JAL`/`JALR` instructions write the return
/// address to `R7`); the hardware treats all eight registers identically
/// otherwise.
///
/// # Example
///
/// ```
/// use ulp_isa::Reg;
///
/// let r = Reg::try_from(3u8).unwrap();
/// assert_eq!(r, Reg::R3);
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "r3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    /// General-purpose register 0.
    R0 = 0,
    /// General-purpose register 1.
    R1 = 1,
    /// General-purpose register 2.
    R2 = 2,
    /// General-purpose register 3.
    R3 = 3,
    /// General-purpose register 4.
    R4 = 4,
    /// General-purpose register 5.
    R5 = 5,
    /// General-purpose register 6 (stack pointer by convention).
    R6 = 6,
    /// General-purpose register 7 (link register: `JAL`/`JALR` target).
    R7 = 7,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 8] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
    ];

    /// The stack pointer by software convention (`r6`).
    pub const SP: Reg = Reg::R6;

    /// The link register (`r7`), written by `JAL` and `JALR`.
    pub const LR: Reg = Reg::R7;

    /// Returns the register index in `0..8`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from a 3-bit field, wrapping any input into range.
    ///
    /// Used by the instruction decoder where the field is 3 bits wide by
    /// construction.
    #[inline]
    pub fn from_bits(bits: u16) -> Reg {
        Reg::ALL[(bits & 0x7) as usize]
    }
}

impl TryFrom<u8> for Reg {
    type Error = InvalidRegError;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        Reg::ALL
            .get(value as usize)
            .copied()
            .ok_or(InvalidRegError(value))
    }
}

impl From<Reg> for u8 {
    fn from(value: Reg) -> Self {
        value as u8
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// Error returned when converting an out-of-range index into a [`Reg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidRegError(pub u8);

impl fmt::Display for InvalidRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "register index {} out of range 0..8", self.0)
    }
}

impl std::error::Error for InvalidRegError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::try_from(i as u8).unwrap(), *r);
            assert_eq!(Reg::from_bits(i as u16), *r);
        }
    }

    #[test]
    fn out_of_range_is_rejected() {
        assert_eq!(Reg::try_from(8), Err(InvalidRegError(8)));
        assert_eq!(
            InvalidRegError(9).to_string(),
            "register index 9 out of range 0..8"
        );
    }

    #[test]
    fn conventions() {
        assert_eq!(Reg::SP, Reg::R6);
        assert_eq!(Reg::LR, Reg::R7);
        assert_eq!(Reg::R5.to_string(), "r5");
    }

    #[test]
    fn from_bits_masks_high_bits() {
        assert_eq!(Reg::from_bits(0b1010), Reg::R2);
    }
}

//! Decode-to-IR: pre-resolved micro-operations for the compiled
//! execution tier.
//!
//! The interpreter decodes every instruction word on every fetch. The
//! compiled tier (the `ulp_jit` crate) decodes each hot basic block
//! *once* into a straight-line sequence of [`MicroOp`]s:
//! the decoded [`Instr`] plus an [`OpClass`] that tells the execution
//! engine, without further inspection, whether the operation is safe to
//! run inside a trace or marks a fidelity boundary where the trace must
//! end and the interpreter takes over.

use crate::instr::{CsrOp, Instr};

/// How an instruction behaves inside a straight-line trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Core-local: touches only registers, flags and the sequential PC.
    /// Always trace-safe.
    Pure,
    /// A data-memory access (`LD`/`ST`/`LDP`/`STP`). Trace-safe only in
    /// cycles whose whole DM request set is conflict-free and lock-free
    /// in the crossbar; otherwise the cycle is a fidelity boundary.
    Mem,
    /// Redirects the PC (`B<cond>`/`JAL`/`JR`/`JALR`/`IRET`). Core-local
    /// and therefore trace-executable, but it ends the block: the
    /// successor PC is only known at run time.
    Control,
    /// A hard fidelity boundary (`SINC`/`SDEC`/`SLEEP`/`HALT`): the
    /// instruction involves the synchronizer, the sleep/wake machinery or
    /// run termination, so the trace must hand back to the interpreter
    /// *before* executing it.
    Boundary,
}

/// One pre-resolved micro-operation of a translated block: the decoded
/// instruction with its trace classification baked in at translation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// The decoded instruction, kept verbatim so a trace that bails out
    /// mid-block leaves the core in an ordinary
    /// `Execute(instr)` state the interpreter can resume from.
    pub instr: Instr,
    /// The trace classification.
    pub class: OpClass,
}

impl MicroOp {
    /// Wraps a decoded instruction with its classification.
    pub fn new(instr: Instr) -> MicroOp {
        MicroOp {
            instr,
            class: instr.op_class(),
        }
    }
}

impl Instr {
    /// The instruction's [`OpClass`] — how the compiled tier may treat it
    /// inside a straight-line trace.
    pub fn op_class(self) -> OpClass {
        match self {
            Instr::Ld { .. } | Instr::St { .. } | Instr::LdP { .. } | Instr::StP { .. } => {
                OpClass::Mem
            }
            Instr::Branch { .. }
            | Instr::Jal { .. }
            | Instr::Jr { .. }
            | Instr::Jalr { .. }
            | Instr::Csr {
                op: CsrOp::Iret, ..
            } => OpClass::Control,
            Instr::Sinc { .. } | Instr::Sdec { .. } | Instr::Sleep | Instr::Halt => {
                OpClass::Boundary
            }
            Instr::Nop
            | Instr::Alu { .. }
            | Instr::AddI { .. }
            | Instr::CmpI { .. }
            | Instr::MovI { .. }
            | Instr::MovHi { .. }
            | Instr::Shift { .. }
            | Instr::Unary { .. }
            | Instr::Csr { .. } => OpClass::Pure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::reg::Reg;

    #[test]
    fn classes_partition_the_isa() {
        assert_eq!(Instr::Nop.op_class(), OpClass::Pure);
        assert_eq!(
            Instr::Ld {
                rd: Reg::R0,
                base: Reg::R1,
                offset: 0
            }
            .op_class(),
            OpClass::Mem
        );
        assert_eq!(
            Instr::Branch {
                cond: Cond::Al,
                offset: -1
            }
            .op_class(),
            OpClass::Control
        );
        assert_eq!(
            Instr::Csr {
                op: CsrOp::Iret,
                rd: Reg::R0
            }
            .op_class(),
            OpClass::Control,
            "IRET redirects the PC: block terminator"
        );
        assert_eq!(
            Instr::Csr {
                op: CsrOp::RdCyc,
                rd: Reg::R0
            }
            .op_class(),
            OpClass::Pure
        );
        assert_eq!(Instr::Sinc { index: 0 }.op_class(), OpClass::Boundary);
        assert_eq!(Instr::Halt.op_class(), OpClass::Boundary);
    }

    #[test]
    fn class_agrees_with_the_existing_predicates() {
        // Every memory instruction is Mem, every sync instruction is a
        // boundary, and control flow is Control — the IR classification
        // must stay consistent with the ISA predicates the interpreter
        // already relies on.
        let samples = [
            Instr::Nop,
            Instr::AddI {
                rd: Reg::R2,
                imm: -3,
            },
            Instr::St {
                rs: Reg::R0,
                base: Reg::R1,
                offset: 2,
            },
            Instr::Jal { offset: 4 },
            Instr::Sdec { index: 1 },
            Instr::Sleep,
        ];
        for instr in samples {
            let class = instr.op_class();
            // `is_mem` counts the sync ISE too (its traffic goes through
            // the synchronizer); the IR splits that off as Boundary.
            assert_eq!(
                class == OpClass::Mem,
                instr.is_mem() && !instr.is_sync(),
                "{instr:?}"
            );
            if instr.is_sync() {
                assert_eq!(class, OpClass::Boundary, "{instr:?}");
            }
            if instr.is_control() {
                assert_eq!(class, OpClass::Control, "{instr:?}");
            }
        }
    }
}

//! `ulpasm` — command-line assembler / disassembler for the ULP16 ISA.
//!
//! ```text
//! ulpasm asm    <file.s>          assemble; print an address/hex listing
//! ulpasm hex    <file.s>          assemble; print one hex word per line
//! ulpasm disasm <file.hex>        disassemble hex words (one per line,
//!                                 '#' comments ignored)
//! ```
//!
//! Exit status is non-zero on any assembly or decoding error, with the
//! offending line reported on stderr.

use std::process::ExitCode;
use ulp_isa::asm::assemble;
use ulp_isa::disasm::disassemble_word;

const USAGE: &str = "usage: ulpasm <asm|hex|disasm> <file>

  asm    <file.s>    assemble; print an address/hex listing
  hex    <file.s>    assemble; print one hex word per line
  disasm <file.hex>  disassemble hex words (one per line, '#' comments ignored)";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (Some(mode), Some(path)) = (args.get(1), args.get(2)) else {
        return usage();
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ulpasm: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mode.as_str() {
        "asm" => match assemble(&source) {
            Ok(program) => {
                print!("{}", program.listing());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ulpasm: {path}: {e}");
                ExitCode::FAILURE
            }
        },
        "hex" => match assemble(&source) {
            Ok(program) => {
                for word in program.to_vec(0, program.extent()) {
                    println!("{word:04x}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ulpasm: {path}: {e}");
                ExitCode::FAILURE
            }
        },
        "disasm" => {
            for (lineno, line) in source.lines().enumerate() {
                let text = line.split('#').next().unwrap_or("").trim();
                if text.is_empty() {
                    continue;
                }
                let Ok(word) = u16::from_str_radix(text.trim_start_matches("0x"), 16) else {
                    eprintln!("ulpasm: {path}:{}: not a hex word: {text:?}", lineno + 1);
                    return ExitCode::FAILURE;
                };
                match disassemble_word(word) {
                    Ok(instr) => println!("{instr}"),
                    Err(_) => println!(".word {word:#06x}"),
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

//! The ULP16 instruction set.

use crate::{Cond, Reg};
use std::fmt;

/// Two-operand ALU operations (`op rd, rs` — `rd` is both source and
/// destination except for [`AluOp::Cmp`], which only updates the flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `rd += rs` (sets Z N C V).
    Add,
    /// `rd -= rs` (sets Z N C V; carry is *not-borrow*).
    Sub,
    /// `rd &= rs` (sets Z N).
    And,
    /// `rd |= rs` (sets Z N).
    Or,
    /// `rd ^= rs` (sets Z N).
    Xor,
    /// `rd = rs` (flags unchanged).
    Mov,
    /// `rd = low16(rd * rs)` (sets Z N).
    Mul,
    /// `rd = high16(sign-extended rd * rs)` (sets Z N).
    Mulh,
    /// `rd += rs + C` — add with carry, for multi-word arithmetic.
    Adc,
    /// `rd -= rs + !C` — subtract with borrow.
    Sbc,
    /// Flags of `rd - rs`; `rd` unchanged.
    Cmp,
}

impl AluOp {
    /// All reg-reg ALU operations in encoding order (opcode `0x01 + i`).
    pub const ALL: [AluOp; 11] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Mov,
        AluOp::Mul,
        AluOp::Mulh,
        AluOp::Adc,
        AluOp::Sbc,
        AluOp::Cmp,
    ];

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Mov => "mov",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Adc => "adc",
            AluOp::Sbc => "sbc",
            AluOp::Cmp => "cmp",
        }
    }
}

/// Shift kinds for the `SHIFT` instruction group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftKind {
    /// Logical shift left (C = last bit shifted out).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right (sign-preserving).
    Asr,
    /// Rotate right.
    Ror,
}

impl ShiftKind {
    /// All shift kinds in encoding order.
    pub const ALL: [ShiftKind; 4] = [
        ShiftKind::Shl,
        ShiftKind::Shr,
        ShiftKind::Asr,
        ShiftKind::Ror,
    ];

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftKind::Shl => "shl",
            ShiftKind::Shr => "shr",
            ShiftKind::Asr => "asr",
            ShiftKind::Ror => "ror",
        }
    }
}

/// Single-operand (unary) operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Bitwise complement (sets Z N).
    Not,
    /// Two's-complement negation (sets Z N C V like `SUB` from zero).
    Neg,
    /// Sign-extend the low byte (sets Z N).
    Sxtb,
    /// Zero-extend the low byte (sets Z N).
    Zxtb,
    /// Swap the two bytes (sets Z N).
    Swpb,
    /// Absolute value (sets Z N; V when the input is `-32768`).
    Abs,
}

impl UnaryOp {
    /// All unary operations in encoding order (funct field).
    pub const ALL: [UnaryOp; 6] = [
        UnaryOp::Not,
        UnaryOp::Neg,
        UnaryOp::Sxtb,
        UnaryOp::Zxtb,
        UnaryOp::Swpb,
        UnaryOp::Abs,
    ];

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Not => "not",
            UnaryOp::Neg => "neg",
            UnaryOp::Sxtb => "sxtb",
            UnaryOp::Zxtb => "zxtb",
            UnaryOp::Swpb => "swpb",
            UnaryOp::Abs => "abs",
        }
    }
}

/// Control and status register operations (the `CSR` opcode group), which
/// also carries the interrupt-management instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// `rd = core id` — lets SPMD code derive per-channel addresses.
    RdId,
    /// `rd = status register` (flags + interrupt-enable).
    RdSr,
    /// `status register = rd`.
    WrSr,
    /// `rd = RSYNC` (sync-array base address register, Section IV-B).
    RdSync,
    /// `RSYNC = rd`.
    WrSync,
    /// Enable interrupts.
    Ei,
    /// Disable interrupts.
    Di,
    /// Return from interrupt (restores PC and status).
    Iret,
    /// `rd = low 16 bits of the core cycle counter` (profiling aid).
    RdCyc,
}

impl CsrOp {
    /// All CSR operations in encoding order (funct field).
    pub const ALL: [CsrOp; 9] = [
        CsrOp::RdId,
        CsrOp::RdSr,
        CsrOp::WrSr,
        CsrOp::RdSync,
        CsrOp::WrSync,
        CsrOp::Ei,
        CsrOp::Di,
        CsrOp::Iret,
        CsrOp::RdCyc,
    ];

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CsrOp::RdId => "rdid",
            CsrOp::RdSr => "rdsr",
            CsrOp::WrSr => "wrsr",
            CsrOp::RdSync => "rdsync",
            CsrOp::WrSync => "wrsync",
            CsrOp::Ei => "ei",
            CsrOp::Di => "di",
            CsrOp::Iret => "iret",
            CsrOp::RdCyc => "rdcyc",
        }
    }

    /// Whether the operation uses its `rd` operand.
    pub fn uses_rd(self) -> bool {
        !matches!(self, CsrOp::Ei | CsrOp::Di | CsrOp::Iret)
    }
}

/// A decoded ULP16 instruction.
///
/// Immediates are stored in natural signed/unsigned Rust types; the
/// [`crate::encode`] function validates their ranges against the binary
/// format (see the field documentation for each variant).
///
/// The synchronization ISE of the paper consists of [`Instr::Sinc`] and
/// [`Instr::Sdec`]: both perform an atomic read-modify-write of the sync
/// word at `RSYNC + index` through the hardware synchronizer, asserting the
/// core's *lock* output for the duration; `SDEC` additionally puts the core
/// to sleep until the synchronizer wakes it (Section IV of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Two-operand ALU operation `op rd, rs`.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination (and first source) register.
        rd: Reg,
        /// Second source register.
        rs: Reg,
    },
    /// `rd += imm` — signed 5-bit immediate in `-16..=15` (sets Z N C V).
    AddI {
        /// Destination register.
        rd: Reg,
        /// Signed immediate, `-16..=15`.
        imm: i8,
    },
    /// Flags of `rd - imm` — signed 5-bit immediate in `-16..=15`.
    CmpI {
        /// Register compared.
        rd: Reg,
        /// Signed immediate, `-16..=15`.
        imm: i8,
    },
    /// `rd = imm` — zero-extended 8-bit immediate.
    MovI {
        /// Destination register.
        rd: Reg,
        /// Unsigned immediate, `0..=255`.
        imm: u8,
    },
    /// `rd = (imm << 8) | (rd & 0xFF)` — sets the high byte.
    MovHi {
        /// Destination register.
        rd: Reg,
        /// Unsigned immediate, `0..=255`.
        imm: u8,
    },
    /// Shift/rotate `rd` by a constant amount `0..=15`.
    Shift {
        /// Shift kind.
        kind: ShiftKind,
        /// Destination register.
        rd: Reg,
        /// Shift amount, `0..=15`.
        amount: u8,
    },
    /// Unary operation on `rd`.
    Unary {
        /// The operation.
        op: UnaryOp,
        /// Destination register.
        rd: Reg,
    },
    /// `rd = DM[rs + offset]` — signed 5-bit word offset.
    Ld {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed word offset, `-16..=15`.
        offset: i8,
    },
    /// `DM[base + offset] = rs`.
    St {
        /// Source register (value stored).
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Signed word offset, `-16..=15`.
        offset: i8,
    },
    /// `rd = DM[base]; base += 1` — load with post-increment.
    LdP {
        /// Destination register.
        rd: Reg,
        /// Base address register (incremented after the access).
        base: Reg,
    },
    /// `DM[base] = rs; base += 1` — store with post-increment.
    StP {
        /// Source register (value stored).
        rs: Reg,
        /// Base address register (incremented after the access).
        base: Reg,
    },
    /// Conditional PC-relative branch; `offset` is in words relative to the
    /// *next* instruction, `-128..=127`.
    Branch {
        /// Condition evaluated against the status flags.
        cond: Cond,
        /// Signed word offset from PC+1, `-128..=127`.
        offset: i16,
    },
    /// Jump and link: `r7 = PC + 1; PC += 1 + offset` with
    /// `offset` in `-1024..=1023`.
    Jal {
        /// Signed word offset from PC+1, `-1024..=1023`.
        offset: i16,
    },
    /// Jump register: `PC = rs`.
    Jr {
        /// Register holding the target address.
        rs: Reg,
    },
    /// Jump and link register: `r7 = PC + 1; PC = rs`.
    Jalr {
        /// Register holding the target address.
        rs: Reg,
    },
    /// **ISE** — synchronization check-in at sync point `index`
    /// (Section IV-B-a of the paper).
    Sinc {
        /// Sync-point index into the array based at `RSYNC`.
        index: u8,
    },
    /// **ISE** — synchronization check-out at sync point `index`; the core
    /// sleeps until every checked-in core has checked out
    /// (Section IV-B-b of the paper).
    Sdec {
        /// Sync-point index into the array based at `RSYNC`.
        index: u8,
    },
    /// Enter sleep mode until a wake-up event (external clock gating of the
    /// entire core, Section III of the paper).
    Sleep,
    /// Halt the core permanently (simulation end marker).
    Halt,
    /// Control/status register operation.
    Csr {
        /// The operation.
        op: CsrOp,
        /// Operand register (ignored by `EI`/`DI`/`IRET`).
        rd: Reg,
    },
}

impl Instr {
    /// Whether executing this instruction accesses data memory (including
    /// the sync-word accesses performed by the synchronization ISE).
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            Instr::Ld { .. }
                | Instr::St { .. }
                | Instr::LdP { .. }
                | Instr::StP { .. }
                | Instr::Sinc { .. }
                | Instr::Sdec { .. }
        )
    }

    /// Whether this instruction can change the PC to a non-sequential value.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Instr::Branch { .. }
                | Instr::Jal { .. }
                | Instr::Jr { .. }
                | Instr::Jalr { .. }
                | Instr::Csr {
                    op: CsrOp::Iret,
                    ..
                }
        )
    }

    /// Whether this instruction is part of the synchronization ISE.
    pub fn is_sync(self) -> bool {
        matches!(self, Instr::Sinc { .. } | Instr::Sdec { .. })
    }

    /// Whether this instruction counts as a *useful operation* for the
    /// paper's Ops/s workload metric (everything except `NOP`, `SLEEP`,
    /// `HALT` and the synchronization ISE, which are pure overhead).
    pub fn is_useful_op(self) -> bool {
        !matches!(
            self,
            Instr::Nop | Instr::Sleep | Instr::Halt | Instr::Sinc { .. } | Instr::Sdec { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::disasm::disassemble(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Instr::Ld {
            rd: Reg::R0,
            base: Reg::R1,
            offset: 0
        }
        .is_mem());
        assert!(Instr::Sinc { index: 3 }.is_mem());
        assert!(Instr::Sinc { index: 3 }.is_sync());
        assert!(!Instr::Sinc { index: 3 }.is_useful_op());
        assert!(Instr::Branch {
            cond: Cond::Eq,
            offset: -4
        }
        .is_control());
        assert!(Instr::Csr {
            op: CsrOp::Iret,
            rd: Reg::R0
        }
        .is_control());
        assert!(Instr::Alu {
            op: AluOp::Add,
            rd: Reg::R0,
            rs: Reg::R1
        }
        .is_useful_op());
        assert!(!Instr::Nop.is_useful_op());
        assert!(!Instr::Halt.is_useful_op());
    }

    #[test]
    fn mnemonics_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for op in AluOp::ALL {
            assert!(seen.insert(op.mnemonic()));
        }
        for op in UnaryOp::ALL {
            assert!(seen.insert(op.mnemonic()));
        }
        for op in CsrOp::ALL {
            assert!(seen.insert(op.mnemonic()));
        }
        for k in ShiftKind::ALL {
            assert!(seen.insert(k.mnemonic()));
        }
    }

    #[test]
    fn csr_rd_usage() {
        assert!(CsrOp::RdId.uses_rd());
        assert!(!CsrOp::Ei.uses_rd());
        assert!(!CsrOp::Iret.uses_rd());
    }
}

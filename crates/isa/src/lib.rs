//! # ULP16 — the 16-bit RISC instruction set of the ULP multi-core platform
//!
//! This crate defines the complete instruction set architecture of the
//! custom 16-bit reduced-instruction-set cores used by the ultra-low-power
//! (ULP) multi-channel biosignal analysis platform of Dogan et al.,
//! *"Synchronizing Code Execution on Ultra-Low-Power Embedded Multi-Channel
//! Signal Analysis Platforms"*, DATE 2013.
//!
//! It provides:
//!
//! * [`Instr`] — the instruction set itself, including interrupt and sleep
//!   mode support and the paper's instruction-set extension (ISE) for
//!   barrier synchronization: [`Instr::Sinc`] (check-in) and [`Instr::Sdec`]
//!   (check-out), cf. Section IV-B of the paper;
//! * binary [`encode`]/[`decode`] to and from the 16-bit machine word format;
//! * a two-pass [`asm`] assembler with labels, expressions, directives and
//!   pseudo-instructions;
//! * a [`disasm`] disassembler producing assembler-compatible text.
//!
//! The architectural parameters of the platform (memory geometry, register
//! count, vectors) live in [`arch`].
//!
//! ## Example
//!
//! ```
//! use ulp_isa::{asm::assemble, Instr, decode};
//!
//! let program = assemble(
//!     "start:  MOVI  r0, #40
//!             ADDI  r0, #2
//!             HALT",
//! ).expect("valid assembly");
//! let words = program.to_vec(0, 3);
//! assert_eq!(decode(words[2]).unwrap(), Instr::Halt);
//! ```

pub mod arch;
pub mod asm;
mod cond;
pub mod disasm;
mod encode;
mod instr;
pub mod ir;
mod reg;

#[cfg(test)]
pub(crate) use encode::tests::sample_instrs as encode_test_samples;

pub use cond::{Cond, Flags};
pub use encode::{decode, encode, DecodeError, EncodeError};
pub use instr::{AluOp, CsrOp, Instr, ShiftKind, UnaryOp};
pub use ir::{MicroOp, OpClass};
pub use reg::{InvalidRegError, Reg};

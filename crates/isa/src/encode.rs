//! Binary encoding and decoding of ULP16 instructions.
//!
//! Every instruction is one 16-bit word with a 5-bit primary opcode in bits
//! 15..11. Field layout per format:
//!
//! ```text
//! reg-reg ALU     [ op:5 | rd:3 | rs:3 | 00000   ]
//! reg-imm5        [ op:5 | rd:3 | 000  | imm5    ]   (imm5 two's complement)
//! reg-imm8        [ op:5 | rd:3 |       imm8     ]
//! shift           [ op:5 | rd:3 | 00 | k:2 | n:4 ]
//! unary / csr     [ op:5 | rd:3 | 000  | funct:5 ]
//! load/store      [ op:5 | rd:3 | rs:3 | imm5    ]
//! branch          [ op:5 | cond:3 |     off8     ]   (off8 two's complement)
//! jal             [ op:5 |         off11         ]
//! jr/jalr         [ op:5 | 000 | rs:3  | 00000   ]
//! sinc/sdec       [ op:5 | 000 |       imm8      ]
//! nop/sleep/halt  [ op:5 |        all zero       ]
//! ```
//!
//! Decoding is *strict*: reserved bits must be zero and reserved funct
//! values are rejected, so that `encode` and `decode` are exact inverses on
//! their respective domains.

use crate::{AluOp, Cond, CsrOp, Instr, Reg, ShiftKind, UnaryOp};
use std::fmt;

// Primary opcodes.
const OP_NOP: u16 = 0x00;
const OP_ALU_BASE: u16 = 0x01; // 0x01..=0x0B, AluOp::ALL order
const OP_ADDI: u16 = 0x0C;
const OP_CMPI: u16 = 0x0D;
const OP_MOVI: u16 = 0x0E;
const OP_MOVHI: u16 = 0x0F;
const OP_SHIFT: u16 = 0x10;
const OP_UNARY: u16 = 0x11;
const OP_LD: u16 = 0x12;
const OP_ST: u16 = 0x13;
const OP_LDP: u16 = 0x14;
const OP_STP: u16 = 0x15;
const OP_B: u16 = 0x16;
const OP_JAL: u16 = 0x17;
const OP_JR: u16 = 0x18;
const OP_JALR: u16 = 0x19;
const OP_SINC: u16 = 0x1A;
const OP_SDEC: u16 = 0x1B;
const OP_SLEEP: u16 = 0x1C;
const OP_HALT: u16 = 0x1D;
const OP_CSR: u16 = 0x1E;

/// Error produced when an [`Instr`] carries a field outside its binary range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// A signed 5-bit immediate outside `-16..=15`.
    Imm5OutOfRange(i16),
    /// A shift amount outside `0..=15`.
    ShiftOutOfRange(u8),
    /// A branch offset outside `-128..=127`.
    BranchOutOfRange(i16),
    /// A `JAL` offset outside `-1024..=1023`.
    JalOutOfRange(i16),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Imm5OutOfRange(v) => {
                write!(f, "immediate {v} outside signed 5-bit range -16..=15")
            }
            EncodeError::ShiftOutOfRange(v) => {
                write!(f, "shift amount {v} outside range 0..=15")
            }
            EncodeError::BranchOutOfRange(v) => {
                write!(f, "branch offset {v} outside signed 8-bit range -128..=127")
            }
            EncodeError::JalOutOfRange(v) => {
                write!(f, "jal offset {v} outside signed 11-bit range -1024..=1023")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error produced when decoding a 16-bit word that is not a valid
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending machine word.
    pub word: u16,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "word {:#06x} is not a valid ULP16 instruction",
            self.word
        )
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn imm5(v: i8) -> Result<u16, EncodeError> {
    if (-16..=15).contains(&v) {
        Ok((v as u16) & 0x1F)
    } else {
        Err(EncodeError::Imm5OutOfRange(v as i16))
    }
}

#[inline]
fn rr(op: u16, rd: Reg, rs: Reg, low: u16) -> u16 {
    op << 11 | (rd.index() as u16) << 8 | (rs.index() as u16) << 5 | low
}

/// Encodes an instruction into its 16-bit machine word.
///
/// # Errors
///
/// Returns an [`EncodeError`] if an immediate or offset field lies outside
/// the range representable by the binary format.
///
/// # Example
///
/// ```
/// use ulp_isa::{encode, decode, Instr, Reg};
///
/// let word = encode(Instr::MovI { rd: Reg::R2, imm: 7 }).unwrap();
/// assert_eq!(decode(word).unwrap(), Instr::MovI { rd: Reg::R2, imm: 7 });
/// ```
pub fn encode(instr: Instr) -> Result<u16, EncodeError> {
    Ok(match instr {
        Instr::Nop => OP_NOP << 11,
        Instr::Alu { op, rd, rs } => {
            let idx = AluOp::ALL.iter().position(|o| *o == op).expect("in ALL") as u16;
            rr(OP_ALU_BASE + idx, rd, rs, 0)
        }
        Instr::AddI { rd, imm } => OP_ADDI << 11 | (rd.index() as u16) << 8 | imm5(imm)?,
        Instr::CmpI { rd, imm } => OP_CMPI << 11 | (rd.index() as u16) << 8 | imm5(imm)?,
        Instr::MovI { rd, imm } => OP_MOVI << 11 | (rd.index() as u16) << 8 | imm as u16,
        Instr::MovHi { rd, imm } => OP_MOVHI << 11 | (rd.index() as u16) << 8 | imm as u16,
        Instr::Shift { kind, rd, amount } => {
            if amount > 15 {
                return Err(EncodeError::ShiftOutOfRange(amount));
            }
            let k = ShiftKind::ALL
                .iter()
                .position(|x| *x == kind)
                .expect("in ALL") as u16;
            OP_SHIFT << 11 | (rd.index() as u16) << 8 | k << 4 | amount as u16
        }
        Instr::Unary { op, rd } => {
            let funct = UnaryOp::ALL.iter().position(|o| *o == op).expect("in ALL") as u16;
            OP_UNARY << 11 | (rd.index() as u16) << 8 | funct
        }
        Instr::Ld { rd, base, offset } => rr(OP_LD, rd, base, imm5(offset)?),
        Instr::St { rs, base, offset } => rr(OP_ST, rs, base, imm5(offset)?),
        Instr::LdP { rd, base } => rr(OP_LDP, rd, base, 0),
        Instr::StP { rs, base } => rr(OP_STP, rs, base, 0),
        Instr::Branch { cond, offset } => {
            if !(-128..=127).contains(&offset) {
                return Err(EncodeError::BranchOutOfRange(offset));
            }
            OP_B << 11 | (cond as u16) << 8 | (offset as u16 & 0xFF)
        }
        Instr::Jal { offset } => {
            if !(-1024..=1023).contains(&offset) {
                return Err(EncodeError::JalOutOfRange(offset));
            }
            OP_JAL << 11 | (offset as u16 & 0x7FF)
        }
        Instr::Jr { rs } => OP_JR << 11 | (rs.index() as u16) << 5,
        Instr::Jalr { rs } => OP_JALR << 11 | (rs.index() as u16) << 5,
        Instr::Sinc { index } => OP_SINC << 11 | index as u16,
        Instr::Sdec { index } => OP_SDEC << 11 | index as u16,
        Instr::Sleep => OP_SLEEP << 11,
        Instr::Halt => OP_HALT << 11,
        Instr::Csr { op, rd } => {
            let funct = CsrOp::ALL.iter().position(|o| *o == op).expect("in ALL") as u16;
            let rd_bits = if op.uses_rd() { rd.index() as u16 } else { 0 };
            OP_CSR << 11 | rd_bits << 8 | funct
        }
    })
}

#[inline]
fn sext5(bits: u16) -> i8 {
    ((bits as i16) << 11 >> 11) as i8
}

/// Decodes a 16-bit machine word into an instruction.
///
/// Decoding is strict: reserved bits must be zero, so `decode` is the exact
/// inverse of [`encode`].
///
/// # Errors
///
/// Returns [`DecodeError`] for reserved opcodes, non-zero reserved bits or
/// out-of-range funct values.
pub fn decode(word: u16) -> Result<Instr, DecodeError> {
    let op = word >> 11;
    let rd = Reg::from_bits(word >> 8);
    let rs = Reg::from_bits(word >> 5);
    let low5 = word & 0x1F;
    let low8 = word & 0xFF;
    let err = Err(DecodeError { word });

    let require = |cond: bool, instr: Instr| if cond { Ok(instr) } else { err };

    match op {
        OP_NOP => require(word == 0, Instr::Nop),
        o if (OP_ALU_BASE..OP_ALU_BASE + AluOp::ALL.len() as u16).contains(&o) => {
            let alu = AluOp::ALL[(o - OP_ALU_BASE) as usize];
            require(low5 == 0, Instr::Alu { op: alu, rd, rs })
        }
        OP_ADDI => require(
            word & 0xE0 == 0,
            Instr::AddI {
                rd,
                imm: sext5(low5),
            },
        ),
        OP_CMPI => require(
            word & 0xE0 == 0,
            Instr::CmpI {
                rd,
                imm: sext5(low5),
            },
        ),
        OP_MOVI => Ok(Instr::MovI {
            rd,
            imm: low8 as u8,
        }),
        OP_MOVHI => Ok(Instr::MovHi {
            rd,
            imm: low8 as u8,
        }),
        OP_SHIFT => {
            let kind = ShiftKind::ALL[((word >> 4) & 0x3) as usize];
            require(
                word & 0xC0 == 0,
                Instr::Shift {
                    kind,
                    rd,
                    amount: (word & 0xF) as u8,
                },
            )
        }
        OP_UNARY => match UnaryOp::ALL.get(low5 as usize) {
            Some(&u) if word & 0xE0 == 0 => Ok(Instr::Unary { op: u, rd }),
            _ => err,
        },
        OP_LD => Ok(Instr::Ld {
            rd,
            base: rs,
            offset: sext5(low5),
        }),
        OP_ST => Ok(Instr::St {
            rs: rd,
            base: rs,
            offset: sext5(low5),
        }),
        OP_LDP => require(low5 == 0, Instr::LdP { rd, base: rs }),
        OP_STP => require(low5 == 0, Instr::StP { rs: rd, base: rs }),
        OP_B => Ok(Instr::Branch {
            cond: Cond::from_bits(word >> 8),
            offset: (low8 as i8) as i16,
        }),
        OP_JAL => Ok(Instr::Jal {
            offset: ((word & 0x7FF) as i16) << 5 >> 5,
        }),
        OP_JR => require(word & 0x71F == 0, Instr::Jr { rs }),
        OP_JALR => require(word & 0x71F == 0, Instr::Jalr { rs }),
        OP_SINC => require(word & 0x700 == 0, Instr::Sinc { index: low8 as u8 }),
        OP_SDEC => require(word & 0x700 == 0, Instr::Sdec { index: low8 as u8 }),
        OP_SLEEP => require(word & 0x7FF == 0, Instr::Sleep),
        OP_HALT => require(word & 0x7FF == 0, Instr::Halt),
        OP_CSR => match CsrOp::ALL.get(low5 as usize) {
            Some(&c) if word & 0xE0 == 0 && (c.uses_rd() || word & 0x700 == 0) => {
                Ok(Instr::Csr { op: c, rd })
            }
            _ => err,
        },
        _ => err,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A representative instruction of every format with edge-case fields.
    pub(crate) fn sample_instrs() -> Vec<Instr> {
        let mut v = vec![
            Instr::Nop,
            Instr::Sleep,
            Instr::Halt,
            Instr::Jal { offset: -1024 },
            Instr::Jal { offset: 1023 },
            Instr::Jal { offset: 0 },
            Instr::Jr { rs: Reg::R7 },
            Instr::Jalr { rs: Reg::R0 },
            Instr::Sinc { index: 0 },
            Instr::Sinc { index: 255 },
            Instr::Sdec { index: 17 },
        ];
        for op in AluOp::ALL {
            v.push(Instr::Alu {
                op,
                rd: Reg::R3,
                rs: Reg::R5,
            });
        }
        for op in UnaryOp::ALL {
            v.push(Instr::Unary { op, rd: Reg::R1 });
        }
        for op in CsrOp::ALL {
            // rd is a don't-care for EI/DI/IRET; the canonical form uses r0.
            let rd = if op.uses_rd() { Reg::R2 } else { Reg::R0 };
            v.push(Instr::Csr { op, rd });
        }
        for kind in ShiftKind::ALL {
            v.push(Instr::Shift {
                kind,
                rd: Reg::R6,
                amount: 15,
            });
        }
        for imm in [-16i8, -1, 0, 15] {
            v.push(Instr::AddI { rd: Reg::R0, imm });
            v.push(Instr::CmpI { rd: Reg::R7, imm });
            v.push(Instr::Ld {
                rd: Reg::R4,
                base: Reg::R2,
                offset: imm,
            });
            v.push(Instr::St {
                rs: Reg::R4,
                base: Reg::R2,
                offset: imm,
            });
        }
        for imm in [0u8, 1, 127, 255] {
            v.push(Instr::MovI { rd: Reg::R5, imm });
            v.push(Instr::MovHi { rd: Reg::R5, imm });
        }
        v.push(Instr::LdP {
            rd: Reg::R1,
            base: Reg::R2,
        });
        v.push(Instr::StP {
            rs: Reg::R3,
            base: Reg::R4,
        });
        for offset in [-128i16, -1, 0, 127] {
            v.push(Instr::Branch {
                cond: Cond::Ult,
                offset,
            });
        }
        for cond in Cond::ALL {
            v.push(Instr::Branch { cond, offset: 5 });
        }
        v
    }

    #[test]
    fn round_trip_samples() {
        for instr in sample_instrs() {
            let word = encode(instr).unwrap_or_else(|e| panic!("{instr:?}: {e}"));
            let back = decode(word).unwrap_or_else(|e| panic!("{instr:?} -> {word:#06x}: {e}"));
            assert_eq!(back, instr, "word {word:#06x}");
        }
    }

    #[test]
    fn exhaustive_word_space_bijection() {
        // decode is the inverse of encode over the *entire* 16-bit space:
        // every word either fails to decode or round-trips to itself.
        let mut valid = 0u32;
        for word in 0..=u16::MAX {
            if let Ok(instr) = decode(word) {
                assert_eq!(
                    encode(instr).expect("decoded instruction must encode"),
                    word,
                    "{instr:?}"
                );
                valid += 1;
            }
        }
        // Sanity: a substantial but bounded portion of the space is valid.
        assert!(valid > 10_000, "valid encodings: {valid}");
        assert!(valid < 40_000, "valid encodings: {valid}");
    }

    #[test]
    fn out_of_range_fields_are_rejected() {
        assert_eq!(
            encode(Instr::AddI {
                rd: Reg::R0,
                imm: 16
            }),
            Err(EncodeError::Imm5OutOfRange(16))
        );
        assert_eq!(
            encode(Instr::Ld {
                rd: Reg::R0,
                base: Reg::R1,
                offset: -17
            }),
            Err(EncodeError::Imm5OutOfRange(-17))
        );
        assert_eq!(
            encode(Instr::Shift {
                kind: ShiftKind::Shl,
                rd: Reg::R0,
                amount: 16
            }),
            Err(EncodeError::ShiftOutOfRange(16))
        );
        assert_eq!(
            encode(Instr::Branch {
                cond: Cond::Al,
                offset: 128
            }),
            Err(EncodeError::BranchOutOfRange(128))
        );
        assert_eq!(
            encode(Instr::Jal { offset: 1024 }),
            Err(EncodeError::JalOutOfRange(1024))
        );
    }

    #[test]
    fn reserved_encodings_fail() {
        // Reserved primary opcode 0x1F.
        assert!(decode(0x1F << 11).is_err());
        // NOP with non-zero payload.
        assert!(decode(0x0001).is_err());
        // ALU with non-zero funct bits.
        assert!(decode(
            encode(Instr::Alu {
                op: AluOp::Add,
                rd: Reg::R0,
                rs: Reg::R0
            })
            .unwrap()
                | 1
        )
        .is_err());
        // UNARY with funct 6 (reserved).
        assert!(decode(OP_UNARY << 11 | 6).is_err());
        // CSR with funct 9 (reserved).
        assert!(decode(OP_CSR << 11 | 9).is_err());
        // EI with a non-zero rd field.
        let ei_funct = CsrOp::ALL.iter().position(|o| *o == CsrOp::Ei).unwrap() as u16;
        assert!(decode(OP_CSR << 11 | 1 << 8 | ei_funct).is_err());
    }

    #[test]
    fn error_display() {
        assert_eq!(
            DecodeError { word: 0xF800 }.to_string(),
            "word 0xf800 is not a valid ULP16 instruction"
        );
        assert_eq!(
            EncodeError::JalOutOfRange(2000).to_string(),
            "jal offset 2000 outside signed 11-bit range -1024..=1023"
        );
    }
}

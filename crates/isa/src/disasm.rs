//! Disassembly of ULP16 instructions into assembler-compatible text.

use crate::{decode, Cond, DecodeError, Instr};

/// Renders an instruction as assembler text.
///
/// The output is accepted verbatim by the [`crate::asm`] assembler, which is
/// exercised by the `asm_disasm` round-trip tests.
///
/// # Example
///
/// ```
/// use ulp_isa::{disasm::disassemble, Instr, Reg};
///
/// let text = disassemble(Instr::Ld { rd: Reg::R1, base: Reg::R6, offset: -2 });
/// assert_eq!(text, "ld r1, [r6, #-2]");
/// ```
pub fn disassemble(instr: Instr) -> String {
    match instr {
        Instr::Nop => "nop".to_string(),
        Instr::Alu { op, rd, rs } => format!("{} {rd}, {rs}", op.mnemonic()),
        Instr::AddI { rd, imm } => format!("addi {rd}, #{imm}"),
        Instr::CmpI { rd, imm } => format!("cmpi {rd}, #{imm}"),
        Instr::MovI { rd, imm } => format!("movi {rd}, #{imm}"),
        Instr::MovHi { rd, imm } => format!("movhi {rd}, #{imm}"),
        Instr::Shift { kind, rd, amount } => format!("{} {rd}, #{amount}", kind.mnemonic()),
        Instr::Unary { op, rd } => format!("{} {rd}", op.mnemonic()),
        Instr::Ld { rd, base, offset } => {
            if offset == 0 {
                format!("ld {rd}, [{base}]")
            } else {
                format!("ld {rd}, [{base}, #{offset}]")
            }
        }
        Instr::St { rs, base, offset } => {
            if offset == 0 {
                format!("st {rs}, [{base}]")
            } else {
                format!("st {rs}, [{base}, #{offset}]")
            }
        }
        Instr::LdP { rd, base } => format!("ldp {rd}, [{base}]"),
        Instr::StP { rs, base } => format!("stp {rs}, [{base}]"),
        Instr::Branch { cond, offset } => {
            if cond == Cond::Al {
                format!("br #{offset}")
            } else {
                format!("b{} #{offset}", cond.suffix())
            }
        }
        Instr::Jal { offset } => format!("jal #{offset}"),
        Instr::Jr { rs } => format!("jr {rs}"),
        Instr::Jalr { rs } => format!("jalr {rs}"),
        Instr::Sinc { index } => format!("sinc #{index}"),
        Instr::Sdec { index } => format!("sdec #{index}"),
        Instr::Sleep => "sleep".to_string(),
        Instr::Halt => "halt".to_string(),
        Instr::Csr { op, rd } => {
            if op.uses_rd() {
                format!("{} {rd}", op.mnemonic())
            } else {
                op.mnemonic().to_string()
            }
        }
    }
}

/// Decodes and disassembles a raw machine word.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word is not a valid instruction.
pub fn disassemble_word(word: u16) -> Result<String, DecodeError> {
    decode(word).map(disassemble)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Reg};

    #[test]
    fn representative_text() {
        assert_eq!(disassemble(Instr::Nop), "nop");
        assert_eq!(
            disassemble(Instr::Alu {
                op: AluOp::Add,
                rd: Reg::R1,
                rs: Reg::R2
            }),
            "add r1, r2"
        );
        assert_eq!(
            disassemble(Instr::Branch {
                cond: Cond::Eq,
                offset: -3
            }),
            "beq #-3"
        );
        assert_eq!(
            disassemble(Instr::Branch {
                cond: Cond::Al,
                offset: 3
            }),
            "br #3"
        );
        assert_eq!(disassemble(Instr::Sinc { index: 7 }), "sinc #7");
        assert_eq!(
            disassemble(Instr::Ld {
                rd: Reg::R0,
                base: Reg::R1,
                offset: 0
            }),
            "ld r0, [r1]"
        );
    }

    #[test]
    fn word_disassembly() {
        let word = crate::encode(Instr::Halt).unwrap();
        assert_eq!(disassemble_word(word).unwrap(), "halt");
        assert!(disassemble_word(0xF800).is_err());
    }
}

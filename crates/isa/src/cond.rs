//! Branch condition codes and their evaluation against the status flags.

use std::fmt;

/// The four arithmetic status flags of a ULP16 core.
///
/// * `z` — zero: the result was zero.
/// * `n` — negative: bit 15 of the result.
/// * `c` — carry: carry out of additions; **not-borrow** for subtractions
///   (`c == true` means no borrow occurred, i.e. unsigned `a >= b`).
/// * `v` — signed overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags {
    /// Zero flag.
    pub z: bool,
    /// Negative flag (bit 15 of the result).
    pub n: bool,
    /// Carry flag (not-borrow for subtraction).
    pub c: bool,
    /// Signed overflow flag.
    pub v: bool,
}

impl Flags {
    /// Packs the flags into the low nibble of a status word
    /// (bit 0 = Z, 1 = N, 2 = C, 3 = V).
    pub fn to_bits(self) -> u16 {
        (self.z as u16) | (self.n as u16) << 1 | (self.c as u16) << 2 | (self.v as u16) << 3
    }

    /// Unpacks flags from the low nibble of a status word.
    pub fn from_bits(bits: u16) -> Flags {
        Flags {
            z: bits & 1 != 0,
            n: bits & 2 != 0,
            c: bits & 4 != 0,
            v: bits & 8 != 0,
        }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = |x: bool, ch: char| if x { ch } else { '-' };
        write!(
            f,
            "{}{}{}{}",
            b(self.z, 'Z'),
            b(self.n, 'N'),
            b(self.c, 'C'),
            b(self.v, 'V')
        )
    }
}

/// Condition code of a conditional branch (`B<cond>`).
///
/// Signed comparisons use the usual N/V/Z combinations; [`Cond::Ult`]
/// provides the unsigned less-than test based on the carry (not-borrow)
/// flag produced by `CMP`/`SUB`.
///
/// # Example
///
/// ```
/// use ulp_isa::{Cond, Flags};
///
/// // After `CMP r0, r1` with r0 == r1:
/// let flags = Flags { z: true, n: false, c: true, v: false };
/// assert!(Cond::Eq.eval(flags));
/// assert!(Cond::Ge.eval(flags));
/// assert!(!Cond::Lt.eval(flags));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Always taken.
    Al = 0,
    /// Equal (`Z`).
    Eq = 1,
    /// Not equal (`!Z`).
    Ne = 2,
    /// Signed less-than (`N != V`).
    Lt = 3,
    /// Signed greater-or-equal (`N == V`).
    Ge = 4,
    /// Signed greater-than (`!Z && N == V`).
    Gt = 5,
    /// Signed less-or-equal (`Z || N != V`).
    Le = 6,
    /// Unsigned less-than (`!C`, i.e. a borrow occurred).
    Ult = 7,
}

impl Cond {
    /// All condition codes in encoding order.
    pub const ALL: [Cond; 8] = [
        Cond::Al,
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Ge,
        Cond::Gt,
        Cond::Le,
        Cond::Ult,
    ];

    /// Builds a condition from its 3-bit encoding field.
    #[inline]
    pub fn from_bits(bits: u16) -> Cond {
        Cond::ALL[(bits & 0x7) as usize]
    }

    /// Evaluates the condition against a set of status flags.
    #[inline]
    pub fn eval(self, f: Flags) -> bool {
        match self {
            Cond::Al => true,
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Lt => f.n != f.v,
            Cond::Ge => f.n == f.v,
            Cond::Gt => !f.z && f.n == f.v,
            Cond::Le => f.z || f.n != f.v,
            Cond::Ult => !f.c,
        }
    }

    /// The assembler suffix of this condition (`""` for always).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Al => "",
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Ult => "ult",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Cond::Al {
            write!(f, "al")
        } else {
            write!(f, "{}", self.suffix())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags_of_cmp(a: i16, b: i16) -> Flags {
        // Reference semantics of CMP: flags of a - b.
        let (res, borrow) = (a as u16).overflowing_sub(b as u16);
        let sres = (a as i32) - (b as i32);
        Flags {
            z: res == 0,
            n: res & 0x8000 != 0,
            c: !borrow,
            v: sres < i16::MIN as i32 || sres > i16::MAX as i32,
        }
    }

    #[test]
    fn signed_comparisons() {
        let cases: [(i16, i16); 8] = [
            (0, 0),
            (1, 2),
            (2, 1),
            (-5, 3),
            (3, -5),
            (i16::MIN, i16::MAX),
            (i16::MAX, i16::MIN),
            (-1, -1),
        ];
        for (a, b) in cases {
            let f = flags_of_cmp(a, b);
            assert_eq!(Cond::Eq.eval(f), a == b, "eq {a} {b}");
            assert_eq!(Cond::Ne.eval(f), a != b, "ne {a} {b}");
            assert_eq!(Cond::Lt.eval(f), a < b, "lt {a} {b}");
            assert_eq!(Cond::Ge.eval(f), a >= b, "ge {a} {b}");
            assert_eq!(Cond::Gt.eval(f), a > b, "gt {a} {b}");
            assert_eq!(Cond::Le.eval(f), a <= b, "le {a} {b}");
            assert!(Cond::Al.eval(f));
        }
    }

    #[test]
    fn unsigned_comparison() {
        for (a, b) in [(0u16, 1u16), (1, 0), (0xFFFF, 1), (1, 0xFFFF), (7, 7)] {
            let f = flags_of_cmp(a as i16, b as i16);
            assert_eq!(Cond::Ult.eval(f), a < b, "ult {a} {b}");
        }
    }

    #[test]
    fn flags_bits_round_trip() {
        for bits in 0..16u16 {
            assert_eq!(Flags::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn display() {
        assert_eq!(
            Flags {
                z: true,
                n: false,
                c: true,
                v: false
            }
            .to_string(),
            "Z-C-"
        );
        assert_eq!(Cond::Ult.to_string(), "ult");
        assert_eq!(Cond::Al.to_string(), "al");
    }

    #[test]
    fn from_bits_covers_all() {
        for (i, c) in Cond::ALL.iter().enumerate() {
            assert_eq!(Cond::from_bits(i as u16), *c);
        }
    }
}

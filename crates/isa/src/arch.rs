//! Architectural constants of the ULP multi-core platform.
//!
//! These mirror the platform described in Section III of the paper: 8
//! processing cores, a shared 96 kByte instruction memory divided into 8
//! banks and a shared 64 kByte data memory divided into 16 banks. Both
//! memories are 16-bit *word addressed*; all sizes below are given in words.

/// Number of processing cores in the reference platform (Fig. 1).
pub const NUM_CORES: usize = 8;

/// Number of general-purpose registers per core (`r0` … `r7`).
pub const NUM_REGS: usize = 8;

/// Instruction memory size in 16-bit words (96 kByte).
pub const IM_WORDS: usize = 48 * 1024;

/// Number of instruction memory banks.
pub const IM_BANKS: usize = 8;

/// Words per instruction memory bank.
pub const IM_BANK_WORDS: usize = IM_WORDS / IM_BANKS;

/// Data memory size in 16-bit words (64 kByte).
pub const DM_WORDS: usize = 32 * 1024;

/// Number of data memory banks.
pub const DM_BANKS: usize = 16;

/// Words per data memory bank.
pub const DM_BANK_WORDS: usize = DM_WORDS / DM_BANKS;

/// Reset vector: the word address where execution starts after reset.
pub const RESET_VECTOR: u16 = 0x0000;

/// Interrupt vector: the word address the core jumps to when accepting an
/// external interrupt (with interrupts enabled via `EI`).
pub const IRQ_VECTOR: u16 = 0x0001;

/// Maximum number of synchronization points addressable by the `SINC`/`SDEC`
/// 8-bit literal (Section IV-B: the literal indexes the sync array at the
/// base address held in the `RSYNC` register).
pub const MAX_SYNC_POINTS: usize = 256;

/// Nominal supply voltage of the 90 nm low-leakage process (Section V-A).
pub const V_NOM: f64 = 1.2;

/// Relaxed clock period used for both designs in the paper (Section V-A).
pub const CLOCK_PERIOD_NS: f64 = 12.0;

/// Nominal clock frequency in MHz implied by [`CLOCK_PERIOD_NS`].
pub const F_NOM_MHZ: f64 = 1e3 / CLOCK_PERIOD_NS;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_geometry_matches_paper() {
        // 96 kByte IM and 64 kByte DM, 16-bit words.
        assert_eq!(IM_WORDS * 2, 96 * 1024);
        assert_eq!(DM_WORDS * 2, 64 * 1024);
        assert_eq!(IM_BANKS, 8);
        assert_eq!(DM_BANKS, 16);
        assert_eq!(IM_BANK_WORDS * IM_BANKS, IM_WORDS);
        assert_eq!(DM_BANK_WORDS * DM_BANKS, DM_WORDS);
    }

    #[test]
    fn nominal_frequency_is_83_mhz() {
        assert!((F_NOM_MHZ - 83.333).abs() < 0.01);
    }
}

//! Constant-expression evaluation for assembler operands and directives.
//!
//! Grammar (standard precedence, lowest first):
//!
//! ```text
//! expr   := or
//! or     := xor  ('|' xor)*
//! xor    := and  ('^' and)*
//! and    := shift ('&' shift)*
//! shift  := add  (('<<' | '>>') add)*
//! add    := mul  (('+' | '-') mul)*
//! mul    := unary (('*' | '/' | '%') unary)*
//! unary  := '-' unary | '~' unary | primary
//! primary:= number | symbol | lo '(' expr ')' | hi '(' expr ')' | '(' expr ')'
//! ```
//!
//! `lo(x)`/`hi(x)` extract the low/high byte of a 16-bit value — the natural
//! companions of the `MOVI`/`MOVHI` instruction pair.

use super::lexer::Tok;
use super::AsmErrorKind;
use std::collections::BTreeMap;

/// Cursor over a token slice with expression evaluation.
pub struct ExprParser<'a> {
    toks: &'a [Tok],
    pos: usize,
    symbols: &'a BTreeMap<String, i64>,
}

impl<'a> ExprParser<'a> {
    /// Creates a parser over `toks` resolving names through `symbols`.
    pub fn new(toks: &'a [Tok], symbols: &'a BTreeMap<String, i64>) -> Self {
        ExprParser {
            toks,
            pos: 0,
            symbols,
        }
    }

    /// Current position within the token slice.
    pub fn pos(&self) -> usize {
        self.pos
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parses a full expression starting at the current position.
    pub fn expr(&mut self) -> Result<i64, AsmErrorKind> {
        self.binary(0)
    }

    fn binary(&mut self, level: usize) -> Result<i64, AsmErrorKind> {
        // Operator tiers, lowest precedence first.
        const TIERS: [&[char]; 5] = [&['|'], &['^'], &['&'], &[], &['+', '-']];
        const SHIFT_TIER: usize = 3;
        const MUL_TIER: usize = 5;
        if level == MUL_TIER {
            return self.mul();
        }
        let mut lhs = self.binary(level + 1)?;
        loop {
            if level == SHIFT_TIER {
                match self.peek() {
                    Some(Tok::Shl) => {
                        self.pos += 1;
                        let rhs = self.binary(level + 1)?;
                        lhs = wrap_shift(lhs, rhs, true)?;
                    }
                    Some(Tok::Shr) => {
                        self.pos += 1;
                        let rhs = self.binary(level + 1)?;
                        lhs = wrap_shift(lhs, rhs, false)?;
                    }
                    _ => return Ok(lhs),
                }
            } else {
                let Some(&Tok::Punct(c)) = self.peek() else {
                    return Ok(lhs);
                };
                if !TIERS[level].contains(&c) {
                    return Ok(lhs);
                }
                self.pos += 1;
                let rhs = self.binary(level + 1)?;
                lhs = match c {
                    '|' => lhs | rhs,
                    '^' => lhs ^ rhs,
                    '&' => lhs & rhs,
                    '+' => lhs.wrapping_add(rhs),
                    '-' => lhs.wrapping_sub(rhs),
                    _ => unreachable!(),
                };
            }
        }
    }

    fn mul(&mut self) -> Result<i64, AsmErrorKind> {
        let mut lhs = self.unary()?;
        loop {
            let Some(&Tok::Punct(c)) = self.peek() else {
                return Ok(lhs);
            };
            if !matches!(c, '*' | '/' | '%') {
                return Ok(lhs);
            }
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = match c {
                '*' => lhs.wrapping_mul(rhs),
                '/' if rhs == 0 => return Err(AsmErrorKind::DivisionByZero),
                '%' if rhs == 0 => return Err(AsmErrorKind::DivisionByZero),
                '/' => lhs / rhs,
                '%' => lhs % rhs,
                _ => unreachable!(),
            };
        }
    }

    fn unary(&mut self) -> Result<i64, AsmErrorKind> {
        if self.eat_punct('-') {
            return Ok(self.unary()?.wrapping_neg());
        }
        if self.eat_punct('~') {
            return Ok(!self.unary()?);
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<i64, AsmErrorKind> {
        match self.bump().cloned() {
            Some(Tok::Num(n)) => Ok(n),
            Some(Tok::Ident(name)) => {
                let lower = name.to_ascii_lowercase();
                if (lower == "lo" || lower == "hi") && self.peek() == Some(&Tok::Punct('(')) {
                    self.pos += 1;
                    let inner = self.expr()?;
                    if !self.eat_punct(')') {
                        return Err(AsmErrorKind::Syntax("expected ')'".into()));
                    }
                    let v = inner as u16;
                    return Ok(if lower == "lo" { v & 0xFF } else { v >> 8 } as i64);
                }
                self.symbols
                    .get(&name)
                    .copied()
                    .ok_or(AsmErrorKind::UndefinedSymbol(name))
            }
            Some(Tok::Punct('(')) => {
                let v = self.expr()?;
                if !self.eat_punct(')') {
                    return Err(AsmErrorKind::Syntax("expected ')'".into()));
                }
                Ok(v)
            }
            other => Err(AsmErrorKind::Syntax(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }
}

fn wrap_shift(lhs: i64, rhs: i64, left: bool) -> Result<i64, AsmErrorKind> {
    if !(0..64).contains(&rhs) {
        return Err(AsmErrorKind::Syntax(format!(
            "shift amount {rhs} out of range"
        )));
    }
    Ok(if left { lhs << rhs } else { lhs >> rhs })
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex_line;
    use super::*;

    fn eval(src: &str) -> Result<i64, AsmErrorKind> {
        let toks = lex_line(src).unwrap();
        let symbols: BTreeMap<String, i64> =
            [("N".to_string(), 256i64), ("base".to_string(), 0x4800)].into();
        let mut p = ExprParser::new(&toks, &symbols);
        let v = p.expr()?;
        assert_eq!(p.pos(), toks.len(), "trailing tokens in {src}");
        Ok(v)
    }

    #[test]
    fn precedence() {
        assert_eq!(eval("2 + 3 * 4").unwrap(), 14);
        assert_eq!(eval("(2 + 3) * 4").unwrap(), 20);
        assert_eq!(eval("1 << 4 | 3").unwrap(), 19);
        assert_eq!(eval("255 & 15 ^ 1").unwrap(), 14);
        assert_eq!(eval("7 % 4 + 10 / 5").unwrap(), 5);
    }

    #[test]
    fn unary_and_symbols() {
        assert_eq!(eval("-N").unwrap(), -256);
        assert_eq!(eval("~0").unwrap(), -1);
        assert_eq!(eval("base + N * 2").unwrap(), 0x4800 + 512);
        assert!(matches!(
            eval("missing"),
            Err(AsmErrorKind::UndefinedSymbol(_))
        ));
    }

    #[test]
    fn lo_hi() {
        assert_eq!(eval("lo(0x1234)").unwrap(), 0x34);
        assert_eq!(eval("hi(0x1234)").unwrap(), 0x12);
        assert_eq!(eval("hi(base)").unwrap(), 0x48);
        // lo/hi as plain symbols are still undefined names.
        assert!(eval("lo + 1").is_err());
    }

    #[test]
    fn division_errors() {
        assert!(matches!(eval("1 / 0"), Err(AsmErrorKind::DivisionByZero)));
        assert!(matches!(eval("1 % 0"), Err(AsmErrorKind::DivisionByZero)));
    }

    #[test]
    fn malformed() {
        assert!(eval("(1 + 2").is_err());
        assert!(eval("+").is_err());
    }
}

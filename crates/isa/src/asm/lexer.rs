//! Line tokenizer for the ULP16 assembler.

use super::AsmErrorKind;

/// A lexical token within one assembly line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier: mnemonic, register, label or symbol name.
    Ident(String),
    /// Directive name including the leading dot, lower-cased (e.g. `.org`).
    Dot(String),
    /// Integer literal (decimal, `0x` hex or `0b` binary).
    Num(i64),
    /// Single-character punctuation: `: , # [ ] ( ) + - * / % ~ & | ^`.
    Punct(char),
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
}

/// Splits one source line into tokens, stripping `;` and `//` comments.
pub fn lex_line(line: &str) -> Result<Vec<Tok>, AsmErrorKind> {
    let mut toks = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ';' => break,
            '/' if bytes.get(i + 1) == Some(&b'/') => break,
            c if c.is_whitespace() => i += 1,
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push(Tok::Ident(line[start..i].to_string()));
            }
            '.' => {
                i += 1;
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if start == i {
                    return Err(AsmErrorKind::Syntax("lone '.'".into()));
                }
                toks.push(Tok::Dot(line[start..i].to_ascii_lowercase()));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let (radix, skip) =
                    if c == '0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                        (16, 2)
                    } else if c == '0' && matches!(bytes.get(i + 1), Some(b'b') | Some(b'B')) {
                        (2, 2)
                    } else {
                        (10, 0)
                    };
                i += skip;
                let digits_start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text: String = line[digits_start..i]
                    .chars()
                    .filter(|c| *c != '_')
                    .collect();
                if skip > 0 && text.is_empty() {
                    return Err(AsmErrorKind::BadNumber(line[start..i].to_string()));
                }
                let value = i64::from_str_radix(&text, radix)
                    .map_err(|_| AsmErrorKind::BadNumber(line[start..i].to_string()))?;
                toks.push(Tok::Num(value));
            }
            '<' if bytes.get(i + 1) == Some(&b'<') => {
                toks.push(Tok::Shl);
                i += 2;
            }
            '>' if bytes.get(i + 1) == Some(&b'>') => {
                toks.push(Tok::Shr);
                i += 2;
            }
            ':' | ',' | '#' | '[' | ']' | '(' | ')' | '+' | '-' | '*' | '/' | '%' | '~' | '&'
            | '|' | '^' => {
                toks.push(Tok::Punct(c));
                i += 1;
            }
            other => {
                return Err(AsmErrorKind::Syntax(format!(
                    "unexpected character {other:?}"
                )))
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_line() {
        let toks = lex_line("loop:  ADD r1, r2  ; comment").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("loop".into()),
                Tok::Punct(':'),
                Tok::Ident("ADD".into()),
                Tok::Ident("r1".into()),
                Tok::Punct(','),
                Tok::Ident("r2".into()),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(lex_line("42").unwrap(), vec![Tok::Num(42)]);
        assert_eq!(lex_line("0x2A").unwrap(), vec![Tok::Num(42)]);
        assert_eq!(lex_line("0b1010_10").unwrap(), vec![Tok::Num(42)]);
        assert!(lex_line("0xZZ").is_err());
        assert!(lex_line("0x").is_err());
    }

    #[test]
    fn directives_and_operators() {
        let toks = lex_line(".equ K, (1 << 4) | 3 // c").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Dot("equ".into()),
                Tok::Ident("K".into()),
                Tok::Punct(','),
                Tok::Punct('('),
                Tok::Num(1),
                Tok::Shl,
                Tok::Num(4),
                Tok::Punct(')'),
                Tok::Punct('|'),
                Tok::Num(3),
            ]
        );
    }

    #[test]
    fn memory_operand() {
        let toks = lex_line("ld r0, [r6, #-2]").unwrap();
        assert!(toks.contains(&Tok::Punct('[')));
        assert!(toks.contains(&Tok::Punct('#')));
        assert!(toks.contains(&Tok::Punct('-')));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex_line("mov r0, @r1").is_err());
        assert!(lex_line(".").is_err());
    }

    #[test]
    fn empty_and_comment_only() {
        assert!(lex_line("").unwrap().is_empty());
        assert!(lex_line("   ; nothing").unwrap().is_empty());
        assert!(lex_line("// nothing").unwrap().is_empty());
    }
}

use super::*;
use crate::decode;

fn asm(src: &str) -> Program {
    assemble(src).unwrap_or_else(|e| panic!("assembly failed: {e}"))
}

fn instrs(src: &str) -> Vec<Instr> {
    let p = asm(src);
    p.iter().map(|(_, w)| decode(w).unwrap()).collect()
}

#[test]
fn basic_instructions() {
    let v = instrs(
        "   nop
            add r1, r2
            addi r3, #-5
            movi r4, #200
            halt",
    );
    assert_eq!(
        v,
        vec![
            Instr::Nop,
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::R1,
                rs: Reg::R2
            },
            Instr::AddI {
                rd: Reg::R3,
                imm: -5
            },
            Instr::MovI {
                rd: Reg::R4,
                imm: 200
            },
            Instr::Halt,
        ]
    );
}

#[test]
fn labels_and_branches() {
    let p = asm("start: movi r0, #10
         loop:  addi r0, #-1
                bne loop
                br start
                halt");
    assert_eq!(p.symbol("start"), Some(0));
    assert_eq!(p.symbol("loop"), Some(1));
    let v: Vec<Instr> = p.iter().map(|(_, w)| decode(w).unwrap()).collect();
    // bne at addr 2 targets 1: offset = 1 - 3 = -2
    assert_eq!(
        v[2],
        Instr::Branch {
            cond: Cond::Ne,
            offset: -2
        }
    );
    // br at addr 3 targets 0: offset = 0 - 4 = -4
    assert_eq!(
        v[3],
        Instr::Branch {
            cond: Cond::Al,
            offset: -4
        }
    );
}

#[test]
fn forward_references() {
    let v = instrs(
        "       beq done
                nop
         done:  halt",
    );
    assert_eq!(
        v[0],
        Instr::Branch {
            cond: Cond::Eq,
            offset: 1
        }
    );
}

#[test]
fn memory_operands() {
    let v = instrs(
        "   ld r0, [r1]
            ld r2, [sp, #-3]
            st r4, [r5, #7]
            ldp r1, [r2]
            stp r3, [r4]",
    );
    assert_eq!(
        v[0],
        Instr::Ld {
            rd: Reg::R0,
            base: Reg::R1,
            offset: 0
        }
    );
    assert_eq!(
        v[1],
        Instr::Ld {
            rd: Reg::R2,
            base: Reg::R6,
            offset: -3
        }
    );
    assert_eq!(
        v[2],
        Instr::St {
            rs: Reg::R4,
            base: Reg::R5,
            offset: 7
        }
    );
    assert_eq!(
        v[3],
        Instr::LdP {
            rd: Reg::R1,
            base: Reg::R2
        }
    );
    assert_eq!(
        v[4],
        Instr::StP {
            rs: Reg::R3,
            base: Reg::R4
        }
    );
}

#[test]
fn equ_and_expressions() {
    let p = asm("   .equ BASE, 0x1000
            .equ N, 4 * 8
            li r1, BASE + N
            movi r2, #lo(BASE + 2)
            sinc #N / 8");
    let v: Vec<Instr> = p.iter().map(|(_, w)| decode(w).unwrap()).collect();
    assert_eq!(
        v[0],
        Instr::MovI {
            rd: Reg::R1,
            imm: 0x20
        }
    );
    assert_eq!(
        v[1],
        Instr::MovHi {
            rd: Reg::R1,
            imm: 0x10
        }
    );
    assert_eq!(
        v[2],
        Instr::MovI {
            rd: Reg::R2,
            imm: 2
        }
    );
    assert_eq!(v[3], Instr::Sinc { index: 4 });
}

#[test]
fn org_word_space() {
    let p = asm("   .org 0x10
            .word 1, 2, 0xFFFF
            .space 3, 7
         data_end:");
    let words: Vec<(u16, u16)> = p.iter().collect();
    assert_eq!(
        words,
        vec![
            (0x10, 1),
            (0x11, 2),
            (0x12, 0xFFFF),
            (0x13, 7),
            (0x14, 7),
            (0x15, 7)
        ]
    );
    assert_eq!(p.symbol("data_end"), Some(0x16));
    assert_eq!(p.extent(), 0x16);
}

#[test]
fn to_vec_zero_fills() {
    let p = asm("   .org 2
            movi r0, #1");
    assert_eq!(
        p.to_vec(0, 4),
        vec![
            0,
            0,
            encode(Instr::MovI {
                rd: Reg::R0,
                imm: 1
            })
            .unwrap(),
            0
        ]
    );
}

#[test]
fn pseudo_instructions() {
    let v = instrs(
        "   li r1, 0x1234
            push r2
            pop r3
            inc r4
            dec r5
            clr r0
            tst r1
            ret",
    );
    assert_eq!(
        v[0],
        Instr::MovI {
            rd: Reg::R1,
            imm: 0x34
        }
    );
    assert_eq!(
        v[1],
        Instr::MovHi {
            rd: Reg::R1,
            imm: 0x12
        }
    );
    assert_eq!(
        v[2],
        Instr::AddI {
            rd: Reg::SP,
            imm: -1
        }
    );
    assert_eq!(
        v[3],
        Instr::St {
            rs: Reg::R2,
            base: Reg::SP,
            offset: 0
        }
    );
    assert_eq!(
        v[4],
        Instr::Ld {
            rd: Reg::R3,
            base: Reg::SP,
            offset: 0
        }
    );
    assert_eq!(
        v[5],
        Instr::AddI {
            rd: Reg::SP,
            imm: 1
        }
    );
    assert_eq!(
        v[6],
        Instr::AddI {
            rd: Reg::R4,
            imm: 1
        }
    );
    assert_eq!(
        v[7],
        Instr::AddI {
            rd: Reg::R5,
            imm: -1
        }
    );
    assert_eq!(
        v[8],
        Instr::MovI {
            rd: Reg::R0,
            imm: 0
        }
    );
    assert_eq!(
        v[9],
        Instr::CmpI {
            rd: Reg::R1,
            imm: 0
        }
    );
    assert_eq!(v[10], Instr::Jr { rs: Reg::LR });
}

#[test]
fn immediate_sugar() {
    let v = instrs(
        "   add r1, #3
            sub r1, #3
            cmp r1, #-4
            mov r1, #99",
    );
    assert_eq!(
        v[0],
        Instr::AddI {
            rd: Reg::R1,
            imm: 3
        }
    );
    assert_eq!(
        v[1],
        Instr::AddI {
            rd: Reg::R1,
            imm: -3
        }
    );
    assert_eq!(
        v[2],
        Instr::CmpI {
            rd: Reg::R1,
            imm: -4
        }
    );
    assert_eq!(
        v[3],
        Instr::MovI {
            rd: Reg::R1,
            imm: 99
        }
    );
}

#[test]
fn csr_and_sync() {
    let v = instrs(
        "   rdid r1
            wrsync r2
            ei
            di
            iret
            sinc #5
            sdec #5
            sleep",
    );
    assert_eq!(
        v[0],
        Instr::Csr {
            op: CsrOp::RdId,
            rd: Reg::R1
        }
    );
    assert_eq!(
        v[1],
        Instr::Csr {
            op: CsrOp::WrSync,
            rd: Reg::R2
        }
    );
    assert_eq!(v[5], Instr::Sinc { index: 5 });
    assert_eq!(v[6], Instr::Sdec { index: 5 });
    assert_eq!(v[7], Instr::Sleep);
}

#[test]
fn jal_and_call() {
    let p = asm("       call func
                halt
         func:  ret");
    let v: Vec<Instr> = p.iter().map(|(_, w)| decode(w).unwrap()).collect();
    assert_eq!(v[0], Instr::Jal { offset: 1 });
}

#[test]
fn error_duplicate_label() {
    let e = assemble("a: nop\na: nop").unwrap_err();
    assert_eq!(e.line, 2);
    assert!(matches!(e.kind, AsmErrorKind::DuplicateSymbol(_)));
}

#[test]
fn error_unknown_mnemonic() {
    let e = assemble("frob r1").unwrap_err();
    assert_eq!(e.line, 1);
    assert!(matches!(e.kind, AsmErrorKind::UnknownMnemonic(_)));
}

#[test]
fn error_branch_too_far() {
    let mut src = String::from("start: nop\n");
    for _ in 0..200 {
        src.push_str("nop\n");
    }
    src.push_str("br start\n");
    let e = assemble(&src).unwrap_err();
    assert!(matches!(e.kind, AsmErrorKind::BranchTooFar { .. }), "{e}");
}

#[test]
fn error_undefined_symbol() {
    let e = assemble("br nowhere").unwrap_err();
    assert!(matches!(e.kind, AsmErrorKind::UndefinedSymbol(_)));
}

#[test]
fn error_imm_out_of_range() {
    let e = assemble("addi r1, #16").unwrap_err();
    assert!(matches!(e.kind, AsmErrorKind::ValueOutOfRange(16)));
    let e = assemble("movi r1, #256").unwrap_err();
    assert!(matches!(e.kind, AsmErrorKind::ValueOutOfRange(256)));
}

#[test]
fn error_overlap() {
    let e = assemble(
        "   .org 0
            nop
            .org 0
            halt",
    )
    .unwrap_err();
    assert!(matches!(e.kind, AsmErrorKind::Overlap(0)));
}

#[test]
fn error_register_as_label() {
    let e = assemble("r1: nop").unwrap_err();
    assert!(matches!(e.kind, AsmErrorKind::Syntax(_)));
}

#[test]
fn error_display_has_line() {
    let e = assemble("\n\nbogus").unwrap_err();
    assert!(e.to_string().starts_with("line 3:"), "{e}");
}

#[test]
fn multiple_labels_one_address() {
    let p = asm("a: b: c: halt");
    assert_eq!(p.symbol("a"), Some(0));
    assert_eq!(p.symbol("b"), Some(0));
    assert_eq!(p.symbol("c"), Some(0));
}

#[test]
fn disassembly_reassembles() {
    // Every sample instruction must survive a disasm -> asm round trip.
    for instr in crate::encode_test_samples() {
        let text = crate::disasm::disassemble(instr);
        let p = assemble(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        let words = p.to_vec(0, 1);
        let back = decode(words[0]).unwrap();
        // Branch text uses raw #offsets, which reassemble identically.
        assert_eq!(back, instr, "text was {text:?}");
    }
}

#[test]
fn listing_shows_labels_data_and_disassembly() {
    let p = asm("start:  movi r1, #7
                 halt
         table:  .word 0xF800, 42");
    let listing = p.listing();
    assert!(listing.contains("start:"));
    assert!(listing.contains("table:"));
    assert!(listing.contains("movi r1, #7"));
    assert!(listing.contains("halt"));
    // 0xF800 does not decode and must render as data.
    assert!(listing.contains(".word 0xf800"));
    // Addresses and hex words are present.
    assert!(listing.contains("0000:"));
}

#[test]
fn expressions_in_word_directives() {
    let p = asm("   .equ BASE, 0x1200
            .word lo(BASE), hi(BASE), BASE + 2, ~0 & 0xFF");
    assert_eq!(p.to_vec(0, 4), vec![0x00, 0x12, 0x1202, 0xFF]);
}

#[test]
fn error_equ_label_conflict() {
    let e = assemble(
        "x:  nop
            .equ x, 5",
    )
    .unwrap_err();
    assert!(matches!(e.kind, AsmErrorKind::DuplicateSymbol(_)));
}

#[test]
fn error_space_with_bad_count() {
    let e = assemble(".space 1 + ").unwrap_err();
    assert!(matches!(e.kind, AsmErrorKind::Syntax(_)));
    let e = assemble(".space 70000").unwrap_err();
    assert!(matches!(e.kind, AsmErrorKind::ValueOutOfRange(_)));
}

#[test]
fn trailing_label_binds_to_end_address() {
    let p = asm("nop\nend:");
    assert_eq!(p.symbol("end"), Some(1));
}

//! Two-pass assembler for the ULP16 instruction set.
//!
//! ## Syntax
//!
//! ```text
//! ; comment                       // comment
//! label:  mnemonic operands
//!         .org  expr              ; set location counter
//!         .word expr, expr, ...   ; emit data words
//!         .space count [, fill]   ; reserve words
//!         .equ  NAME, expr        ; define a constant
//! ```
//!
//! Operands: registers `r0`–`r7` (aliases `sp` = `r6`, `lr` = `r7`),
//! immediates `#expr`, memory `[rbase]` / `[rbase, #off]`, and branch/call
//! targets given as a label or expression (converted to a PC-relative
//! offset) or as a raw `#offset`.
//!
//! ## Pseudo-instructions
//!
//! | Pseudo | Expansion | Words |
//! |---|---|---|
//! | `li rd, expr` | `movi` + `movhi` (full 16-bit constant) | 2 |
//! | `br/beq/bne/blt/bge/bgt/ble/bult label` | `B<cond>` relative | 1 |
//! | `call label` | `jal label` | 1 |
//! | `ret` | `jr r7` | 1 |
//! | `push rd` / `pop rd` | stack ops via `r6` | 2 |
//! | `inc rd` / `dec rd` / `clr rd` / `tst rd` | `addi`/`movi`/`cmpi` | 1 |
//!
//! `add`/`sub`/`cmp`/`mov` with a `#imm` second operand auto-select the
//! immediate form when one exists.
//!
//! ## Example
//!
//! ```
//! use ulp_isa::asm::assemble;
//!
//! let p = assemble("
//!     .equ N, 16
//!         li   r1, N * 2
//!     loop:
//!         addi r1, #-1
//!         bne  loop
//!         halt
//! ").unwrap();
//! assert_eq!(p.symbol("loop"), Some(2));
//! assert_eq!(p.to_vec(0, 5).len(), 5);
//! ```

mod expr;
mod lexer;

use crate::{arch, encode, AluOp, Cond, CsrOp, EncodeError, Instr, Reg, ShiftKind, UnaryOp};
use expr::ExprParser;
use lexer::{lex_line, Tok};
use std::collections::BTreeMap;
use std::fmt;

/// The kind of an assembly error, without source position.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// Malformed syntax.
    Syntax(String),
    /// A numeric literal that does not parse.
    BadNumber(String),
    /// Reference to an undefined label or constant.
    UndefinedSymbol(String),
    /// Label or constant defined twice.
    DuplicateSymbol(String),
    /// Unknown mnemonic or directive.
    UnknownMnemonic(String),
    /// Operand does not fit the instruction field.
    Encode(EncodeError),
    /// Branch target out of reach.
    BranchTooFar {
        /// The required offset in words.
        offset: i64,
        /// The maximum magnitude supported by the instruction.
        limit: i64,
    },
    /// A value outside the range of its context (address, immediate, count).
    ValueOutOfRange(i64),
    /// Two statements assemble to the same address.
    Overlap(u16),
    /// Division or modulo by zero inside an expression.
    DivisionByZero,
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::Syntax(m) => write!(f, "syntax error: {m}"),
            AsmErrorKind::BadNumber(t) => write!(f, "malformed number {t:?}"),
            AsmErrorKind::UndefinedSymbol(s) => write!(f, "undefined symbol {s:?}"),
            AsmErrorKind::DuplicateSymbol(s) => write!(f, "symbol {s:?} defined twice"),
            AsmErrorKind::UnknownMnemonic(s) => write!(f, "unknown mnemonic {s:?}"),
            AsmErrorKind::Encode(e) => write!(f, "{e}"),
            AsmErrorKind::BranchTooFar { offset, limit } => {
                write!(f, "branch offset {offset} exceeds reach \u{b1}{limit}")
            }
            AsmErrorKind::ValueOutOfRange(v) => write!(f, "value {v} out of range"),
            AsmErrorKind::Overlap(addr) => {
                write!(f, "two statements assemble to address {addr:#06x}")
            }
            AsmErrorKind::DivisionByZero => write!(f, "division by zero in expression"),
        }
    }
}

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for AsmError {}

/// An assembled program image: a sparse map of word addresses to machine
/// words plus the symbol table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    words: BTreeMap<u16, u16>,
    symbols: BTreeMap<String, u16>,
}

impl Program {
    /// Iterates over `(address, word)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, u16)> + '_ {
        self.words.iter().map(|(a, w)| (*a, *w))
    }

    /// Number of emitted words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Looks up a label or `.equ` constant.
    pub fn symbol(&self, name: &str) -> Option<u16> {
        self.symbols.get(name).copied()
    }

    /// All symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u16)> + '_ {
        self.symbols.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// One past the highest emitted address, or 0 for an empty program.
    pub fn extent(&self) -> usize {
        self.words
            .last_key_value()
            .map(|(a, _)| *a as usize + 1)
            .unwrap_or(0)
    }

    /// Renders `len` words starting at `origin`, zero-filling gaps.
    pub fn to_vec(&self, origin: u16, len: usize) -> Vec<u16> {
        let mut out = vec![0u16; len];
        for (addr, word) in &self.words {
            let idx = (*addr as usize).wrapping_sub(origin as usize);
            if idx < len {
                out[idx] = *word;
            }
        }
        out
    }

    /// Produces a human-readable listing: one line per emitted word with
    /// its address, hex encoding, any labels bound to that address, and
    /// the disassembly (or `.word` for data that does not decode).
    ///
    /// # Example
    ///
    /// ```
    /// use ulp_isa::asm::assemble;
    ///
    /// let p = assemble("start: movi r1, #7\n halt").unwrap();
    /// let listing = p.listing();
    /// assert!(listing.contains("start:"));
    /// assert!(listing.contains("movi r1, #7"));
    /// ```
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut by_addr: BTreeMap<u16, Vec<&str>> = BTreeMap::new();
        for (name, value) in &self.symbols {
            by_addr.entry(*value).or_default().push(name);
        }
        let mut out = String::new();
        for (addr, word) in &self.words {
            if let Some(labels) = by_addr.get(addr) {
                for label in labels {
                    writeln!(out, "{label}:").expect("string write");
                }
            }
            let text = crate::disasm::disassemble_word(*word)
                .unwrap_or_else(|_| format!(".word {word:#06x}"));
            writeln!(out, "  {addr:04x}: {word:04x}    {text}").expect("string write");
        }
        out
    }
}

/// Assembles ULP16 source text into a [`Program`].
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, carrying its 1-based source
/// line number.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    Assembler::default().assemble(source)
}

/// Register operand including the `sp`/`lr` aliases.
fn parse_reg_name(name: &str) -> Option<Reg> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "sp" => return Some(Reg::SP),
        "lr" => return Some(Reg::LR),
        _ => {}
    }
    let rest = lower.strip_prefix('r')?;
    let idx: u8 = rest.parse().ok()?;
    Reg::try_from(idx).ok()
}

/// A parsed operand.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Operand {
    Reg(Reg),
    /// `#expr` immediate.
    Imm(i64),
    /// `[base]` or `[base, #off]`.
    Mem {
        base: Reg,
        offset: i64,
    },
    /// Bare expression (branch/call target = absolute word address).
    Target(i64),
}

/// One statement after pass-1 parsing.
#[derive(Debug, Clone)]
enum Stmt {
    Instr { mnemonic: String, rest: Vec<Tok> },
    Word(Vec<Tok>),
    Space { count: u16, fill: u16 },
}

#[derive(Default)]
struct Assembler {
    symbols: BTreeMap<String, i64>,
}

impl Assembler {
    fn assemble(&mut self, source: &str) -> Result<Program, AsmError> {
        // ---- Pass 1: lex lines, record labels/equ, compute addresses ----
        let mut stmts: Vec<(usize, u16, Stmt)> = Vec::new(); // (line, addr, stmt)
        let mut lc: i64 = 0; // location counter
        for (lineno, raw) in source.lines().enumerate() {
            let line = lineno + 1;
            let err = |kind| AsmError { line, kind };
            let mut toks = lex_line(raw).map_err(|kind| AsmError { line, kind })?;

            // Leading `label:` prefixes (possibly several).
            while toks.len() >= 2 && matches!(&toks[0], Tok::Ident(_)) && toks[1] == Tok::Punct(':')
            {
                let Tok::Ident(name) = toks.remove(0) else {
                    unreachable!()
                };
                toks.remove(0); // ':'
                if parse_reg_name(&name).is_some() {
                    return Err(err(AsmErrorKind::Syntax(format!(
                        "register name {name:?} cannot be a label"
                    ))));
                }
                if self.symbols.insert(name.clone(), lc).is_some() {
                    return Err(err(AsmErrorKind::DuplicateSymbol(name)));
                }
            }
            if toks.is_empty() {
                continue;
            }

            check_addr(lc).map_err(|kind| AsmError { line, kind })?;
            let addr = lc as u16;
            match toks.remove(0) {
                Tok::Dot(dir) => match dir.as_str() {
                    "org" => {
                        let v = self.eval_all(&toks, line)?;
                        check_addr(v).map_err(|kind| AsmError { line, kind })?;
                        lc = v;
                    }
                    "equ" => {
                        let (name, value) = self.parse_equ(&toks, line)?;
                        if self.symbols.insert(name.clone(), value).is_some() {
                            return Err(err(AsmErrorKind::DuplicateSymbol(name)));
                        }
                    }
                    "word" => {
                        let n = count_items(&toks);
                        stmts.push((line, addr, Stmt::Word(toks)));
                        lc += n as i64;
                    }
                    "space" => {
                        let (count, fill) = self.parse_space(&toks, line)?;
                        stmts.push((line, addr, Stmt::Space { count, fill }));
                        lc += count as i64;
                    }
                    other => {
                        return Err(err(AsmErrorKind::UnknownMnemonic(format!(".{other}"))));
                    }
                },
                Tok::Ident(mnemonic) => {
                    let lower = mnemonic.to_ascii_lowercase();
                    let size = stmt_size(&lower)
                        .ok_or_else(|| err(AsmErrorKind::UnknownMnemonic(mnemonic.clone())))?;
                    stmts.push((
                        line,
                        addr,
                        Stmt::Instr {
                            mnemonic: lower,
                            rest: toks,
                        },
                    ));
                    lc += size as i64;
                }
                other => {
                    return Err(err(AsmErrorKind::Syntax(format!(
                        "expected mnemonic or directive, found {other:?}"
                    ))));
                }
            }
        }

        // ---- Pass 2: evaluate operands and emit ----
        let mut words: BTreeMap<u16, u16> = BTreeMap::new();
        for (line, addr, stmt) in stmts {
            let emit_at = |words: &mut BTreeMap<u16, u16>, a: u16, w: u16| {
                if words.insert(a, w).is_some() {
                    Err(AsmError {
                        line,
                        kind: AsmErrorKind::Overlap(a),
                    })
                } else {
                    Ok(())
                }
            };
            match stmt {
                Stmt::Word(toks) => {
                    let values = self.eval_list(&toks, line)?;
                    for (i, v) in values.into_iter().enumerate() {
                        let w = to_u16(v).map_err(|kind| AsmError { line, kind })?;
                        emit_at(&mut words, addr.wrapping_add(i as u16), w)?;
                    }
                }
                Stmt::Space { count, fill } => {
                    for i in 0..count {
                        emit_at(&mut words, addr.wrapping_add(i), fill)?;
                    }
                }
                Stmt::Instr { mnemonic, rest } => {
                    let operands = self.parse_operands(&rest, line)?;
                    let instrs = lower_statement(&mnemonic, &operands, addr)
                        .map_err(|kind| AsmError { line, kind })?;
                    for (i, instr) in instrs.into_iter().enumerate() {
                        let w = encode(instr).map_err(|e| AsmError {
                            line,
                            kind: AsmErrorKind::Encode(e),
                        })?;
                        emit_at(&mut words, addr.wrapping_add(i as u16), w)?;
                    }
                }
            }
        }

        let symbols = self
            .symbols
            .iter()
            .map(|(k, v)| (k.clone(), *v as u16))
            .collect();
        Ok(Program { words, symbols })
    }

    /// Evaluates a full token slice as one expression.
    fn eval_all(&self, toks: &[Tok], line: usize) -> Result<i64, AsmError> {
        let mut p = ExprParser::new(toks, &self.symbols);
        let v = p.expr().map_err(|kind| AsmError { line, kind })?;
        if p.pos() != toks.len() {
            return Err(AsmError {
                line,
                kind: AsmErrorKind::Syntax("trailing tokens after expression".into()),
            });
        }
        Ok(v)
    }

    /// Evaluates a comma-separated expression list.
    fn eval_list(&self, toks: &[Tok], line: usize) -> Result<Vec<i64>, AsmError> {
        let mut values = Vec::new();
        let mut rest = toks;
        loop {
            let mut p = ExprParser::new(rest, &self.symbols);
            values.push(p.expr().map_err(|kind| AsmError { line, kind })?);
            let consumed = p.pos();
            match rest.get(consumed) {
                None => return Ok(values),
                Some(Tok::Punct(',')) => rest = &rest[consumed + 1..],
                Some(t) => {
                    return Err(AsmError {
                        line,
                        kind: AsmErrorKind::Syntax(format!("unexpected token {t:?}")),
                    })
                }
            }
        }
    }

    fn parse_equ(&self, toks: &[Tok], line: usize) -> Result<(String, i64), AsmError> {
        let err = |m: &str| AsmError {
            line,
            kind: AsmErrorKind::Syntax(m.into()),
        };
        let Some(Tok::Ident(name)) = toks.first() else {
            return Err(err("expected `.equ NAME, value`"));
        };
        if parse_reg_name(name).is_some() {
            return Err(err("register names cannot be constants"));
        }
        if toks.get(1) != Some(&Tok::Punct(',')) {
            return Err(err("expected ',' after constant name"));
        }
        let value = self.eval_all(&toks[2..], line)?;
        Ok((name.clone(), value))
    }

    fn parse_space(&self, toks: &[Tok], line: usize) -> Result<(u16, u16), AsmError> {
        let values = self.eval_list(toks, line)?;
        match values.as_slice() {
            [count] => Ok((to_u16(*count).map_err(|kind| AsmError { line, kind })?, 0)),
            [count, fill] => Ok((
                to_u16(*count).map_err(|kind| AsmError { line, kind })?,
                to_u16(*fill).map_err(|kind| AsmError { line, kind })?,
            )),
            _ => Err(AsmError {
                line,
                kind: AsmErrorKind::Syntax("expected `.space count [, fill]`".into()),
            }),
        }
    }

    /// Parses the operand list of an instruction.
    fn parse_operands(&self, toks: &[Tok], line: usize) -> Result<Vec<Operand>, AsmError> {
        let err = |kind| AsmError { line, kind };
        let mut ops = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            match &toks[i] {
                Tok::Ident(name) if parse_reg_name(name).is_some() => {
                    // Register — but only if it stands alone (not an expression).
                    let next = toks.get(i + 1);
                    if next.is_none() || next == Some(&Tok::Punct(',')) {
                        ops.push(Operand::Reg(parse_reg_name(name).unwrap()));
                        i += 1;
                    } else {
                        return Err(err(AsmErrorKind::Syntax(format!(
                            "unexpected token after register {name}"
                        ))));
                    }
                }
                Tok::Punct('#') => {
                    let mut p = ExprParser::new(&toks[i + 1..], &self.symbols);
                    let v = p.expr().map_err(|kind| AsmError { line, kind })?;
                    i += 1 + p.pos();
                    ops.push(Operand::Imm(v));
                }
                Tok::Punct('[') => {
                    let Some(Tok::Ident(name)) = toks.get(i + 1) else {
                        return Err(err(AsmErrorKind::Syntax(
                            "expected register after '['".into(),
                        )));
                    };
                    let base = parse_reg_name(name).ok_or_else(|| {
                        err(AsmErrorKind::Syntax(format!("{name:?} is not a register")))
                    })?;
                    i += 2;
                    let mut offset = 0i64;
                    if toks.get(i) == Some(&Tok::Punct(',')) {
                        i += 1;
                        if toks.get(i) == Some(&Tok::Punct('#')) {
                            i += 1;
                        }
                        let mut p = ExprParser::new(&toks[i..], &self.symbols);
                        offset = p.expr().map_err(|kind| AsmError { line, kind })?;
                        i += p.pos();
                    }
                    if toks.get(i) != Some(&Tok::Punct(']')) {
                        return Err(err(AsmErrorKind::Syntax("expected ']'".into())));
                    }
                    i += 1;
                    ops.push(Operand::Mem { base, offset });
                }
                _ => {
                    // Bare expression: branch/call target.
                    let mut p = ExprParser::new(&toks[i..], &self.symbols);
                    let v = p.expr().map_err(|kind| AsmError { line, kind })?;
                    i += p.pos();
                    ops.push(Operand::Target(v));
                }
            }
            if i < toks.len() {
                if toks[i] != Tok::Punct(',') {
                    return Err(err(AsmErrorKind::Syntax(format!(
                        "expected ',' between operands, found {:?}",
                        toks[i]
                    ))));
                }
                i += 1;
            }
        }
        Ok(ops)
    }
}

fn check_addr(v: i64) -> Result<(), AsmErrorKind> {
    if (0..=u16::MAX as i64).contains(&v) && (v as usize) < arch::IM_WORDS {
        Ok(())
    } else {
        Err(AsmErrorKind::ValueOutOfRange(v))
    }
}

fn to_u16(v: i64) -> Result<u16, AsmErrorKind> {
    if (-(i16::MIN as i64).abs()..=u16::MAX as i64).contains(&v) {
        Ok(v as u16)
    } else {
        Err(AsmErrorKind::ValueOutOfRange(v))
    }
}

/// Number of comma-separated items in a token list (for `.word` sizing).
fn count_items(toks: &[Tok]) -> usize {
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut items = 1;
    for t in toks {
        match t {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth = depth.saturating_sub(1),
            Tok::Punct(',') if depth == 0 => items += 1,
            _ => {}
        }
    }
    items
}

/// Size in words of a (possibly pseudo) instruction, or `None` if unknown.
fn stmt_size(mnemonic: &str) -> Option<usize> {
    Some(match mnemonic {
        "li" | "push" | "pop" => 2,
        m if mnemonic_exists(m) => 1,
        _ => return None,
    })
}

fn mnemonic_exists(m: &str) -> bool {
    const BRANCHES: [&str; 10] = [
        "br", "bal", "beq", "bne", "blt", "bge", "bgt", "ble", "bult", "blo",
    ];
    AluOp::ALL.iter().any(|o| o.mnemonic() == m)
        || UnaryOp::ALL.iter().any(|o| o.mnemonic() == m)
        || CsrOp::ALL.iter().any(|o| o.mnemonic() == m)
        || ShiftKind::ALL.iter().any(|k| k.mnemonic() == m)
        || BRANCHES.contains(&m)
        || matches!(
            m,
            "nop"
                | "addi"
                | "cmpi"
                | "movi"
                | "movhi"
                | "ld"
                | "st"
                | "ldp"
                | "stp"
                | "jal"
                | "call"
                | "jr"
                | "jalr"
                | "ret"
                | "sinc"
                | "sdec"
                | "sleep"
                | "halt"
                | "inc"
                | "dec"
                | "clr"
                | "tst"
        )
}

fn branch_cond(m: &str) -> Option<Cond> {
    Some(match m {
        "br" | "bal" => Cond::Al,
        "beq" => Cond::Eq,
        "bne" => Cond::Ne,
        "blt" => Cond::Lt,
        "bge" => Cond::Ge,
        "bgt" => Cond::Gt,
        "ble" => Cond::Le,
        "bult" | "blo" => Cond::Ult,
        _ => return None,
    })
}

fn imm_range(v: i64, lo: i64, hi: i64) -> Result<i64, AsmErrorKind> {
    if (lo..=hi).contains(&v) {
        Ok(v)
    } else {
        Err(AsmErrorKind::ValueOutOfRange(v))
    }
}

/// Lowers one statement into concrete instructions.
fn lower_statement(mnemonic: &str, ops: &[Operand], addr: u16) -> Result<Vec<Instr>, AsmErrorKind> {
    use Operand as O;
    let bad = || AsmErrorKind::Syntax(format!("invalid operands for {mnemonic}: {ops:?}"));

    // Relative displacement from the *next* instruction to target `t`.
    let rel = |t: i64, limit: i64| -> Result<i16, AsmErrorKind> {
        let offset = t - (addr as i64 + 1);
        if offset < -limit - 1 || offset > limit {
            Err(AsmErrorKind::BranchTooFar { offset, limit })
        } else {
            Ok(offset as i16)
        }
    };

    if let Some(cond) = branch_cond(mnemonic) {
        return match ops {
            [O::Target(t)] => Ok(vec![Instr::Branch {
                cond,
                offset: rel(*t, 127)?,
            }]),
            [O::Imm(raw)] => Ok(vec![Instr::Branch {
                cond,
                offset: imm_range(*raw, -128, 127)? as i16,
            }]),
            _ => Err(bad()),
        };
    }
    if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
        return match (op, ops) {
            (_, [O::Reg(rd), O::Reg(rs)]) => Ok(vec![Instr::Alu {
                op: *op,
                rd: *rd,
                rs: *rs,
            }]),
            // Immediate sugar where an immediate form exists.
            (AluOp::Add, [O::Reg(rd), O::Imm(v)]) => Ok(vec![Instr::AddI {
                rd: *rd,
                imm: imm_range(*v, -16, 15)? as i8,
            }]),
            (AluOp::Sub, [O::Reg(rd), O::Imm(v)]) => Ok(vec![Instr::AddI {
                rd: *rd,
                imm: imm_range(-*v, -16, 15)? as i8,
            }]),
            (AluOp::Cmp, [O::Reg(rd), O::Imm(v)]) => Ok(vec![Instr::CmpI {
                rd: *rd,
                imm: imm_range(*v, -16, 15)? as i8,
            }]),
            (AluOp::Mov, [O::Reg(rd), O::Imm(v)]) => Ok(vec![Instr::MovI {
                rd: *rd,
                imm: imm_range(*v, 0, 255)? as u8,
            }]),
            _ => Err(bad()),
        };
    }
    if let Some(op) = UnaryOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
        return match ops {
            [O::Reg(rd)] => Ok(vec![Instr::Unary { op: *op, rd: *rd }]),
            _ => Err(bad()),
        };
    }
    if let Some(op) = CsrOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
        return match (op.uses_rd(), ops) {
            (true, [O::Reg(rd)]) => Ok(vec![Instr::Csr { op: *op, rd: *rd }]),
            (false, []) => Ok(vec![Instr::Csr {
                op: *op,
                rd: Reg::R0,
            }]),
            _ => Err(bad()),
        };
    }
    if let Some(kind) = ShiftKind::ALL.iter().find(|k| k.mnemonic() == mnemonic) {
        return match ops {
            [O::Reg(rd), O::Imm(v)] => Ok(vec![Instr::Shift {
                kind: *kind,
                rd: *rd,
                amount: imm_range(*v, 0, 15)? as u8,
            }]),
            _ => Err(bad()),
        };
    }

    match (mnemonic, ops) {
        ("nop", []) => Ok(vec![Instr::Nop]),
        ("sleep", []) => Ok(vec![Instr::Sleep]),
        ("halt", []) => Ok(vec![Instr::Halt]),
        ("ret", []) => Ok(vec![Instr::Jr { rs: Reg::LR }]),
        ("addi", [O::Reg(rd), O::Imm(v)]) => Ok(vec![Instr::AddI {
            rd: *rd,
            imm: imm_range(*v, -16, 15)? as i8,
        }]),
        ("cmpi", [O::Reg(rd), O::Imm(v)]) => Ok(vec![Instr::CmpI {
            rd: *rd,
            imm: imm_range(*v, -16, 15)? as i8,
        }]),
        ("movi", [O::Reg(rd), O::Imm(v)]) => Ok(vec![Instr::MovI {
            rd: *rd,
            imm: imm_range(*v, 0, 255)? as u8,
        }]),
        ("movhi", [O::Reg(rd), O::Imm(v)]) => Ok(vec![Instr::MovHi {
            rd: *rd,
            imm: imm_range(*v, 0, 255)? as u8,
        }]),
        ("ld", [O::Reg(rd), O::Mem { base, offset }]) => Ok(vec![Instr::Ld {
            rd: *rd,
            base: *base,
            offset: imm_range(*offset, -16, 15)? as i8,
        }]),
        ("st", [O::Reg(rs), O::Mem { base, offset }]) => Ok(vec![Instr::St {
            rs: *rs,
            base: *base,
            offset: imm_range(*offset, -16, 15)? as i8,
        }]),
        ("ldp", [O::Reg(rd), O::Mem { base, offset: 0 }]) => Ok(vec![Instr::LdP {
            rd: *rd,
            base: *base,
        }]),
        ("stp", [O::Reg(rs), O::Mem { base, offset: 0 }]) => Ok(vec![Instr::StP {
            rs: *rs,
            base: *base,
        }]),
        ("jal" | "call", [O::Target(t)]) => Ok(vec![Instr::Jal {
            offset: rel(*t, 1023)?,
        }]),
        ("jal" | "call", [O::Imm(raw)]) => Ok(vec![Instr::Jal {
            offset: imm_range(*raw, -1024, 1023)? as i16,
        }]),
        ("jr", [O::Reg(rs)]) => Ok(vec![Instr::Jr { rs: *rs }]),
        ("jalr", [O::Reg(rs)]) => Ok(vec![Instr::Jalr { rs: *rs }]),
        ("sinc", [O::Imm(v)]) => Ok(vec![Instr::Sinc {
            index: imm_range(*v, 0, 255)? as u8,
        }]),
        ("sdec", [O::Imm(v)]) => Ok(vec![Instr::Sdec {
            index: imm_range(*v, 0, 255)? as u8,
        }]),
        ("inc", [O::Reg(rd)]) => Ok(vec![Instr::AddI { rd: *rd, imm: 1 }]),
        ("dec", [O::Reg(rd)]) => Ok(vec![Instr::AddI { rd: *rd, imm: -1 }]),
        ("clr", [O::Reg(rd)]) => Ok(vec![Instr::MovI { rd: *rd, imm: 0 }]),
        ("tst", [O::Reg(rd)]) => Ok(vec![Instr::CmpI { rd: *rd, imm: 0 }]),
        ("li", [O::Reg(rd), O::Imm(v) | O::Target(v)]) => {
            let w = to_u16(*v)?;
            Ok(vec![
                Instr::MovI {
                    rd: *rd,
                    imm: (w & 0xFF) as u8,
                },
                Instr::MovHi {
                    rd: *rd,
                    imm: (w >> 8) as u8,
                },
            ])
        }
        ("push", [O::Reg(rd)]) => Ok(vec![
            Instr::AddI {
                rd: Reg::SP,
                imm: -1,
            },
            Instr::St {
                rs: *rd,
                base: Reg::SP,
                offset: 0,
            },
        ]),
        ("pop", [O::Reg(rd)]) => Ok(vec![
            Instr::Ld {
                rd: *rd,
                base: Reg::SP,
                offset: 0,
            },
            Instr::AddI {
                rd: Reg::SP,
                imm: 1,
            },
        ]),
        _ => Err(bad()),
    }
}

#[cfg(test)]
mod tests;

//! The deterministic cycle loop composing cores, memories, crossbars and
//! the synchronizer.

use crate::config::PlatformConfig;
use crate::error::{ConfigError, PlatformError};
use crate::observer::{LockstepWidth, Observer};
use crate::stats::SimStats;
use ulp_cpu::{Core, CoreState, MemAccess, SyncRequest, WakeReason};
use ulp_isa::asm::Program;
use ulp_mem::{
    Access, BankedMemory, DXbar, DXbarOutcome, DmGrant, DmRequest, IXbar, ImGrant, ImRequest,
};
use ulp_sync::{SyncEvents, Synchronizer};

/// Outcome of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Cycles simulated until the last core halted.
    pub cycles: u64,
}

/// Per-cycle scratch buffers of the engine, allocated once at platform
/// construction and reused every cycle, so [`Platform::step`] performs no
/// heap allocation in steady state.
#[derive(Debug, Default)]
struct CycleBuffers {
    /// Phase of every core at the start of the cycle.
    phases: Vec<CoreState>,
    /// Fetch requests of cores in their fetch phase.
    fetch_reqs: Vec<ImRequest>,
    /// Granted fetches (filled by the I-Xbar).
    im_grants: Vec<ImGrant>,
    /// Cores whose fetch was granted this cycle.
    fetched: Vec<bool>,
    /// `SINC`/`SDEC` requests of cores in their execute phase.
    sync_reqs: Vec<(usize, SyncRequest)>,
    /// Events produced by the synchronizer (filled by `step_into`).
    sync_events: SyncEvents,
    /// Data-memory requests of cores in their execute phase.
    dm_reqs: Vec<DmRequest>,
    /// Grants and releases (filled by the D-Xbar).
    dm_outcome: DXbarOutcome,
    /// Cores whose data access was granted this cycle.
    granted: Vec<bool>,
}

impl CycleBuffers {
    fn new(num_cores: usize) -> CycleBuffers {
        CycleBuffers {
            phases: Vec::with_capacity(num_cores),
            fetch_reqs: Vec::with_capacity(num_cores),
            im_grants: Vec::with_capacity(num_cores),
            fetched: vec![false; num_cores],
            sync_reqs: Vec::with_capacity(num_cores),
            sync_events: SyncEvents::default(),
            dm_reqs: Vec::with_capacity(num_cores),
            dm_outcome: DXbarOutcome::default(),
            granted: vec![false; num_cores],
        }
    }
}

/// The multi-core platform simulator (Fig. 1 of the paper).
///
/// See the crate-level documentation for an example. Construction validates
/// the [`PlatformConfig`]; programs and data are loaded through backdoors
/// ([`Platform::load_program`], [`Platform::load_dm`]); [`Platform::run`]
/// advances the deterministic cycle loop until every core halts.
///
/// The engine itself carries no instrumentation: tracing and visualisation
/// hook in through [`Observer`]s passed to [`Platform::step_with`] and
/// [`Platform::run_with`]. The only built-in observer is a
/// [`LockstepWidth`] recorder, because the average lockstep width is part
/// of [`SimStats`].
#[derive(Debug)]
pub struct Platform {
    cfg: PlatformConfig,
    cores: Vec<Core>,
    imem: BankedMemory,
    dmem: BankedMemory,
    ixbar: IXbar,
    dxbar: DXbar,
    sync: Option<Synchronizer>,
    cycle: u64,
    fault: Option<PlatformError>,
    buffers: CycleBuffers,
    lockstep: LockstepWidth,
}

impl Platform {
    /// Builds a platform from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found in `cfg`.
    pub fn new(cfg: PlatformConfig) -> Result<Platform, ConfigError> {
        cfg.validate()?;
        Ok(Platform {
            cores: (0..cfg.num_cores).map(|i| Core::new(i as u8)).collect(),
            imem: BankedMemory::new(cfg.im_words, cfg.im_banks, cfg.im_mapping),
            dmem: BankedMemory::new(cfg.dm_words, cfg.dm_banks, cfg.dm_mapping),
            ixbar: IXbar::new(cfg.im_banks),
            dxbar: DXbar::new(cfg.dm_banks, cfg.dxbar_policy),
            sync: cfg.synchronizer.then(Synchronizer::new),
            cycle: 0,
            fault: None,
            buffers: CycleBuffers::new(cfg.num_cores),
            lockstep: LockstepWidth::new(),
            cfg,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// Replaces the cycle budget in place. Part of the reuse surface
    /// alongside [`Platform::reset`]: a cached platform keyed on
    /// (design, cores) can serve jobs whose workloads carry different
    /// budgets without being rebuilt.
    pub fn set_max_cycles(&mut self, budget: u64) {
        self.cfg.max_cycles = budget;
    }

    /// Returns the platform to its power-on state — cores reset, memories
    /// zeroed, statistics cleared — while keeping every allocation, so the
    /// instance can run another program without rebuilding. Used by the
    /// sweep runner to amortize construction across a grid of runs.
    pub fn reset(&mut self) {
        for (i, core) in self.cores.iter_mut().enumerate() {
            *core = Core::new(i as u8);
        }
        self.imem.clear();
        self.dmem.clear();
        self.ixbar.reset();
        self.dxbar.reset();
        if let Some(sync) = &mut self.sync {
            sync.reset();
        }
        self.cycle = 0;
        self.fault = None;
        self.lockstep.reset();
    }

    /// Loads an assembled program into instruction memory.
    pub fn load_program(&mut self, program: &Program) {
        for (addr, word) in program.iter() {
            self.imem.poke(addr, word);
        }
    }

    /// Loads raw words into instruction memory at `base`.
    pub fn load_im(&mut self, base: u16, words: &[u16]) {
        self.imem.load(base, words);
    }

    /// Loads raw words into data memory at `base`.
    pub fn load_dm(&mut self, base: u16, words: &[u16]) {
        self.dmem.load(base, words);
    }

    /// Reads one data-memory word (backdoor; not counted).
    pub fn dm(&self, addr: u16) -> u16 {
        self.dmem.peek(addr)
    }

    /// Reads `len` data-memory words starting at `base` (backdoor).
    pub fn dm_slice(&self, base: u16, len: usize) -> Vec<u16> {
        (0..len)
            .map(|i| self.dmem.peek(base.wrapping_add(i as u16)))
            .collect()
    }

    /// Writes one data-memory word (backdoor; not counted).
    pub fn set_dm(&mut self, addr: u16, value: u16) {
        self.dmem.poke(addr, value);
    }

    /// Immutable access to a core (panics if out of range).
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// Mutable access to a core (loader/test hook).
    pub fn core_mut(&mut self, i: usize) -> &mut Core {
        &mut self.cores[i]
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Raises the external interrupt line of core `i`.
    pub fn raise_irq(&mut self, i: usize) {
        self.cores[i].raise_irq();
    }

    /// Whether every core has halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(|c| c.is_halted())
    }

    /// Advances the platform by one clock cycle with no observers
    /// attached. Equivalent to `step_with(&mut [])`.
    pub fn step(&mut self) {
        self.step_with(&mut []);
    }

    /// Advances the platform by one clock cycle, notifying `observers` at
    /// each hook point (after the built-in lockstep recorder).
    ///
    /// The engine performs zero heap allocations in steady state: all
    /// per-cycle working sets live in buffers owned by the platform and
    /// its components, sized once and reused every cycle.
    pub fn step_with(&mut self, observers: &mut [&mut dyn Observer]) {
        self.cycle += 1;
        let cycle = self.cycle;
        let mut buf = std::mem::take(&mut self.buffers);

        self.lockstep.on_cycle_start(cycle, &self.cores);
        for o in observers.iter_mut() {
            o.on_cycle_start(cycle, &self.cores);
        }

        // Interrupt polling happens at instruction boundaries, before the
        // cycle's fetch phase, so a vectoring core fetches its handler in
        // this same cycle.
        for core in &mut self.cores {
            core.poll_interrupt();
        }

        // Snapshot the phase of every core: each core receives exactly one
        // cycle-consuming call below, based on where it *started* the
        // cycle (fetch completing this cycle executes next cycle).
        buf.phases.clear();
        buf.phases.extend(self.cores.iter().map(|c| c.state()));
        for (i, (phase, core)) in buf.phases.iter().zip(&self.cores).enumerate() {
            self.lockstep.on_core_phase(cycle, i, core.pc(), *phase);
            for o in observers.iter_mut() {
                o.on_core_phase(cycle, i, core.pc(), *phase);
            }
        }

        // ---- fetch phase ----------------------------------------------
        buf.fetch_reqs.clear();
        buf.fetch_reqs.extend(
            self.cores
                .iter()
                .enumerate()
                .filter(|(i, _)| matches!(buf.phases[*i], CoreState::Fetch))
                .filter_map(|(i, c)| c.fetch_request().map(|addr| ImRequest { core: i, addr })),
        );
        self.lockstep.on_fetch(cycle, &buf.fetch_reqs);
        for o in observers.iter_mut() {
            o.on_fetch(cycle, &buf.fetch_reqs);
        }

        self.ixbar
            .arbitrate_into(&buf.fetch_reqs, &mut self.imem, &mut buf.im_grants);
        buf.fetched.fill(false);
        for g in &buf.im_grants {
            buf.fetched[g.core] = true;
            if let Err(error) = self.cores[g.core].on_fetch_granted(g.word) {
                self.fault.get_or_insert(PlatformError::CoreFault {
                    core: g.core,
                    error,
                });
            }
        }
        for r in &buf.fetch_reqs {
            if !buf.fetched[r.core] {
                self.cores[r.core].note_fetch_stall();
            }
        }

        // ---- execute phase: synchronization ISE ------------------------
        buf.sync_reqs.clear();
        buf.sync_reqs.extend(
            self.cores
                .iter()
                .enumerate()
                .filter(|(i, _)| matches!(buf.phases[*i], CoreState::Execute(_)))
                .filter_map(|(i, c)| c.sync_request().map(|r| (i, r))),
        );

        if let Some(sync) = &mut self.sync {
            sync.step_into(&buf.sync_reqs, &mut self.dmem, &mut buf.sync_events);
            let events = &buf.sync_events;
            for &(core, _) in &buf.sync_reqs {
                if events.accepted.contains(&core) {
                    self.cores[core].on_sync_accepted();
                } else {
                    self.cores[core].note_sync_stall();
                }
            }
            // Cores inside the in-flight RMW spend this cycle there.
            for (i, phase) in buf.phases.iter().enumerate() {
                if matches!(phase, CoreState::SyncIssued(_)) {
                    self.cores[i].note_sync_active();
                }
            }
            // Sleeping cores burn their cycle before any wake edge.
            for (i, phase) in buf.phases.iter().enumerate() {
                if matches!(phase, CoreState::Sleeping) {
                    self.cores[i].note_sleep();
                }
            }
            for &(core, sleep) in &events.completed {
                self.cores[core].complete_sync(sleep);
            }
            for &core in &events.wake {
                if core < self.cores.len() {
                    self.cores[core].wake(WakeReason::Synchronizer);
                }
            }
        } else {
            // Baseline design: the ISA has no synchronization ISE, the
            // instructions degenerate to NOPs.
            for &(core, _) in &buf.sync_reqs {
                self.cores[core].skip_sync_op();
            }
            for (i, phase) in buf.phases.iter().enumerate() {
                if matches!(phase, CoreState::Sleeping) {
                    self.cores[i].note_sleep();
                }
            }
        }

        // ---- execute phase: data memory --------------------------------
        buf.dm_reqs.clear();
        buf.dm_reqs.extend(
            self.cores
                .iter()
                .enumerate()
                .filter(|(i, _)| matches!(buf.phases[*i], CoreState::Execute(_)))
                .filter_map(|(i, c)| {
                    c.mem_request().map(|r| DmRequest {
                        core: i,
                        pc: c.pc(),
                        addr: r.addr,
                        access: match r.access {
                            MemAccess::Read => Access::Read,
                            MemAccess::Write(v) => Access::Write(v),
                        },
                    })
                }),
        );

        // Held cores burn their cycle before any release edge.
        for (i, phase) in buf.phases.iter().enumerate() {
            if matches!(phase, CoreState::Held { .. }) {
                self.cores[i].note_hold();
            }
        }

        self.dxbar
            .arbitrate_into(&buf.dm_reqs, &mut self.dmem, &mut buf.dm_outcome);
        buf.granted.fill(false);
        for g in &buf.dm_outcome.grants {
            match *g {
                DmGrant::Complete { core, data } => {
                    buf.granted[core] = true;
                    self.cores[core].complete_execute(data);
                }
                DmGrant::Hold { core, data } => {
                    buf.granted[core] = true;
                    self.cores[core].hold_with_data(data);
                }
            }
        }
        for r in &buf.dm_reqs {
            if !buf.granted[r.core] {
                self.cores[r.core].note_mem_stall();
            }
        }
        for o in observers.iter_mut() {
            o.on_dm(cycle, &buf.dm_reqs, &buf.granted);
        }
        for &core in &buf.dm_outcome.releases {
            self.cores[core].release();
        }

        // ---- execute phase: everything else -----------------------------
        for (i, phase) in buf.phases.iter().enumerate() {
            if let CoreState::Execute(instr) = phase {
                if !instr.is_mem() && !instr.is_sync() {
                    self.cores[i].complete_execute(None);
                }
            }
        }

        self.lockstep.on_cycle_end(cycle, &self.cores);
        for o in observers.iter_mut() {
            o.on_cycle_end(cycle, &self.cores);
        }
        self.buffers = buf;
    }

    /// Runs until every core halts. Equivalent to `run_with(&mut [])`.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::CoreFault`] — a core fetched an illegal word;
    /// * [`PlatformError::Deadlock`] — every active core is asleep with the
    ///   synchronizer idle (e.g. an unbalanced check-out);
    /// * [`PlatformError::Timeout`] — the configured cycle budget ran out.
    pub fn run(&mut self) -> Result<RunSummary, PlatformError> {
        self.run_with(&mut [])
    }

    /// Runs until every core halts, notifying `observers` every cycle and
    /// once more (via [`Observer::on_run_end`]) when the loop exits.
    ///
    /// # Errors
    ///
    /// See [`Platform::run`].
    pub fn run_with(
        &mut self,
        observers: &mut [&mut dyn Observer],
    ) -> Result<RunSummary, PlatformError> {
        let outcome = loop {
            if self.cycle >= self.cfg.max_cycles {
                break Err(PlatformError::Timeout {
                    budget: self.cfg.max_cycles,
                });
            }
            self.step_with(observers);
            if let Some(fault) = self.fault {
                break Err(fault);
            }
            if self.all_halted() {
                break Ok(RunSummary { cycles: self.cycle });
            }
            if self.is_deadlocked() {
                break Err(PlatformError::Deadlock { cycle: self.cycle });
            }
        };
        if !observers.is_empty() {
            let stats = self.stats();
            for o in observers.iter_mut() {
                o.on_run_end(&outcome, &stats);
            }
        }
        outcome
    }

    /// A deadlock: no core can make progress again — every non-halted core
    /// is asleep, nothing is in flight in the synchronizer, and no
    /// interrupt is pending.
    fn is_deadlocked(&self) -> bool {
        let busy_sync = self.sync.as_ref().map(|s| s.is_busy()).unwrap_or(false);
        !busy_sync
            && self.cores.iter().all(|c| c.is_halted() || c.is_sleeping())
            && self.cores.iter().any(|c| c.is_sleeping())
    }

    /// Collects the aggregated statistics of the run so far. The memory,
    /// crossbar and synchronizer counters are plain `Copy` bundles, so
    /// this clones no heap state beyond the per-core counter list.
    pub fn stats(&self) -> SimStats {
        let cores: Vec<_> = self.cores.iter().map(|c| *c.stats()).collect();
        let mut core_total = ulp_cpu::CoreStats::default();
        for c in &cores {
            core_total.merge(c);
        }
        SimStats {
            cycles: self.cycle,
            num_cores: self.cores.len(),
            cores,
            core_total,
            im: *self.imem.stats(),
            dm: *self.dmem.stats(),
            ixbar: *self.ixbar.stats(),
            dxbar: *self.dxbar.stats(),
            sync: self.sync.as_ref().map(|s| *s.stats()),
            lockstep_width_sum: self.lockstep.sum(),
            lockstep_width_cycles: self.lockstep.cycles(),
        }
    }
}

#[cfg(test)]
mod tests;

//! The deterministic cycle loop composing cores, memories, crossbars and
//! the synchronizer.

use crate::config::PlatformConfig;
use crate::error::{ConfigError, PlatformError};
use crate::stats::SimStats;
use ulp_cpu::{Core, CoreState, MemAccess, SyncRequest, WakeReason};
use ulp_isa::asm::Program;
use ulp_mem::{Access, BankedMemory, DXbar, DmGrant, DmRequest, IXbar, ImRequest};
use ulp_sync::Synchronizer;

/// Outcome of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Cycles simulated until the last core halted.
    pub cycles: u64,
}

/// The multi-core platform simulator (Fig. 1 of the paper).
///
/// See the crate-level documentation for an example. Construction validates
/// the [`PlatformConfig`]; programs and data are loaded through backdoors
/// ([`Platform::load_program`], [`Platform::load_dm`]); [`Platform::run`]
/// advances the deterministic cycle loop until every core halts.
#[derive(Debug)]
pub struct Platform {
    cfg: PlatformConfig,
    cores: Vec<Core>,
    imem: BankedMemory,
    dmem: BankedMemory,
    ixbar: IXbar,
    dxbar: DXbar,
    sync: Option<Synchronizer>,
    cycle: u64,
    lockstep_width_sum: u64,
    lockstep_width_cycles: u64,
    fault: Option<PlatformError>,
    pc_trace: Option<Vec<Vec<Option<u16>>>>,
    pc_trace_limit: usize,
}

impl Platform {
    /// Builds a platform from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found in `cfg`.
    pub fn new(cfg: PlatformConfig) -> Result<Platform, ConfigError> {
        cfg.validate()?;
        Ok(Platform {
            cores: (0..cfg.num_cores).map(|i| Core::new(i as u8)).collect(),
            imem: BankedMemory::new(cfg.im_words, cfg.im_banks, cfg.im_mapping),
            dmem: BankedMemory::new(cfg.dm_words, cfg.dm_banks, cfg.dm_mapping),
            ixbar: IXbar::new(cfg.im_banks),
            dxbar: DXbar::new(cfg.dm_banks, cfg.dxbar_policy),
            sync: cfg.synchronizer.then(Synchronizer::new),
            cycle: 0,
            lockstep_width_sum: 0,
            lockstep_width_cycles: 0,
            fault: None,
            pc_trace: None,
            pc_trace_limit: 0,
            cfg,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// Loads an assembled program into instruction memory.
    pub fn load_program(&mut self, program: &Program) {
        for (addr, word) in program.iter() {
            self.imem.poke(addr, word);
        }
    }

    /// Loads raw words into instruction memory at `base`.
    pub fn load_im(&mut self, base: u16, words: &[u16]) {
        self.imem.load(base, words);
    }

    /// Loads raw words into data memory at `base`.
    pub fn load_dm(&mut self, base: u16, words: &[u16]) {
        self.dmem.load(base, words);
    }

    /// Reads one data-memory word (backdoor; not counted).
    pub fn dm(&self, addr: u16) -> u16 {
        self.dmem.peek(addr)
    }

    /// Reads `len` data-memory words starting at `base` (backdoor).
    pub fn dm_slice(&self, base: u16, len: usize) -> Vec<u16> {
        (0..len)
            .map(|i| self.dmem.peek(base.wrapping_add(i as u16)))
            .collect()
    }

    /// Writes one data-memory word (backdoor; not counted).
    pub fn set_dm(&mut self, addr: u16, value: u16) {
        self.dmem.poke(addr, value);
    }

    /// Immutable access to a core (panics if out of range).
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// Mutable access to a core (loader/test hook).
    pub fn core_mut(&mut self, i: usize) -> &mut Core {
        &mut self.cores[i]
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Raises the external interrupt line of core `i`.
    pub fn raise_irq(&mut self, i: usize) {
        self.cores[i].raise_irq();
    }

    /// Records per-core PCs for the first `max_cycles` cycles (for
    /// lockstep visualisation). Sleeping, halted and non-fetch cycles are
    /// recorded as `None`.
    pub fn enable_pc_trace(&mut self, max_cycles: usize) {
        self.pc_trace = Some(Vec::with_capacity(max_cycles.min(1 << 20)));
        self.pc_trace_limit = max_cycles;
    }

    /// The recorded PC trace (empty unless [`Platform::enable_pc_trace`]).
    pub fn pc_trace(&self) -> &[Vec<Option<u16>>] {
        self.pc_trace.as_deref().unwrap_or(&[])
    }

    /// Whether every core has halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(|c| c.is_halted())
    }

    /// Advances the platform by one clock cycle.
    pub fn step(&mut self) {
        self.cycle += 1;

        // Interrupt polling happens at instruction boundaries, before the
        // cycle's fetch phase, so a vectoring core fetches its handler in
        // this same cycle.
        for core in &mut self.cores {
            core.poll_interrupt();
        }

        // Snapshot the phase of every core: each core receives exactly one
        // cycle-consuming call below, based on where it *started* the
        // cycle (fetch completing this cycle executes next cycle).
        let phases: Vec<CoreState> = self.cores.iter().map(|c| c.state()).collect();

        // ---- fetch phase ----------------------------------------------
        let fetch_reqs: Vec<ImRequest> = self
            .cores
            .iter()
            .enumerate()
            .filter(|(i, _)| matches!(phases[*i], CoreState::Fetch))
            .filter_map(|(i, c)| c.fetch_request().map(|addr| ImRequest { core: i, addr }))
            .collect();
        self.record_lockstep(&fetch_reqs);
        self.record_pc_trace(&phases);

        let grants = self.ixbar.arbitrate(&fetch_reqs, &mut self.imem);
        let mut fetched = vec![false; self.cores.len()];
        for g in &grants {
            fetched[g.core] = true;
            if let Err(error) = self.cores[g.core].on_fetch_granted(g.word) {
                self.fault.get_or_insert(PlatformError::CoreFault {
                    core: g.core,
                    error,
                });
            }
        }
        for r in &fetch_reqs {
            if !fetched[r.core] {
                self.cores[r.core].note_fetch_stall();
            }
        }

        // ---- execute phase: synchronization ISE ------------------------
        let sync_reqs: Vec<(usize, SyncRequest)> = self
            .cores
            .iter()
            .enumerate()
            .filter(|(i, _)| matches!(phases[*i], CoreState::Execute(_)))
            .filter_map(|(i, c)| c.sync_request().map(|r| (i, r)))
            .collect();

        if let Some(sync) = &mut self.sync {
            let events = sync.step(&sync_reqs, &mut self.dmem);
            for &(core, _) in &sync_reqs {
                if events.accepted.contains(&core) {
                    self.cores[core].on_sync_accepted();
                } else {
                    self.cores[core].note_sync_stall();
                }
            }
            // Cores inside the in-flight RMW spend this cycle there.
            for (i, phase) in phases.iter().enumerate() {
                if matches!(phase, CoreState::SyncIssued(_)) {
                    self.cores[i].note_sync_active();
                }
            }
            // Sleeping cores burn their cycle before any wake edge.
            for (i, phase) in phases.iter().enumerate() {
                if matches!(phase, CoreState::Sleeping) {
                    self.cores[i].note_sleep();
                }
            }
            for (core, sleep) in events.completed {
                self.cores[core].complete_sync(sleep);
            }
            for core in events.wake {
                if core < self.cores.len() {
                    self.cores[core].wake(WakeReason::Synchronizer);
                }
            }
        } else {
            // Baseline design: the ISA has no synchronization ISE, the
            // instructions degenerate to NOPs.
            for &(core, _) in &sync_reqs {
                self.cores[core].skip_sync_op();
            }
            for (i, phase) in phases.iter().enumerate() {
                if matches!(phase, CoreState::Sleeping) {
                    self.cores[i].note_sleep();
                }
            }
        }

        // ---- execute phase: data memory --------------------------------
        let dm_reqs: Vec<DmRequest> = self
            .cores
            .iter()
            .enumerate()
            .filter(|(i, _)| matches!(phases[*i], CoreState::Execute(_)))
            .filter_map(|(i, c)| {
                c.mem_request().map(|r| DmRequest {
                    core: i,
                    pc: c.pc(),
                    addr: r.addr,
                    access: match r.access {
                        MemAccess::Read => Access::Read,
                        MemAccess::Write(v) => Access::Write(v),
                    },
                })
            })
            .collect();

        // Held cores burn their cycle before any release edge.
        for (i, phase) in phases.iter().enumerate() {
            if matches!(phase, CoreState::Held { .. }) {
                self.cores[i].note_hold();
            }
        }

        let outcome = self.dxbar.arbitrate(&dm_reqs, &mut self.dmem);
        let mut granted = vec![false; self.cores.len()];
        for g in &outcome.grants {
            match *g {
                DmGrant::Complete { core, data } => {
                    granted[core] = true;
                    self.cores[core].complete_execute(data);
                }
                DmGrant::Hold { core, data } => {
                    granted[core] = true;
                    self.cores[core].hold_with_data(data);
                }
            }
        }
        for r in &dm_reqs {
            if !granted[r.core] {
                self.cores[r.core].note_mem_stall();
            }
        }
        for core in outcome.releases {
            self.cores[core].release();
        }

        // ---- execute phase: everything else -----------------------------
        for (i, phase) in phases.iter().enumerate() {
            if let CoreState::Execute(instr) = phase {
                if !instr.is_mem() && !instr.is_sync() {
                    self.cores[i].complete_execute(None);
                }
            }
        }
    }

    fn record_lockstep(&mut self, fetch_reqs: &[ImRequest]) {
        if fetch_reqs.is_empty() {
            return;
        }
        let mut addrs: Vec<u16> = fetch_reqs.iter().map(|r| r.addr).collect();
        addrs.sort_unstable();
        let mut best = 1u64;
        let mut run = 1u64;
        for w in addrs.windows(2) {
            if w[0] == w[1] {
                run += 1;
                best = best.max(run);
            } else {
                run = 1;
            }
        }
        self.lockstep_width_sum += best;
        self.lockstep_width_cycles += 1;
    }

    fn record_pc_trace(&mut self, phases: &[CoreState]) {
        let limit = self.pc_trace_limit;
        if let Some(trace) = &mut self.pc_trace {
            if trace.len() < limit {
                trace.push(
                    self.cores
                        .iter()
                        .zip(phases)
                        .map(|(c, phase)| match phase {
                            CoreState::Fetch => Some(c.pc()),
                            _ => None,
                        })
                        .collect(),
                );
            }
        }
    }

    /// Runs until every core halts.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::CoreFault`] — a core fetched an illegal word;
    /// * [`PlatformError::Deadlock`] — every active core is asleep with the
    ///   synchronizer idle (e.g. an unbalanced check-out);
    /// * [`PlatformError::Timeout`] — the configured cycle budget ran out.
    pub fn run(&mut self) -> Result<RunSummary, PlatformError> {
        while self.cycle < self.cfg.max_cycles {
            self.step();
            if let Some(fault) = self.fault {
                return Err(fault);
            }
            if self.all_halted() {
                return Ok(RunSummary { cycles: self.cycle });
            }
            if self.is_deadlocked() {
                return Err(PlatformError::Deadlock { cycle: self.cycle });
            }
        }
        Err(PlatformError::Timeout {
            budget: self.cfg.max_cycles,
        })
    }

    /// A deadlock: no core can make progress again — every non-halted core
    /// is asleep, nothing is in flight in the synchronizer, and no
    /// interrupt is pending.
    fn is_deadlocked(&self) -> bool {
        let busy_sync = self.sync.as_ref().map(|s| s.is_busy()).unwrap_or(false);
        !busy_sync
            && self
                .cores
                .iter()
                .all(|c| c.is_halted() || c.is_sleeping())
            && self.cores.iter().any(|c| c.is_sleeping())
    }

    /// Collects the aggregated statistics of the run so far.
    pub fn stats(&self) -> SimStats {
        let cores: Vec<_> = self.cores.iter().map(|c| *c.stats()).collect();
        let mut core_total = ulp_cpu::CoreStats::default();
        for c in &cores {
            core_total.merge(c);
        }
        SimStats {
            cycles: self.cycle,
            num_cores: self.cores.len(),
            cores,
            core_total,
            im: self.imem.stats().clone(),
            dm: self.dmem.stats().clone(),
            ixbar: *self.ixbar.stats(),
            dxbar: *self.dxbar.stats(),
            sync: self.sync.as_ref().map(|s| *s.stats()),
            lockstep_width_sum: self.lockstep_width_sum,
            lockstep_width_cycles: self.lockstep_width_cycles,
        }
    }
}

#[cfg(test)]
mod tests;

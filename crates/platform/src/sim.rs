//! The deterministic cycle loop composing cores, memories, crossbars and
//! the synchronizer.

use crate::checkpoint::Checkpoint;
use crate::config::PlatformConfig;
use crate::error::{ConfigError, PlatformError, RestoreError};
use crate::observer::{LockstepWidth, Observer};
use crate::stats::SimStats;
use std::fmt;
use ulp_cpu::{Core, CoreState, MemAccess, SyncRequest, WakeReason};
use ulp_isa::asm::Program;
use ulp_isa::OpClass;
use ulp_jit::{ExecTier, TranslationCache};
use ulp_mem::{
    Access, BankedMemory, DXbar, DXbarOutcome, DmGrant, DmRequest, IXbar, ImGrant, ImRequest,
};
use ulp_sync::{SyncEvents, Synchronizer};

/// Outcome of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Cycles simulated until the last core halted.
    pub cycles: u64,
}

/// Outcome of a bounded [`Platform::run_until`] slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunProgress {
    /// Every core halted; the run is complete.
    Done(RunSummary),
    /// The cycle limit was reached with cores still active. The platform
    /// can be resumed (another `run_until` / `run`) or checkpointed; the
    /// resumed run is bit-identical to one that never paused.
    Paused,
}

impl RunProgress {
    /// Whether the run completed.
    pub fn is_done(&self) -> bool {
        matches!(self, RunProgress::Done(_))
    }

    /// The completion summary, if the run finished.
    pub fn summary(&self) -> Option<RunSummary> {
        match self {
            RunProgress::Done(s) => Some(*s),
            RunProgress::Paused => None,
        }
    }
}

/// A token identifying an observer registered through
/// [`Platform::attach`]. Pass it to [`Platform::observer_as`] /
/// [`Platform::observer_mut_as`] to inspect the observer mid-run and to
/// [`Platform::detach`] to take it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObserverHandle {
    id: u64,
}

/// Per-cycle scratch buffers of the engine, allocated once at platform
/// construction and reused every cycle, so [`Platform::step`] performs no
/// heap allocation in steady state.
#[derive(Debug, Default)]
struct CycleBuffers {
    /// Phase of every core at the start of the cycle.
    phases: Vec<CoreState>,
    /// Fetch requests of cores in their fetch phase.
    fetch_reqs: Vec<ImRequest>,
    /// Granted fetches (filled by the I-Xbar).
    im_grants: Vec<ImGrant>,
    /// Cores whose fetch was granted this cycle.
    fetched: Vec<bool>,
    /// `SINC`/`SDEC` requests of cores in their execute phase.
    sync_reqs: Vec<(usize, SyncRequest)>,
    /// Events produced by the synchronizer (filled by `step_into`).
    sync_events: SyncEvents,
    /// Data-memory requests of cores in their execute phase.
    dm_reqs: Vec<DmRequest>,
    /// Grants and releases (filled by the D-Xbar).
    dm_outcome: DXbarOutcome,
    /// Cores whose data access was granted this cycle.
    granted: Vec<bool>,
}

impl CycleBuffers {
    fn new(num_cores: usize) -> CycleBuffers {
        CycleBuffers {
            phases: Vec::with_capacity(num_cores),
            fetch_reqs: Vec::with_capacity(num_cores),
            im_grants: Vec::with_capacity(num_cores),
            fetched: vec![false; num_cores],
            sync_reqs: Vec::with_capacity(num_cores),
            sync_events: SyncEvents::default(),
            dm_reqs: Vec::with_capacity(num_cores),
            dm_outcome: DXbarOutcome::default(),
            granted: vec![false; num_cores],
        }
    }
}

/// The multi-core platform simulator (Fig. 1 of the paper).
///
/// See the crate-level documentation for an example. Construction validates
/// the [`PlatformConfig`]; programs and data are loaded through backdoors
/// ([`Platform::load_program`], [`Platform::load_dm`]); [`Platform::run`]
/// advances the deterministic cycle loop until every core halts.
///
/// The engine itself carries no instrumentation: tracing and visualisation
/// hook in through [`Observer`]s passed to [`Platform::step_with`] and
/// [`Platform::run_with`]. The only built-in observer is a
/// [`LockstepWidth`] recorder, because the average lockstep width is part
/// of [`SimStats`].
pub struct Platform {
    cfg: PlatformConfig,
    cores: Vec<Core>,
    imem: BankedMemory,
    dmem: BankedMemory,
    ixbar: IXbar,
    dxbar: DXbar,
    sync: Option<Synchronizer>,
    cycle: u64,
    fault: Option<PlatformError>,
    buffers: CycleBuffers,
    lockstep: LockstepWidth,
    jit: TranslationCache,
    /// Per-core trace cursor: `(block, offset)` of the micro-op the core
    /// fetches (or is executing) inside a translated trace. A pure hint —
    /// every use re-validates it against the core's PC — kept so
    /// consecutive compiled cycles skip the cache lookup inside a block.
    cursors: Vec<Option<(u32, u16)>>,
    /// Observers registered through [`Platform::attach`], notified on
    /// every step/run in attach order (before any `*_with` slice). Each
    /// entry keeps the id its [`ObserverHandle`] was minted with.
    attached: Vec<(u64, Box<dyn Observer>)>,
    /// Id for the next [`Platform::attach`] call.
    next_observer: u64,
}

impl fmt::Debug for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Platform")
            .field("cfg", &self.cfg)
            .field("cycle", &self.cycle)
            .field("fault", &self.fault)
            .field(
                "attached",
                &self
                    .attached
                    .iter()
                    .map(|(id, o)| (*id, o.label()))
                    .collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl Platform {
    /// Builds a platform from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found in `cfg`.
    pub fn new(cfg: PlatformConfig) -> Result<Platform, ConfigError> {
        cfg.validate()?;
        Ok(Platform {
            cores: (0..cfg.num_cores).map(|i| Core::new(i as u8)).collect(),
            imem: BankedMemory::new(cfg.im_words, cfg.im_banks, cfg.im_mapping),
            dmem: BankedMemory::new(cfg.dm_words, cfg.dm_banks, cfg.dm_mapping),
            ixbar: IXbar::new(cfg.im_banks),
            dxbar: DXbar::new(cfg.dm_banks, cfg.dxbar_policy),
            sync: cfg.synchronizer.then(Synchronizer::new),
            cycle: 0,
            fault: None,
            buffers: CycleBuffers::new(cfg.num_cores),
            lockstep: LockstepWidth::new(),
            jit: TranslationCache::new(cfg.jit_hot_threshold),
            cursors: vec![None; cfg.num_cores],
            attached: Vec::new(),
            next_observer: 0,
            cfg,
        })
    }

    /// Registers an owned observer with the platform. From now on every
    /// [`Platform::step`] / [`Platform::run`] notifies it (attached
    /// observers fire in attach order, before any observers passed to the
    /// legacy `*_with` slice methods), and [`Platform::snapshot`] captures
    /// its state when it implements [`Observer::save_state`].
    ///
    /// This replaces the positional observer-slice plumbing: instead of
    /// threading `&mut [&mut dyn Observer]` through every call and keeping
    /// the slice alive across the run, callers hand the observer to the
    /// platform and read it back through the returned handle
    /// ([`Platform::observer_as`], [`Platform::detach`]).
    pub fn attach(&mut self, observer: Box<dyn Observer>) -> ObserverHandle {
        let id = self.next_observer;
        self.next_observer += 1;
        self.attached.push((id, observer));
        ObserverHandle { id }
    }

    /// Removes and returns an attached observer. `None` if the handle was
    /// already detached (handles are platform-specific and single-use).
    pub fn detach(&mut self, handle: ObserverHandle) -> Option<Box<dyn Observer>> {
        let pos = self.attached.iter().position(|(id, _)| *id == handle.id)?;
        Some(self.attached.remove(pos).1)
    }

    /// Number of currently attached observers.
    pub fn attached_observers(&self) -> usize {
        self.attached.len()
    }

    /// Borrows an attached observer downcast to its concrete type.
    /// `None` if the handle is stale or `T` is not the attached type.
    pub fn observer_as<T: Observer>(&self, handle: &ObserverHandle) -> Option<&T> {
        self.attached
            .iter()
            .find(|(id, _)| *id == handle.id)
            .and_then(|(_, o)| (o.as_ref() as &dyn std::any::Any).downcast_ref::<T>())
    }

    /// Mutably borrows an attached observer downcast to its concrete type.
    pub fn observer_mut_as<T: Observer>(&mut self, handle: &ObserverHandle) -> Option<&mut T> {
        self.attached
            .iter_mut()
            .find(|(id, _)| *id == handle.id)
            .and_then(|(_, o)| (o.as_mut() as &mut dyn std::any::Any).downcast_mut::<T>())
    }

    /// The active configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// Replaces the cycle budget in place. Part of the reuse surface
    /// alongside [`Platform::reset`]: a cached platform keyed on
    /// (design, cores) can serve jobs whose workloads carry different
    /// budgets without being rebuilt.
    pub fn set_max_cycles(&mut self, budget: u64) {
        self.cfg.max_cycles = budget;
    }

    /// The configured execution tier.
    pub fn exec_tier(&self) -> ExecTier {
        self.cfg.exec_tier
    }

    /// Replaces the execution tier in place. Part of the reuse surface
    /// alongside [`Platform::set_max_cycles`]: a cached platform can serve
    /// jobs requesting either tier without being rebuilt. Takes effect on
    /// the next run.
    pub fn set_exec_tier(&mut self, tier: ExecTier) {
        self.cfg.exec_tier = tier;
        self.cursors.fill(None);
    }

    /// The translation cache of the compiled tier (hotness counters,
    /// cached traces, per-run counters).
    pub fn translation_cache(&self) -> &TranslationCache {
        &self.jit
    }

    /// Returns the platform to its power-on state — cores reset, memories
    /// zeroed, statistics cleared — while keeping every allocation, so the
    /// instance can run another program without rebuilding. Used by the
    /// sweep runner to amortize construction across a grid of runs.
    pub fn reset(&mut self) {
        for (i, core) in self.cores.iter_mut().enumerate() {
            *core = Core::new(i as u8);
        }
        self.imem.clear();
        self.dmem.clear();
        self.ixbar.reset();
        self.dxbar.reset();
        if let Some(sync) = &mut self.sync {
            sync.reset();
        }
        self.cycle = 0;
        self.fault = None;
        self.lockstep.reset();
        // The translation cache intentionally survives reset: reloading the
        // same kernel must hit the existing traces. Zeroing the IM above
        // made its fingerprint stale, so flag it for revalidation.
        self.jit.begin_run();
        self.jit.mark_im_dirty();
        self.cursors.fill(None);
    }

    /// Loads an assembled program into instruction memory.
    pub fn load_program(&mut self, program: &Program) {
        for (addr, word) in program.iter() {
            self.imem.poke(addr, word);
        }
        self.jit.mark_im_dirty();
    }

    /// Loads raw words into instruction memory at `base`.
    pub fn load_im(&mut self, base: u16, words: &[u16]) {
        self.imem.load(base, words);
        self.jit.mark_im_dirty();
    }

    /// Loads raw words into data memory at `base`.
    pub fn load_dm(&mut self, base: u16, words: &[u16]) {
        self.dmem.load(base, words);
    }

    /// Reads one data-memory word (backdoor; not counted).
    pub fn dm(&self, addr: u16) -> u16 {
        self.dmem.peek(addr)
    }

    /// Reads `len` data-memory words starting at `base` (backdoor).
    pub fn dm_slice(&self, base: u16, len: usize) -> Vec<u16> {
        (0..len)
            .map(|i| self.dmem.peek(base.wrapping_add(i as u16)))
            .collect()
    }

    /// Writes one data-memory word (backdoor; not counted).
    pub fn set_dm(&mut self, addr: u16, value: u16) {
        self.dmem.poke(addr, value);
    }

    /// Immutable access to a core (panics if out of range).
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// Mutable access to a core (loader/test hook).
    pub fn core_mut(&mut self, i: usize) -> &mut Core {
        &mut self.cores[i]
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Raises the external interrupt line of core `i`.
    pub fn raise_irq(&mut self, i: usize) {
        self.cores[i].raise_irq();
    }

    /// Whether every core has halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(|c| c.is_halted())
    }

    /// Advances the platform by one clock cycle, notifying any attached
    /// observers. Equivalent to `step_with(&mut [])`.
    pub fn step(&mut self) {
        self.step_with(&mut []);
    }

    /// Advances the platform by one clock cycle, notifying attached
    /// observers and then `observers` at each hook point (after the
    /// built-in lockstep recorder).
    ///
    /// With no observers anywhere, the engine performs zero heap
    /// allocations in steady state: all per-cycle working sets live in
    /// buffers owned by the platform and its components, sized once and
    /// reused every cycle, and the unobserved cycle is a monomorphized
    /// copy with every observer hook compiled out. (Manually stepping
    /// with *attached* observers builds a small dispatch list per call;
    /// the run loops hoist it out of the cycle loop.)
    ///
    /// Borrowed observer slices are the legacy registration path — prefer
    /// [`Platform::attach`], which also integrates the observer with
    /// checkpointing.
    pub fn step_with(&mut self, observers: &mut [&mut dyn Observer]) {
        if self.attached.is_empty() {
            if observers.is_empty() {
                self.step_cycle::<false>(&mut []);
            } else {
                self.step_cycle::<true>(observers);
            }
            return;
        }
        let mut attached = std::mem::take(&mut self.attached);
        let mut refs: Vec<&mut dyn Observer> = attached
            .iter_mut()
            .map(|(_, o)| o.as_mut())
            .chain(observers.iter_mut().map(|o| &mut **o))
            .collect();
        self.step_cycle::<true>(&mut refs);
        drop(refs);
        self.attached = attached;
    }

    /// One interpreter cycle. `OBSERVED` gates every observer dispatch at
    /// compile time; the built-in lockstep recorder only implements
    /// `on_fetch`, so that is the one hook the unobserved copy keeps.
    fn step_cycle<const OBSERVED: bool>(&mut self, observers: &mut [&mut dyn Observer]) {
        self.cycle += 1;
        let cycle = self.cycle;
        let mut buf = std::mem::take(&mut self.buffers);

        if OBSERVED {
            for o in observers.iter_mut() {
                o.on_cycle_start(cycle, &self.cores);
            }
        }

        // Interrupt polling happens at instruction boundaries, before the
        // cycle's fetch phase, so a vectoring core fetches its handler in
        // this same cycle.
        for core in &mut self.cores {
            core.poll_interrupt();
        }

        // Snapshot the phase of every core: each core receives exactly one
        // cycle-consuming call below, based on where it *started* the
        // cycle (fetch completing this cycle executes next cycle). One
        // pass over the snapshot collects every request list and per-phase
        // work flag, so the phases below never rescan cores that have
        // nothing for them.
        buf.phases.clear();
        buf.phases.extend(self.cores.iter().map(|c| c.state()));
        buf.fetch_reqs.clear();
        buf.sync_reqs.clear();
        buf.dm_reqs.clear();
        let mut any_sync_issued = false;
        let mut any_sleeping = false;
        let mut any_held = false;
        // Cores whose execute phase is core-local (neither memory nor
        // sync) and completes at the end of the cycle; bit per core id.
        let mut local_done: u32 = 0;
        for (i, phase) in buf.phases.iter().enumerate() {
            if OBSERVED {
                for o in observers.iter_mut() {
                    o.on_core_phase(cycle, i, self.cores[i].pc(), *phase);
                }
            }
            match phase {
                CoreState::Fetch => {
                    if let Some(addr) = self.cores[i].fetch_request() {
                        buf.fetch_reqs.push(ImRequest { core: i, addr });
                    }
                }
                CoreState::Execute(_) => {
                    let c = &self.cores[i];
                    if let Some(r) = c.sync_request() {
                        buf.sync_reqs.push((i, r));
                    } else if let Some(r) = c.mem_request() {
                        buf.dm_reqs.push(DmRequest {
                            core: i,
                            pc: c.pc(),
                            addr: r.addr,
                            access: match r.access {
                                MemAccess::Read => Access::Read,
                                MemAccess::Write(v) => Access::Write(v),
                            },
                        });
                    } else {
                        local_done |= 1 << i;
                    }
                }
                CoreState::SyncIssued(_) => any_sync_issued = true,
                CoreState::Sleeping => any_sleeping = true,
                CoreState::Held { .. } => any_held = true,
                CoreState::Halted => {}
            }
        }

        // ---- fetch phase ----------------------------------------------
        self.lockstep.on_fetch(cycle, &buf.fetch_reqs);
        if OBSERVED {
            for o in observers.iter_mut() {
                o.on_fetch(cycle, &buf.fetch_reqs);
            }
        }

        self.ixbar
            .arbitrate_into(&buf.fetch_reqs, &mut self.imem, &mut buf.im_grants);
        buf.fetched.fill(false);
        for g in &buf.im_grants {
            buf.fetched[g.core] = true;
            if let Err(error) = self.cores[g.core].on_fetch_granted(g.word) {
                self.fault.get_or_insert(PlatformError::CoreFault {
                    core: g.core,
                    error,
                });
            }
        }
        for r in &buf.fetch_reqs {
            if !buf.fetched[r.core] {
                self.cores[r.core].note_fetch_stall();
            }
        }

        // ---- execute phase: synchronization ISE ------------------------
        if let Some(sync) = &mut self.sync {
            sync.step_into(&buf.sync_reqs, &mut self.dmem, &mut buf.sync_events);
            let events = &buf.sync_events;
            for &(core, _) in &buf.sync_reqs {
                if events.accepted.contains(&core) {
                    self.cores[core].on_sync_accepted();
                } else {
                    self.cores[core].note_sync_stall();
                }
            }
            // Cores inside the in-flight RMW spend this cycle there.
            if any_sync_issued {
                for (i, phase) in buf.phases.iter().enumerate() {
                    if matches!(phase, CoreState::SyncIssued(_)) {
                        self.cores[i].note_sync_active();
                    }
                }
            }
            // Sleeping cores burn their cycle before any wake edge.
            if any_sleeping {
                for (i, phase) in buf.phases.iter().enumerate() {
                    if matches!(phase, CoreState::Sleeping) {
                        self.cores[i].note_sleep();
                    }
                }
            }
            for &(core, sleep) in &events.completed {
                self.cores[core].complete_sync(sleep);
            }
            for &core in &events.wake {
                if core < self.cores.len() {
                    self.cores[core].wake(WakeReason::Synchronizer);
                }
            }
        } else {
            // Baseline design: the ISA has no synchronization ISE, the
            // instructions degenerate to NOPs.
            for &(core, _) in &buf.sync_reqs {
                self.cores[core].skip_sync_op();
            }
            if any_sleeping {
                for (i, phase) in buf.phases.iter().enumerate() {
                    if matches!(phase, CoreState::Sleeping) {
                        self.cores[i].note_sleep();
                    }
                }
            }
        }

        // ---- execute phase: data memory --------------------------------
        // Held cores burn their cycle before any release edge.
        if any_held {
            for (i, phase) in buf.phases.iter().enumerate() {
                if matches!(phase, CoreState::Held { .. }) {
                    self.cores[i].note_hold();
                }
            }
        }

        self.dxbar
            .arbitrate_into(&buf.dm_reqs, &mut self.dmem, &mut buf.dm_outcome);
        buf.granted.fill(false);
        for g in &buf.dm_outcome.grants {
            match *g {
                DmGrant::Complete { core, data } => {
                    buf.granted[core] = true;
                    self.cores[core].complete_execute(data);
                }
                DmGrant::Hold { core, data } => {
                    buf.granted[core] = true;
                    self.cores[core].hold_with_data(data);
                }
            }
        }
        for r in &buf.dm_reqs {
            if !buf.granted[r.core] {
                self.cores[r.core].note_mem_stall();
            }
        }
        if OBSERVED {
            for o in observers.iter_mut() {
                o.on_dm(cycle, &buf.dm_reqs, &buf.granted);
            }
        }
        for &core in &buf.dm_outcome.releases {
            self.cores[core].release();
        }

        // ---- execute phase: everything else -----------------------------
        while local_done != 0 {
            let i = local_done.trailing_zeros() as usize;
            local_done &= local_done - 1;
            self.cores[i].complete_execute(None);
        }

        if OBSERVED {
            for o in observers.iter_mut() {
                o.on_cycle_end(cycle, &self.cores);
            }
        }
        self.buffers = buf;
    }

    /// Runs until every core halts. Equivalent to `run_with(&mut [])`.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::CoreFault`] — a core fetched an illegal word;
    /// * [`PlatformError::Deadlock`] — every active core is asleep with the
    ///   synchronizer idle (e.g. an unbalanced check-out);
    /// * [`PlatformError::Timeout`] — the configured cycle budget ran out.
    pub fn run(&mut self) -> Result<RunSummary, PlatformError> {
        self.run_with(&mut [])
    }

    /// Runs until every core halts, notifying attached observers, then
    /// `observers`, every cycle and once more (via
    /// [`Observer::on_run_end`]) when the loop exits.
    ///
    /// Borrowed observer slices are the legacy registration path — prefer
    /// [`Platform::attach`] and plain [`Platform::run`].
    ///
    /// # Errors
    ///
    /// See [`Platform::run`].
    pub fn run_with(
        &mut self,
        observers: &mut [&mut dyn Observer],
    ) -> Result<RunSummary, PlatformError> {
        match self.run_bounded(u64::MAX, observers)? {
            RunProgress::Done(summary) => Ok(summary),
            RunProgress::Paused => unreachable!("unbounded run cannot pause"),
        }
    }

    /// Runs until every core halts **or** the simulated cycle count
    /// reaches `limit`, whichever comes first. Attached observers are
    /// notified throughout; [`Observer::on_run_end`] fires only when the
    /// run truly completes (not on a pause).
    ///
    /// A paused platform can be resumed with another `run_until` (or
    /// `run`) and/or checkpointed via [`Platform::snapshot`]; slicing a
    /// run this way is **bit-identical** to running it in one piece —
    /// same architectural state, same [`SimStats`], on both execution
    /// tiers.
    ///
    /// # Errors
    ///
    /// See [`Platform::run`]. The configured cycle budget takes
    /// precedence: a platform at its budget reports
    /// [`PlatformError::Timeout`], never `Paused`.
    pub fn run_until(&mut self, limit: u64) -> Result<RunProgress, PlatformError> {
        self.run_bounded(limit, &mut [])
    }

    fn run_bounded(
        &mut self,
        limit: u64,
        extra: &mut [&mut dyn Observer],
    ) -> Result<RunProgress, PlatformError> {
        let observed = !extra.is_empty() || !self.attached.is_empty();
        if self.cfg.exec_tier == ExecTier::Compiled {
            if !observed {
                return self.run_compiled(limit);
            }
            // Observer hooks fire every cycle, and every observed cycle is
            // a fidelity boundary: the whole run stays on the interpreter.
            let start = self.cycle;
            let outcome = self.run_interpreted(limit, extra);
            self.jit.stats_mut().fallback_cycles += self.cycle - start;
            return outcome;
        }
        self.run_interpreted(limit, extra)
    }

    fn run_interpreted(
        &mut self,
        limit: u64,
        extra: &mut [&mut dyn Observer],
    ) -> Result<RunProgress, PlatformError> {
        if self.attached.is_empty() {
            return self.run_loop(limit, extra);
        }
        let mut attached = std::mem::take(&mut self.attached);
        let outcome = {
            let mut refs: Vec<&mut dyn Observer> = attached
                .iter_mut()
                .map(|(_, o)| o.as_mut())
                .chain(extra.iter_mut().map(|o| &mut **o))
                .collect();
            self.run_loop(limit, &mut refs)
        };
        self.attached = attached;
        outcome
    }

    fn run_loop(
        &mut self,
        limit: u64,
        observers: &mut [&mut dyn Observer],
    ) -> Result<RunProgress, PlatformError> {
        let outcome = loop {
            if self.cycle >= self.cfg.max_cycles {
                break Err(PlatformError::Timeout {
                    budget: self.cfg.max_cycles,
                });
            }
            if self.cycle >= limit {
                // A pause is not a run end: no on_run_end, the run simply
                // has not finished yet.
                return Ok(RunProgress::Paused);
            }
            if observers.is_empty() {
                self.step_cycle::<false>(&mut []);
            } else {
                self.step_cycle::<true>(observers);
            }
            if let Some(fault) = self.fault {
                break Err(fault);
            }
            if self.all_halted() {
                break Ok(RunSummary { cycles: self.cycle });
            }
            if self.is_deadlocked() {
                break Err(PlatformError::Deadlock { cycle: self.cycle });
            }
        };
        if !observers.is_empty() {
            let stats = self.stats();
            for o in observers.iter_mut() {
                o.on_run_end(&outcome, &stats);
            }
        }
        outcome.map(RunProgress::Done)
    }

    /// The compiled-tier run loop: each iteration either replays one cycle
    /// through the translated traces or hands exactly one cycle to the
    /// interpreter (cold code, fidelity boundaries, possible DM conflicts).
    fn run_compiled(&mut self, limit: u64) -> Result<RunProgress, PlatformError> {
        self.revalidate_jit();
        loop {
            if self.cycle >= self.cfg.max_cycles {
                return Err(PlatformError::Timeout {
                    budget: self.cfg.max_cycles,
                });
            }
            if self.cycle >= limit {
                return Ok(RunProgress::Paused);
            }
            if self.step_tier_once(limit) {
                // A compiled cycle cannot fault, halt the last core or
                // deadlock — those all live behind fidelity boundaries
                // that force the interpreter path.
                continue;
            }
            if let Some(fault) = self.fault {
                return Err(fault);
            }
            if self.all_halted() {
                return Ok(RunProgress::Done(RunSummary { cycles: self.cycle }));
            }
            if self.is_deadlocked() {
                return Err(PlatformError::Deadlock { cycle: self.cycle });
            }
        }
    }

    /// Advances the simulation honoring the configured execution tier: on
    /// a compiled-tier platform the cycle is replayed through hot traces
    /// whenever it is trace-safe and interpreted otherwise. Returns whether
    /// the work executed in the compiled tier (always `false` on an
    /// interpreted-tier platform).
    ///
    /// A compiled step may advance *more than one cycle*: when every core
    /// runs the same pure-op trace in lockstep, the whole run executes as
    /// one batch (check [`Platform::cycle`] for the actual progress).
    /// External events injected between steps ([`Platform::raise_irq`])
    /// are polled at the next step, so they land on a batch boundary —
    /// step-for-step interrupt timing against the interpreter requires
    /// [`ExecTier::Interpreted`].
    pub fn step_tiered(&mut self) -> bool {
        if self.cfg.exec_tier == ExecTier::Compiled {
            if !self.attached.is_empty() {
                // Observed cycles are fidelity boundaries: hand the cycle
                // to the interpreter so every attached hook fires.
                self.step_with(&mut []);
                self.jit.stats_mut().fallback_cycles += 1;
                return false;
            }
            self.revalidate_jit();
            self.step_tier_once(u64::MAX)
        } else {
            self.step();
            false
        }
    }

    /// Revalidates the translation cache against the current IM; if the
    /// cached traces were dropped, the per-core cursors into them die too.
    fn revalidate_jit(&mut self) {
        self.jit.revalidate(&self.imem);
        if self.jit.blocks_cached() == 0 {
            self.cursors.fill(None);
        }
    }

    /// One tiered cycle (cache already revalidated): tries the compiled
    /// path, falling back to a single unobserved interpreter cycle.
    /// `limit` caps how far a lockstep batch may advance the cycle count
    /// (the run-slicing boundary of [`Platform::run_until`]).
    fn step_tier_once(&mut self, limit: u64) -> bool {
        // Interrupt polling happens at instruction boundaries before the
        // fetch phase, exactly like the interpreter cycle. `poll_interrupt`
        // is idempotent, so the fallback cycle re-polling is harmless; a
        // redirected core's cursor hint simply fails PC validation.
        for core in &mut self.cores {
            core.poll_interrupt();
        }
        if self.try_step_compiled(limit) {
            self.jit.stats_mut().compiled_cycles += 1;
            return true;
        }
        self.cursors.fill(None);
        self.step_cycle::<false>(&mut []);
        self.jit.stats_mut().fallback_cycles += 1;
        false
    }

    /// Attempts to execute the next cycle entirely inside translated
    /// traces. Succeeds only when every core's contribution is trace-safe:
    /// the synchronizer is idle, fetching cores sit on a hot trace,
    /// executing cores run trace-safe micro-ops, and the data-memory
    /// request set is conflict-free and lock-free. On success the cycle is
    /// *replayed* exactly as the interpreter would execute it — same
    /// crossbar arbitration, same rotating priorities, same counters — so
    /// all architectural state and statistics stay bit-identical; the only
    /// work skipped is per-instruction decode and the phase machinery that
    /// provably does nothing this cycle.
    fn try_step_compiled(&mut self, limit: u64) -> bool {
        if self.sync.as_ref().is_some_and(Synchronizer::is_busy) {
            return false;
        }
        let n = self.cores.len();
        debug_assert!(n <= 16, "plan scratch is sized for the core-count cap");

        // ---- uniform lockstep batch --------------------------------------
        // The dominant shape of SPMD hot loops: every non-halted core in
        // Fetch at the *same* PC. If the trace ahead is a run of pure
        // (core-local, non-memory) micro-ops, the whole run executes here
        // — per op one broadcast fetch cycle plus one execute cycle, with
        // the same statistics the interpreter would record, but without
        // per-cycle arbitration, request buffers or phase scans.
        if self.try_step_uniform_batch(limit) {
            return true;
        }

        // ---- plan: classify every core's cycle, commit nothing ---------
        let mut fetchers = [(0usize, 0u32, 0u16); 16];
        let mut nfetch = 0usize;
        let mut dm_plan = [(0usize, 0u16, Access::Read); 16];
        let mut ndm = 0usize;
        let mut local_done: u32 = 0;
        let mut any_active = false;
        for i in 0..n {
            match self.cores[i].state() {
                CoreState::Halted => {}
                CoreState::Fetch => {
                    any_active = true;
                    let pc = self.cores[i].pc();
                    // The cursor is a hint: trust it only if it points at
                    // this PC inside its trace (traces mirror validated
                    // IM, so any cursor passing this check is correct).
                    let cursor = self.cursors[i]
                        .filter(|&(b, off)| {
                            let block = self.jit.block(b);
                            (off as usize) < block.len() && block.start.wrapping_add(off) == pc
                        })
                        .or_else(|| self.jit.lookup_hot(pc, &self.imem).map(|b| (b, 0)));
                    let Some(cur) = cursor else {
                        return false; // cold code: interpret this cycle
                    };
                    self.cursors[i] = Some(cur);
                    fetchers[nfetch] = (i, cur.0, cur.1);
                    nfetch += 1;
                }
                CoreState::Execute(instr) => {
                    any_active = true;
                    match instr.op_class() {
                        OpClass::Pure | OpClass::Control => local_done |= 1 << i,
                        OpClass::Mem => {
                            let r = self.cores[i].mem_request().expect("Mem class requests DM");
                            let access = match r.access {
                                MemAccess::Read => Access::Read,
                                MemAccess::Write(v) => Access::Write(v),
                            };
                            dm_plan[ndm] = (i, r.addr, access);
                            ndm += 1;
                        }
                        OpClass::Boundary => return false,
                    }
                }
                // Held, SyncIssued, Sleeping: fidelity boundaries.
                _ => return false,
            }
        }
        if !any_active {
            return false;
        }
        // The DM request set must be conflict-free: per bank at most one
        // request unless all of them are same-address reads, and no locked
        // words. Pairwise is fine at <= 16 requests.
        for a in 0..ndm {
            let (_, addr_a, access_a) = dm_plan[a];
            if self.dmem.is_locked(addr_a) {
                return false;
            }
            for &(_, addr_b, access_b) in &dm_plan[a + 1..ndm] {
                if self.dmem.bank_of(addr_a) == self.dmem.bank_of(addr_b)
                    && !(addr_a == addr_b && access_a == Access::Read && access_b == Access::Read)
                {
                    return false;
                }
            }
        }

        // ---- commit: replay the exact interpreter cycle ----------------
        self.cycle += 1;
        let cycle = self.cycle;
        let mut buf = std::mem::take(&mut self.buffers);

        // Fetch phase: addresses come from the cores as usual; the real
        // I-Xbar arbitration keeps rotating priority, conflict accounting
        // and memory energy counters bit-identical. Only decode is skipped:
        // granted cores receive the pre-decoded micro-op. (With no fetcher
        // the interpreter's fetch phase is a no-op: the width recorder
        // ignores empty cycles and the crossbar grants nothing.)
        if nfetch > 0 {
            buf.fetch_reqs.clear();
            for &(i, _, _) in &fetchers[..nfetch] {
                buf.fetch_reqs.push(ImRequest {
                    core: i,
                    addr: self.cores[i].pc(),
                });
            }
            self.lockstep.on_fetch(cycle, &buf.fetch_reqs);
            self.ixbar
                .arbitrate_into(&buf.fetch_reqs, &mut self.imem, &mut buf.im_grants);
            buf.fetched.fill(false);
            for g in &buf.im_grants {
                buf.fetched[g.core] = true;
            }
            for &(i, block, off) in &fetchers[..nfetch] {
                if buf.fetched[i] {
                    let op = self.jit.block(block).ops[off as usize];
                    self.cores[i].on_fetch_granted_decoded(op.instr);
                } else {
                    self.cores[i].note_fetch_stall();
                }
            }
        }

        // Sync phase: skipped — the synchronizer is idle and no core
        // issues a sync op, so the interpreter's step would be a no-op.

        // DM phase: the plan guarantees every request is served. (With no
        // request the interpreter's DM phase is a no-op too: the plan
        // excludes held cores, so there is nothing to release either.)
        if ndm > 0 {
            buf.dm_reqs.clear();
            for &(i, addr, access) in &dm_plan[..ndm] {
                buf.dm_reqs.push(DmRequest {
                    core: i,
                    pc: self.cores[i].pc(),
                    addr,
                    access,
                });
            }
            self.dxbar
                .arbitrate_into(&buf.dm_reqs, &mut self.dmem, &mut buf.dm_outcome);
            debug_assert_eq!(
                buf.dm_outcome.grants.len(),
                ndm,
                "conflict-free plan fully served"
            );
            debug_assert!(buf.dm_outcome.releases.is_empty());
            for g in &buf.dm_outcome.grants {
                match *g {
                    DmGrant::Complete { core, data } => {
                        self.cores[core].complete_execute(data);
                        self.advance_cursor(core);
                    }
                    // A hold needs unserved synchronous peers; a
                    // conflict-free cycle serves everyone.
                    DmGrant::Hold { .. } => unreachable!("conflict-free cycle cannot hold"),
                }
            }
        }

        // Execute phase: core-local micro-ops complete with no operand.
        while local_done != 0 {
            let i = local_done.trailing_zeros() as usize;
            local_done &= local_done - 1;
            self.cores[i].complete_execute(None);
            self.advance_cursor(i);
        }

        self.buffers = buf;
        true
    }

    /// The uniform-lockstep batch: when every non-halted core is fetching
    /// the same PC on a hot trace whose next micro-ops are a run of
    /// [`OpClass::Pure`] ops, executes the whole run (capped by the cycle
    /// budget) in one call. Per op this replays exactly one broadcast
    /// fetch cycle and one core-local execute cycle — identical memory,
    /// crossbar, lockstep-width and core counters to the interpreter —
    /// so architectural state and statistics stay bit-identical. Returns
    /// whether a batch (≥ 1 op) ran. The batch never advances past
    /// `limit`, so a sliced run pauses exactly where the interpreter
    /// would; because each pair of cycles contributes the same counters
    /// regardless of how the run is split, slicing stays bit-identical.
    fn try_step_uniform_batch(&mut self, limit: u64) -> bool {
        let mut active = [0usize; 16];
        let mut m = 0usize;
        let mut pc = 0u16;
        for (i, core) in self.cores.iter().enumerate() {
            match core.state() {
                CoreState::Halted => {}
                CoreState::Fetch => {
                    if m == 0 {
                        pc = core.pc();
                    } else if core.pc() != pc {
                        return false;
                    }
                    active[m] = i;
                    m += 1;
                }
                _ => return false,
            }
        }
        if m == 0 {
            return false;
        }
        // All fetchers share one PC: resolve the trace through the first
        // core's cursor hint (validated) or the hot-block cache.
        let leader = active[0];
        let Some((b, off)) = self.cursors[leader]
            .filter(|&(b, off)| {
                let block = self.jit.block(b);
                (off as usize) < block.len() && block.start.wrapping_add(off) == pc
            })
            .or_else(|| self.jit.lookup_hot(pc, &self.imem).map(|b| (b, 0)))
        else {
            return false;
        };
        let block = self.jit.block(b);
        // Cap the run so the batch never overshoots the cycle budget or
        // the caller's slice limit (the interpreter would stop there, one
        // cycle at a time).
        let budget_cycles = self.cfg.max_cycles.min(limit).saturating_sub(self.cycle);
        let run = block.pure_run(off);
        let k = run.min((budget_cycles / 2) as usize);
        // An odd budget splits a fetch/execute pair across the slice
        // boundary: execute the fetch half here (still one broadcast, so
        // hit accounting matches the unsliced batch) and let the execute
        // half complete after the pause, exactly as the interpreter would.
        let split_pair = run > k && budget_cycles > 2 * k as u64;
        if k == 0 && !split_pair {
            return false;
        }

        for step in 0..k {
            let op = block.ops[off as usize + step];
            let at = block.start.wrapping_add(off).wrapping_add(step as u16);
            // Fetch cycle: one broadcast read serves the whole group.
            self.cycle += 1;
            self.lockstep.note_uniform(m as u64);
            self.ixbar.serve_uniform(&active[..m], at, &mut self.imem);
            for &i in &active[..m] {
                self.cores[i].on_fetch_granted_decoded(op.instr);
            }
            // Execute cycle: pure ops complete core-locally.
            self.cycle += 1;
            for &i in &active[..m] {
                self.cores[i].complete_execute(None);
            }
        }
        if split_pair {
            let op = block.ops[off as usize + k];
            let at = block.start.wrapping_add(off).wrapping_add(k as u16);
            self.cycle += 1;
            self.lockstep.note_uniform(m as u64);
            self.ixbar.serve_uniform(&active[..m], at, &mut self.imem);
            // The cursor stays on the op now executing; its completion
            // (next cycle, possibly after a checkpoint/restore) advances
            // it, so a resumed run re-enters the trace without a lookup.
            for &i in &active[..m] {
                self.cores[i].on_fetch_granted_decoded(op.instr);
                self.cursors[i] = Some((b, off + k as u16));
            }
            let jit = self.jit.stats_mut();
            jit.compiled_cycles += 2 * k as u64; // the caller counts one more
            return true;
        }
        let end = off + k as u16;
        let cursor = ((end as usize) < block.len()).then_some((b, end));
        for &i in &active[..m] {
            self.cursors[i] = cursor;
        }
        let jit = self.jit.stats_mut();
        jit.compiled_cycles += 2 * k as u64 - 1; // the caller counts one more
        true
    }

    /// After a compiled execute completion, points the core's cursor at
    /// the next micro-op of its trace; past the end (including control
    /// terminators) the cursor dies and the next fetch re-enters through
    /// the cache at the new PC.
    fn advance_cursor(&mut self, i: usize) {
        if let Some((block, off)) = self.cursors[i] {
            let next = off + 1;
            self.cursors[i] =
                ((next as usize) < self.jit.block(block).len()).then_some((block, next));
        }
    }

    /// A deadlock: no core can make progress again — every non-halted core
    /// is asleep, nothing is in flight in the synchronizer, and no
    /// interrupt is pending.
    fn is_deadlocked(&self) -> bool {
        let busy_sync = self.sync.as_ref().map(|s| s.is_busy()).unwrap_or(false);
        !busy_sync
            && self.cores.iter().all(|c| c.is_halted() || c.is_sleeping())
            && self.cores.iter().any(|c| c.is_sleeping())
    }

    /// Collects the aggregated statistics of the run so far. The memory,
    /// crossbar and synchronizer counters are plain `Copy` bundles, so
    /// this clones no heap state beyond the per-core counter list.
    pub fn stats(&self) -> SimStats {
        let cores: Vec<_> = self.cores.iter().map(|c| *c.stats()).collect();
        let mut core_total = ulp_cpu::CoreStats::default();
        for c in &cores {
            core_total.merge(c);
        }
        SimStats {
            cycles: self.cycle,
            num_cores: self.cores.len(),
            cores,
            core_total,
            im: *self.imem.stats(),
            dm: *self.dmem.stats(),
            ixbar: *self.ixbar.stats(),
            dxbar: *self.dxbar.stats(),
            sync: self.sync.as_ref().map(|s| *s.stats()),
            lockstep_width_sum: self.lockstep.sum(),
            lockstep_width_cycles: self.lockstep.cycles(),
            jit: self.jit.stats(),
        }
    }

    // ---- checkpointing ---------------------------------------------------

    /// Captures the complete state of the platform between cycles: cores,
    /// both memories, crossbar arbiters, the synchronizer, the lockstep
    /// and power-relevant counters, the translation cache, and the state
    /// of every attached observer that implements
    /// [`Observer::save_state`]. Resuming from the checkpoint (on this
    /// platform or a fresh one) is bit-identical to never pausing.
    pub fn snapshot(&self) -> Checkpoint {
        // Trace cursors are stored as (entry pc, offset): block indices
        // are allocation order and do not survive the restore-time
        // retranslation, entry PCs do.
        let cursors = self
            .cursors
            .iter()
            .map(|cursor| cursor.map(|(block, off)| (self.jit.block(block).start, off)))
            .collect();
        Checkpoint {
            config: self.cfg.clone(),
            cycle: self.cycle,
            fault: self.fault,
            cores: self.cores.iter().map(Core::save).collect(),
            imem: self.imem.save(),
            dmem: self.dmem.save(),
            ixbar: self.ixbar.save(),
            dxbar: self.dxbar.save(),
            sync: self.sync.as_ref().map(Synchronizer::save),
            lockstep_sum: self.lockstep.sum(),
            lockstep_cycles: self.lockstep.cycles(),
            jit: self.jit.save(),
            cursors,
            observers: self
                .attached
                .iter()
                .filter_map(|(_, o)| o.save_state().map(|state| (o.label().to_string(), state)))
                .collect(),
        }
    }

    /// Builds a fresh platform in the checkpointed state. The platform
    /// has no attached observers — observer entries in the checkpoint are
    /// ignored here; to restore instrumented runs, build the platform,
    /// [`Platform::attach`] the observers, then [`Platform::restore_from`].
    ///
    /// # Errors
    ///
    /// See [`Platform::restore_from`].
    pub fn restore(ckpt: &Checkpoint) -> Result<Platform, RestoreError> {
        let mut platform = Platform::new(ckpt.config.clone())
            .map_err(|_| RestoreError::Corrupt { what: "config" })?;
        platform.restore_from(ckpt)?;
        Ok(platform)
    }

    /// Re-applies a checkpoint onto this platform in place, reusing every
    /// allocation — the migration path for cached platforms: a worker
    /// takes a platform keyed on the same design and adopts a partially
    /// run job's state. The checkpoint's full configuration (budget,
    /// tier, thresholds) is adopted; only the *structural* shape (cores,
    /// memory geometry, synchronizer, serving policy) must already match.
    ///
    /// Checkpointed observer state is matched against attached observers
    /// by [`Observer::label`] in attach order; entries with no attached
    /// match are ignored, so attach the observers *before* restoring.
    ///
    /// # Errors
    ///
    /// * [`RestoreError::ConfigMismatch`] — structurally different target;
    /// * [`RestoreError::Corrupt`] — internally inconsistent checkpoint;
    /// * [`RestoreError::ObserverMismatch`] — an attached observer
    ///   rejected its checkpointed state.
    ///
    /// On error the platform state is unspecified; [`Platform::reset`] it
    /// (or rebuild) before further use.
    pub fn restore_from(&mut self, ckpt: &Checkpoint) -> Result<(), RestoreError> {
        if ckpt.config.validate().is_err() {
            return Err(RestoreError::Corrupt { what: "config" });
        }
        let (a, b) = (&self.cfg, &ckpt.config);
        if a.num_cores != b.num_cores
            || a.synchronizer != b.synchronizer
            || a.dxbar_policy != b.dxbar_policy
            || a.im_mapping != b.im_mapping
            || a.dm_mapping != b.dm_mapping
            || a.im_words != b.im_words
            || a.im_banks != b.im_banks
            || a.dm_words != b.dm_words
            || a.dm_banks != b.dm_banks
        {
            return Err(RestoreError::ConfigMismatch);
        }
        if ckpt.cores.len() != self.cores.len() || ckpt.cursors.len() != self.cores.len() {
            return Err(RestoreError::Corrupt { what: "core count" });
        }
        if ckpt.sync.is_some() != self.sync.is_some() {
            return Err(RestoreError::Corrupt {
                what: "sync presence",
            });
        }
        self.cfg = ckpt.config.clone();
        for (core, snap) in self.cores.iter_mut().zip(&ckpt.cores) {
            if !core.load_snapshot(snap) {
                return Err(RestoreError::Corrupt { what: "core state" });
            }
        }
        if !self.imem.load_snapshot(&ckpt.imem) {
            return Err(RestoreError::Corrupt {
                what: "instruction memory",
            });
        }
        if !self.dmem.load_snapshot(&ckpt.dmem) {
            return Err(RestoreError::Corrupt {
                what: "data memory",
            });
        }
        if !self.ixbar.load_snapshot(&ckpt.ixbar) {
            return Err(RestoreError::Corrupt {
                what: "ixbar state",
            });
        }
        if !self.dxbar.load_snapshot(&ckpt.dxbar) {
            return Err(RestoreError::Corrupt {
                what: "dxbar state",
            });
        }
        if let (Some(sync), Some(snap)) = (&mut self.sync, &ckpt.sync) {
            sync.load_snapshot(snap);
        }
        self.cycle = ckpt.cycle;
        self.fault = ckpt.fault;
        self.lockstep
            .restore(ckpt.lockstep_sum, ckpt.lockstep_cycles);
        // The translation cache re-derives its traces from the restored
        // IM through the uncounted backdoor, so retranslation leaves the
        // memory counters untouched and statistics stay bit-identical.
        if !self.jit.restore_from(&ckpt.jit, &self.imem) {
            return Err(RestoreError::Corrupt {
                what: "translation cache",
            });
        }
        self.cursors.clear();
        for cursor in &ckpt.cursors {
            let mapped = match cursor {
                None => None,
                Some((pc, off)) => {
                    let idx = self
                        .jit
                        .block_index_at(*pc)
                        .filter(|&block| {
                            let block = self.jit.block(block);
                            block.start == *pc && (*off as usize) < block.len()
                        })
                        .ok_or(RestoreError::Corrupt {
                            what: "trace cursor",
                        })?;
                    Some((idx, *off))
                }
            };
            self.cursors.push(mapped);
        }
        let mut used = vec![false; self.attached.len()];
        for (label, state) in &ckpt.observers {
            let target = self
                .attached
                .iter_mut()
                .zip(used.iter_mut())
                .find(|((_, o), used)| !**used && o.label() == label);
            // Entries with no attached observer under this label are
            // ignored: the caller chose not to re-attach that instrument.
            if let Some(((_, observer), used_slot)) = target {
                *used_slot = true;
                if !observer.load_state(state) {
                    return Err(RestoreError::ObserverMismatch {
                        label: label.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests;

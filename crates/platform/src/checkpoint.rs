//! Serializable, versioned platform checkpoints.
//!
//! A [`Checkpoint`] is the complete architectural and statistical state of
//! a [`crate::Platform`] between cycles: cores, both memories, crossbar
//! arbiters, the synchronizer, power-relevant counters, the translation
//! cache of the compiled tier, and the state of every attached observer
//! that opts into checkpointing. [`crate::Platform::snapshot`] produces
//! one, [`crate::Platform::restore`] / [`crate::Platform::restore_from`]
//! re-apply it, and a resumed run is **bit-identical** to one that never
//! paused — same `SimStats`, same artifacts, same energy.
//!
//! The wire format ([`Checkpoint::to_bytes`] / [`Checkpoint::from_bytes`])
//! is a hand-rolled little-endian encoding: a `ULPK` magic, a schema
//! version, an FNV-1a hash of the encoded [`PlatformConfig`] (so a blob
//! restored against the wrong platform shape fails fast with a typed
//! error instead of garbage state), then the component snapshots. The
//! byte-level encoding lives only in this module; the component crates
//! export plain-data snapshot structs and know nothing about bytes.

use crate::config::PlatformConfig;
use crate::error::{PlatformError, RestoreError};
use ulp_cpu::{CoreError, CoreSnapshot, CoreStateSnapshot, CoreStats};
use ulp_isa::arch;
use ulp_jit::{ExecTier, JitSnapshot, JitStats};
use ulp_mem::{
    BankMapping, DXbarSnapshot, DXbarStats, IXbarSnapshot, IXbarStats, MemSnapshot, MemStats,
    ServingPolicy,
};
use ulp_sync::{SyncSnapshot, SyncStats};

/// Version of the checkpoint wire format. Bumped on any layout change;
/// [`Checkpoint::from_bytes`] rejects other versions with
/// [`RestoreError::SchemaMismatch`].
pub const CHECKPOINT_SCHEMA: u32 = 1;

/// Leading magic of every checkpoint blob.
const MAGIC: [u8; 4] = *b"ULPK";

/// The complete state of a [`crate::Platform`] between cycles.
///
/// Plain data with public fields — produced by
/// [`crate::Platform::snapshot`], consumed by
/// [`crate::Platform::restore_from`], serialized by
/// [`Checkpoint::to_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The configuration of the checkpointed platform. Restore adopts it
    /// wholesale (budget, tier, thresholds); only the *structural* part
    /// (cores, memories, synchronizer, policy) must match the target.
    pub config: PlatformConfig,
    /// Cycles simulated when the snapshot was taken.
    pub cycle: u64,
    /// A fault latched but not yet surfaced by the run loop.
    pub fault: Option<PlatformError>,
    /// Architectural and counter state of every core.
    pub cores: Vec<CoreSnapshot>,
    /// Instruction memory contents, locks and counters.
    pub imem: MemSnapshot,
    /// Data memory contents, locks and counters.
    pub dmem: MemSnapshot,
    /// I-Xbar rotating-priority pointers and counters.
    pub ixbar: IXbarSnapshot,
    /// D-Xbar pointers, held-group state and counters.
    pub dxbar: DXbarSnapshot,
    /// Synchronizer state; present exactly when the config has one.
    pub sync: Option<SyncSnapshot>,
    /// Built-in lockstep-width recorder: sum over fetch cycles.
    pub lockstep_sum: u64,
    /// Built-in lockstep-width recorder: counted fetch cycles.
    pub lockstep_cycles: u64,
    /// Translation-cache state of the compiled tier (hotness counters and
    /// translated-entry set; traces are re-derived from `imem`).
    pub jit: JitSnapshot,
    /// Per-core trace cursors as `(entry pc, offset)`; re-linked to block
    /// indices on restore so hit accounting stays bit-identical.
    pub cursors: Vec<Option<(u16, u16)>>,
    /// `(label, state)` of every attached observer that returned state
    /// from `Observer::save_state`.
    pub observers: Vec<(String, Vec<u8>)>,
}

impl Checkpoint {
    /// FNV-1a hash of the encoded configuration — the value embedded in
    /// the blob header and checked by [`Checkpoint::from_bytes`].
    pub fn config_hash(&self) -> u64 {
        let mut w = Writer::default();
        write_config(&mut w, &self.config);
        fnv1a(&w.buf)
    }

    /// Serializes the checkpoint into the versioned `ULPK` wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut cfg = Writer::default();
        write_config(&mut cfg, &self.config);
        let mut w = Writer::default();
        w.bytes(&MAGIC);
        w.u32(CHECKPOINT_SCHEMA);
        w.u64(fnv1a(&cfg.buf));
        w.len(cfg.buf.len());
        w.bytes(&cfg.buf);

        w.u64(self.cycle);
        write_fault(&mut w, self.fault);
        w.len(self.cores.len());
        for core in &self.cores {
            write_core(&mut w, core);
        }
        write_mem(&mut w, &self.imem);
        write_mem(&mut w, &self.dmem);
        write_ixbar(&mut w, &self.ixbar);
        write_dxbar(&mut w, &self.dxbar);
        match &self.sync {
            None => w.u8(0),
            Some(s) => {
                w.u8(1);
                write_sync(&mut w, s);
            }
        }
        w.u64(self.lockstep_sum);
        w.u64(self.lockstep_cycles);
        write_jit(&mut w, &self.jit);
        w.len(self.cursors.len());
        for cursor in &self.cursors {
            match cursor {
                None => w.u8(0),
                Some((pc, off)) => {
                    w.u8(1);
                    w.u16(*pc);
                    w.u16(*off);
                }
            }
        }
        w.len(self.observers.len());
        for (label, state) in &self.observers {
            w.len(label.len());
            w.bytes(label.as_bytes());
            w.len(state.len());
            w.bytes(state);
        }
        w.buf
    }

    /// Decodes a blob produced by [`Checkpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// * [`RestoreError::Corrupt`] — bad magic, a failed config hash, an
    ///   invalid enum tag or trailing garbage;
    /// * [`RestoreError::SchemaMismatch`] — written by another version;
    /// * [`RestoreError::Truncated`] — the blob ends mid-field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, RestoreError> {
        let mut r = Reader::new(bytes);
        if r.take(MAGIC.len()).ok_or(RestoreError::Truncated)? != MAGIC {
            return Err(RestoreError::Corrupt { what: "magic" });
        }
        let schema = r.u32().ok_or(RestoreError::Truncated)?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(RestoreError::SchemaMismatch {
                found: schema,
                expected: CHECKPOINT_SCHEMA,
            });
        }
        let hash = r.u64().ok_or(RestoreError::Truncated)?;
        let cfg_len = r.len()?;
        let cfg_bytes = r.take(cfg_len).ok_or(RestoreError::Truncated)?;
        if fnv1a(cfg_bytes) != hash {
            return Err(RestoreError::Corrupt {
                what: "config hash",
            });
        }
        let config = read_config(&mut Reader::new(cfg_bytes))?;

        let cycle = r.u64().ok_or(RestoreError::Truncated)?;
        let fault = read_fault(&mut r)?;
        let num_cores = r.len()?;
        let mut cores = Vec::with_capacity(num_cores.min(16));
        for _ in 0..num_cores {
            cores.push(read_core(&mut r)?);
        }
        let imem = read_mem(&mut r)?;
        let dmem = read_mem(&mut r)?;
        let ixbar = read_ixbar(&mut r)?;
        let dxbar = read_dxbar(&mut r)?;
        let sync = match r.u8().ok_or(RestoreError::Truncated)? {
            0 => None,
            1 => Some(read_sync(&mut r)?),
            _ => return Err(RestoreError::Corrupt { what: "sync tag" }),
        };
        let lockstep_sum = r.u64().ok_or(RestoreError::Truncated)?;
        let lockstep_cycles = r.u64().ok_or(RestoreError::Truncated)?;
        let jit = read_jit(&mut r)?;
        let ncursors = r.len()?;
        let mut cursors = Vec::with_capacity(ncursors.min(16));
        for _ in 0..ncursors {
            cursors.push(match r.u8().ok_or(RestoreError::Truncated)? {
                0 => None,
                1 => {
                    let pc = r.u16().ok_or(RestoreError::Truncated)?;
                    let off = r.u16().ok_or(RestoreError::Truncated)?;
                    Some((pc, off))
                }
                _ => return Err(RestoreError::Corrupt { what: "cursor tag" }),
            });
        }
        let nobs = r.len()?;
        let mut observers = Vec::with_capacity(nobs.min(64));
        for _ in 0..nobs {
            let label_len = r.len()?;
            let label = r.take(label_len).ok_or(RestoreError::Truncated)?;
            let label = std::str::from_utf8(label)
                .map_err(|_| RestoreError::Corrupt {
                    what: "observer label",
                })?
                .to_string();
            let state_len = r.len()?;
            let state = r.take(state_len).ok_or(RestoreError::Truncated)?.to_vec();
            observers.push((label, state));
        }
        if !r.done() {
            return Err(RestoreError::Corrupt {
                what: "trailing bytes",
            });
        }
        Ok(Checkpoint {
            config,
            cycle,
            fault,
            cores,
            imem,
            dmem,
            ixbar,
            dxbar,
            sync,
            lockstep_sum,
            lockstep_cycles,
            jit,
            cursors,
            observers,
        })
    }
}

// ---- byte-level primitives ---------------------------------------------

/// Little-endian append-only byte sink shared by the checkpoint codec and
/// the observer state codecs.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Writes a collection length (all checkpointed collections fit u32).
    pub(crate) fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("checkpoint collection fits u32"));
    }
}

/// Cursor over a checkpoint blob; every read is bounds-checked.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if n > self.buf.len() {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub(crate) fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn len(&mut self) -> Result<usize, RestoreError> {
        Ok(self.u32().ok_or(RestoreError::Truncated)? as usize)
    }

    pub(crate) fn done(&self) -> bool {
        self.buf.is_empty()
    }
}

/// FNV-1a over a byte slice (the config hash in the blob header).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---- component codecs ---------------------------------------------------

fn write_config(w: &mut Writer, cfg: &PlatformConfig) {
    w.u32(cfg.num_cores as u32);
    w.u8(cfg.synchronizer as u8);
    w.u8(match cfg.dxbar_policy {
        ServingPolicy::Baseline => 0,
        ServingPolicy::SyncAware => 1,
    });
    w.u8(mapping_tag(cfg.im_mapping));
    w.u8(mapping_tag(cfg.dm_mapping));
    w.u64(cfg.im_words as u64);
    w.u32(cfg.im_banks as u32);
    w.u64(cfg.dm_words as u64);
    w.u32(cfg.dm_banks as u32);
    w.u64(cfg.max_cycles);
    w.u8(match cfg.exec_tier {
        ExecTier::Interpreted => 0,
        ExecTier::Compiled => 1,
    });
    w.u32(cfg.jit_hot_threshold);
}

fn mapping_tag(m: BankMapping) -> u8 {
    match m {
        BankMapping::Blocked => 0,
        BankMapping::Interleaved => 1,
    }
}

fn read_mapping(r: &mut Reader) -> Result<BankMapping, RestoreError> {
    match r.u8().ok_or(RestoreError::Truncated)? {
        0 => Ok(BankMapping::Blocked),
        1 => Ok(BankMapping::Interleaved),
        _ => Err(RestoreError::Corrupt {
            what: "bank mapping",
        }),
    }
}

fn read_bool(r: &mut Reader, what: &'static str) -> Result<bool, RestoreError> {
    match r.u8().ok_or(RestoreError::Truncated)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(RestoreError::Corrupt { what }),
    }
}

fn read_config(r: &mut Reader) -> Result<PlatformConfig, RestoreError> {
    let num_cores = r.u32().ok_or(RestoreError::Truncated)? as usize;
    let synchronizer = read_bool(r, "config synchronizer")?;
    let dxbar_policy = match r.u8().ok_or(RestoreError::Truncated)? {
        0 => ServingPolicy::Baseline,
        1 => ServingPolicy::SyncAware,
        _ => {
            return Err(RestoreError::Corrupt {
                what: "serving policy",
            })
        }
    };
    let im_mapping = read_mapping(r)?;
    let dm_mapping = read_mapping(r)?;
    let im_words = r.u64().ok_or(RestoreError::Truncated)? as usize;
    let im_banks = r.u32().ok_or(RestoreError::Truncated)? as usize;
    let dm_words = r.u64().ok_or(RestoreError::Truncated)? as usize;
    let dm_banks = r.u32().ok_or(RestoreError::Truncated)? as usize;
    let max_cycles = r.u64().ok_or(RestoreError::Truncated)?;
    let exec_tier = match r.u8().ok_or(RestoreError::Truncated)? {
        0 => ExecTier::Interpreted,
        1 => ExecTier::Compiled,
        _ => return Err(RestoreError::Corrupt { what: "exec tier" }),
    };
    let jit_hot_threshold = r.u32().ok_or(RestoreError::Truncated)?;
    if !r.done() {
        return Err(RestoreError::Corrupt {
            what: "config length",
        });
    }
    Ok(PlatformConfig {
        num_cores,
        synchronizer,
        dxbar_policy,
        im_mapping,
        dm_mapping,
        im_words,
        im_banks,
        dm_words,
        dm_banks,
        max_cycles,
        exec_tier,
        jit_hot_threshold,
    })
}

fn write_fault(w: &mut Writer, fault: Option<PlatformError>) {
    match fault {
        None => w.u8(0),
        Some(PlatformError::CoreFault { core, error }) => {
            w.u8(1);
            w.u32(core as u32);
            let CoreError::IllegalInstruction { pc, word } = error;
            w.u16(pc);
            w.u16(word);
        }
        Some(PlatformError::Deadlock { cycle }) => {
            w.u8(2);
            w.u64(cycle);
        }
        Some(PlatformError::Timeout { budget }) => {
            w.u8(3);
            w.u64(budget);
        }
    }
}

fn read_fault(r: &mut Reader) -> Result<Option<PlatformError>, RestoreError> {
    Ok(match r.u8().ok_or(RestoreError::Truncated)? {
        0 => None,
        1 => {
            let core = r.u32().ok_or(RestoreError::Truncated)? as usize;
            let pc = r.u16().ok_or(RestoreError::Truncated)?;
            let word = r.u16().ok_or(RestoreError::Truncated)?;
            Some(PlatformError::CoreFault {
                core,
                error: CoreError::IllegalInstruction { pc, word },
            })
        }
        2 => Some(PlatformError::Deadlock {
            cycle: r.u64().ok_or(RestoreError::Truncated)?,
        }),
        3 => Some(PlatformError::Timeout {
            budget: r.u64().ok_or(RestoreError::Truncated)?,
        }),
        _ => return Err(RestoreError::Corrupt { what: "fault tag" }),
    })
}

fn write_core(w: &mut Writer, c: &CoreSnapshot) {
    w.u8(c.id);
    w.len(c.regs.len());
    for &reg in &c.regs {
        w.u16(reg);
    }
    w.u16(c.pc);
    w.u16(c.flags);
    w.u8(c.ie as u8);
    w.u16(c.rsync);
    w.u16(c.epc);
    w.u16(c.eflags);
    w.u8(c.irq_pending as u8);
    w.u8(c.sleep_from_sync as u8);
    match c.state {
        CoreStateSnapshot::Fetch => w.u8(0),
        CoreStateSnapshot::Execute(word) => {
            w.u8(1);
            w.u16(word);
        }
        CoreStateSnapshot::Held { word, data } => {
            w.u8(2);
            w.u16(word);
            match data {
                None => w.u8(0),
                Some(d) => {
                    w.u8(1);
                    w.u16(d);
                }
            }
        }
        CoreStateSnapshot::SyncIssued(word) => {
            w.u8(3);
            w.u16(word);
        }
        CoreStateSnapshot::Sleeping => w.u8(4),
        CoreStateSnapshot::Halted => w.u8(5),
    }
    w.u64(c.cycles);
    write_core_stats(w, &c.stats);
    match c.error {
        None => w.u8(0),
        Some(CoreError::IllegalInstruction { pc, word }) => {
            w.u8(1);
            w.u16(pc);
            w.u16(word);
        }
    }
}

fn read_core(r: &mut Reader) -> Result<CoreSnapshot, RestoreError> {
    let id = r.u8().ok_or(RestoreError::Truncated)?;
    let nregs = r.len()?;
    if nregs != arch::NUM_REGS {
        return Err(RestoreError::Corrupt {
            what: "core register count",
        });
    }
    let mut regs = [0u16; arch::NUM_REGS];
    for reg in &mut regs {
        *reg = r.u16().ok_or(RestoreError::Truncated)?;
    }
    let pc = r.u16().ok_or(RestoreError::Truncated)?;
    let flags = r.u16().ok_or(RestoreError::Truncated)?;
    let ie = read_bool(r, "core ie")?;
    let rsync = r.u16().ok_or(RestoreError::Truncated)?;
    let epc = r.u16().ok_or(RestoreError::Truncated)?;
    let eflags = r.u16().ok_or(RestoreError::Truncated)?;
    let irq_pending = read_bool(r, "core irq")?;
    let sleep_from_sync = read_bool(r, "core sleep origin")?;
    let state = match r.u8().ok_or(RestoreError::Truncated)? {
        0 => CoreStateSnapshot::Fetch,
        1 => CoreStateSnapshot::Execute(r.u16().ok_or(RestoreError::Truncated)?),
        2 => {
            let word = r.u16().ok_or(RestoreError::Truncated)?;
            let data = match r.u8().ok_or(RestoreError::Truncated)? {
                0 => None,
                1 => Some(r.u16().ok_or(RestoreError::Truncated)?),
                _ => {
                    return Err(RestoreError::Corrupt {
                        what: "held data tag",
                    })
                }
            };
            CoreStateSnapshot::Held { word, data }
        }
        3 => CoreStateSnapshot::SyncIssued(r.u16().ok_or(RestoreError::Truncated)?),
        4 => CoreStateSnapshot::Sleeping,
        5 => CoreStateSnapshot::Halted,
        _ => {
            return Err(RestoreError::Corrupt {
                what: "core state tag",
            })
        }
    };
    let cycles = r.u64().ok_or(RestoreError::Truncated)?;
    let stats = read_core_stats(r)?;
    let error = match r.u8().ok_or(RestoreError::Truncated)? {
        0 => None,
        1 => {
            let pc = r.u16().ok_or(RestoreError::Truncated)?;
            let word = r.u16().ok_or(RestoreError::Truncated)?;
            Some(CoreError::IllegalInstruction { pc, word })
        }
        _ => {
            return Err(RestoreError::Corrupt {
                what: "core error tag",
            })
        }
    };
    Ok(CoreSnapshot {
        id,
        regs,
        pc,
        flags,
        ie,
        rsync,
        epc,
        eflags,
        irq_pending,
        sleep_from_sync,
        state,
        cycles,
        stats,
        error,
    })
}

fn write_core_stats(w: &mut Writer, s: &CoreStats) {
    for v in [
        s.retired,
        s.useful_ops,
        s.fetch_stall_cycles,
        s.mem_stall_cycles,
        s.sync_stall_cycles,
        s.sleep_cycles,
        s.hold_cycles,
        s.active_cycles,
        s.fetches,
        s.dm_reads,
        s.dm_writes,
        s.checkins,
        s.checkouts,
        s.branches_taken,
        s.branches_not_taken,
        s.interrupts,
    ] {
        w.u64(v);
    }
}

fn read_core_stats(r: &mut Reader) -> Result<CoreStats, RestoreError> {
    let mut v = [0u64; 16];
    for slot in &mut v {
        *slot = r.u64().ok_or(RestoreError::Truncated)?;
    }
    Ok(CoreStats {
        retired: v[0],
        useful_ops: v[1],
        fetch_stall_cycles: v[2],
        mem_stall_cycles: v[3],
        sync_stall_cycles: v[4],
        sleep_cycles: v[5],
        hold_cycles: v[6],
        active_cycles: v[7],
        fetches: v[8],
        dm_reads: v[9],
        dm_writes: v[10],
        checkins: v[11],
        checkouts: v[12],
        branches_taken: v[13],
        branches_not_taken: v[14],
        interrupts: v[15],
    })
}

fn write_mem(w: &mut Writer, m: &MemSnapshot) {
    w.len(m.words.len());
    for &word in &m.words {
        w.u16(word);
    }
    w.len(m.locked.len());
    for &addr in &m.locked {
        w.u16(addr);
    }
    w.u64(m.stats.bank_reads);
    w.u64(m.stats.bank_writes);
    w.u64(m.stats.broadcast_extra);
    w.len(m.per_bank.len());
    for &count in &m.per_bank {
        w.u64(count);
    }
}

fn read_mem(r: &mut Reader) -> Result<MemSnapshot, RestoreError> {
    let nwords = r.len()?;
    let mut words = Vec::with_capacity(nwords.min(1 << 20));
    for _ in 0..nwords {
        words.push(r.u16().ok_or(RestoreError::Truncated)?);
    }
    let nlocked = r.len()?;
    let mut locked = Vec::with_capacity(nlocked.min(1 << 16));
    for _ in 0..nlocked {
        locked.push(r.u16().ok_or(RestoreError::Truncated)?);
    }
    let stats = MemStats {
        bank_reads: r.u64().ok_or(RestoreError::Truncated)?,
        bank_writes: r.u64().ok_or(RestoreError::Truncated)?,
        broadcast_extra: r.u64().ok_or(RestoreError::Truncated)?,
    };
    let nbanks = r.len()?;
    let mut per_bank = Vec::with_capacity(nbanks.min(1 << 10));
    for _ in 0..nbanks {
        per_bank.push(r.u64().ok_or(RestoreError::Truncated)?);
    }
    Ok(MemSnapshot {
        words,
        locked,
        stats,
        per_bank,
    })
}

fn write_ixbar(w: &mut Writer, x: &IXbarSnapshot) {
    w.len(x.rr.len());
    for &p in &x.rr {
        w.u32(p as u32);
    }
    for v in [
        x.stats.requests,
        x.stats.grants,
        x.stats.stalls,
        x.stats.conflict_cycles,
        x.stats.transfers,
    ] {
        w.u64(v);
    }
}

fn read_ixbar(r: &mut Reader) -> Result<IXbarSnapshot, RestoreError> {
    let n = r.len()?;
    let mut rr = Vec::with_capacity(n.min(1 << 10));
    for _ in 0..n {
        rr.push(r.u32().ok_or(RestoreError::Truncated)? as usize);
    }
    let mut v = [0u64; 5];
    for slot in &mut v {
        *slot = r.u64().ok_or(RestoreError::Truncated)?;
    }
    Ok(IXbarSnapshot {
        rr,
        stats: IXbarStats {
            requests: v[0],
            grants: v[1],
            stalls: v[2],
            conflict_cycles: v[3],
            transfers: v[4],
        },
    })
}

fn write_dxbar(w: &mut Writer, x: &DXbarSnapshot) {
    w.len(x.rr.len());
    for &p in &x.rr {
        w.u32(p as u32);
    }
    w.len(x.held_pc.len());
    for held in &x.held_pc {
        match held {
            None => w.u8(0),
            Some(pc) => {
                w.u8(1);
                w.u16(*pc);
            }
        }
    }
    for v in [
        x.stats.requests,
        x.stats.grants,
        x.stats.stalls,
        x.stats.conflict_cycles,
        x.stats.holds,
        x.stats.releases,
        x.stats.lock_stalls,
        x.stats.transfers,
    ] {
        w.u64(v);
    }
}

fn read_dxbar(r: &mut Reader) -> Result<DXbarSnapshot, RestoreError> {
    let n = r.len()?;
    let mut rr = Vec::with_capacity(n.min(1 << 10));
    for _ in 0..n {
        rr.push(r.u32().ok_or(RestoreError::Truncated)? as usize);
    }
    let nheld = r.len()?;
    let mut held_pc = Vec::with_capacity(nheld.min(64));
    for _ in 0..nheld {
        held_pc.push(match r.u8().ok_or(RestoreError::Truncated)? {
            0 => None,
            1 => Some(r.u16().ok_or(RestoreError::Truncated)?),
            _ => {
                return Err(RestoreError::Corrupt {
                    what: "held pc tag",
                })
            }
        });
    }
    let mut v = [0u64; 8];
    for slot in &mut v {
        *slot = r.u64().ok_or(RestoreError::Truncated)?;
    }
    Ok(DXbarSnapshot {
        rr,
        held_pc,
        stats: DXbarStats {
            requests: v[0],
            grants: v[1],
            stalls: v[2],
            conflict_cycles: v[3],
            holds: v[4],
            releases: v[5],
            lock_stalls: v[6],
            transfers: v[7],
        },
    })
}

fn write_sync(w: &mut Writer, s: &SyncSnapshot) {
    match s.inflight {
        None => w.u8(0),
        Some((addr, cycles_left, latched)) => {
            w.u8(1);
            w.u16(addr);
            w.u8(cycles_left);
            w.u16(latched);
        }
    }
    w.len(s.batch.len());
    for &(core, check_in) in &s.batch {
        w.u32(core as u32);
        w.u8(check_in as u8);
    }
    for v in [
        s.stats.checkin_requests,
        s.stats.checkout_requests,
        s.stats.batches,
        s.stats.merged,
        s.stats.wakeups,
        s.stats.releases,
        s.stats.busy_cycles,
        s.stats.stalled_requests,
        s.stats.underflows,
    ] {
        w.u64(v);
    }
}

fn read_sync(r: &mut Reader) -> Result<SyncSnapshot, RestoreError> {
    let inflight = match r.u8().ok_or(RestoreError::Truncated)? {
        0 => None,
        1 => {
            let addr = r.u16().ok_or(RestoreError::Truncated)?;
            let cycles_left = r.u8().ok_or(RestoreError::Truncated)?;
            let latched = r.u16().ok_or(RestoreError::Truncated)?;
            Some((addr, cycles_left, latched))
        }
        _ => {
            return Err(RestoreError::Corrupt {
                what: "sync inflight tag",
            })
        }
    };
    let n = r.len()?;
    let mut batch = Vec::with_capacity(n.min(16));
    for _ in 0..n {
        let core = r.u32().ok_or(RestoreError::Truncated)? as usize;
        let check_in = read_bool(r, "sync batch kind")?;
        batch.push((core, check_in));
    }
    let mut v = [0u64; 9];
    for slot in &mut v {
        *slot = r.u64().ok_or(RestoreError::Truncated)?;
    }
    Ok(SyncSnapshot {
        inflight,
        batch,
        stats: SyncStats {
            checkin_requests: v[0],
            checkout_requests: v[1],
            batches: v[2],
            merged: v[3],
            wakeups: v[4],
            releases: v[5],
            busy_cycles: v[6],
            stalled_requests: v[7],
            underflows: v[8],
        },
    })
}

fn write_jit(w: &mut Writer, j: &JitSnapshot) {
    w.u32(j.hot_threshold);
    w.len(j.counters.len());
    for &(word, count) in &j.counters {
        w.u32(word);
        w.u32(count);
    }
    w.len(j.translated.len());
    for &pc in &j.translated {
        w.u16(pc);
    }
    w.len(j.untranslatable.len());
    for &pc in &j.untranslatable {
        w.u16(pc);
    }
    for v in [
        j.stats.translations,
        j.stats.hits,
        j.stats.compiled_cycles,
        j.stats.fallback_cycles,
    ] {
        w.u64(v);
    }
}

fn read_jit(r: &mut Reader) -> Result<JitSnapshot, RestoreError> {
    let hot_threshold = r.u32().ok_or(RestoreError::Truncated)?;
    let n = r.len()?;
    let mut counters = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let word = r.u32().ok_or(RestoreError::Truncated)?;
        let count = r.u32().ok_or(RestoreError::Truncated)?;
        counters.push((word, count));
    }
    let n = r.len()?;
    let mut translated = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        translated.push(r.u16().ok_or(RestoreError::Truncated)?);
    }
    let n = r.len()?;
    let mut untranslatable = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        untranslatable.push(r.u16().ok_or(RestoreError::Truncated)?);
    }
    let mut v = [0u64; 4];
    for slot in &mut v {
        *slot = r.u64().ok_or(RestoreError::Truncated)?;
    }
    Ok(JitSnapshot {
        hot_threshold,
        counters,
        translated,
        untranslatable,
        stats: JitStats {
            translations: v[0],
            hits: v[1],
            compiled_cycles: v[2],
            fallback_cycles: v[3],
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Platform;
    use ulp_isa::asm::assemble;

    fn snapshot_mid_run() -> Checkpoint {
        let mut p = Platform::new(
            PlatformConfig::paper_with_sync()
                .with_max_cycles(50_000)
                .with_exec_tier(ExecTier::Compiled),
        )
        .unwrap();
        let program = assemble(
            "       movi r1, #40
             loop:  addi r2, #1
                    addi r1, #-1
                    bne  loop
                    sinc #0
                    halt",
        )
        .unwrap();
        p.load_program(&program);
        match p.run_until(60).unwrap() {
            crate::sim::RunProgress::Paused => {}
            other => panic!("expected a pause, got {other:?}"),
        }
        p.snapshot()
    }

    #[test]
    fn blob_round_trip_is_lossless() {
        let ckpt = snapshot_mid_run();
        let bytes = ckpt.to_bytes();
        let decoded = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, ckpt);
        assert_eq!(decoded.config_hash(), ckpt.config_hash());
        assert!(ckpt.cycle >= 60, "snapshot taken mid-run");
    }

    #[test]
    fn bad_magic_schema_and_truncation_are_typed() {
        let ckpt = snapshot_mid_run();
        let bytes = ckpt.to_bytes();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            Checkpoint::from_bytes(&bad_magic),
            Err(RestoreError::Corrupt { what: "magic" })
        );

        let mut bad_schema = bytes.clone();
        bad_schema[4] = 0xEE;
        assert!(matches!(
            Checkpoint::from_bytes(&bad_schema),
            Err(RestoreError::SchemaMismatch { expected, .. })
                if expected == CHECKPOINT_SCHEMA
        ));

        for cut in [3, 10, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(
                Checkpoint::from_bytes(&bytes[..cut]),
                Err(RestoreError::Truncated),
                "cut at {cut}"
            );
        }

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            Checkpoint::from_bytes(&trailing),
            Err(RestoreError::Corrupt {
                what: "trailing bytes"
            })
        );
    }

    #[test]
    fn corrupted_config_fails_the_hash() {
        let ckpt = snapshot_mid_run();
        let mut bytes = ckpt.to_bytes();
        // Flip a byte inside the encoded config (header is 4 magic +
        // 4 schema + 8 hash + 4 length = 20 bytes).
        bytes[21] ^= 0xFF;
        assert_eq!(
            Checkpoint::from_bytes(&bytes),
            Err(RestoreError::Corrupt {
                what: "config hash"
            })
        );
    }
}

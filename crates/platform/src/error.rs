//! Error types of the platform simulator.

use std::fmt;
use ulp_cpu::CoreError;

/// An invalid [`crate::PlatformConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Core count outside 1..=16.
    BadCoreCount(usize),
    /// More than 8 cores with the synchronizer enabled (the sync word has
    /// one identity-flag bit per core).
    TooManyCoresForSync(usize),
    /// Bank count does not divide the memory size (or is zero).
    BadBankGeometry {
        /// Memory size in words.
        words: usize,
        /// Requested bank count.
        banks: usize,
    },
    /// A zero cycle budget.
    ZeroCycleBudget,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadCoreCount(n) => write!(f, "core count {n} outside 1..=16"),
            ConfigError::TooManyCoresForSync(n) => {
                write!(f, "{n} cores exceed the synchronizer's 8 identity flags")
            }
            ConfigError::BadBankGeometry { words, banks } => {
                write!(f, "{banks} banks do not divide {words} words")
            }
            ConfigError::ZeroCycleBudget => write!(f, "cycle budget must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A failed simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformError {
    /// A core fetched an illegal instruction.
    CoreFault {
        /// The faulting core.
        core: usize,
        /// The underlying error.
        error: CoreError,
    },
    /// Every active core is asleep with nothing left to wake it.
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
    },
    /// The cycle budget was exhausted.
    Timeout {
        /// The exhausted budget.
        budget: u64,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::CoreFault { core, error } => write!(f, "core {core}: {error}"),
            PlatformError::Deadlock { cycle } => {
                write!(f, "all active cores asleep at cycle {cycle} (deadlock)")
            }
            PlatformError::Timeout { budget } => {
                write!(f, "simulation exceeded {budget} cycles")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

/// A failed [`crate::Platform::restore`] / [`crate::Platform::restore_from`]
/// or [`crate::Checkpoint::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The checkpoint blob was written by an incompatible schema.
    SchemaMismatch {
        /// Schema version found in the blob.
        found: u32,
        /// Schema version this build understands.
        expected: u32,
    },
    /// The checkpoint's platform configuration is structurally
    /// incompatible with the target platform (core count, memory
    /// geometry, synchronizer presence or serving policy differ).
    ConfigMismatch,
    /// The blob ended before the encoded state did.
    Truncated,
    /// The blob decoded to inconsistent state.
    Corrupt {
        /// Which part of the blob failed to decode.
        what: &'static str,
    },
    /// A checkpointed observer state could not be loaded into the
    /// observer attached under the same label.
    ObserverMismatch {
        /// The label of the rejecting observer.
        label: String,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::SchemaMismatch { found, expected } => {
                write!(f, "checkpoint schema {found} (this build reads {expected})")
            }
            RestoreError::ConfigMismatch => {
                write!(
                    f,
                    "checkpoint platform configuration does not match the target"
                )
            }
            RestoreError::Truncated => write!(f, "checkpoint blob is truncated"),
            RestoreError::Corrupt { what } => write!(f, "checkpoint is corrupt: bad {what}"),
            RestoreError::ObserverMismatch { label } => {
                write!(f, "observer {label:?} rejected its checkpointed state")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            ConfigError::BadCoreCount(0).to_string(),
            "core count 0 outside 1..=16"
        );
        assert_eq!(
            PlatformError::Deadlock { cycle: 7 }.to_string(),
            "all active cores asleep at cycle 7 (deadlock)"
        );
        let e = PlatformError::CoreFault {
            core: 2,
            error: CoreError::IllegalInstruction {
                pc: 1,
                word: 0xF801,
            },
        };
        assert_eq!(
            e.to_string(),
            "core 2: illegal instruction 0xf801 at pc 0x0001"
        );
        assert_eq!(
            RestoreError::SchemaMismatch {
                found: 9,
                expected: 1
            }
            .to_string(),
            "checkpoint schema 9 (this build reads 1)"
        );
        assert_eq!(
            RestoreError::Corrupt { what: "sync state" }.to_string(),
            "checkpoint is corrupt: bad sync state"
        );
        assert_eq!(
            RestoreError::ObserverMismatch {
                label: "pc-trace".into()
            }
            .to_string(),
            "observer \"pc-trace\" rejected its checkpointed state"
        );
    }
}

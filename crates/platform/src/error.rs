//! Error types of the platform simulator.

use std::fmt;
use ulp_cpu::CoreError;

/// An invalid [`crate::PlatformConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Core count outside 1..=16.
    BadCoreCount(usize),
    /// More than 8 cores with the synchronizer enabled (the sync word has
    /// one identity-flag bit per core).
    TooManyCoresForSync(usize),
    /// Bank count does not divide the memory size (or is zero).
    BadBankGeometry {
        /// Memory size in words.
        words: usize,
        /// Requested bank count.
        banks: usize,
    },
    /// A zero cycle budget.
    ZeroCycleBudget,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadCoreCount(n) => write!(f, "core count {n} outside 1..=16"),
            ConfigError::TooManyCoresForSync(n) => {
                write!(f, "{n} cores exceed the synchronizer's 8 identity flags")
            }
            ConfigError::BadBankGeometry { words, banks } => {
                write!(f, "{banks} banks do not divide {words} words")
            }
            ConfigError::ZeroCycleBudget => write!(f, "cycle budget must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A failed simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformError {
    /// A core fetched an illegal instruction.
    CoreFault {
        /// The faulting core.
        core: usize,
        /// The underlying error.
        error: CoreError,
    },
    /// Every active core is asleep with nothing left to wake it.
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
    },
    /// The cycle budget was exhausted.
    Timeout {
        /// The exhausted budget.
        budget: u64,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::CoreFault { core, error } => write!(f, "core {core}: {error}"),
            PlatformError::Deadlock { cycle } => {
                write!(f, "all active cores asleep at cycle {cycle} (deadlock)")
            }
            PlatformError::Timeout { budget } => {
                write!(f, "simulation exceeded {budget} cycles")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            ConfigError::BadCoreCount(0).to_string(),
            "core count 0 outside 1..=16"
        );
        assert_eq!(
            PlatformError::Deadlock { cycle: 7 }.to_string(),
            "all active cores asleep at cycle 7 (deadlock)"
        );
        let e = PlatformError::CoreFault {
            core: 2,
            error: CoreError::IllegalInstruction {
                pc: 1,
                word: 0xF801,
            },
        };
        assert_eq!(
            e.to_string(),
            "core 2: illegal instruction 0xf801 at pc 0x0001"
        );
    }
}

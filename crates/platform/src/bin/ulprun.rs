//! `ulprun` — run a ULP16 assembly program on the simulated multi-core
//! platform and report its statistics.
//!
//! ```text
//! ulprun <file.s> [options]
//!   --no-sync            baseline design (no synchronizer, no ISE)
//!   --cores <n>          number of cores (default 8)
//!   --max-cycles <n>     cycle budget (default 10_000_000)
//!   --dump <addr> <len>  print a data-memory region after the run
//!   --trace <cycles>     print the per-core fetch-PC trace
//!   --trace-vcd <file>   write a value-change dump of the run
//!   --exec-tier <tier>   interpreted (default) or compiled
//! ```
//!
//! Tracing attaches [`PcTrace`] / [`VcdTracer`] observers to the run, so
//! no custom driver loop is needed and the options combine freely.

use std::process::ExitCode;
use ulp_isa::asm::assemble;
use ulp_platform::{ExecTier, Observer, PcTrace, Platform, PlatformConfig, VcdTracer};

struct Options {
    path: String,
    with_sync: bool,
    cores: usize,
    max_cycles: u64,
    dump: Option<(u16, usize)>,
    trace: usize,
    vcd: Option<String>,
    exec_tier: ExecTier,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        path: String::new(),
        with_sync: true,
        cores: 8,
        max_cycles: 10_000_000,
        dump: None,
        trace: 0,
        vcd: None,
        exec_tier: ExecTier::Interpreted,
    };
    let next_num = |args: &mut dyn Iterator<Item = String>, what: &str| {
        args.next()
            .ok_or_else(|| format!("missing value for {what}"))?
            .parse::<u64>()
            .map_err(|e| format!("bad value for {what}: {e}"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--no-sync" => opts.with_sync = false,
            "--cores" => opts.cores = next_num(&mut args, "--cores")? as usize,
            "--max-cycles" => opts.max_cycles = next_num(&mut args, "--max-cycles")?,
            "--trace" => opts.trace = next_num(&mut args, "--trace")? as usize,
            // `--vcd` is the historical spelling of `--trace-vcd`.
            "--trace-vcd" | "--vcd" => {
                opts.vcd = Some(
                    args.next()
                        .ok_or_else(|| format!("missing value for {arg}"))?,
                );
            }
            "--exec-tier" => {
                opts.exec_tier = args
                    .next()
                    .ok_or_else(|| "missing value for --exec-tier".to_string())?
                    .parse()
                    .map_err(|e| format!("bad value for --exec-tier: {e}"))?;
            }
            "--dump" => {
                let addr = next_num(&mut args, "--dump addr")? as u16;
                let len = next_num(&mut args, "--dump len")? as usize;
                opts.dump = Some((addr, len));
            }
            other if opts.path.is_empty() && !other.starts_with('-') => {
                opts.path = other.to_string();
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.path.is_empty() {
        return Err("no input file".into());
    }
    Ok(opts)
}

const USAGE: &str = "usage: ulprun <file.s> [options]
  --no-sync            baseline design (no synchronizer, no ISE)
  --cores <n>          number of cores (default 8)
  --max-cycles <n>     cycle budget (default 10_000_000)
  --dump <addr> <len>  print a data-memory region after the run
  --trace <cycles>     print the per-core fetch-PC trace
  --trace-vcd <file>   write a value-change dump of the run
  --exec-tier <tier>   execution tier: `interpreted` (default) or
                       `compiled` (bit-identical statistics, faster)";

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ulprun: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let source = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ulprun: cannot read {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let program = match assemble(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ulprun: {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };

    let config = PlatformConfig::paper(opts.with_sync)
        .with_cores(opts.cores)
        .with_max_cycles(opts.max_cycles)
        .with_exec_tier(opts.exec_tier);
    let mut platform = match Platform::new(config) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ulprun: {e}");
            return ExitCode::FAILURE;
        }
    };
    platform.load_program(&program);

    // Tracing is plain observation: attach the requested observers and run.
    let mut pc_trace = (opts.trace > 0).then(|| PcTrace::new(opts.trace));
    let mut vcd = opts.vcd.as_ref().map(|_| VcdTracer::new(&platform));
    let mut observers: Vec<&mut dyn Observer> = Vec::new();
    if let Some(trace) = &mut pc_trace {
        observers.push(trace);
    }
    if let Some(vcd) = &mut vcd {
        observers.push(vcd);
    }
    let outcome = platform.run_with(&mut observers);
    let stats = platform.stats();

    if let (Some(vcd_path), Some(vcd)) = (&opts.vcd, vcd) {
        if let Err(e) = std::fs::write(vcd_path, vcd.finish()) {
            eprintln!("ulprun: cannot write {vcd_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {vcd_path}");
    }

    if let Some(trace) = &pc_trace {
        for (cycle, row) in trace.rows().iter().enumerate() {
            let cells: Vec<String> = row
                .iter()
                .map(|pc| {
                    pc.map(|a| format!("{a:04x}"))
                        .unwrap_or_else(|| ".".repeat(4))
                })
                .collect();
            println!("{:>6}  {}", cycle + 1, cells.join(" "));
        }
    }

    match outcome {
        Ok(summary) => println!("halted after {} cycles", summary.cycles),
        Err(e) => {
            eprintln!("ulprun: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "ops/cycle {:.2} | retired {} | IM accesses {} | DM accesses {} | lockstep width {:.2}",
        stats.ops_per_cycle(),
        stats.core_total.retired,
        stats.im.total_accesses(),
        stats.dm.total_accesses(),
        stats.avg_lockstep_width()
    );
    if let Some(sync) = stats.sync {
        println!(
            "synchronizer: {} batches, {} wakeups, {} releases",
            sync.batches, sync.wakeups, sync.releases
        );
    }
    if opts.exec_tier == ExecTier::Compiled {
        println!(
            "jit: {} translations, {} hits, {} compiled cycles, {} fallback cycles",
            stats.jit.translations,
            stats.jit.hits,
            stats.jit.compiled_cycles,
            stats.jit.fallback_cycles
        );
    }

    if let Some((addr, len)) = opts.dump {
        for (i, value) in platform.dm_slice(addr, len).iter().enumerate() {
            println!(
                "dm[{:#06x}] = {:#06x} ({})",
                addr as usize + i,
                value,
                *value as i16
            );
        }
    }
    ExitCode::SUCCESS
}

//! Value-change-dump (VCD) tracing of platform execution.
//!
//! Samples the architectural state of every core once per cycle and emits
//! a standard VCD file viewable in GTKWave & friends: each core
//! contributes its program counter (16-bit) and its execution phase
//! (3-bit, see [`phase_code`]). One platform cycle is 12 ns — the paper's
//! relaxed clock period.
//!
//! [`VcdTracer`] implements [`Observer`], so the usual way to record a
//! run is to pass it to [`Platform::run_with`]:
//!
//! ```no_run
//! use ulp_platform::{Platform, PlatformConfig, VcdTracer};
//!
//! let mut platform = Platform::new(PlatformConfig::paper_with_sync()).unwrap();
//! // ... load a program ...
//! let mut vcd = VcdTracer::new(&platform);
//! let _ = platform.run_with(&mut [&mut vcd]);
//! std::fs::write("run.vcd", vcd.finish()).unwrap();
//! ```
//!
//! Manual driving via [`VcdTracer::sample`] after each
//! [`Platform::step`] remains supported.

use crate::observer::Observer;
use crate::sim::Platform;
use std::fmt::Write as _;
use ulp_cpu::{Core, CoreState};

/// 3-bit encoding of a core's execution phase in the trace.
///
/// `0` fetch, `1` execute, `2` held by the D-Xbar policy, `3` inside the
/// synchronizer, `4` sleeping, `5` halted.
pub fn phase_code(state: CoreState) -> u8 {
    match state {
        CoreState::Fetch => 0,
        CoreState::Execute(_) => 1,
        CoreState::Held { .. } => 2,
        CoreState::SyncIssued(_) => 3,
        CoreState::Sleeping => 4,
        CoreState::Halted => 5,
    }
}

/// Incremental VCD writer for a [`Platform`].
#[derive(Debug, Clone)]
pub struct VcdTracer {
    cores: usize,
    body: String,
    last: Vec<(Option<u16>, Option<u8>)>,
    samples: u64,
}

/// Nanoseconds per platform cycle (the paper's 12 ns clock).
const NS_PER_CYCLE: u64 = 12;

fn pc_id(core: usize) -> char {
    (b'!' + core as u8) as char
}

fn phase_id(core: usize) -> char {
    (b'A' + core as u8) as char
}

impl VcdTracer {
    /// Creates a tracer for the given platform (captures its core count).
    pub fn new(platform: &Platform) -> VcdTracer {
        VcdTracer {
            cores: platform.num_cores(),
            body: String::new(),
            last: vec![(None, None); platform.num_cores()],
            samples: 0,
        }
    }

    /// Number of samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Records the state of every core at the platform's current cycle.
    /// Only changed signals are dumped, as VCD intends.
    pub fn sample(&mut self, platform: &Platform) {
        let mut stamped = false;
        for core in 0..self.cores {
            let c = platform.core(core);
            self.record(platform.cycle(), core, c.pc(), c.state(), &mut stamped);
        }
        self.samples += 1;
    }

    fn record(&mut self, cycle: u64, core: usize, pc: u16, state: CoreState, stamped: &mut bool) {
        let phase = phase_code(state);
        let (last_pc, last_phase) = self.last[core];
        if Some(pc) != last_pc || Some(phase) != last_phase {
            if !*stamped {
                writeln!(self.body, "#{}", cycle * NS_PER_CYCLE).expect("string write");
                *stamped = true;
            }
            if Some(pc) != last_pc {
                writeln!(self.body, "b{pc:016b} {}", pc_id(core)).expect("string write");
            }
            if Some(phase) != last_phase {
                writeln!(self.body, "b{phase:03b} {}", phase_id(core)).expect("string write");
            }
            self.last[core] = (Some(pc), Some(phase));
        }
    }

    /// Samples from an end-of-cycle observer hook.
    fn sample_slice(&mut self, cycle: u64, cores: &[Core]) {
        let mut stamped = false;
        for (core, c) in cores.iter().enumerate().take(self.cores) {
            self.record(cycle, core, c.pc(), c.state(), &mut stamped);
        }
        self.samples += 1;
    }

    /// Renders the complete VCD document.
    pub fn finish(self) -> String {
        let mut out = String::new();
        out.push_str("$comment ulp-lockstep platform trace $end\n");
        out.push_str("$timescale 1 ns $end\n");
        out.push_str("$scope module platform $end\n");
        for core in 0..self.cores {
            writeln!(out, "$var wire 16 {} pc{} [15:0] $end", pc_id(core), core)
                .expect("string write");
            writeln!(
                out,
                "$var wire 3 {} phase{} [2:0] $end",
                phase_id(core),
                core
            )
            .expect("string write");
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        out.push_str(&self.body);
        out
    }
}

impl Observer for VcdTracer {
    fn on_cycle_end(&mut self, cycle: u64, cores: &[Core]) {
        self.sample_slice(cycle, cores);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlatformConfig;
    use ulp_isa::asm::assemble;

    fn traced_run(src: &str) -> String {
        let program = assemble(src).unwrap();
        let mut p =
            Platform::new(PlatformConfig::paper_with_sync().with_max_cycles(10_000)).unwrap();
        p.load_program(&program);
        let mut vcd = VcdTracer::new(&p);
        while !p.all_halted() {
            p.step();
            vcd.sample(&p);
        }
        vcd.finish()
    }

    #[test]
    fn header_declares_all_signals() {
        let vcd = traced_run("nop\nhalt");
        assert!(vcd.starts_with("$comment"));
        assert!(vcd.contains("$timescale 1 ns $end"));
        for core in 0..8 {
            assert!(vcd.contains(&format!("pc{core} [15:0]")), "pc{core}");
            assert!(vcd.contains(&format!("phase{core} [2:0]")), "phase{core}");
        }
        assert!(vcd.contains("$enddefinitions $end"));
    }

    #[test]
    fn timestamps_are_monotonic_multiples_of_the_clock() {
        let vcd = traced_run(
            "   movi r1, #3
             l: addi r1, #-1
                bne l
                halt",
        );
        let mut last = 0u64;
        let mut count = 0;
        for line in vcd.lines().filter(|l| l.starts_with('#')) {
            let t: u64 = line[1..].parse().expect("timestamp");
            assert!(t > last || count == 0, "monotonic: {t} after {last}");
            assert_eq!(t % 12, 0, "12 ns clock grid");
            last = t;
            count += 1;
        }
        assert!(count > 3, "several change dumps expected");
    }

    #[test]
    fn final_phase_is_halted_for_every_core() {
        let vcd = traced_run("nop\nhalt");
        // The last phase change of each core must be to 5 (halted).
        for core in 0..8 {
            let id = phase_id(core);
            let last_change = vcd
                .lines()
                .rfind(|l| l.starts_with('b') && l.ends_with(&format!(" {id}")))
                .unwrap_or_else(|| panic!("no phase changes for core {core}"));
            assert_eq!(last_change, format!("b101 {id}"), "core {core} halted");
        }
    }

    #[test]
    fn change_compression_dumps_less_than_full_sampling() {
        // Phases toggle fetch/execute every cycle, but PCs revisit the
        // same two loop addresses: the dump must stay below one change
        // per signal per cycle (full sampling) while still recording the
        // loop activity.
        let vcd = traced_run(
            "   movi r1, #200
             l: addi r1, #-1
                bne l
                halt",
        );
        let changes = vcd.lines().filter(|l| l.starts_with('b')).count();
        let cycles = vcd.lines().filter(|l| l.starts_with('#')).count();
        assert!(changes > 100, "loop activity must be visible: {changes}");
        assert!(
            changes < cycles * 16,
            "worse than full sampling: {changes} changes over {cycles} stamps"
        );
    }

    #[test]
    fn phase_codes_are_distinct() {
        use std::collections::BTreeSet;
        let set: BTreeSet<u8> = [
            CoreState::Fetch,
            CoreState::Execute(ulp_isa::Instr::Nop),
            CoreState::Held {
                instr: ulp_isa::Instr::Nop,
                data: None,
            },
            CoreState::SyncIssued(ulp_isa::Instr::Sinc { index: 0 }),
            CoreState::Sleeping,
            CoreState::Halted,
        ]
        .into_iter()
        .map(phase_code)
        .collect();
        assert_eq!(set.len(), 6);
    }
}

use super::*;
use ulp_isa::asm::assemble;
use ulp_isa::Reg;

/// Sync array base: bank 9 of the 16-bank 64 kB DM (2048 words per bank).
const SYNC_BASE: u16 = 9 * 2048;

fn platform(with_sync: bool, src: &str) -> Platform {
    let program = assemble(src).unwrap_or_else(|e| panic!("asm: {e}"));
    let mut p = Platform::new(PlatformConfig::paper(with_sync).with_max_cycles(2_000_000)).unwrap();
    p.load_program(&program);
    p
}

/// Branch-free SPMD program: each core computes in its own DM bank.
const LOCKSTEP_SRC: &str = "
        rdid r1
        mov  r2, r1
        shl  r2, #11     ; r2 = id * 2048 (own bank base)
        movi r3, #7
        st   r3, [r2]
        ld   r4, [r2]
        add  r4, r4
        st   r4, [r2, #1]
        halt";

#[test]
fn branchless_spmd_stays_in_perfect_lockstep() {
    let mut p = platform(true, LOCKSTEP_SRC);
    p.run().unwrap();
    let s = p.stats();

    // Every instruction is fetched once and broadcast to all eight cores.
    assert_eq!(s.im.bank_reads, 9, "one physical IM access per instruction");
    assert_eq!(s.im.broadcast_extra, 9 * 7);
    assert!(
        (s.avg_lockstep_width() - 8.0).abs() < 1e-9,
        "width {}",
        s.avg_lockstep_width()
    );
    assert_eq!(s.ixbar.stalls, 0);
    assert_eq!(s.dxbar.stalls, 0);

    // 9 instructions x 2 cycles, fully parallel.
    assert_eq!(s.cycles, 18);
    // 8 useful ops per core (HALT is overhead) over 18 cycles.
    assert!((s.ops_per_cycle() - 64.0 / 18.0).abs() < 1e-9);

    // Results landed in each core's bank.
    for id in 0..8u16 {
        assert_eq!(p.dm(id * 2048), 7);
        assert_eq!(p.dm(id * 2048 + 1), 14);
    }
}

#[test]
fn shared_constant_read_broadcasts() {
    let src = "
        li   r5, 16384    ; shared-constants bank
        ld   r6, [r5]     ; same address on all cores -> broadcast
        halt";
    let mut p = platform(true, src);
    p.set_dm(16384, 1234);
    p.run().unwrap();
    let s = p.stats();
    assert_eq!(s.dm.bank_reads, 1, "one physical DM access for 8 readers");
    assert_eq!(s.dm.broadcast_extra, 7);
    for i in 0..8 {
        assert_eq!(p.core(i).reg(Reg::R6), 1234);
    }
}

#[test]
fn same_bank_conflict_serializes_but_syncaware_keeps_lockstep() {
    // Every iteration, all cores load *different* addresses of one shared
    // bank (an 8-way data access conflict) and then execute a long
    // straight-line body. The baseline crossbar lets served cores run
    // ahead, so the bodies execute out of phase and fight over the single
    // IM bank; the enhanced policy holds the synchronous group together
    // and keeps every fetch a broadcast.
    let src = "
        rdid r1
        li   r2, 0x100
        add  r2, r1        ; 8 distinct addresses in DM bank 0
        movi r4, #16       ; iterations
loop:   ld   r3, [r2]      ; 8-way bank conflict every iteration
        add  r0, r0
        add  r0, r0
        add  r0, r0
        add  r0, r0
        add  r0, r0
        add  r0, r0
        add  r0, r0
        add  r0, r0
        add  r0, r0
        add  r0, r0
        addi r4, #-1
        bne  loop
        halt";

    let mut with = platform(true, src);
    with.run().unwrap();
    let s_with = with.stats();

    let mut without = platform(false, src);
    without.run().unwrap();
    let s_without = without.stats();

    assert!(s_with.dxbar.holds > 0, "held cores expected");
    assert!(s_with.dxbar.releases > 0);
    assert_eq!(s_without.dxbar.holds, 0, "baseline never holds");

    // The enhanced policy keeps the group in perfect lockstep...
    assert!(
        (s_with.avg_lockstep_width() - 8.0).abs() < 1e-9,
        "width {}",
        s_with.avg_lockstep_width()
    );
    assert!(s_without.avg_lockstep_width() < 6.0);

    // ...which cuts the physical IM traffic dramatically (the paper's
    // instruction-broadcast power saving; up to 60 % in Section V-B)...
    let reduction = 1.0 - s_with.im.total_accesses() as f64 / s_without.im.total_accesses() as f64;
    assert!(reduction > 0.4, "IM access reduction only {reduction:.2}");

    // ...at a bounded cycle cost: holding trades a little overlap for
    // lockstep, so it must stay within a few percent of the baseline on
    // this conflict-pipeline workload.
    assert!(
        (s_with.cycles as f64) < 1.10 * s_without.cycles as f64,
        "{} vs {}",
        s_with.cycles,
        s_without.cycles
    );
}

/// The Listing-1 pattern of the paper, repeated in a loop: a data-dependent
/// conditional section wrapped in `SINC`/`SDEC`. Each core decides from its
/// own rolling value whether to take the long path, so the group splits
/// differently every iteration — without resynchronization the cores drift
/// apart permanently.
const DIVERGENT_SRC: &str = "
        rdid r1
        mov  r2, r1
        shl  r2, #11
        li   r3, 18432     ; SYNC_BASE
        wrsync r3
        mov  r4, r1        ; rolling per-core value
        movi r6, #24       ; iterations
loop:   sinc #0
        add  r4, r1
        addi r4, #3        ; evolve the per-core value
        mov  r5, r4
        movi r0, #7
        and  r5, r0        ; n = value & 7: per-core trip count
        inc  r5
spin:   addi r5, #-1       ; data-dependent loop (0..7 extra rounds)
        bne  spin
        add  r0, r0
        add  r0, r0
        add  r0, r0
        add  r0, r0
        add  r0, r0
        add  r0, r0
        add  r0, r0
        add  r0, r0
skip:   sdec #0
        addi r6, #-1
        bne  loop
        movi r5, #42
        st   r5, [r2]
        halt";

#[test]
fn divergent_section_resynchronizes_at_checkout() {
    let mut p = platform(true, DIVERGENT_SRC);
    p.run().unwrap();
    let s = p.stats();

    // Functional result.
    for id in 0..8u16 {
        assert_eq!(p.dm(id * 2048), 42, "core {id}");
    }
    // The barrier bookkeeping balanced and the word was cleared.
    assert_eq!(p.dm(SYNC_BASE), 0, "sync word cleared after release");
    let sync = s.sync.expect("synchronizer present");
    assert_eq!(sync.checkin_requests, 8 * 24, "8 cores x 24 iterations");
    assert_eq!(sync.checkout_requests, 8 * 24);
    assert_eq!(sync.releases, 24, "one barrier release per iteration");
    assert!(sync.wakeups > 0, "early finishers must have slept");
    assert_eq!(s.core_total.checkins, 8 * 24);
    assert_eq!(s.core_total.checkouts, 8 * 24);
}

#[test]
fn synchronizer_speeds_up_divergent_workload() {
    let mut with = platform(true, DIVERGENT_SRC);
    with.run().unwrap();
    let s_with = with.stats();

    let mut without = platform(false, DIVERGENT_SRC);
    without.run().unwrap();
    let s_without = without.stats();

    // Same functional result on the baseline design.
    for id in 0..8u16 {
        assert_eq!(without.dm(id * 2048), 42);
    }

    // The improved design finishes the run in fewer cycles, executes more
    // ops per cycle and needs fewer physical IM accesses — the paper's
    // Section V-B effects in miniature.
    assert!(
        s_with.cycles < s_without.cycles,
        "{} vs {}",
        s_with.cycles,
        s_without.cycles
    );
    assert!(s_with.ops_per_cycle() > s_without.ops_per_cycle());
    assert!(
        s_with.im.total_accesses() < s_without.im.total_accesses(),
        "broadcasting must cut IM accesses: {} vs {}",
        s_with.im.total_accesses(),
        s_without.im.total_accesses()
    );
    assert!(s_with.avg_lockstep_width() > s_without.avg_lockstep_width());

    // Baseline executed the sync instructions as NOPs.
    assert!(s_without.sync.is_none());
    assert_eq!(s_without.core_total.checkins, 0);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut p = platform(true, DIVERGENT_SRC);
        p.run().unwrap();
        p.stats()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "simulation must be fully deterministic");
}

#[test]
fn unbalanced_checkout_deadlocks_cleanly() {
    // Core 0 never checks out: the others sleep forever at the barrier.
    let src = "
        li   r3, 18432
        wrsync r3
        rdid r1
        cmpi r1, #0
        beq  stop
        sinc #1
        sdec #1
stop:   halt";
    // All cores except core 0 check in (7 cores), then check out; the
    // *last* of them releases the rest, so this actually completes.
    let mut p = platform(true, src);
    p.run().unwrap();

    // Now a real deadlock: eight check-ins but only seven check-outs.
    let src = "
        li   r3, 18432
        wrsync r3
        sinc #2
        rdid r1
        cmpi r1, #3
        beq  stop        ; core 3 leaves the section without SDEC
        sdec #2
        halt
stop:   halt";
    let mut p = platform(true, src);
    let err = p.run().unwrap_err();
    assert!(matches!(err, PlatformError::Deadlock { .. }), "{err}");
}

#[test]
fn timeout_is_reported() {
    let mut p = Platform::new(PlatformConfig::paper_with_sync().with_max_cycles(100)).unwrap();
    p.load_program(&assemble("loop: br loop").unwrap());
    let err = p.run().unwrap_err();
    assert!(matches!(err, PlatformError::Timeout { budget: 100 }));
}

#[test]
fn illegal_instruction_faults_the_run() {
    let mut p = Platform::new(PlatformConfig::paper_with_sync()).unwrap();
    p.load_im(0, &[0xF800]);
    let err = p.run().unwrap_err();
    assert!(matches!(err, PlatformError::CoreFault { .. }));
}

#[test]
fn interrupt_wakes_sleeping_core() {
    let src = "
        br   main
        br   isr
main:   ei
        sleep
        movi r2, #2
        halt
isr:    movi r3, #3
        iret";
    let mut p = platform(true, src);
    // Run until all cores sleep.
    for _ in 0..200 {
        p.step();
    }
    assert!((0..8).all(|i| p.core(i).is_sleeping()));
    p.raise_irq(5);
    for _ in 0..200 {
        p.step();
    }
    assert!(p.core(5).is_halted());
    assert_eq!(p.core(5).reg(Reg::R2), 2);
    assert_eq!(p.core(5).reg(Reg::R3), 3);
    assert!(p.core(0).is_sleeping(), "others still asleep");
}

#[test]
fn single_core_platform_works() {
    let mut p = Platform::new(PlatformConfig::paper_with_sync().with_cores(1)).unwrap();
    p.load_program(
        &assemble(
            "   li   r3, 18432
                wrsync r3
                sinc #0
                movi r1, #9
                sdec #0
                halt",
        )
        .unwrap(),
    );
    p.run().unwrap();
    assert_eq!(p.core(0).reg(Reg::R1), 9);
    assert_eq!(p.dm(SYNC_BASE), 0);
}

#[test]
fn pc_trace_records_fetches() {
    let mut p = platform(true, LOCKSTEP_SRC);
    let mut trace = crate::PcTrace::new(6);
    p.run_with(&mut [&mut trace]).unwrap();
    let trace = trace.rows();
    assert_eq!(trace.len(), 6);
    // Cycle 1: every core fetches address 0.
    assert!(trace[0].iter().all(|pc| *pc == Some(0)));
    // Cycle 2: execute phase, nobody fetches.
    assert!(trace[1].iter().all(|pc| pc.is_none()));
    // Cycle 3: every core fetches address 1.
    assert!(trace[2].iter().all(|pc| *pc == Some(1)));
}

/// A probe overriding every hook, counting what it sees.
#[derive(Default)]
struct CountingObserver {
    cycle_starts: u64,
    core_phases: u64,
    fetch_cycles: u64,
    cycle_ends: u64,
    run_ends: u64,
    last_outcome_ok: Option<bool>,
}

impl crate::Observer for CountingObserver {
    fn on_cycle_start(&mut self, _cycle: u64, _cores: &[ulp_cpu::Core]) {
        self.cycle_starts += 1;
    }
    fn on_core_phase(&mut self, _cycle: u64, _core: usize, _pc: u16, _phase: CoreState) {
        self.core_phases += 1;
    }
    fn on_fetch(&mut self, _cycle: u64, fetch_reqs: &[ulp_mem::ImRequest]) {
        if !fetch_reqs.is_empty() {
            self.fetch_cycles += 1;
        }
    }
    fn on_cycle_end(&mut self, _cycle: u64, _cores: &[ulp_cpu::Core]) {
        self.cycle_ends += 1;
    }
    fn on_run_end(&mut self, outcome: &Result<RunSummary, PlatformError>, stats: &SimStats) {
        self.run_ends += 1;
        self.last_outcome_ok = Some(outcome.is_ok());
        assert!(stats.cycles > 0);
    }
}

#[test]
fn observed_run_is_bit_identical_to_bare_run() {
    let mut bare = platform(true, DIVERGENT_SRC);
    bare.run().unwrap();
    let bare_stats = bare.stats();

    let mut observed = platform(true, DIVERGENT_SRC);
    let mut counting = CountingObserver::default();
    let mut trace = crate::PcTrace::new(128);
    let mut vcd = crate::VcdTracer::new(&observed);
    let mut width = crate::LockstepWidth::new();
    observed
        .run_with(&mut [&mut counting, &mut trace, &mut vcd, &mut width])
        .unwrap();
    let observed_stats = observed.stats();

    assert_eq!(
        bare_stats, observed_stats,
        "observers must not perturb the run"
    );
    for id in 0..8u16 {
        assert_eq!(observed.dm(id * 2048), 42);
    }

    // The probes actually saw the run.
    assert_eq!(counting.cycle_starts, observed_stats.cycles);
    assert_eq!(counting.cycle_ends, observed_stats.cycles);
    assert_eq!(counting.core_phases, observed_stats.cycles * 8);
    assert_eq!(counting.run_ends, 1);
    assert_eq!(counting.last_outcome_ok, Some(true));
    assert_eq!(trace.rows().len(), 128);
    assert_eq!(vcd.samples(), observed_stats.cycles);
    // The standalone width recorder sees the same fetches as the built-in.
    assert_eq!(width.sum(), observed_stats.lockstep_width_sum);
    assert_eq!(width.cycles(), observed_stats.lockstep_width_cycles);
    assert!(counting.fetch_cycles == width.cycles());
}

#[test]
fn deadlock_still_fires_with_observers_attached() {
    let src = "
        li   r3, 18432
        wrsync r3
        sinc #2
        rdid r1
        cmpi r1, #3
        beq  stop        ; core 3 leaves the section without SDEC
        sdec #2
        halt
stop:   halt";
    let mut p = platform(true, src);
    let mut counting = CountingObserver::default();
    let mut vcd = crate::VcdTracer::new(&p);
    let err = p.run_with(&mut [&mut counting, &mut vcd]).unwrap_err();
    assert!(matches!(err, PlatformError::Deadlock { .. }), "{err}");
    assert_eq!(counting.run_ends, 1);
    assert_eq!(counting.last_outcome_ok, Some(false));
}

#[test]
fn timeout_still_fires_with_observers_attached() {
    let mut p = Platform::new(PlatformConfig::paper_with_sync().with_max_cycles(100)).unwrap();
    p.load_program(&assemble("loop: br loop").unwrap());
    let mut counting = CountingObserver::default();
    let err = p.run_with(&mut [&mut counting]).unwrap_err();
    assert!(matches!(err, PlatformError::Timeout { budget: 100 }));
    assert_eq!(counting.cycle_starts, 100, "ran exactly the budget");
    assert_eq!(counting.last_outcome_ok, Some(false));
}

#[test]
fn reset_reuses_a_platform_for_a_fresh_run() {
    let mut p = platform(true, DIVERGENT_SRC);
    p.run().unwrap();
    let first = p.stats();

    p.reset();
    assert_eq!(p.cycle(), 0);
    assert_eq!(p.stats().im.total_accesses(), 0);
    assert_eq!(p.dm(SYNC_BASE), 0);

    // Re-load and re-run: bit-identical statistics.
    let program = assemble(DIVERGENT_SRC).unwrap();
    p.load_program(&program);
    p.run().unwrap();
    assert_eq!(p.stats(), first, "reset platform must replay identically");

    // Reset also clears loaded state: a fresh run of a different program
    // must not see the old image.
    p.reset();
    p.load_program(&assemble("movi r1, #5\nhalt").unwrap());
    p.run().unwrap();
    assert_eq!(p.core(0).reg(Reg::R1), 5);
    assert_eq!(p.dm(0), 0, "old data memory contents cleared");
}

#[test]
fn stats_include_all_components() {
    let mut p = platform(true, DIVERGENT_SRC);
    p.run().unwrap();
    let s = p.stats();
    assert_eq!(s.num_cores, 8);
    assert_eq!(s.cores.len(), 8);
    assert!(s.cycles > 0);
    assert!(s.im.total_accesses() > 0);
    assert!(s.dm.total_accesses() > 0);
    assert!(s.ixbar.grants > 0);
    assert!(s.dxbar.grants > 0);
    assert!(s.sync.unwrap().batches > 0);
    let per_core_retired: u64 = s.cores.iter().map(|c| c.retired).sum();
    assert_eq!(per_core_retired, s.core_total.retired);
}

#[test]
fn run_summary_matches_cycle_count() {
    let mut p = platform(true, LOCKSTEP_SRC);
    let summary = p.run().unwrap();
    assert_eq!(summary.cycles, p.cycle());
    assert!(p.all_halted());
}

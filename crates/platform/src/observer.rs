//! Pluggable run instrumentation for the cycle engine.
//!
//! The engine ([`crate::Platform`]) is observation-free: it advances cores,
//! memories, crossbars and the synchronizer, and nothing else. Everything
//! that *watches* a run — lockstep-width accounting, PC tracing, VCD
//! dumping, custom experiment probes — implements [`Observer`] and is
//! passed to [`crate::Platform::step_with`] / [`crate::Platform::run_with`].
//! Hooks default to no-ops, so an observer only pays for what it overrides,
//! and a run with no observers pays a handful of empty virtual calls.
//!
//! Observer output is first-class payload in the layers above the engine:
//! service jobs select observers per job (`ulp_service::ObserverSelection`)
//! and carry the output back as `ulp_service::JobArtifacts`; the
//! workload-sharding merge re-indexes per-shard artifacts onto a
//! recording's global cycle/sample axes (`ulp_shard::MergedArtifacts`),
//! and sweep cells carry the merged result. An observer that buckets by
//! cycle (like [`BankHeatMap`]'s windows) therefore flushes its trailing
//! partial bucket at run end, so shard boundaries stay lossless.
//!
//! ```
//! use ulp_platform::{Observer, PcTrace, Platform, PlatformConfig};
//! use ulp_isa::asm::assemble;
//!
//! let mut p = Platform::new(PlatformConfig::paper_with_sync()).unwrap();
//! p.load_program(&assemble("nop\nhalt").unwrap());
//! let mut trace = PcTrace::new(16);
//! p.run_with(&mut [&mut trace]).unwrap();
//! assert!(trace.rows()[0].iter().all(|pc| *pc == Some(0)));
//! ```

use crate::checkpoint::{Reader, Writer};
use crate::config::PlatformConfig;
use crate::error::PlatformError;
use crate::sim::RunSummary;
use crate::stats::SimStats;
use ulp_cpu::{Core, CoreState};
use ulp_mem::{BankMapping, DmRequest, ImRequest};

/// Hooks into the deterministic cycle loop.
///
/// All hooks receive the 1-based cycle number being simulated. A hook must
/// not assume it sees every run from the start: observers can be attached
/// to a platform that has already stepped.
///
/// Observers are owned by the platform when registered through
/// [`crate::Platform::attach`] (the preferred path — the engine notifies
/// them on every `step`/`run`, and they participate in checkpointing via
/// [`Observer::save_state`] / [`Observer::load_state`]), or borrowed for
/// a single call through the legacy `*_with` slice parameters. The `Any`
/// supertrait lets callers recover the concrete type of an attached
/// observer (see [`crate::Platform::observer_as`]).
pub trait Observer: std::any::Any {
    /// A stable identifier for this observer kind, used to match
    /// checkpointed observer state back to attached observers on restore.
    /// Two observers attached under the same label are matched in attach
    /// order.
    fn label(&self) -> &str {
        "observer"
    }

    /// Serializes the observer's accumulated state for a platform
    /// checkpoint. `None` (the default) means the observer does not
    /// participate in checkpointing — a platform carrying it can still be
    /// snapshotted, but the observer's state is not in the blob.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Re-applies state produced by [`Observer::save_state`]. Returns
    /// `false` if the bytes are not loadable into this observer (wrong
    /// geometry, corrupt encoding); the restore then fails with
    /// [`crate::RestoreError::ObserverMismatch`].
    fn load_state(&mut self, _state: &[u8]) -> bool {
        false
    }
    /// Start of a cycle, before interrupt polling and the phase snapshot.
    /// `cores` is the state left by the previous cycle.
    fn on_cycle_start(&mut self, _cycle: u64, _cores: &[Core]) {}

    /// A core's phase at the start of the cycle (the phase snapshot that
    /// decides which engine call the core receives), with its current PC.
    fn on_core_phase(&mut self, _cycle: u64, _core: usize, _pc: u16, _phase: CoreState) {}

    /// The cycle's instruction-fetch requests, before arbitration. Empty
    /// when no core is in its fetch phase.
    fn on_fetch(&mut self, _cycle: u64, _fetch_reqs: &[ImRequest]) {}

    /// The cycle's data-memory requests after D-Xbar arbitration:
    /// `granted[core]` is `true` for the cores whose request in `dm_reqs`
    /// was served (completed or held) this cycle. Empty when no core is in
    /// a memory-access execute phase.
    fn on_dm(&mut self, _cycle: u64, _dm_reqs: &[DmRequest], _granted: &[bool]) {}

    /// End of a cycle, after every phase has been applied.
    fn on_cycle_end(&mut self, _cycle: u64, _cores: &[Core]) {}

    /// End of a [`crate::Platform::run_with`] loop, with the run's outcome
    /// and final statistics. Not called for manual `step_with` driving.
    fn on_run_end(&mut self, _outcome: &Result<RunSummary, PlatformError>, _stats: &SimStats) {}
}

/// Lockstep-width accounting (the paper's Fig. 2 metric): per fetch cycle,
/// the size of the largest group of cores fetching the same PC.
///
/// [`crate::Platform`] keeps one of these attached by default because
/// [`SimStats::avg_lockstep_width`] is part of every run's statistics; it
/// is also usable standalone on top of `step_with`.
#[derive(Debug, Clone, Default)]
pub struct LockstepWidth {
    sum: u64,
    cycles: u64,
    scratch: Vec<u16>,
}

impl LockstepWidth {
    /// Creates an idle recorder.
    pub fn new() -> LockstepWidth {
        LockstepWidth::default()
    }

    /// Sum over fetch cycles of the largest same-PC group size.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of cycles with at least one fetch request.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Clears the recorded totals (the scratch allocation is kept).
    pub fn reset(&mut self) {
        self.sum = 0;
        self.cycles = 0;
    }

    /// Records one perfectly uniform fetch cycle (`width` cores at one
    /// PC) without materializing a request list — what
    /// [`Observer::on_fetch`] would record for such a cycle. Used by the
    /// compiled tier's lockstep batches.
    pub fn note_uniform(&mut self, width: u64) {
        self.sum += width;
        self.cycles += 1;
    }

    /// Replaces the recorded totals (checkpoint restore).
    pub fn restore(&mut self, sum: u64, cycles: u64) {
        self.sum = sum;
        self.cycles = cycles;
    }
}

impl Observer for LockstepWidth {
    fn label(&self) -> &str {
        "lockstep-width"
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut w = Writer::default();
        w.u64(self.sum);
        w.u64(self.cycles);
        Some(w.buf)
    }

    fn load_state(&mut self, state: &[u8]) -> bool {
        let mut r = Reader::new(state);
        let (Some(sum), Some(cycles)) = (r.u64(), r.u64()) else {
            return false;
        };
        if !r.done() {
            return false;
        }
        self.restore(sum, cycles);
        true
    }

    fn on_fetch(&mut self, _cycle: u64, fetch_reqs: &[ImRequest]) {
        if fetch_reqs.is_empty() {
            return;
        }
        // Perfect lockstep (every requester at one PC) is the dominant
        // fetch shape — recognise it without sorting.
        let addr = fetch_reqs[0].addr;
        if fetch_reqs.iter().all(|r| r.addr == addr) {
            self.sum += fetch_reqs.len() as u64;
            self.cycles += 1;
            return;
        }
        self.scratch.clear();
        self.scratch.extend(fetch_reqs.iter().map(|r| r.addr));
        self.scratch.sort_unstable();
        let mut best = 1u64;
        let mut run = 1u64;
        for w in self.scratch.windows(2) {
            if w[0] == w[1] {
                run += 1;
                best = best.max(run);
            } else {
                run = 1;
            }
        }
        self.sum += best;
        self.cycles += 1;
    }
}

/// Records per-core fetch PCs for the first `limit` cycles (for lockstep
/// visualisation). Sleeping, halted and non-fetch cycles are recorded as
/// `None`.
#[derive(Debug, Clone, Default)]
pub struct PcTrace {
    rows: Vec<Vec<Option<u16>>>,
    current: Vec<Option<u16>>,
    limit: usize,
}

impl PcTrace {
    /// Creates a trace that records at most `limit` cycles.
    pub fn new(limit: usize) -> PcTrace {
        PcTrace {
            rows: Vec::with_capacity(limit.min(1 << 20)),
            current: Vec::new(),
            limit,
        }
    }

    /// The recorded rows: one per traced cycle, one entry per core.
    pub fn rows(&self) -> &[Vec<Option<u16>>] {
        &self.rows
    }
}

fn write_pc_row(w: &mut Writer, row: &[Option<u16>]) {
    w.len(row.len());
    for entry in row {
        match entry {
            None => w.u8(0),
            Some(pc) => {
                w.u8(1);
                w.u16(*pc);
            }
        }
    }
}

fn read_pc_row(r: &mut Reader) -> Option<Vec<Option<u16>>> {
    let n = r.u32()? as usize;
    let mut row = Vec::with_capacity(n.min(16));
    for _ in 0..n {
        row.push(match r.u8()? {
            0 => None,
            1 => Some(r.u16()?),
            _ => return None,
        });
    }
    Some(row)
}

impl Observer for PcTrace {
    fn label(&self) -> &str {
        "pc-trace"
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut w = Writer::default();
        w.u64(self.limit as u64);
        w.len(self.rows.len());
        for row in &self.rows {
            write_pc_row(&mut w, row);
        }
        write_pc_row(&mut w, &self.current);
        Some(w.buf)
    }

    fn load_state(&mut self, state: &[u8]) -> bool {
        let mut r = Reader::new(state);
        let Some(limit) = r.u64() else { return false };
        let Some(nrows) = r.u32() else { return false };
        let mut rows = Vec::with_capacity((nrows as usize).min(1 << 10));
        for _ in 0..nrows {
            let Some(row) = read_pc_row(&mut r) else {
                return false;
            };
            rows.push(row);
        }
        let Some(current) = read_pc_row(&mut r) else {
            return false;
        };
        if !r.done() {
            return false;
        }
        self.limit = limit as usize;
        self.rows = rows;
        self.current = current;
        true
    }

    fn on_core_phase(&mut self, _cycle: u64, core: usize, pc: u16, phase: CoreState) {
        if self.rows.len() >= self.limit {
            return;
        }
        if core >= self.current.len() {
            self.current.resize(core + 1, None);
        }
        self.current[core] = match phase {
            CoreState::Fetch => Some(pc),
            _ => None,
        };
    }

    fn on_cycle_end(&mut self, _cycle: u64, _cores: &[Core]) {
        if self.rows.len() < self.limit && !self.current.is_empty() {
            self.rows.push(std::mem::take(&mut self.current));
        }
        self.current.clear();
    }
}

/// Per-bank data-memory heat map: how many granted core accesses each DM
/// bank served, bucketed into fixed-length cycle windows.
///
/// Rides entirely on the [`Observer`] hook layer (the `on_dm` hook carries
/// the cycle's requests and grant bitmap), so attaching it never touches
/// the cycle loop. Each row of [`BankHeatMap::rows`] covers `window`
/// cycles; a trailing partial window is flushed at run end. The counts are
/// *served core accesses* — under lockstep, a broadcast that satisfies
/// eight cores with one physical bank access shows up as eight served
/// accesses on one bank, which is exactly the contention picture a heat
/// map is after (physical totals live in
/// [`ulp_mem::BankedMemory::per_bank_accesses`]).
#[derive(Debug, Clone)]
pub struct BankHeatMap {
    banks: usize,
    bank_words: usize,
    mapping: BankMapping,
    window: u64,
    /// Cycles observed in the in-flight window.
    seen: u64,
    current: Vec<u64>,
    rows: Vec<Vec<u64>>,
}

impl BankHeatMap {
    /// A heat map of `banks` banks of `bank_words` words each under
    /// `mapping`, bucketing counts into `window`-cycle rows.
    ///
    /// # Panics
    ///
    /// Panics if `banks`, `bank_words` or `window` is zero.
    pub fn new(banks: usize, bank_words: usize, mapping: BankMapping, window: u64) -> BankHeatMap {
        assert!(banks > 0 && bank_words > 0, "empty memory geometry");
        assert!(window > 0, "zero-cycle window");
        BankHeatMap {
            banks,
            bank_words,
            mapping,
            window,
            seen: 0,
            current: vec![0; banks],
            rows: Vec::new(),
        }
    }

    /// A heat map of the data memory described by `cfg`.
    pub fn for_dm(cfg: &PlatformConfig, window: u64) -> BankHeatMap {
        BankHeatMap::new(
            cfg.dm_banks,
            cfg.dm_words / cfg.dm_banks,
            cfg.dm_mapping,
            window,
        )
    }

    /// The completed windows: one row per `window` cycles (the last row
    /// may cover fewer, flushed at run end), one count per bank.
    pub fn rows(&self) -> &[Vec<u64>] {
        &self.rows
    }

    /// Total served accesses per bank over all recorded windows, the
    /// flushed rows and the in-flight window combined.
    pub fn totals(&self) -> Vec<u64> {
        let mut totals = self.current.clone();
        for row in &self.rows {
            for (t, &v) in totals.iter_mut().zip(row) {
                *t += v;
            }
        }
        totals
    }

    fn bank_of(&self, addr: u16) -> usize {
        self.mapping.bank_of(addr, self.banks, self.bank_words)
    }

    fn flush(&mut self) {
        let row = std::mem::replace(&mut self.current, vec![0; self.banks]);
        self.rows.push(row);
        self.seen = 0;
    }
}

impl Observer for BankHeatMap {
    fn label(&self) -> &str {
        "bank-heat-map"
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut w = Writer::default();
        w.u32(self.banks as u32);
        w.u32(self.bank_words as u32);
        w.u8(match self.mapping {
            BankMapping::Blocked => 0,
            BankMapping::Interleaved => 1,
        });
        w.u64(self.window);
        w.u64(self.seen);
        for &count in &self.current {
            w.u64(count);
        }
        w.len(self.rows.len());
        for row in &self.rows {
            for &count in row {
                w.u64(count);
            }
        }
        Some(w.buf)
    }

    fn load_state(&mut self, state: &[u8]) -> bool {
        let mut r = Reader::new(state);
        let (Some(banks), Some(bank_words), Some(mapping), Some(window)) =
            (r.u32(), r.u32(), r.u8(), r.u64())
        else {
            return false;
        };
        let mapping = match mapping {
            0 => BankMapping::Blocked,
            1 => BankMapping::Interleaved,
            _ => return false,
        };
        // The geometry is construction state, not accumulated state: a
        // snapshot only loads into a heat map configured identically.
        if banks as usize != self.banks
            || bank_words as usize != self.bank_words
            || mapping != self.mapping
            || window != self.window
        {
            return false;
        }
        let Some(seen) = r.u64() else { return false };
        let mut current = vec![0u64; self.banks];
        for slot in &mut current {
            let Some(count) = r.u64() else { return false };
            *slot = count;
        }
        let Some(nrows) = r.u32() else { return false };
        let mut rows = Vec::with_capacity((nrows as usize).min(1 << 10));
        for _ in 0..nrows {
            let mut row = vec![0u64; self.banks];
            for slot in &mut row {
                let Some(count) = r.u64() else { return false };
                *slot = count;
            }
            rows.push(row);
        }
        if !r.done() {
            return false;
        }
        self.seen = seen;
        self.current = current;
        self.rows = rows;
        true
    }

    fn on_dm(&mut self, _cycle: u64, dm_reqs: &[DmRequest], granted: &[bool]) {
        for r in dm_reqs {
            if granted.get(r.core).copied().unwrap_or(false) {
                let bank = self.bank_of(r.addr);
                self.current[bank] += 1;
            }
        }
    }

    fn on_cycle_end(&mut self, _cycle: u64, _cores: &[Core]) {
        self.seen += 1;
        if self.seen == self.window {
            self.flush();
        }
    }

    fn on_run_end(&mut self, _outcome: &Result<RunSummary, PlatformError>, _stats: &SimStats) {
        // Flush the trailing partial window, if it saw any cycles.
        if self.seen > 0 {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockstep_width_counts_largest_group() {
        let mut w = LockstepWidth::new();
        let req = |core, addr| ImRequest { core, addr };
        w.on_fetch(1, &[]);
        assert_eq!(w.cycles(), 0, "empty fetch cycles are not counted");
        w.on_fetch(2, &[req(0, 5), req(1, 5), req(2, 9)]);
        assert_eq!((w.sum(), w.cycles()), (2, 1));
        w.on_fetch(3, &[req(0, 1), req(1, 2), req(2, 3)]);
        assert_eq!((w.sum(), w.cycles()), (3, 2));
        w.reset();
        assert_eq!((w.sum(), w.cycles()), (0, 0));
    }

    #[test]
    fn bank_heat_map_buckets_served_accesses_per_window() {
        use ulp_mem::Access;
        let mut map = BankHeatMap::new(4, 16, BankMapping::Blocked, 2);
        let req = |core, addr| DmRequest {
            core,
            pc: 0,
            addr,
            access: Access::Read,
        };
        // Cycle 1: cores 0 and 1 served in banks 0 and 2; core 2 stalled.
        map.on_dm(
            1,
            &[req(0, 3), req(1, 35), req(2, 35)],
            &[true, true, false],
        );
        map.on_cycle_end(1, &[]);
        // Cycle 2: the stalled core is served.
        map.on_dm(2, &[req(2, 35)], &[false, false, true]);
        map.on_cycle_end(2, &[]);
        assert_eq!(map.rows(), &[vec![1, 0, 2, 0]]);
        // Cycle 3 starts a new window; flushed as a partial row at run end.
        map.on_dm(3, &[req(3, 60)], &[false, false, false, true]);
        map.on_cycle_end(3, &[]);
        let stats = SimStats {
            cycles: 3,
            num_cores: 4,
            cores: vec![],
            core_total: ulp_cpu::CoreStats::default(),
            im: ulp_mem::MemStats::default(),
            dm: ulp_mem::MemStats::default(),
            ixbar: ulp_mem::IXbarStats::default(),
            dxbar: ulp_mem::DXbarStats::default(),
            sync: None,
            lockstep_width_sum: 0,
            lockstep_width_cycles: 0,
            jit: ulp_jit::JitStats::default(),
        };
        map.on_run_end(&Ok(RunSummary { cycles: 3 }), &stats);
        assert_eq!(map.rows(), &[vec![1, 0, 2, 0], vec![0, 0, 0, 1]]);
        assert_eq!(map.totals(), vec![1, 0, 2, 1]);
    }

    #[test]
    fn bank_heat_map_interleaved_mapping_and_quiet_run() {
        let map = BankHeatMap::new(4, 16, BankMapping::Interleaved, 8);
        assert_eq!(map.bank_of(5), 1);
        assert_eq!(map.bank_of(7), 3);
        // A heat map that saw nothing reports no rows and zero totals.
        assert!(map.rows().is_empty());
        assert_eq!(map.totals(), vec![0; 4]);
    }

    #[test]
    fn observer_state_round_trips_and_rejects_bad_geometry() {
        // LockstepWidth.
        let mut w = LockstepWidth::new();
        w.note_uniform(8);
        w.note_uniform(4);
        let state = w.save_state().unwrap();
        let mut w2 = LockstepWidth::new();
        assert!(w2.load_state(&state));
        assert_eq!((w2.sum(), w2.cycles()), (12, 2));
        assert!(!w2.load_state(&state[..3]), "truncated state rejected");

        // PcTrace, including the in-flight row.
        let mut t = PcTrace::new(4);
        t.on_core_phase(1, 0, 7, CoreState::Fetch);
        t.on_core_phase(1, 1, 0, CoreState::Halted);
        t.on_cycle_end(1, &[]);
        t.on_core_phase(2, 0, 8, CoreState::Fetch);
        let state = t.save_state().unwrap();
        let mut t2 = PcTrace::new(0);
        assert!(t2.load_state(&state));
        assert_eq!(t2.rows(), t.rows());
        t2.on_core_phase(2, 1, 0, CoreState::Halted);
        t2.on_cycle_end(2, &[]);
        assert_eq!(t2.rows()[1], vec![Some(8), None]);

        // BankHeatMap: round trip, then a geometry mismatch.
        let mut map = BankHeatMap::new(4, 16, BankMapping::Blocked, 2);
        map.on_dm(
            1,
            &[DmRequest {
                core: 0,
                pc: 0,
                addr: 3,
                access: ulp_mem::Access::Read,
            }],
            &[true],
        );
        map.on_cycle_end(1, &[]);
        let state = map.save_state().unwrap();
        let mut map2 = BankHeatMap::new(4, 16, BankMapping::Blocked, 2);
        assert!(map2.load_state(&state));
        assert_eq!(map2.totals(), map.totals());
        let mut wrong = BankHeatMap::new(8, 8, BankMapping::Blocked, 2);
        assert!(!wrong.load_state(&state), "geometry mismatch rejected");
    }

    #[test]
    fn pc_trace_respects_limit() {
        let mut t = PcTrace::new(2);
        for cycle in 1..=4u64 {
            t.on_core_phase(cycle, 0, cycle as u16, CoreState::Fetch);
            t.on_core_phase(cycle, 1, 0, CoreState::Halted);
            t.on_cycle_end(cycle, &[]);
        }
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.rows()[0], vec![Some(1), None]);
        assert_eq!(t.rows()[1], vec![Some(2), None]);
    }
}

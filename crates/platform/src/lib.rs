//! # ulp-platform — the 8-core ULP multi-core platform
//!
//! Composes the pieces of the platform in Fig. 1 of Dogan et al. (DATE
//! 2013) under a deterministic cycle loop:
//!
//! * eight (configurable 1–16) 16-bit RISC [`ulp_cpu::Core`]s,
//! * a shared banked instruction memory behind the broadcast-capable
//!   [`ulp_mem::IXbar`],
//! * a shared banked data memory behind the [`ulp_mem::DXbar`] with the
//!   paper's enhanced serving policy,
//! * the hardware [`ulp_sync::Synchronizer`] servicing the `SINC`/`SDEC`
//!   instruction-set extension.
//!
//! The *with synchronizer* and *without synchronizer* designs evaluated in
//! Section V of the paper correspond to
//! [`PlatformConfig::paper_with_sync`] and
//! [`PlatformConfig::paper_without_sync`].
//!
//! ## Example
//!
//! ```
//! use ulp_platform::{Platform, PlatformConfig};
//! use ulp_isa::asm::assemble;
//!
//! // Every core increments its own counter in data memory.
//! let program = assemble("
//!         rdid r1          ; r1 = core id
//!         li   r2, 0x400
//!         add  r2, r1      ; per-core slot
//!         movi r3, #1
//!         st   r3, [r2]
//!         halt
//! ").unwrap();
//!
//! let mut p = Platform::new(PlatformConfig::paper_with_sync()).unwrap();
//! p.load_program(&program);
//! p.run().unwrap();
//! for core in 0..8 {
//!     assert_eq!(p.dm(0x400 + core), 1);
//! }
//! ```

pub mod checkpoint;
mod config;
mod error;
pub mod observer;
mod sim;
mod stats;
pub mod vcd;

pub use checkpoint::{Checkpoint, CHECKPOINT_SCHEMA};
pub use config::PlatformConfig;
pub use error::{ConfigError, PlatformError, RestoreError};
pub use observer::{BankHeatMap, LockstepWidth, Observer, PcTrace};
pub use sim::{ObserverHandle, Platform, RunProgress, RunSummary};
pub use stats::SimStats;
pub use ulp_jit::{ExecTier, JitStats, TranslationCache};
pub use vcd::VcdTracer;

//! Aggregated simulation statistics — the inputs to the power model.

use ulp_cpu::CoreStats;
use ulp_jit::JitStats;
use ulp_mem::{DXbarStats, IXbarStats, MemStats};
use ulp_sync::SyncStats;

/// Everything the power model and the experiment harness need to know
/// about one simulation run.
///
/// Produced by [`crate::Platform::stats`]. All cycle counts are platform
/// clock cycles; all event counts are totals over the run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Platform cycles simulated.
    pub cycles: u64,
    /// Number of cores.
    pub num_cores: usize,
    /// Per-core counters.
    pub cores: Vec<CoreStats>,
    /// Sum of the per-core counters.
    pub core_total: CoreStats,
    /// Instruction-memory physical access counters.
    pub im: MemStats,
    /// Data-memory physical access counters (includes the synchronizer's
    /// read-modify-write traffic).
    pub dm: MemStats,
    /// Instruction crossbar counters.
    pub ixbar: IXbarStats,
    /// Data crossbar counters.
    pub dxbar: DXbarStats,
    /// Synchronizer counters (`None` for the design without it).
    pub sync: Option<SyncStats>,
    /// Per fetch-cycle sum of the size of the largest same-PC fetch group
    /// (lockstep-width numerator; see [`SimStats::avg_lockstep_width`]).
    pub lockstep_width_sum: u64,
    /// Number of cycles with at least one fetch request (denominator).
    pub lockstep_width_cycles: u64,
    /// Compiled-tier counters (all zero on interpreted runs). These
    /// describe the *host execution strategy*, not the simulated machine:
    /// they are the one field allowed to differ between tiers.
    pub jit: JitStats,
}

impl SimStats {
    /// Useful operations per cycle — the paper's Ops/cycle metric
    /// (Section V-B reports 2.5–4.0 with the synchronizer and 1.1–2.0
    /// without, for 8 cores).
    pub fn ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.core_total.useful_ops as f64 / self.cycles as f64
    }

    /// Total retired instructions per cycle (includes sync overhead ops).
    pub fn retired_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.core_total.retired as f64 / self.cycles as f64
    }

    /// Total useful operations of the run.
    pub fn useful_ops(&self) -> u64 {
        self.core_total.useful_ops
    }

    /// Physical IM bank accesses per useful operation — the quantity the
    /// paper's improved design reduces by up to 60 %.
    pub fn im_accesses_per_op(&self) -> f64 {
        if self.core_total.useful_ops == 0 {
            return 0.0;
        }
        self.im.total_accesses() as f64 / self.core_total.useful_ops as f64
    }

    /// Physical DM bank accesses per useful operation (grows by < 10 % in
    /// the paper due to the sync-word traffic).
    pub fn dm_accesses_per_op(&self) -> f64 {
        if self.core_total.useful_ops == 0 {
            return 0.0;
        }
        self.dm.total_accesses() as f64 / self.core_total.useful_ops as f64
    }

    /// Average width of the largest same-PC fetch group over the cycles
    /// that had fetch activity: 8.0 means perfect lockstep on an 8-core
    /// platform, 1.0 means fully divergent execution.
    pub fn avg_lockstep_width(&self) -> f64 {
        if self.lockstep_width_cycles == 0 {
            return 0.0;
        }
        self.lockstep_width_sum as f64 / self.lockstep_width_cycles as f64
    }

    /// Fraction of core-cycles spent clock-gated (stalled or held) or
    /// asleep rather than active.
    pub fn gated_fraction(&self) -> f64 {
        let total = self.core_total.total_cycles();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.core_total.active_cycles as f64 / total as f64
    }

    /// Events per useful operation for an arbitrary counter — helper for
    /// the power model's activity vectors.
    pub fn per_op(&self, events: u64) -> f64 {
        if self.core_total.useful_ops == 0 {
            return 0.0;
        }
        events as f64 / self.core_total.useful_ops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SimStats {
        let core_total = CoreStats {
            useful_ops: 400,
            retired: 500,
            active_cycles: 900,
            sleep_cycles: 100,
            ..Default::default()
        };
        let im = MemStats {
            bank_reads: 200,
            ..Default::default()
        };
        let dm = MemStats {
            bank_reads: 30,
            bank_writes: 10,
            ..Default::default()
        };
        SimStats {
            cycles: 250,
            num_cores: 8,
            cores: vec![CoreStats::default(); 8],
            core_total,
            im,
            dm,
            ixbar: IXbarStats::default(),
            dxbar: DXbarStats::default(),
            sync: None,
            lockstep_width_sum: 600,
            lockstep_width_cycles: 100,
            jit: JitStats::default(),
        }
    }

    #[test]
    fn derived_metrics() {
        let s = stats();
        assert!((s.ops_per_cycle() - 1.6).abs() < 1e-12);
        assert!((s.retired_per_cycle() - 2.0).abs() < 1e-12);
        assert!((s.im_accesses_per_op() - 0.5).abs() < 1e-12);
        assert!((s.dm_accesses_per_op() - 0.1).abs() < 1e-12);
        assert!((s.avg_lockstep_width() - 6.0).abs() < 1e-12);
        assert!((s.gated_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(s.useful_ops(), 400);
    }

    #[test]
    fn zero_guards() {
        let mut s = stats();
        s.cycles = 0;
        s.core_total = CoreStats::default();
        s.lockstep_width_cycles = 0;
        assert_eq!(s.ops_per_cycle(), 0.0);
        assert_eq!(s.im_accesses_per_op(), 0.0);
        assert_eq!(s.avg_lockstep_width(), 0.0);
        assert_eq!(s.gated_fraction(), 0.0);
    }
}

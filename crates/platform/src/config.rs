//! Platform configuration.

use crate::error::ConfigError;
use ulp_isa::arch;
use ulp_jit::ExecTier;
use ulp_mem::{BankMapping, ServingPolicy};

/// Configuration of a [`crate::Platform`] instance.
///
/// The two designs evaluated by the paper are available as presets:
/// [`PlatformConfig::paper_with_sync`] (hardware synchronizer + enhanced
/// D-Xbar serving policy) and [`PlatformConfig::paper_without_sync`]
/// (the state-of-the-art baseline it improves on). All other fields allow
/// the ablation studies described in `DESIGN.md`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformConfig {
    /// Number of processing cores (1..=16; at most 8 with the
    /// synchronizer, whose identity-flag byte holds one bit per core).
    pub num_cores: usize,
    /// Whether the hardware synchronizer is present. Without it,
    /// `SINC`/`SDEC` degenerate to NOPs (the baseline ISA has no
    /// synchronization ISE).
    pub synchronizer: bool,
    /// D-Xbar serving policy (the paper couples `SyncAware` with the
    /// synchronizer; ablation A2 separates them).
    pub dxbar_policy: ServingPolicy,
    /// Instruction-memory bank mapping (paper layout: blocked).
    pub im_mapping: BankMapping,
    /// Data-memory bank mapping (paper layout: blocked).
    pub dm_mapping: BankMapping,
    /// Instruction memory size in words.
    pub im_words: usize,
    /// Instruction memory banks.
    pub im_banks: usize,
    /// Data memory size in words.
    pub dm_words: usize,
    /// Data memory banks.
    pub dm_banks: usize,
    /// Simulation cycle budget for [`crate::Platform::run`].
    pub max_cycles: u64,
    /// Execution strategy: the cycle-accurate interpreter (default) or the
    /// compiled hot-block tier with interpreter fallback. Both produce
    /// bit-identical architectural state and statistics.
    pub exec_tier: ExecTier,
    /// Hotness threshold of the compiled tier: a block entry PC must be
    /// reached this many times before it is translated.
    pub jit_hot_threshold: u32,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig::paper_with_sync()
    }
}

impl PlatformConfig {
    /// The improved architecture of the paper: 8 cores, 96 kB IM in 8
    /// banks, 64 kB DM in 16 banks, hardware synchronizer, enhanced
    /// data-serving policy.
    pub fn paper_with_sync() -> PlatformConfig {
        PlatformConfig {
            num_cores: arch::NUM_CORES,
            synchronizer: true,
            dxbar_policy: ServingPolicy::SyncAware,
            im_mapping: BankMapping::Blocked,
            dm_mapping: BankMapping::Blocked,
            im_words: arch::IM_WORDS,
            im_banks: arch::IM_BANKS,
            dm_words: arch::DM_WORDS,
            dm_banks: arch::DM_BANKS,
            max_cycles: 200_000_000,
            exec_tier: ExecTier::Interpreted,
            jit_hot_threshold: ulp_jit::DEFAULT_HOT_THRESHOLD,
        }
    }

    /// The baseline architecture *without* the synchronization feature
    /// (cf. `ulpmc-bank` in the paper's reference \[4\]).
    pub fn paper_without_sync() -> PlatformConfig {
        PlatformConfig {
            synchronizer: false,
            dxbar_policy: ServingPolicy::Baseline,
            ..PlatformConfig::paper_with_sync()
        }
    }

    /// Returns the preset for one of the paper's two designs.
    pub fn paper(with_sync: bool) -> PlatformConfig {
        if with_sync {
            PlatformConfig::paper_with_sync()
        } else {
            PlatformConfig::paper_without_sync()
        }
    }

    /// Sets the number of cores (builder style).
    pub fn with_cores(mut self, n: usize) -> PlatformConfig {
        self.num_cores = n;
        self
    }

    /// Sets the cycle budget (builder style).
    pub fn with_max_cycles(mut self, cycles: u64) -> PlatformConfig {
        self.max_cycles = cycles;
        self
    }

    /// Sets the execution tier (builder style).
    pub fn with_exec_tier(mut self, tier: ExecTier) -> PlatformConfig {
        self.exec_tier = tier;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for zero or too many cores, a core count
    /// beyond the synchronizer's flag capacity, or bank counts that do not
    /// divide the memory sizes.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_cores == 0 || self.num_cores > 16 {
            return Err(ConfigError::BadCoreCount(self.num_cores));
        }
        if self.synchronizer && self.num_cores > 8 {
            return Err(ConfigError::TooManyCoresForSync(self.num_cores));
        }
        for (words, banks) in [
            (self.im_words, self.im_banks),
            (self.dm_words, self.dm_banks),
        ] {
            if banks == 0 || words == 0 || words % banks != 0 {
                return Err(ConfigError::BadBankGeometry { words, banks });
            }
        }
        if self.max_cycles == 0 {
            return Err(ConfigError::ZeroCycleBudget);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_differ_only_in_sync() {
        let with = PlatformConfig::paper_with_sync();
        let without = PlatformConfig::paper_without_sync();
        with.validate().unwrap();
        without.validate().unwrap();
        assert!(with.synchronizer && !without.synchronizer);
        assert_eq!(with.dxbar_policy, ServingPolicy::SyncAware);
        assert_eq!(without.dxbar_policy, ServingPolicy::Baseline);
        assert_eq!(with.num_cores, without.num_cores);
        assert_eq!(PlatformConfig::paper(true), with);
        assert_eq!(PlatformConfig::paper(false), without);
    }

    #[test]
    fn geometry_matches_paper() {
        let c = PlatformConfig::paper_with_sync();
        assert_eq!(c.num_cores, 8);
        assert_eq!(c.im_words * 2, 96 * 1024);
        assert_eq!(c.dm_words * 2, 64 * 1024);
        assert_eq!(c.im_banks, 8);
        assert_eq!(c.dm_banks, 16);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(matches!(
            PlatformConfig::paper_with_sync().with_cores(0).validate(),
            Err(ConfigError::BadCoreCount(0))
        ));
        assert!(matches!(
            PlatformConfig::paper_with_sync().with_cores(9).validate(),
            Err(ConfigError::TooManyCoresForSync(9))
        ));
        assert!(PlatformConfig::paper_without_sync()
            .with_cores(16)
            .validate()
            .is_ok());
        let mut c = PlatformConfig::paper_with_sync();
        c.dm_banks = 7;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadBankGeometry { .. })
        ));
        let c = PlatformConfig::paper_with_sync().with_max_cycles(0);
        assert!(matches!(c.validate(), Err(ConfigError::ZeroCycleBudget)));
    }
}

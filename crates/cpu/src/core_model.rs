//! The per-core micro-architectural state machine.

use crate::exec::{alu_exec, shift_exec, unary_exec};
use crate::stats::CoreStats;
use crate::types::{CoreError, MemAccess, MemRequest, SyncKind, SyncRequest, WakeReason};
use ulp_isa::{arch, decode, encode, AluOp, CsrOp, Flags, Instr, Reg};

/// Why the core is asleep — determines which wake events are honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SleepOrigin {
    /// `SLEEP` instruction: woken by the synchronizer *or* an enabled
    /// interrupt.
    Instruction,
    /// `SDEC` check-out: woken only by the hardware synchronizer.
    Sync,
}

/// The externally visible execution state of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Requesting an instruction fetch for the current PC.
    Fetch,
    /// Holding a fetched instruction; issuing its data/sync request or
    /// completing it this cycle.
    Execute(Instr),
    /// Served by the D-Xbar but held by the enhanced serving policy until
    /// the whole PC-synchronous group has been served (Section IV of the
    /// paper). The read data is latched.
    Held {
        /// The in-flight instruction.
        instr: Instr,
        /// Latched read data for loads.
        data: Option<u16>,
    },
    /// A `SINC`/`SDEC` request was accepted; the synchronizer is performing
    /// its two-cycle read-modify-write.
    SyncIssued(Instr),
    /// Asleep: externally clock-gated until a wake-up event.
    Sleeping,
    /// Halted (by `HALT` or a fatal error); never leaves this state.
    Halted,
}

/// [`CoreState`] with in-flight instructions replaced by their encoded
/// words, so a core's execution state can be checkpointed without this
/// crate owning a byte format. Decoding the word back reproduces the
/// original [`Instr`] exactly — the ISA's encode/decode round-trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStateSnapshot {
    /// Requesting an instruction fetch.
    Fetch,
    /// Executing the instruction encoded by the word.
    Execute(u16),
    /// Served but held by the enhanced serving policy, data latched.
    Held {
        /// Encoded in-flight instruction.
        word: u16,
        /// Latched read data for loads.
        data: Option<u16>,
    },
    /// A sync operation's two-cycle RMW is in flight.
    SyncIssued(u16),
    /// Asleep.
    Sleeping,
    /// Halted.
    Halted,
}

/// The complete mutable state of one [`Core`], exported by [`Core::save`]
/// and re-applied by [`Core::load_snapshot`]. Plain data with public
/// fields; the platform's checkpoint layer owns the byte-level encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreSnapshot {
    /// Hardware core id.
    pub id: u8,
    /// General-purpose register file.
    pub regs: [u16; arch::NUM_REGS],
    /// Program counter.
    pub pc: u16,
    /// Status flags, packed via [`Flags::to_bits`].
    pub flags: u16,
    /// Interrupt-enable bit.
    pub ie: bool,
    /// `RSYNC` sync-array base register.
    pub rsync: u16,
    /// Saved PC of the interrupted context.
    pub epc: u16,
    /// Saved flags of the interrupted context, packed.
    pub eflags: u16,
    /// A raised but not yet accepted interrupt.
    pub irq_pending: bool,
    /// Whether a sleeping core sleeps from `SDEC` (`true`) or `SLEEP`
    /// (`false`) — determines which wake events are honoured.
    pub sleep_from_sync: bool,
    /// Execution state with in-flight instructions encoded.
    pub state: CoreStateSnapshot,
    /// Cycles observed so far (drives `RDCYC`).
    pub cycles: u64,
    /// Accumulated activity counters.
    pub stats: CoreStats,
    /// The fatal error that halted the core, if any.
    pub error: Option<CoreError>,
}

/// One 16-bit RISC processing core.
///
/// The core is driven by the platform: each cycle the platform inspects the
/// core's state, performs arbitration, and invokes exactly one of the
/// per-cycle methods (`on_fetch_granted`, `note_fetch_stall`,
/// `complete_execute`, `note_mem_stall`, `hold_with_data`, `note_hold`,
/// `on_sync_accepted`, `note_sync_active`, `note_sync_stall`, `note_sleep`),
/// plus edge events (`complete_sync`, `release`, `wake`) that do not consume
/// a cycle.
///
/// See [`crate::SimpleHost`] for a minimal single-core driver.
#[derive(Debug, Clone)]
pub struct Core {
    id: u8,
    regs: [u16; arch::NUM_REGS],
    pc: u16,
    flags: Flags,
    ie: bool,
    rsync: u16,
    epc: u16,
    eflags: Flags,
    irq_pending: bool,
    sleep_origin: SleepOrigin,
    state: CoreState,
    cycles: u64,
    stats: CoreStats,
    error: Option<CoreError>,
}

impl Core {
    /// Creates a core in its reset state: `PC` at the reset vector, all
    /// registers zero, interrupts disabled.
    pub fn new(id: u8) -> Core {
        Core {
            id,
            regs: [0; arch::NUM_REGS],
            pc: arch::RESET_VECTOR,
            flags: Flags::default(),
            ie: false,
            rsync: 0,
            epc: 0,
            eflags: Flags::default(),
            irq_pending: false,
            sleep_origin: SleepOrigin::Instruction,
            state: CoreState::Fetch,
            cycles: 0,
            stats: CoreStats::default(),
            error: None,
        }
    }

    /// The core's hardware identity (0-based), as read by `RDID`.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Current program counter (word address).
    pub fn pc(&self) -> u16 {
        self.pc
    }

    /// Overrides the program counter (loader/test hook).
    pub fn set_pc(&mut self, pc: u16) {
        self.pc = pc;
    }

    /// Reads a general-purpose register.
    pub fn reg(&self, r: Reg) -> u16 {
        self.regs[r.index()]
    }

    /// Writes a general-purpose register (loader/test hook).
    pub fn set_reg(&mut self, r: Reg, value: u16) {
        self.regs[r.index()] = value;
    }

    /// Current status flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// The `RSYNC` sync-array base address register.
    pub fn rsync(&self) -> u16 {
        self.rsync
    }

    /// Current execution state.
    pub fn state(&self) -> CoreState {
        self.state
    }

    /// Whether the core has halted (normally or due to an error).
    pub fn is_halted(&self) -> bool {
        matches!(self.state, CoreState::Halted)
    }

    /// Whether the core is asleep.
    pub fn is_sleeping(&self) -> bool {
        matches!(self.state, CoreState::Sleeping)
    }

    /// The fatal error that halted the core, if any.
    pub fn error(&self) -> Option<CoreError> {
        self.error
    }

    /// Accumulated activity counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Total cycles observed by this core (drives `RDCYC`).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Asserts the core's external interrupt line.
    pub fn raise_irq(&mut self) {
        self.irq_pending = true;
    }

    /// Polls for a pending interrupt at an instruction boundary.
    ///
    /// Called by the platform at the start of a cycle for cores in
    /// [`CoreState::Fetch`] or woken from an instruction sleep. Returns
    /// `true` if the interrupt was accepted (the PC now points at the
    /// interrupt vector).
    pub fn poll_interrupt(&mut self) -> bool {
        let at_boundary = matches!(self.state, CoreState::Fetch)
            || (matches!(self.state, CoreState::Sleeping)
                && self.sleep_origin == SleepOrigin::Instruction);
        if !(self.irq_pending && self.ie && at_boundary) {
            return false;
        }
        if matches!(self.state, CoreState::Sleeping) {
            self.state = CoreState::Fetch;
        }
        self.irq_pending = false;
        self.ie = false;
        self.epc = self.pc;
        self.eflags = self.flags;
        self.pc = arch::IRQ_VECTOR;
        self.stats.interrupts += 1;
        true
    }

    // ---- fetch phase -----------------------------------------------------

    /// The instruction-memory address this core wants to fetch, if it is in
    /// the fetch phase.
    pub fn fetch_request(&self) -> Option<u16> {
        match self.state {
            CoreState::Fetch => Some(self.pc),
            _ => None,
        }
    }

    /// Delivers the fetched instruction word (consumes the fetch cycle).
    ///
    /// # Errors
    ///
    /// If the word does not decode, the core halts with
    /// [`CoreError::IllegalInstruction`] and the error is returned.
    pub fn on_fetch_granted(&mut self, word: u16) -> Result<(), CoreError> {
        debug_assert!(matches!(self.state, CoreState::Fetch), "not fetching");
        self.cycles += 1;
        self.stats.active_cycles += 1;
        self.stats.fetches += 1;
        match decode(word) {
            Ok(instr) => {
                self.state = CoreState::Execute(instr);
                Ok(())
            }
            Err(_) => {
                let err = CoreError::IllegalInstruction { pc: self.pc, word };
                self.error = Some(err);
                self.state = CoreState::Halted;
                Err(err)
            }
        }
    }

    /// Delivers an already-decoded instruction for the granted fetch
    /// (consumes the fetch cycle, exactly like [`Core::on_fetch_granted`]
    /// minus the decode).
    ///
    /// Used by the compiled execution tier, whose traces carry the decoded
    /// form: the caller guarantees `instr` is the decoding of the word at
    /// the fetch address, so this path cannot fault.
    pub fn on_fetch_granted_decoded(&mut self, instr: Instr) {
        debug_assert!(matches!(self.state, CoreState::Fetch), "not fetching");
        self.cycles += 1;
        self.stats.active_cycles += 1;
        self.stats.fetches += 1;
        self.state = CoreState::Execute(instr);
    }

    /// Records a cycle spent waiting for a fetch grant (clock-gated).
    pub fn note_fetch_stall(&mut self) {
        debug_assert!(matches!(self.state, CoreState::Fetch));
        self.cycles += 1;
        self.stats.fetch_stall_cycles += 1;
    }

    // ---- execute phase ---------------------------------------------------

    /// The data-memory request of the current instruction, if any.
    ///
    /// `SINC`/`SDEC` report a [`SyncRequest`] via [`Core::sync_request`]
    /// instead — their memory traffic goes through the synchronizer.
    pub fn mem_request(&self) -> Option<MemRequest> {
        let CoreState::Execute(instr) = self.state else {
            return None;
        };
        let req = match instr {
            Instr::Ld { base, offset, .. } => MemRequest {
                addr: self.regs[base.index()].wrapping_add(offset as i16 as u16),
                access: MemAccess::Read,
            },
            Instr::St { rs, base, offset } => MemRequest {
                addr: self.regs[base.index()].wrapping_add(offset as i16 as u16),
                access: MemAccess::Write(self.regs[rs.index()]),
            },
            Instr::LdP { base, .. } => MemRequest {
                addr: self.regs[base.index()],
                access: MemAccess::Read,
            },
            Instr::StP { rs, base } => MemRequest {
                addr: self.regs[base.index()],
                access: MemAccess::Write(self.regs[rs.index()]),
            },
            _ => return None,
        };
        Some(req)
    }

    /// The synchronization request of the current instruction, if it is
    /// part of the synchronization ISE.
    pub fn sync_request(&self) -> Option<SyncRequest> {
        let CoreState::Execute(instr) = self.state else {
            return None;
        };
        match instr {
            Instr::Sinc { index } => Some(SyncRequest {
                index,
                word_addr: self.rsync.wrapping_add(index as u16),
                kind: SyncKind::CheckIn,
            }),
            Instr::Sdec { index } => Some(SyncRequest {
                index,
                word_addr: self.rsync.wrapping_add(index as u16),
                kind: SyncKind::CheckOut,
            }),
            _ => None,
        }
    }

    /// Completes the execute phase of the current instruction, consuming
    /// one cycle. For loads, `read` carries the granted data.
    ///
    /// # Panics
    ///
    /// Panics if the core is not in [`CoreState::Execute`], or if the
    /// instruction is `SINC`/`SDEC` (those complete via
    /// [`Core::complete_sync`]).
    pub fn complete_execute(&mut self, read: Option<u16>) {
        let CoreState::Execute(instr) = self.state else {
            panic!("complete_execute outside execute phase");
        };
        assert!(
            !instr.is_sync(),
            "sync instructions complete via complete_sync"
        );
        self.cycles += 1;
        self.stats.active_cycles += 1;
        self.apply(instr, read);
    }

    /// Records a cycle spent waiting for a data-memory grant (clock-gated).
    pub fn note_mem_stall(&mut self) {
        debug_assert!(matches!(self.state, CoreState::Execute(_)));
        self.cycles += 1;
        self.stats.mem_stall_cycles += 1;
    }

    /// The D-Xbar served this core but the enhanced serving policy holds it
    /// until its PC-synchronous group is fully served; read data is latched.
    pub fn hold_with_data(&mut self, data: Option<u16>) {
        let CoreState::Execute(instr) = self.state else {
            panic!("hold_with_data outside execute phase");
        };
        self.cycles += 1;
        self.stats.active_cycles += 1;
        self.state = CoreState::Held { instr, data };
    }

    /// Records a cycle spent held by the enhanced serving policy.
    pub fn note_hold(&mut self) {
        debug_assert!(matches!(self.state, CoreState::Held { .. }));
        self.cycles += 1;
        self.stats.hold_cycles += 1;
    }

    /// Releases a held core: the latched instruction completes and the core
    /// returns to fetch. Edge event — consumes no cycle.
    pub fn release(&mut self) {
        let CoreState::Held { instr, data } = self.state else {
            panic!("release without hold");
        };
        self.state = CoreState::Execute(instr);
        self.apply(instr, data);
    }

    // ---- synchronization ISE ----------------------------------------------

    /// The synchronizer accepted this core's request and starts its
    /// two-cycle read-modify-write (first cycle).
    pub fn on_sync_accepted(&mut self) {
        let CoreState::Execute(instr) = self.state else {
            panic!("on_sync_accepted outside execute phase");
        };
        assert!(instr.is_sync(), "not a sync instruction");
        self.cycles += 1;
        self.stats.active_cycles += 1;
        self.state = CoreState::SyncIssued(instr);
    }

    /// Second (write) cycle of the synchronizer operation.
    pub fn note_sync_active(&mut self) {
        debug_assert!(matches!(self.state, CoreState::SyncIssued(_)));
        self.cycles += 1;
        self.stats.active_cycles += 1;
    }

    /// Records a cycle spent queued behind the synchronizer.
    pub fn note_sync_stall(&mut self) {
        debug_assert!(matches!(self.state, CoreState::Execute(_)));
        self.cycles += 1;
        self.stats.sync_stall_cycles += 1;
    }

    /// The synchronizer finished this core's check-in/check-out. With
    /// `sleep`, the core enters sync sleep (check-out while other cores are
    /// still inside the section). Edge event — consumes no cycle.
    pub fn complete_sync(&mut self, sleep: bool) {
        let CoreState::SyncIssued(instr) = self.state else {
            panic!("complete_sync without an issued sync op");
        };
        self.stats.retired += 1;
        match instr {
            Instr::Sinc { .. } => self.stats.checkins += 1,
            Instr::Sdec { .. } => self.stats.checkouts += 1,
            _ => unreachable!("SyncIssued holds only sync instructions"),
        }
        self.pc = self.pc.wrapping_add(1);
        self.state = if sleep {
            self.sleep_origin = SleepOrigin::Sync;
            CoreState::Sleeping
        } else {
            CoreState::Fetch
        };
    }

    /// Retires a `SINC`/`SDEC` as a one-cycle no-op.
    ///
    /// Used by platform configurations *without* the hardware synchronizer
    /// when they encounter instrumented code: the baseline architecture of
    /// the paper has no synchronization ISE, so the operation degenerates
    /// to a NOP (it still consumes fetch + execute like any instruction).
    pub fn skip_sync_op(&mut self) {
        let CoreState::Execute(instr) = self.state else {
            panic!("skip_sync_op outside execute phase");
        };
        assert!(instr.is_sync(), "not a sync instruction");
        self.cycles += 1;
        self.stats.active_cycles += 1;
        self.stats.retired += 1;
        self.pc = self.pc.wrapping_add(1);
        self.state = CoreState::Fetch;
    }

    // ---- sleep ------------------------------------------------------------

    /// Records a cycle spent asleep (externally clock-gated).
    pub fn note_sleep(&mut self) {
        debug_assert!(matches!(self.state, CoreState::Sleeping));
        self.cycles += 1;
        self.stats.sleep_cycles += 1;
    }

    /// Wake-up event. Returns `true` if the core actually woke: a sync
    /// sleep (`SDEC`) only honours the synchronizer; an instruction sleep
    /// honours the synchronizer or an interrupt. Edge event — no cycle.
    pub fn wake(&mut self, reason: WakeReason) -> bool {
        if !matches!(self.state, CoreState::Sleeping) {
            return false;
        }
        let honoured = match self.sleep_origin {
            SleepOrigin::Sync => reason == WakeReason::Synchronizer,
            SleepOrigin::Instruction => true,
        };
        if honoured {
            self.state = CoreState::Fetch;
        }
        honoured
    }

    // ---- checkpointing -----------------------------------------------------

    /// Exports the core's complete mutable state. In-flight instructions
    /// are stored as their encoded words ([`CoreStateSnapshot`]); every
    /// instruction a core can be executing came from a decoded word, so
    /// encoding cannot fail.
    pub fn save(&self) -> CoreSnapshot {
        let enc = |instr: Instr| encode(instr).expect("in-flight instructions re-encode");
        let state = match self.state {
            CoreState::Fetch => CoreStateSnapshot::Fetch,
            CoreState::Execute(instr) => CoreStateSnapshot::Execute(enc(instr)),
            CoreState::Held { instr, data } => CoreStateSnapshot::Held {
                word: enc(instr),
                data,
            },
            CoreState::SyncIssued(instr) => CoreStateSnapshot::SyncIssued(enc(instr)),
            CoreState::Sleeping => CoreStateSnapshot::Sleeping,
            CoreState::Halted => CoreStateSnapshot::Halted,
        };
        CoreSnapshot {
            id: self.id,
            regs: self.regs,
            pc: self.pc,
            flags: self.flags.to_bits(),
            ie: self.ie,
            rsync: self.rsync,
            epc: self.epc,
            eflags: self.eflags.to_bits(),
            irq_pending: self.irq_pending,
            sleep_from_sync: self.sleep_origin == SleepOrigin::Sync,
            state,
            cycles: self.cycles,
            stats: self.stats,
            error: self.error,
        }
    }

    /// Re-applies a snapshot taken by [`Core::save`], adopting every field
    /// including the hardware id. Returns `false` (leaving the core
    /// untouched) when an in-flight instruction word fails to decode —
    /// possible only for a corrupted snapshot.
    pub fn load_snapshot(&mut self, snapshot: &CoreSnapshot) -> bool {
        let state = match snapshot.state {
            CoreStateSnapshot::Fetch => CoreState::Fetch,
            CoreStateSnapshot::Execute(word) => match decode(word) {
                Ok(instr) => CoreState::Execute(instr),
                Err(_) => return false,
            },
            CoreStateSnapshot::Held { word, data } => match decode(word) {
                Ok(instr) => CoreState::Held { instr, data },
                Err(_) => return false,
            },
            CoreStateSnapshot::SyncIssued(word) => match decode(word) {
                Ok(instr) => CoreState::SyncIssued(instr),
                Err(_) => return false,
            },
            CoreStateSnapshot::Sleeping => CoreState::Sleeping,
            CoreStateSnapshot::Halted => CoreState::Halted,
        };
        self.id = snapshot.id;
        self.regs = snapshot.regs;
        self.pc = snapshot.pc;
        self.flags = Flags::from_bits(snapshot.flags);
        self.ie = snapshot.ie;
        self.rsync = snapshot.rsync;
        self.epc = snapshot.epc;
        self.eflags = Flags::from_bits(snapshot.eflags);
        self.irq_pending = snapshot.irq_pending;
        self.sleep_origin = if snapshot.sleep_from_sync {
            SleepOrigin::Sync
        } else {
            SleepOrigin::Instruction
        };
        self.state = state;
        self.cycles = snapshot.cycles;
        self.stats = snapshot.stats;
        self.error = snapshot.error;
        true
    }

    // ---- instruction semantics ---------------------------------------------

    fn apply(&mut self, instr: Instr, read: Option<u16>) {
        self.stats.retired += 1;
        if instr.is_useful_op() {
            self.stats.useful_ops += 1;
        }
        let next_pc = self.pc.wrapping_add(1);
        match instr {
            Instr::Nop => {
                self.pc = next_pc;
                self.state = CoreState::Fetch;
            }
            Instr::Alu { op, rd, rs } => {
                let a = self.regs[rd.index()];
                let b = self.regs[rs.index()];
                let r = alu_exec(op, a, b, self.flags);
                self.flags = r.flags;
                if op != AluOp::Cmp {
                    self.regs[rd.index()] = r.value;
                }
                self.pc = next_pc;
                self.state = CoreState::Fetch;
            }
            Instr::AddI { rd, imm } => {
                let r = alu_exec(
                    AluOp::Add,
                    self.regs[rd.index()],
                    imm as i16 as u16,
                    self.flags,
                );
                self.flags = r.flags;
                self.regs[rd.index()] = r.value;
                self.pc = next_pc;
                self.state = CoreState::Fetch;
            }
            Instr::CmpI { rd, imm } => {
                let r = alu_exec(
                    AluOp::Cmp,
                    self.regs[rd.index()],
                    imm as i16 as u16,
                    self.flags,
                );
                self.flags = r.flags;
                self.pc = next_pc;
                self.state = CoreState::Fetch;
            }
            Instr::MovI { rd, imm } => {
                self.regs[rd.index()] = imm as u16;
                self.pc = next_pc;
                self.state = CoreState::Fetch;
            }
            Instr::MovHi { rd, imm } => {
                self.regs[rd.index()] = (imm as u16) << 8 | (self.regs[rd.index()] & 0x00FF);
                self.pc = next_pc;
                self.state = CoreState::Fetch;
            }
            Instr::Shift { kind, rd, amount } => {
                let r = shift_exec(kind, self.regs[rd.index()], amount, self.flags);
                self.flags = r.flags;
                self.regs[rd.index()] = r.value;
                self.pc = next_pc;
                self.state = CoreState::Fetch;
            }
            Instr::Unary { op, rd } => {
                let r = unary_exec(op, self.regs[rd.index()], self.flags);
                self.flags = r.flags;
                self.regs[rd.index()] = r.value;
                self.pc = next_pc;
                self.state = CoreState::Fetch;
            }
            Instr::Ld { rd, .. } => {
                self.regs[rd.index()] = read.expect("load completed without data");
                self.stats.dm_reads += 1;
                self.pc = next_pc;
                self.state = CoreState::Fetch;
            }
            Instr::St { .. } => {
                self.stats.dm_writes += 1;
                self.pc = next_pc;
                self.state = CoreState::Fetch;
            }
            Instr::LdP { rd, base } => {
                let data = read.expect("load completed without data");
                self.regs[base.index()] = self.regs[base.index()].wrapping_add(1);
                // Destination write wins when rd == base.
                self.regs[rd.index()] = data;
                self.stats.dm_reads += 1;
                self.pc = next_pc;
                self.state = CoreState::Fetch;
            }
            Instr::StP { base, .. } => {
                self.regs[base.index()] = self.regs[base.index()].wrapping_add(1);
                self.stats.dm_writes += 1;
                self.pc = next_pc;
                self.state = CoreState::Fetch;
            }
            Instr::Branch { cond, offset } => {
                if cond.eval(self.flags) {
                    self.pc = next_pc.wrapping_add(offset as u16);
                    self.stats.branches_taken += 1;
                } else {
                    self.pc = next_pc;
                    self.stats.branches_not_taken += 1;
                }
                self.state = CoreState::Fetch;
            }
            Instr::Jal { offset } => {
                self.regs[Reg::LR.index()] = next_pc;
                self.pc = next_pc.wrapping_add(offset as u16);
                self.state = CoreState::Fetch;
            }
            Instr::Jr { rs } => {
                self.pc = self.regs[rs.index()];
                self.state = CoreState::Fetch;
            }
            Instr::Jalr { rs } => {
                let target = self.regs[rs.index()];
                self.regs[Reg::LR.index()] = next_pc;
                self.pc = target;
                self.state = CoreState::Fetch;
            }
            Instr::Sleep => {
                self.sleep_origin = SleepOrigin::Instruction;
                self.pc = next_pc;
                self.state = CoreState::Sleeping;
            }
            Instr::Halt => {
                self.state = CoreState::Halted;
            }
            Instr::Csr { op, rd } => {
                match op {
                    CsrOp::RdId => self.regs[rd.index()] = self.id as u16,
                    CsrOp::RdSr => {
                        self.regs[rd.index()] = self.flags.to_bits() | (self.ie as u16) << 4
                    }
                    CsrOp::WrSr => {
                        let v = self.regs[rd.index()];
                        self.flags = Flags::from_bits(v);
                        self.ie = v & 0x10 != 0;
                    }
                    CsrOp::RdSync => self.regs[rd.index()] = self.rsync,
                    CsrOp::WrSync => self.rsync = self.regs[rd.index()],
                    CsrOp::Ei => self.ie = true,
                    CsrOp::Di => self.ie = false,
                    CsrOp::Iret => {
                        self.flags = self.eflags;
                        self.ie = true;
                        self.pc = self.epc;
                        self.state = CoreState::Fetch;
                        return;
                    }
                    CsrOp::RdCyc => self.regs[rd.index()] = self.cycles as u16,
                }
                self.pc = next_pc;
                self.state = CoreState::Fetch;
            }
            Instr::Sinc { .. } | Instr::Sdec { .. } => {
                unreachable!("sync instructions complete via complete_sync")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_isa::encode;

    fn exec_one(core: &mut Core, instr: Instr, read: Option<u16>) {
        core.on_fetch_granted(encode(instr).unwrap()).unwrap();
        match core.state() {
            CoreState::Execute(_) => core.complete_execute(read),
            other => panic!("unexpected state {other:?}"),
        }
    }

    #[test]
    fn reset_state() {
        let core = Core::new(3);
        assert_eq!(core.pc(), arch::RESET_VECTOR);
        assert_eq!(core.state(), CoreState::Fetch);
        assert_eq!(core.id(), 3);
        assert_eq!(core.fetch_request(), Some(arch::RESET_VECTOR));
    }

    #[test]
    fn two_phase_timing() {
        let mut core = Core::new(0);
        exec_one(&mut core, Instr::Nop, None);
        assert_eq!(core.cycles(), 2, "fetch + execute");
        assert_eq!(core.pc(), 1);
        assert_eq!(core.stats().retired, 1);
        assert_eq!(core.stats().useful_ops, 0, "NOP is not useful work");
    }

    #[test]
    fn alu_writeback_and_flags() {
        let mut core = Core::new(0);
        core.set_reg(Reg::R1, 7);
        core.set_reg(Reg::R2, 7);
        exec_one(
            &mut core,
            Instr::Alu {
                op: AluOp::Sub,
                rd: Reg::R1,
                rs: Reg::R2,
            },
            None,
        );
        assert_eq!(core.reg(Reg::R1), 0);
        assert!(core.flags().z);
        assert_eq!(core.stats().useful_ops, 1);
    }

    #[test]
    fn cmp_does_not_write_back() {
        let mut core = Core::new(0);
        core.set_reg(Reg::R1, 9);
        exec_one(
            &mut core,
            Instr::Alu {
                op: AluOp::Cmp,
                rd: Reg::R1,
                rs: Reg::R0,
            },
            None,
        );
        assert_eq!(core.reg(Reg::R1), 9);
        assert!(!core.flags().z);
    }

    #[test]
    fn load_store_requests() {
        let mut core = Core::new(0);
        core.set_reg(Reg::R2, 100);
        core.set_reg(Reg::R3, 0xBEEF);
        core.on_fetch_granted(
            encode(Instr::St {
                rs: Reg::R3,
                base: Reg::R2,
                offset: -2,
            })
            .unwrap(),
        )
        .unwrap();
        assert_eq!(
            core.mem_request(),
            Some(MemRequest {
                addr: 98,
                access: MemAccess::Write(0xBEEF)
            })
        );
        core.complete_execute(None);
        assert_eq!(core.stats().dm_writes, 1);

        core.on_fetch_granted(
            encode(Instr::Ld {
                rd: Reg::R4,
                base: Reg::R2,
                offset: 1,
            })
            .unwrap(),
        )
        .unwrap();
        assert_eq!(
            core.mem_request(),
            Some(MemRequest {
                addr: 101,
                access: MemAccess::Read
            })
        );
        core.complete_execute(Some(0x1234));
        assert_eq!(core.reg(Reg::R4), 0x1234);
        assert_eq!(core.stats().dm_reads, 1);
    }

    #[test]
    fn post_increment() {
        let mut core = Core::new(0);
        core.set_reg(Reg::R2, 50);
        exec_one(
            &mut core,
            Instr::LdP {
                rd: Reg::R1,
                base: Reg::R2,
            },
            Some(7),
        );
        assert_eq!(core.reg(Reg::R1), 7);
        assert_eq!(core.reg(Reg::R2), 51);

        // rd == base: the loaded value wins.
        core.set_reg(Reg::R5, 60);
        exec_one(
            &mut core,
            Instr::LdP {
                rd: Reg::R5,
                base: Reg::R5,
            },
            Some(1000),
        );
        assert_eq!(core.reg(Reg::R5), 1000);
    }

    #[test]
    fn branches_and_jumps() {
        let mut core = Core::new(0);
        // Not taken: Z is clear.
        exec_one(
            &mut core,
            Instr::Branch {
                cond: ulp_isa::Cond::Eq,
                offset: 10,
            },
            None,
        );
        assert_eq!(core.pc(), 1);
        assert_eq!(core.stats().branches_not_taken, 1);

        // Taken: unconditional.
        exec_one(
            &mut core,
            Instr::Branch {
                cond: ulp_isa::Cond::Al,
                offset: 10,
            },
            None,
        );
        assert_eq!(core.pc(), 12);
        assert_eq!(core.stats().branches_taken, 1);

        // JAL links and jumps.
        exec_one(&mut core, Instr::Jal { offset: -5 }, None);
        assert_eq!(core.reg(Reg::LR), 13);
        assert_eq!(core.pc(), 8);

        // JR returns.
        core.set_reg(Reg::R7, 13);
        exec_one(&mut core, Instr::Jr { rs: Reg::R7 }, None);
        assert_eq!(core.pc(), 13);

        // JALR with rs == lr uses the old value as the target.
        core.set_reg(Reg::R7, 40);
        exec_one(&mut core, Instr::Jalr { rs: Reg::R7 }, None);
        assert_eq!(core.pc(), 40);
        assert_eq!(core.reg(Reg::R7), 14);
    }

    #[test]
    fn sync_request_and_lifecycle() {
        let mut core = Core::new(2);
        core.set_reg(Reg::R1, 0x4800);
        exec_one(
            &mut core,
            Instr::Csr {
                op: CsrOp::WrSync,
                rd: Reg::R1,
            },
            None,
        );
        assert_eq!(core.rsync(), 0x4800);

        core.on_fetch_granted(encode(Instr::Sinc { index: 3 }).unwrap())
            .unwrap();
        let req = core.sync_request().unwrap();
        assert_eq!(req.word_addr, 0x4803);
        assert_eq!(req.kind, SyncKind::CheckIn);
        assert_eq!(core.mem_request(), None, "sync ops bypass the D-Xbar");

        core.on_sync_accepted();
        core.note_sync_active();
        core.complete_sync(false);
        assert_eq!(core.stats().checkins, 1);
        assert_eq!(core.state(), CoreState::Fetch);
        // fetch(1) + accept(1) + active(1) = 3 cycles for a check-in.
        assert_eq!(core.cycles(), 3 + 2, "includes the WRSYNC instruction");

        // Check-out that must sleep.
        core.on_fetch_granted(encode(Instr::Sdec { index: 3 }).unwrap())
            .unwrap();
        assert_eq!(core.sync_request().unwrap().kind, SyncKind::CheckOut);
        core.on_sync_accepted();
        core.note_sync_active();
        core.complete_sync(true);
        assert!(core.is_sleeping());
        // A sync sleep ignores interrupts...
        assert!(!core.wake(WakeReason::Interrupt));
        assert!(core.is_sleeping());
        // ...but honours the synchronizer.
        assert!(core.wake(WakeReason::Synchronizer));
        assert_eq!(core.state(), CoreState::Fetch);
        assert_eq!(core.stats().checkouts, 1);
    }

    #[test]
    fn held_core_applies_latched_data_on_release() {
        let mut core = Core::new(0);
        core.set_reg(Reg::R2, 10);
        core.on_fetch_granted(
            encode(Instr::Ld {
                rd: Reg::R1,
                base: Reg::R2,
                offset: 0,
            })
            .unwrap(),
        )
        .unwrap();
        core.hold_with_data(Some(55));
        core.note_hold();
        core.note_hold();
        assert_eq!(core.reg(Reg::R1), 0, "not yet applied");
        core.release();
        assert_eq!(core.reg(Reg::R1), 55);
        assert_eq!(core.stats().hold_cycles, 2);
        assert_eq!(core.state(), CoreState::Fetch);
    }

    #[test]
    fn sleep_and_interrupt() {
        let mut core = Core::new(0);
        exec_one(
            &mut core,
            Instr::Csr {
                op: CsrOp::Ei,
                rd: Reg::R0,
            },
            None,
        );
        exec_one(&mut core, Instr::Sleep, None);
        assert!(core.is_sleeping());
        core.note_sleep();

        core.raise_irq();
        assert!(core.poll_interrupt(), "interrupt wakes instruction sleep");
        assert_eq!(core.pc(), arch::IRQ_VECTOR);
        assert_eq!(core.stats().interrupts, 1);

        // IRET returns to the instruction after SLEEP.
        exec_one(
            &mut core,
            Instr::Csr {
                op: CsrOp::Iret,
                rd: Reg::R0,
            },
            None,
        );
        assert_eq!(core.pc(), 2);
    }

    #[test]
    fn interrupt_ignored_when_disabled() {
        let mut core = Core::new(0);
        core.raise_irq();
        assert!(!core.poll_interrupt());
        assert_eq!(core.pc(), arch::RESET_VECTOR);
    }

    #[test]
    fn halt_is_terminal() {
        let mut core = Core::new(0);
        exec_one(&mut core, Instr::Halt, None);
        assert!(core.is_halted());
        assert_eq!(core.fetch_request(), None);
    }

    #[test]
    fn illegal_instruction_halts() {
        let mut core = Core::new(0);
        let err = core.on_fetch_granted(0xF800).unwrap_err();
        assert_eq!(
            err,
            CoreError::IllegalInstruction {
                pc: 0,
                word: 0xF800
            }
        );
        assert!(core.is_halted());
        assert_eq!(core.error(), Some(err));
    }

    #[test]
    fn csr_roundtrip() {
        let mut core = Core::new(5);
        exec_one(
            &mut core,
            Instr::Csr {
                op: CsrOp::RdId,
                rd: Reg::R3,
            },
            None,
        );
        assert_eq!(core.reg(Reg::R3), 5);

        // WRSR/RDSR round-trip flags and IE.
        core.set_reg(Reg::R1, 0b1_0101);
        exec_one(
            &mut core,
            Instr::Csr {
                op: CsrOp::WrSr,
                rd: Reg::R1,
            },
            None,
        );
        assert!(core.flags().z && core.flags().c);
        exec_one(
            &mut core,
            Instr::Csr {
                op: CsrOp::RdSr,
                rd: Reg::R2,
            },
            None,
        );
        assert_eq!(core.reg(Reg::R2), 0b1_0101);
    }

    #[test]
    fn snapshot_round_trip_mid_instruction() {
        let mut core = Core::new(2);
        core.set_reg(Reg::R2, 10);
        core.on_fetch_granted(
            encode(Instr::Ld {
                rd: Reg::R1,
                base: Reg::R2,
                offset: 0,
            })
            .unwrap(),
        )
        .unwrap();
        core.hold_with_data(Some(55));
        core.note_hold();
        let snap = core.save();
        assert_eq!(
            snap.state,
            CoreStateSnapshot::Held {
                word: encode(Instr::Ld {
                    rd: Reg::R1,
                    base: Reg::R2,
                    offset: 0,
                })
                .unwrap(),
                data: Some(55),
            }
        );

        let mut restored = Core::new(0);
        assert!(restored.load_snapshot(&snap));
        assert_eq!(restored.id(), 2, "snapshot carries the hardware id");
        assert_eq!(restored.cycles(), core.cycles());
        assert_eq!(restored.stats(), core.stats());
        // Both cores release identically: the latched load lands.
        restored.release();
        core.release();
        assert_eq!(restored.reg(Reg::R1), 55);
        assert_eq!(restored.save(), core.save());
    }

    #[test]
    fn snapshot_preserves_sleep_origin() {
        let mut core = Core::new(0);
        core.on_fetch_granted(encode(Instr::Sdec { index: 0 }).unwrap())
            .unwrap();
        core.on_sync_accepted();
        core.note_sync_active();
        core.complete_sync(true);
        assert!(core.is_sleeping());
        let snap = core.save();
        assert!(snap.sleep_from_sync);

        let mut restored = Core::new(0);
        assert!(restored.load_snapshot(&snap));
        // A sync sleep still ignores interrupts after restore.
        assert!(!restored.wake(WakeReason::Interrupt));
        assert!(restored.wake(WakeReason::Synchronizer));
    }

    #[test]
    fn snapshot_rejects_corrupted_instruction_word() {
        let mut core = Core::new(0);
        let mut snap = core.save();
        snap.state = CoreStateSnapshot::Execute(0xF800);
        let before = core.save();
        assert!(!core.load_snapshot(&snap));
        assert_eq!(core.save(), before, "failed load leaves state untouched");
    }

    #[test]
    fn rdcyc_tracks_cycles() {
        let mut core = Core::new(0);
        exec_one(&mut core, Instr::Nop, None);
        exec_one(
            &mut core,
            Instr::Csr {
                op: CsrOp::RdCyc,
                rd: Reg::R1,
            },
            None,
        );
        // RDCYC reads the counter *during* its execute cycle (4th cycle).
        assert_eq!(core.reg(Reg::R1), 4);
    }
}

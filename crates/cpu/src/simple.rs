//! A minimal single-core host that grants every request immediately.
//!
//! [`SimpleHost`] runs one [`Core`] against flat instruction and data
//! memories with no banking, no arbitration and no crossbar: every fetch
//! and memory access is granted in its first cycle, and the synchronization
//! ISE is serviced by an inline one-core implementation of the
//! synchronizer's read-modify-write semantics. It exists to execute and
//! test programs at the architectural level; the full multi-core timing
//! model lives in the `ulp-platform` crate.

use crate::core_model::{Core, CoreState};
use crate::types::{CoreError, MemAccess, SyncKind};
use std::fmt;
use ulp_isa::arch;

/// Error terminating a [`SimpleHost`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimpleHostError {
    /// The core halted on a fatal error.
    Core(CoreError),
    /// The cycle budget was exhausted before `HALT`.
    Timeout {
        /// The cycle budget that was exceeded.
        budget: u64,
    },
    /// The core went to sleep with no other core to wake it.
    Deadlock {
        /// Cycle at which the core slept.
        cycle: u64,
    },
}

impl fmt::Display for SimpleHostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimpleHostError::Core(e) => write!(f, "{e}"),
            SimpleHostError::Timeout { budget } => {
                write!(f, "core did not halt within {budget} cycles")
            }
            SimpleHostError::Deadlock { cycle } => {
                write!(f, "core slept with nothing to wake it at cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for SimpleHostError {}

impl From<CoreError> for SimpleHostError {
    fn from(e: CoreError) -> Self {
        SimpleHostError::Core(e)
    }
}

/// Single-core execution harness with ideal (conflict-free) memories.
#[derive(Debug, Clone)]
pub struct SimpleHost {
    core: Core,
    imem: Vec<u16>,
    dmem: Vec<u16>,
    /// Remaining cycles of the in-flight 2-cycle sync operation.
    sync_busy: u8,
    cycle: u64,
}

impl SimpleHost {
    /// Creates a host with the given program image at address 0 and a
    /// zeroed data memory of the architectural size.
    pub fn new(program: &[u16]) -> SimpleHost {
        let mut imem = vec![0u16; arch::IM_WORDS];
        imem[..program.len()].copy_from_slice(program);
        SimpleHost {
            core: Core::new(0),
            imem,
            dmem: vec![0u16; arch::DM_WORDS],
            sync_busy: 0,
            cycle: 0,
        }
    }

    /// The core under test.
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Mutable access to the core (for loaders and tests).
    pub fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    /// Reads a data-memory word.
    pub fn dm(&self, addr: u16) -> u16 {
        self.dmem[addr as usize % arch::DM_WORDS]
    }

    /// Writes a data-memory word.
    pub fn set_dm(&mut self, addr: u16, value: u16) {
        self.dmem[addr as usize % arch::DM_WORDS] = value;
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances the simulation by one cycle.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] if the core fetches an illegal instruction.
    pub fn step(&mut self) -> Result<(), CoreError> {
        self.cycle += 1;
        self.core.poll_interrupt();
        match self.core.state() {
            CoreState::Halted => {}
            CoreState::Sleeping => self.core.note_sleep(),
            CoreState::Fetch => {
                let pc = self.core.fetch_request().expect("fetching");
                let word = self.imem[pc as usize % arch::IM_WORDS];
                self.core.on_fetch_granted(word)?;
            }
            CoreState::SyncIssued(_) => {
                self.core.note_sync_active();
                self.sync_busy -= 1;
                if self.sync_busy == 0 {
                    self.finish_sync();
                }
            }
            CoreState::Execute(_) => {
                if let Some(req) = self.core.sync_request() {
                    // Single-core synchronizer: accept immediately; the
                    // two-cycle RMW is modelled by `sync_busy`.
                    let _ = req;
                    self.core.on_sync_accepted();
                    self.sync_busy = 1;
                } else if let Some(req) = self.core.mem_request() {
                    let addr = req.addr as usize % arch::DM_WORDS;
                    match req.access {
                        MemAccess::Read => {
                            let data = self.dmem[addr];
                            self.core.complete_execute(Some(data));
                        }
                        MemAccess::Write(value) => {
                            self.dmem[addr] = value;
                            self.core.complete_execute(None);
                        }
                    }
                } else {
                    self.core.complete_execute(None);
                }
            }
            CoreState::Held { .. } => unreachable!("SimpleHost never holds cores"),
        }
        Ok(())
    }

    /// Applies the synchronizer's word update for the completed operation.
    fn finish_sync(&mut self) {
        let CoreState::SyncIssued(instr) = self.core.state() else {
            unreachable!()
        };
        let (index, kind) = match instr {
            ulp_isa::Instr::Sinc { index } => (index, SyncKind::CheckIn),
            ulp_isa::Instr::Sdec { index } => (index, SyncKind::CheckOut),
            _ => unreachable!(),
        };
        let addr = (self.core.rsync().wrapping_add(index as u16)) as usize % arch::DM_WORDS;
        let word = self.dmem[addr];
        let flags = word & 0x00FF;
        let counter = word >> 8;
        match kind {
            SyncKind::CheckIn => {
                self.dmem[addr] = (counter + 1) << 8 | flags | 1 << self.core.id();
                self.core.complete_sync(false);
            }
            SyncKind::CheckOut => {
                let counter = counter.saturating_sub(1);
                if counter == 0 {
                    // Barrier released: word cleared, no sleep.
                    self.dmem[addr] = 0;
                    self.core.complete_sync(false);
                } else {
                    self.dmem[addr] = counter << 8 | flags;
                    self.core.complete_sync(true);
                }
            }
        }
    }

    /// Runs until `HALT` or the cycle budget expires.
    ///
    /// # Errors
    ///
    /// [`SimpleHostError::Core`] on an illegal instruction,
    /// [`SimpleHostError::Deadlock`] if the core sleeps with nothing to wake
    /// it, [`SimpleHostError::Timeout`] if the budget runs out.
    pub fn run(&mut self, max_cycles: u64) -> Result<(), SimpleHostError> {
        let budget = max_cycles;
        while self.cycle < budget {
            self.step()?;
            if self.core.is_halted() {
                return Ok(());
            }
            if self.core.is_sleeping() && !self.pending_wake_possible() {
                return Err(SimpleHostError::Deadlock { cycle: self.cycle });
            }
        }
        Err(SimpleHostError::Timeout { budget })
    }

    /// With a single core, only a pending interrupt can end a sleep.
    fn pending_wake_possible(&self) -> bool {
        false
    }

    /// Raises the external interrupt line of the core.
    pub fn raise_irq(&mut self) {
        self.core.raise_irq();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_isa::asm::assemble;
    use ulp_isa::Reg;

    fn host(src: &str) -> SimpleHost {
        let p = assemble(src).unwrap_or_else(|e| panic!("asm: {e}"));
        let len = p.extent();
        SimpleHost::new(&p.to_vec(0, len))
    }

    #[test]
    fn arithmetic_program() {
        let mut h = host(
            "
            movi r1, #21
            mov  r2, r1
            add  r1, r2     ; r1 = 42
            halt",
        );
        h.run(100).unwrap();
        assert_eq!(h.core().reg(Reg::R1), 42);
    }

    #[test]
    fn countdown_loop() {
        let mut h = host(
            "
                movi r0, #100
            loop:
                addi r0, #-1
                bne  loop
                halt",
        );
        h.run(10_000).unwrap();
        assert_eq!(h.core().reg(Reg::R0), 0);
        // 2 cycles per instruction: 1 movi + 100*(addi+bne) + halt.
        assert_eq!(h.core().cycles(), 2 * (1 + 200 + 1));
    }

    #[test]
    fn memory_program() {
        let mut h = host(
            "
            .equ BUF, 0x100
                li   r2, BUF
                movi r1, #7
                stp  r1, [r2]
                stp  r1, [r2]
                li   r2, BUF
                ld   r3, [r2, #1]
                halt",
        );
        h.run(1000).unwrap();
        assert_eq!(h.dm(0x100), 7);
        assert_eq!(h.dm(0x101), 7);
        assert_eq!(h.core().reg(Reg::R3), 7);
    }

    #[test]
    fn subroutine_with_stack() {
        let mut h = host(
            "
                li   sp, 0x7FF
                movi r0, #5
                call double
                halt
            double:
                push r1
                mov  r1, r0
                add  r0, r1
                pop  r1
                ret",
        );
        h.run(1000).unwrap();
        assert_eq!(h.core().reg(Reg::R0), 10);
        assert_eq!(h.core().reg(Reg::R6), 0x7FF, "stack balanced");
    }

    #[test]
    fn single_core_sync_section_does_not_block() {
        // A single core checking in and out must pass straight through
        // (counter reaches zero at its own check-out).
        let mut h = host(
            "
            .equ SYNC, 0x4800
                li   r1, SYNC
                wrsync r1
                sinc #0
                movi r2, #9
                sdec #0
                halt",
        );
        h.run(1000).unwrap();
        assert_eq!(h.core().reg(Reg::R2), 9);
        assert_eq!(h.dm(0x4800), 0, "sync word cleared after barrier");
        assert_eq!(h.core().stats().checkins, 1);
        assert_eq!(h.core().stats().checkouts, 1);
    }

    #[test]
    fn sync_ops_cost_two_execute_cycles() {
        let mut h = host(
            "
                sinc #0
                halt",
        );
        h.run(100).unwrap();
        // sinc: fetch + 2 execute; halt: fetch + 1 execute.
        assert_eq!(h.core().cycles(), 3 + 2);
    }

    #[test]
    fn sleep_then_interrupt_wakes() {
        let mut h = host(
            "
                br   main       ; reset vector
                br   isr        ; irq vector
            main:
                ei
                movi r1, #1
                sleep
                movi r2, #2     ; resumes here after IRET
                halt
            isr:
                movi r3, #3
                iret",
        );
        // Run until the core is asleep.
        for _ in 0..100 {
            h.step().unwrap();
            if h.core().is_sleeping() {
                break;
            }
        }
        assert!(h.core().is_sleeping());
        h.raise_irq();
        h.run(1000).unwrap();
        assert_eq!(h.core().reg(Reg::R1), 1);
        assert_eq!(h.core().reg(Reg::R2), 2);
        assert_eq!(h.core().reg(Reg::R3), 3);
        assert_eq!(h.core().stats().interrupts, 1);
    }

    #[test]
    fn timeout_reported() {
        let mut h = host("loop: br loop");
        let err = h.run(64).unwrap_err();
        assert!(matches!(err, SimpleHostError::Timeout { budget: 64 }));
    }

    #[test]
    fn deadlock_reported() {
        let mut h = host("sleep");
        let err = h.run(100).unwrap_err();
        assert!(matches!(err, SimpleHostError::Deadlock { .. }));
    }

    #[test]
    fn illegal_instruction_reported() {
        let mut h = SimpleHost::new(&[0xF800]);
        let err = h.run(10).unwrap_err();
        assert!(matches!(err, SimpleHostError::Core(_)));
        assert_eq!(err.to_string(), "illegal instruction 0xf800 at pc 0x0000");
    }

    #[test]
    fn fibonacci() {
        let mut h = host(
            "
                movi r0, #10    ; n
                clr  r1         ; fib(0)
                movi r2, #1     ; fib(1)
            loop:
                mov  r3, r2
                add  r2, r1
                mov  r1, r3
                addi r0, #-1
                bne  loop
                halt",
        );
        h.run(10_000).unwrap();
        assert_eq!(h.core().reg(Reg::R1), 55, "fib(10)");
    }
}

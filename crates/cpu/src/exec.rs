//! Pure architectural semantics of the ULP16 ALU, shifter and unary unit.
//!
//! These functions are free of micro-architectural state so they can serve
//! both the cycle-level [`crate::Core`] and any golden-model test.

use ulp_isa::{AluOp, Flags, ShiftKind, UnaryOp};

/// Result of a flag-setting data-path operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluResult {
    /// The 16-bit result (for `CMP`/`CMPI` this is discarded by the core).
    pub value: u16,
    /// The updated status flags.
    pub flags: Flags,
}

fn add_with_carry(a: u16, b: u16, carry_in: bool) -> AluResult {
    let wide = a as u32 + b as u32 + carry_in as u32;
    let value = wide as u16;
    let sa = a & 0x8000 != 0;
    let sb = b & 0x8000 != 0;
    let sr = value & 0x8000 != 0;
    AluResult {
        value,
        flags: Flags {
            z: value == 0,
            n: sr,
            c: wide > 0xFFFF,
            v: sa == sb && sr != sa,
        },
    }
}

/// Subtraction is implemented as `a + !b + carry_in`; with `carry_in = true`
/// this computes `a - b` and the carry flag becomes *not-borrow*.
fn sub_with_borrow(a: u16, b: u16, carry_in: bool) -> AluResult {
    add_with_carry(a, !b, carry_in)
}

fn logic_flags(value: u16, flags: Flags) -> AluResult {
    AluResult {
        value,
        flags: Flags {
            z: value == 0,
            n: value & 0x8000 != 0,
            ..flags
        },
    }
}

/// Executes a two-operand ALU operation: `a` is the destination operand
/// (`rd`), `b` the source (`rs` or a sign-extended immediate).
///
/// Flag behaviour follows the ISA reference:
/// * `ADD/SUB/ADC/SBC/CMP` set Z N C V (carry = not-borrow on subtraction);
/// * `AND/OR/XOR/MUL/MULH` set Z N only;
/// * `MOV` leaves the flags unchanged.
///
/// # Example
///
/// ```
/// use ulp_cpu::alu_exec;
/// use ulp_isa::{AluOp, Flags};
///
/// let r = alu_exec(AluOp::Sub, 5, 7, Flags::default());
/// assert_eq!(r.value, (-2i16) as u16);
/// assert!(r.flags.n && !r.flags.c); // negative, borrow occurred
/// ```
pub fn alu_exec(op: AluOp, a: u16, b: u16, flags: Flags) -> AluResult {
    match op {
        AluOp::Add => add_with_carry(a, b, false),
        AluOp::Sub | AluOp::Cmp => sub_with_borrow(a, b, true),
        AluOp::Adc => add_with_carry(a, b, flags.c),
        AluOp::Sbc => sub_with_borrow(a, b, flags.c),
        AluOp::And => logic_flags(a & b, flags),
        AluOp::Or => logic_flags(a | b, flags),
        AluOp::Xor => logic_flags(a ^ b, flags),
        AluOp::Mov => AluResult { value: b, flags },
        AluOp::Mul => logic_flags(a.wrapping_mul(b), flags),
        AluOp::Mulh => {
            let wide = (a as i16 as i32) * (b as i16 as i32);
            logic_flags((wide >> 16) as u16, flags)
        }
    }
}

/// Executes a shift/rotate by a constant amount `0..=15`.
///
/// For a non-zero amount the carry receives the last bit shifted (or
/// rotated) out; a zero amount only refreshes Z and N.
pub fn shift_exec(kind: ShiftKind, a: u16, amount: u8, flags: Flags) -> AluResult {
    let n = (amount & 0xF) as u32;
    if n == 0 {
        return logic_flags(a, flags);
    }
    let (value, carry_out) = match kind {
        ShiftKind::Shl => (a << n, a & (1 << (16 - n)) != 0),
        ShiftKind::Shr => (a >> n, a & (1 << (n - 1)) != 0),
        ShiftKind::Asr => (((a as i16) >> n) as u16, a & (1 << (n - 1)) != 0),
        ShiftKind::Ror => (a.rotate_right(n), a & (1 << (n - 1)) != 0),
    };
    AluResult {
        value,
        flags: Flags {
            z: value == 0,
            n: value & 0x8000 != 0,
            c: carry_out,
            ..flags
        },
    }
}

/// Executes a unary operation.
///
/// `NEG` behaves like a subtraction from zero (full Z N C V); `ABS` sets V
/// when the operand is `-32768`, whose magnitude is unrepresentable.
pub fn unary_exec(op: UnaryOp, a: u16, flags: Flags) -> AluResult {
    match op {
        UnaryOp::Not => logic_flags(!a, flags),
        UnaryOp::Neg => sub_with_borrow(0, a, true),
        UnaryOp::Sxtb => logic_flags((a as u8 as i8) as i16 as u16, flags),
        UnaryOp::Zxtb => logic_flags(a & 0x00FF, flags),
        UnaryOp::Swpb => logic_flags(a.rotate_right(8), flags),
        UnaryOp::Abs => {
            let signed = a as i16;
            let value = signed.wrapping_abs() as u16;
            AluResult {
                value,
                flags: Flags {
                    z: value == 0,
                    n: value & 0x8000 != 0,
                    v: signed == i16::MIN,
                    ..flags
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F0: Flags = Flags {
        z: false,
        n: false,
        c: false,
        v: false,
    };

    #[test]
    fn add_flags() {
        let r = alu_exec(AluOp::Add, 0xFFFF, 1, F0);
        assert_eq!(r.value, 0);
        assert!(r.flags.z && r.flags.c && !r.flags.v);

        let r = alu_exec(AluOp::Add, 0x7FFF, 1, F0);
        assert_eq!(r.value, 0x8000);
        assert!(r.flags.v && r.flags.n && !r.flags.c);
    }

    #[test]
    fn sub_carry_is_not_borrow() {
        // 5 - 3: no borrow -> C set.
        let r = alu_exec(AluOp::Sub, 5, 3, F0);
        assert_eq!(r.value, 2);
        assert!(r.flags.c);
        // 3 - 5: borrow -> C clear.
        let r = alu_exec(AluOp::Sub, 3, 5, F0);
        assert_eq!(r.value, 0xFFFE);
        assert!(!r.flags.c && r.flags.n);
    }

    #[test]
    fn signed_overflow_on_sub() {
        let r = alu_exec(AluOp::Sub, 0x8000, 1, F0); // -32768 - 1
        assert_eq!(r.value, 0x7FFF);
        assert!(r.flags.v);
    }

    #[test]
    fn adc_sbc_chain_32bit() {
        // 32-bit addition 0x0001_FFFF + 0x0000_0001 = 0x0002_0000.
        let lo = alu_exec(AluOp::Add, 0xFFFF, 0x0001, F0);
        let hi = alu_exec(AluOp::Adc, 0x0001, 0x0000, lo.flags);
        assert_eq!((hi.value, lo.value), (0x0002, 0x0000));

        // 32-bit subtraction 0x0002_0000 - 0x0000_0001 = 0x0001_FFFF.
        let lo = alu_exec(AluOp::Sub, 0x0000, 0x0001, F0);
        let hi = alu_exec(AluOp::Sbc, 0x0002, 0x0000, lo.flags);
        assert_eq!((hi.value, lo.value), (0x0001, 0xFFFF));
    }

    #[test]
    fn mul_and_mulh() {
        assert_eq!(
            alu_exec(AluOp::Mul, 300, 300, F0).value,
            (90000u32 & 0xFFFF) as u16
        );
        // -2 * 3 = -6 -> high word all ones.
        assert_eq!(alu_exec(AluOp::Mulh, (-2i16) as u16, 3, F0).value, 0xFFFF);
        assert_eq!(alu_exec(AluOp::Mulh, 0x4000, 0x0004, F0).value, 0x0001);
    }

    #[test]
    fn mov_preserves_flags() {
        let f = Flags {
            z: true,
            n: true,
            c: true,
            v: true,
        };
        let r = alu_exec(AluOp::Mov, 1, 2, f);
        assert_eq!(r.value, 2);
        assert_eq!(r.flags, f);
    }

    #[test]
    fn logic_preserves_carry() {
        let f = Flags { c: true, ..F0 };
        let r = alu_exec(AluOp::And, 0xF0F0, 0x0FF0, f);
        assert_eq!(r.value, 0x00F0);
        assert!(r.flags.c, "carry must survive logic ops");
    }

    #[test]
    fn shifts() {
        let r = shift_exec(ShiftKind::Shl, 0x8001, 1, F0);
        assert_eq!(r.value, 0x0002);
        assert!(r.flags.c, "msb shifted out");

        let r = shift_exec(ShiftKind::Shr, 0x8001, 1, F0);
        assert_eq!(r.value, 0x4000);
        assert!(r.flags.c, "lsb shifted out");

        let r = shift_exec(ShiftKind::Asr, 0x8000, 3, F0);
        assert_eq!(r.value, 0xF000);

        let r = shift_exec(ShiftKind::Ror, 0x0001, 1, F0);
        assert_eq!(r.value, 0x8000);
        assert!(r.flags.c);

        // Zero amount leaves value and carry untouched.
        let f = Flags { c: true, ..F0 };
        let r = shift_exec(ShiftKind::Shl, 0x1234, 0, f);
        assert_eq!(r.value, 0x1234);
        assert!(r.flags.c);
    }

    #[test]
    fn unaries() {
        assert_eq!(unary_exec(UnaryOp::Not, 0x00FF, F0).value, 0xFF00);
        assert_eq!(unary_exec(UnaryOp::Neg, 5, F0).value, (-5i16) as u16);
        assert_eq!(unary_exec(UnaryOp::Sxtb, 0x0080, F0).value, 0xFF80);
        assert_eq!(unary_exec(UnaryOp::Zxtb, 0xAB12, F0).value, 0x0012);
        assert_eq!(unary_exec(UnaryOp::Swpb, 0xAB12, F0).value, 0x12AB);
        assert_eq!(unary_exec(UnaryOp::Abs, (-7i16) as u16, F0).value, 7);
        let r = unary_exec(UnaryOp::Abs, 0x8000, F0);
        assert_eq!(r.value, 0x8000);
        assert!(r.flags.v);
    }

    #[test]
    fn neg_of_zero_sets_zero_and_carry() {
        let r = unary_exec(UnaryOp::Neg, 0, F0);
        assert_eq!(r.value, 0);
        assert!(r.flags.z);
        assert!(r.flags.c, "0 - 0 has no borrow");
    }
}

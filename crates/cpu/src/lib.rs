//! # ulp-cpu — cycle-level model of the 16-bit ULP RISC core
//!
//! Models one processing core of the multi-core platform of Dogan et al.
//! (DATE 2013): a custom 16-bit RISC with a complete instruction set
//! including interrupt and sleep-mode support (Section III of the paper),
//! extended with the synchronization ISE (`SINC`/`SDEC` and the *lock*
//! output, Section IV-B).
//!
//! ## Timing model
//!
//! The core is non-pipelined and two-phase: every instruction takes one
//! **fetch** cycle (an instruction-memory access that may stall on bank
//! conflicts) followed by at least one **execute** cycle (data-memory
//! instructions stall until the D-Xbar grants; the synchronization ISE
//! occupies the hardware synchronizer for two cycles). Eight cores can
//! therefore retire at most 4.0 instructions per cycle — the ceiling the
//! paper reports for its improved architecture.
//!
//! The core is *passive*: the platform drives it each cycle through the
//! request/grant interface of [`Core`] ([`Core::fetch_request`],
//! [`Core::on_fetch_granted`], [`Core::mem_request`],
//! [`Core::complete_execute`], …). For single-core use and for testing the
//! architectural semantics there is [`SimpleHost`], which grants every
//! request immediately.
//!
//! ## Example
//!
//! ```
//! use ulp_cpu::SimpleHost;
//! use ulp_isa::asm::assemble;
//!
//! let program = assemble("
//!         li   r1, 1000
//!         clr  r0
//!     loop:
//!         addi r0, #1
//!         cmp  r0, r1
//!         bne  loop
//!         halt
//! ").unwrap();
//! let mut host = SimpleHost::new(&program.to_vec(0, 16));
//! host.run(20_000).unwrap();
//! assert_eq!(host.core().reg(ulp_isa::Reg::R0), 1000);
//! ```

mod core_model;
mod exec;
mod simple;
mod stats;
mod types;

pub use core_model::{Core, CoreSnapshot, CoreState, CoreStateSnapshot};
pub use exec::{alu_exec, shift_exec, unary_exec, AluResult};
pub use simple::{SimpleHost, SimpleHostError};
pub use stats::CoreStats;
pub use types::{CoreError, MemAccess, MemRequest, SyncKind, SyncRequest, WakeReason};

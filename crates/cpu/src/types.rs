//! Request and event types exchanged between a core and the platform.

use std::fmt;

/// The direction and payload of a data-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemAccess {
    /// Read one word.
    Read,
    /// Write one word with the given value.
    Write(u16),
}

/// A data-memory request issued by a core during its execute phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRequest {
    /// Word address in data memory.
    pub addr: u16,
    /// Read or write.
    pub access: MemAccess,
}

impl MemRequest {
    /// Returns true for write requests.
    pub fn is_write(&self) -> bool {
        matches!(self.access, MemAccess::Write(_))
    }
}

/// Check-in or check-out, i.e. which of the two ISE instructions issued the
/// synchronization request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// `SINC` — entering a data-dependent code section.
    CheckIn,
    /// `SDEC` — leaving a data-dependent code section; the core sleeps
    /// until every checked-in core has left.
    CheckOut,
}

/// A synchronization request issued by the `SINC`/`SDEC` ISE.
///
/// The request carries the sync-point index and the resolved data-memory
/// address of its sync word (`RSYNC + index`). While the hardware
/// synchronizer performs the two-cycle read-modify-write, the core asserts
/// its **lock output**, which locks that memory word against ordinary
/// accesses (Section IV-B-c of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncRequest {
    /// Sync-point index (the `SINC`/`SDEC` literal).
    pub index: u8,
    /// Absolute word address of the sync word: `RSYNC + index`.
    pub word_addr: u16,
    /// Check-in or check-out.
    pub kind: SyncKind,
}

/// Why a sleeping core was woken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WakeReason {
    /// The hardware synchronizer released the check-out barrier.
    Synchronizer,
    /// An external interrupt arrived (only wakes `SLEEP`, not `SDEC`).
    Interrupt,
}

/// A fatal error that halts a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreError {
    /// The fetched word is not a valid instruction.
    IllegalInstruction {
        /// Address of the offending word.
        pc: u16,
        /// The word itself.
        word: u16,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#06x} at pc {pc:#06x}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_request_kinds() {
        let r = MemRequest {
            addr: 5,
            access: MemAccess::Read,
        };
        assert!(!r.is_write());
        let w = MemRequest {
            addr: 5,
            access: MemAccess::Write(9),
        };
        assert!(w.is_write());
    }

    #[test]
    fn error_display() {
        let e = CoreError::IllegalInstruction {
            pc: 4,
            word: 0xF800,
        };
        assert_eq!(e.to_string(), "illegal instruction 0xf800 at pc 0x0004");
    }
}

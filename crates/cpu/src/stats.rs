//! Per-core activity counters.

/// Event and stall counters accumulated by one core.
///
/// These are the per-core inputs to the platform-level statistics
/// ([`ulp-platform`]'s `SimStats`) from which the power model derives
/// per-component energy. All counts are in core clock cycles or events.
///
/// [`ulp-platform`]: https://docs.rs/ulp-platform
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired (completed execute phase).
    pub retired: u64,
    /// Retired instructions that count as *useful operations* for the
    /// paper's MOps/s workload metric (excludes `NOP`, `SLEEP`, `HALT`,
    /// `SINC`, `SDEC`).
    pub useful_ops: u64,
    /// Cycles spent waiting for an instruction fetch grant beyond the
    /// first fetch cycle (IM bank conflicts; the core is clock-gated).
    pub fetch_stall_cycles: u64,
    /// Cycles spent waiting for a data-memory grant beyond the first
    /// execute cycle (DM bank conflicts; the core is clock-gated).
    pub mem_stall_cycles: u64,
    /// Extra execute cycles of `SINC`/`SDEC` spent in the synchronizer
    /// (each accepted operation takes two cycles) plus queueing delay.
    pub sync_stall_cycles: u64,
    /// Cycles spent asleep (externally clock-gated, Section III).
    pub sleep_cycles: u64,
    /// Cycles in which the core was held by the enhanced D-Xbar serving
    /// policy after being served, waiting for its synchronous group.
    pub hold_cycles: u64,
    /// Active (not gated, not asleep) cycles.
    pub active_cycles: u64,
    /// Instruction fetches issued (granted).
    pub fetches: u64,
    /// Data-memory reads performed (`LD`/`LDP`).
    pub dm_reads: u64,
    /// Data-memory writes performed (`ST`/`STP`).
    pub dm_writes: u64,
    /// `SINC` operations completed.
    pub checkins: u64,
    /// `SDEC` operations completed.
    pub checkouts: u64,
    /// Conditional branches whose condition evaluated true.
    pub branches_taken: u64,
    /// Conditional branches whose condition evaluated false.
    pub branches_not_taken: u64,
    /// Interrupts accepted.
    pub interrupts: u64,
}

impl CoreStats {
    /// Total cycles attributed to this core (active + gated + asleep).
    pub fn total_cycles(&self) -> u64 {
        self.active_cycles
            + self.fetch_stall_cycles
            + self.mem_stall_cycles
            + self.sync_stall_cycles
            + self.hold_cycles
            + self.sleep_cycles
    }

    /// Total data-memory accesses (reads + writes), excluding the
    /// synchronizer's accesses to sync words, which the platform counts
    /// separately.
    pub fn dm_accesses(&self) -> u64 {
        self.dm_reads + self.dm_writes
    }

    /// Merges another core's counters into this one (used for aggregates).
    pub fn merge(&mut self, other: &CoreStats) {
        self.retired += other.retired;
        self.useful_ops += other.useful_ops;
        self.fetch_stall_cycles += other.fetch_stall_cycles;
        self.mem_stall_cycles += other.mem_stall_cycles;
        self.sync_stall_cycles += other.sync_stall_cycles;
        self.sleep_cycles += other.sleep_cycles;
        self.hold_cycles += other.hold_cycles;
        self.active_cycles += other.active_cycles;
        self.fetches += other.fetches;
        self.dm_reads += other.dm_reads;
        self.dm_writes += other.dm_writes;
        self.checkins += other.checkins;
        self.checkouts += other.checkouts;
        self.branches_taken += other.branches_taken;
        self.branches_not_taken += other.branches_not_taken;
        self.interrupts += other.interrupts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let a = CoreStats {
            active_cycles: 10,
            sleep_cycles: 5,
            fetch_stall_cycles: 2,
            dm_reads: 3,
            dm_writes: 1,
            ..Default::default()
        };
        assert_eq!(a.total_cycles(), 17);
        assert_eq!(a.dm_accesses(), 4);

        let mut b = a;
        b.merge(&a);
        assert_eq!(b.total_cycles(), 34);
        assert_eq!(b.dm_accesses(), 8);
    }
}

//! # ulp-jit — the compiled hot-block execution tier
//!
//! The cycle engine in `ulp_platform` is a pure interpreter: every core
//! cycle re-derives its instruction by fetching a word through the I-Xbar
//! and decoding it. This crate adds a *translation tier* on top: basic
//! blocks whose entry PC gets hot are decoded **once** into straight-line
//! traces of pre-resolved micro-ops ([`ulp_isa::MicroOp`]), and the engine
//! then replays the trace without per-instruction fetch-request
//! construction or decode.
//!
//! ## Fidelity
//!
//! The tier is an execution strategy, not a different machine. A trace
//! ends at every *fidelity boundary*:
//!
//! * synchronization instructions (`SINC`/`SDEC`), `SLEEP` and `HALT`
//!   ([`ulp_isa::OpClass::Boundary`]) — translation stops *before* them;
//! * control flow out of the block ([`ulp_isa::OpClass::Control`]) — the
//!   terminator itself is trace-executable, but the successor block is
//!   resolved at run time;
//! * any cycle whose data-memory request set could conflict in the D-Xbar
//!   or touch a synchronizer-locked word — detected at execution time,
//!   the whole cycle is handed back to the interpreter;
//! * any cycle where an observer hook fires — runs with observers
//!   attached never enter the compiled loop at all.
//!
//! Within those rules the engine replays the *exact* interpreter cycle —
//! same crossbar arbitration, same rotating-priority updates, same
//! counters — so `SimStats`, `MemStats`, lockstep width and energy
//! accounting stay bit-identical to an interpreted run.
//!
//! ## Cache lifetime
//!
//! A [`TranslationCache`] lives on the platform and **survives
//! `Platform::reset`**: the service layer resets and reloads cached
//! platforms between jobs, and reloading the same kernel must hit the
//! existing traces instead of re-translating. Validity is keyed on a
//! fingerprint of instruction memory (cores cannot write IM; only the
//! loader backdoors can), recomputed lazily when the platform marks the
//! IM dirty. Per-run counters ([`JitStats`]) are cleared on reset; the
//! traces and hotness counters are not.

use ulp_isa::{decode, MicroOp, OpClass};
use ulp_mem::BankedMemory;

/// Which execution strategy a platform uses for `run`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExecTier {
    /// The cycle-accurate interpreter (the default).
    #[default]
    Interpreted,
    /// Hot basic blocks execute as pre-decoded threaded-dispatch traces;
    /// every fidelity boundary falls back to the interpreter. Results are
    /// bit-identical to [`ExecTier::Interpreted`].
    Compiled,
}

impl std::fmt::Display for ExecTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecTier::Interpreted => write!(f, "interpreted"),
            ExecTier::Compiled => write!(f, "compiled"),
        }
    }
}

impl std::str::FromStr for ExecTier {
    type Err = String;

    fn from_str(s: &str) -> Result<ExecTier, String> {
        match s {
            "interpreted" => Ok(ExecTier::Interpreted),
            "compiled" => Ok(ExecTier::Compiled),
            other => Err(format!(
                "unknown exec tier {other:?} (expected \"interpreted\" or \"compiled\")"
            )),
        }
    }
}

/// Per-run counters of the translation tier, reported in `SimStats`.
///
/// All zero for interpreted runs. For compiled runs,
/// `compiled_cycles + fallback_cycles` equals the run's total cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JitStats {
    /// Basic blocks translated during this run.
    pub translations: u64,
    /// Trace entries served from the cache (a hot block dispatched
    /// without re-translation).
    pub hits: u64,
    /// Cycles executed by the compiled tier.
    pub compiled_cycles: u64,
    /// Cycles handed back to the interpreter (cold code, fidelity
    /// boundaries, possible DM conflicts, observer-attached cycles).
    pub fallback_cycles: u64,
}

impl JitStats {
    /// Adds another run's counters into this one (multi-run aggregates,
    /// e.g. summing shard statistics). Kept next to the fields so a new
    /// counter cannot be forgotten here.
    pub fn merge(&mut self, other: &JitStats) {
        self.translations += other.translations;
        self.hits += other.hits;
        self.compiled_cycles += other.compiled_cycles;
        self.fallback_cycles += other.fallback_cycles;
    }

    /// Fraction of cycles executed by the compiled tier (0.0 for
    /// interpreted runs).
    pub fn compiled_fraction(&self) -> f64 {
        let total = self.compiled_cycles + self.fallback_cycles;
        if total == 0 {
            return 0.0;
        }
        self.compiled_cycles as f64 / total as f64
    }
}

/// One translated basic block: a straight-line trace of pre-decoded
/// micro-ops starting at `start`, with the IM bank of every fetch resolved
/// at translation time.
#[derive(Debug, Clone)]
pub struct Block {
    /// Entry PC (word address).
    pub start: u16,
    /// The trace. `ops[i]` is the instruction at `start + i`; the last op
    /// is either a [`OpClass::Control`] terminator or the op before a
    /// fidelity boundary / the block-length cap.
    pub ops: Vec<MicroOp>,
    /// `banks[i]` is the IM bank `start + i` maps to, so the compiled
    /// fetch phase never recomputes the bank mapping.
    pub banks: Vec<u16>,
    /// `pure_runs[i]` is the number of consecutive [`OpClass::Pure`]
    /// micro-ops starting at offset `i` — the length of the batch a
    /// uniform-lockstep executor may run from there without touching the
    /// crossbars or the data memory.
    pub pure_runs: Vec<u16>,
}

impl Block {
    /// Number of micro-ops in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty (never true for a cached block).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of consecutive [`OpClass::Pure`] micro-ops starting at
    /// `off` (zero when `off` is out of range or sits on a memory or
    /// control op).
    pub fn pure_run(&self, off: u16) -> usize {
        self.pure_runs.get(off as usize).copied().unwrap_or(0) as usize
    }
}

/// Longest trace a single block may carry. Generous against real basic
/// blocks (the paper kernels' longest straight-line runs are well under
/// this) while bounding translation work per entry.
const MAX_BLOCK_OPS: usize = 64;

/// Sentinel index for "no translation attempted yet at this PC".
const NOT_PRESENT: u32 = u32::MAX;

/// Sentinel index for "translation attempted, nothing trace-executable
/// here" (the entry instruction is a boundary or does not decode).
const UNTRANSLATABLE: u32 = u32::MAX - 1;

/// The per-platform translation cache: PC-indexed hotness counters, the
/// translated blocks, and the per-run counters.
///
/// See the crate docs for the lifetime rules. The cache is keyed by entry
/// PC; overlapping blocks (a block entered mid-way after an interpreter
/// stint) simply get their own entry.
#[derive(Debug, Clone)]
pub struct TranslationCache {
    hot_threshold: u32,
    /// Execution counter per IM word address, advanced every time a core
    /// looks for a trace at that PC; sized to the IM lazily.
    counters: Vec<u32>,
    blocks: Vec<Block>,
    /// Direct-mapped entry PC → block index (one slot per IM word, sized
    /// alongside `counters`): trace dispatch happens once per block entry
    /// per core, so it must be a plain load, not a hash lookup.
    /// [`NOT_PRESENT`] = never attempted, [`UNTRANSLATABLE`] = known-dead.
    index: Vec<u32>,
    /// FNV-1a fingerprint of the IM contents the cached blocks were
    /// translated from.
    fingerprint: u64,
    /// Set when the platform writes IM; the next revalidation re-hashes.
    dirty: bool,
    stats: JitStats,
}

/// Default hotness threshold: a PC must be fetched this many times before
/// its block is translated. Low enough that the paper kernels' per-sample
/// loops compile within the first sample, high enough that one-shot
/// prologue code never pays translation.
pub const DEFAULT_HOT_THRESHOLD: u32 = 8;

impl Default for TranslationCache {
    fn default() -> TranslationCache {
        TranslationCache::new(DEFAULT_HOT_THRESHOLD)
    }
}

impl TranslationCache {
    /// Creates an empty cache with the given hotness threshold
    /// (`0` or `1` = translate on first sight).
    pub fn new(hot_threshold: u32) -> TranslationCache {
        TranslationCache {
            hot_threshold,
            counters: Vec::new(),
            blocks: Vec::new(),
            index: Vec::new(),
            fingerprint: 0,
            dirty: true,
            stats: JitStats::default(),
        }
    }

    /// The configured hotness threshold.
    pub fn hot_threshold(&self) -> u32 {
        self.hot_threshold
    }

    /// Replaces the hotness threshold (applies to not-yet-hot entries).
    pub fn set_hot_threshold(&mut self, threshold: u32) {
        self.hot_threshold = threshold;
    }

    /// This run's counters so far.
    pub fn stats(&self) -> JitStats {
        self.stats
    }

    /// Mutable access to the per-run counters (the engine advances
    /// `compiled_cycles` / `fallback_cycles`).
    pub fn stats_mut(&mut self) -> &mut JitStats {
        &mut self.stats
    }

    /// Number of blocks currently cached.
    pub fn blocks_cached(&self) -> usize {
        self.blocks.len()
    }

    /// Starts a new run: clears the per-run counters but keeps the
    /// translated blocks and hotness counters. Called from
    /// `Platform::reset` — cache survival across resets is the point.
    pub fn begin_run(&mut self) {
        self.stats = JitStats::default();
    }

    /// Marks the instruction memory as possibly changed (loader backdoor
    /// wrote to it); the next [`TranslationCache::revalidate`] re-hashes.
    pub fn mark_im_dirty(&mut self) {
        self.dirty = true;
    }

    /// Revalidates the cache against the current IM contents: if the
    /// fingerprint changed since translation, every block and counter is
    /// dropped. Reloading an identical program keeps all traces hot.
    pub fn revalidate(&mut self, imem: &BankedMemory) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        let fp = fingerprint_im(imem);
        if fp != self.fingerprint {
            self.fingerprint = fp;
            self.blocks.clear();
            self.index.fill(NOT_PRESENT);
            self.counters.fill(0);
        }
    }

    /// Looks for a trace entered at `pc`, advancing the PC's execution
    /// counter. Returns the block index when the entry is hot and
    /// translates to a non-empty trace; `None` while the entry is cold or
    /// known-untranslatable (the interpreter keeps running it).
    pub fn lookup_hot(&mut self, pc: u16, imem: &BankedMemory) -> Option<u32> {
        if self.index.len() != imem.len() {
            self.index.resize(imem.len(), NOT_PRESENT);
            self.counters.resize(imem.len(), 0);
        }
        let word = pc as usize % imem.len();
        match self.index[word] {
            NOT_PRESENT => {}
            UNTRANSLATABLE => return None,
            idx => {
                self.stats.hits += 1;
                return Some(idx);
            }
        }
        let slot = &mut self.counters[word];
        *slot = slot.saturating_add(1);
        if *slot <= self.hot_threshold {
            return None;
        }
        let block = translate(pc, imem);
        let idx = if block.is_empty() {
            UNTRANSLATABLE
        } else {
            self.stats.translations += 1;
            self.blocks.push(block);
            (self.blocks.len() - 1) as u32
        };
        self.index[word] = idx;
        (idx != UNTRANSLATABLE).then_some(idx)
    }

    /// The block behind an index returned by
    /// [`TranslationCache::lookup_hot`].
    pub fn block(&self, idx: u32) -> &Block {
        &self.blocks[idx as usize]
    }

    /// The index of the translated block entered at `pc`, if one is
    /// cached. Unlike [`TranslationCache::lookup_hot`] this is a pure
    /// read: no counter advances and no translation is attempted — it
    /// exists so a checkpoint restore can re-link trace cursors without
    /// perturbing the hotness statistics.
    pub fn block_index_at(&self, pc: u16) -> Option<u32> {
        if self.index.is_empty() {
            return None;
        }
        let idx = self.index[pc as usize % self.index.len()];
        (idx != NOT_PRESENT && idx != UNTRANSLATABLE).then_some(idx)
    }

    /// Captures the cache state for a platform checkpoint. Translated
    /// traces are *not* serialized — they are pure functions of the IM
    /// contents (which the checkpoint carries anyway), so the snapshot
    /// records only which entry PCs were translated and re-derives the
    /// traces on restore.
    pub fn save(&self) -> JitSnapshot {
        let mut counters = Vec::new();
        for (word, &count) in self.counters.iter().enumerate() {
            if count != 0 {
                counters.push((word as u32, count));
            }
        }
        let mut translated = Vec::new();
        let mut untranslatable = Vec::new();
        for (word, &idx) in self.index.iter().enumerate() {
            match idx {
                NOT_PRESENT => {}
                UNTRANSLATABLE => untranslatable.push(word as u16),
                _ => translated.push(word as u16),
            }
        }
        JitSnapshot {
            hot_threshold: self.hot_threshold,
            counters,
            translated,
            untranslatable,
            stats: self.stats,
        }
    }

    /// Rebuilds the cache from a checkpoint against the (already restored)
    /// instruction memory: hotness counters and per-run stats come from the
    /// snapshot, every recorded-hot entry PC is re-translated from `imem`.
    /// Because translation reads through the uncounted backdoor, the
    /// re-translation leaves `MemStats` untouched and the restored platform
    /// stays bit-identical to the original.
    ///
    /// Returns `false` (leaving the cache in a consistent but partially
    /// restored state) if a recorded-translated entry no longer yields a
    /// trace — the snapshot does not match this instruction memory.
    pub fn restore_from(&mut self, snapshot: &JitSnapshot, imem: &BankedMemory) -> bool {
        self.hot_threshold = snapshot.hot_threshold;
        self.index.clear();
        self.index.resize(imem.len(), NOT_PRESENT);
        self.counters.clear();
        self.counters.resize(imem.len(), 0);
        self.blocks.clear();
        self.stats = snapshot.stats;
        self.fingerprint = fingerprint_im(imem);
        self.dirty = false;
        for &(word, count) in &snapshot.counters {
            let Some(slot) = self.counters.get_mut(word as usize) else {
                return false;
            };
            *slot = count;
        }
        for &word in &snapshot.untranslatable {
            let Some(slot) = self.index.get_mut(word as usize) else {
                return false;
            };
            *slot = UNTRANSLATABLE;
        }
        for &word in &snapshot.translated {
            if word as usize >= self.index.len() {
                return false;
            }
            let block = translate(word, imem);
            if block.is_empty() {
                return false;
            }
            self.blocks.push(block);
            self.index[word as usize] = (self.blocks.len() - 1) as u32;
        }
        true
    }
}

/// Plain-data image of a [`TranslationCache`] for platform checkpoints:
/// sparse hotness counters, the set of translated / known-untranslatable
/// entry PCs, and the per-run counters. Traces themselves are re-derived
/// from instruction memory on restore.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JitSnapshot {
    /// The configured hotness threshold at snapshot time.
    pub hot_threshold: u32,
    /// `(im word address, execution count)` for every nonzero counter.
    pub counters: Vec<(u32, u32)>,
    /// Entry PCs (IM word addresses) holding a translated trace.
    pub translated: Vec<u16>,
    /// Entry PCs recorded as known-untranslatable.
    pub untranslatable: Vec<u16>,
    /// The per-run counters at snapshot time.
    pub stats: JitStats,
}

/// Translates the basic block entered at `pc`: decodes forward through
/// the *backdoor* (translation is a simulator artifact and must not count
/// as physical IM accesses) until a control-flow terminator, a fidelity
/// boundary, an undecodable word or the length cap.
fn translate(pc: u16, imem: &BankedMemory) -> Block {
    let mut ops = Vec::new();
    let mut banks = Vec::new();
    let mut addr = pc;
    while ops.len() < MAX_BLOCK_OPS {
        let Ok(instr) = decode(imem.peek(addr)) else {
            // The word faults when actually fetched; leave that cycle —
            // and the fault bookkeeping — to the interpreter.
            break;
        };
        let op = MicroOp::new(instr);
        if op.class == OpClass::Boundary {
            break;
        }
        ops.push(op);
        banks.push(imem.bank_of(addr) as u16);
        if op.class == OpClass::Control {
            break;
        }
        addr = addr.wrapping_add(1);
    }
    let mut pure_runs = vec![0u16; ops.len()];
    let mut run = 0u16;
    for (i, op) in ops.iter().enumerate().rev() {
        run = if op.class == OpClass::Pure {
            run + 1
        } else {
            0
        };
        pure_runs[i] = run;
    }
    Block {
        start: pc,
        ops,
        banks,
        pure_runs,
    }
}

/// FNV-1a over the IM words: cheap (one pass at run start, only when the
/// loader touched IM) and collision-resistant enough for "same program
/// reloaded?".
fn fingerprint_im(imem: &BankedMemory) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for addr in 0..imem.len() {
        let w = imem.peek(addr as u16);
        for byte in w.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_isa::asm::assemble;
    use ulp_mem::BankMapping;

    fn imem_with(src: &str) -> BankedMemory {
        let mut m = BankedMemory::new(1024, 8, BankMapping::Blocked);
        let program = assemble(src).expect("assembles");
        for (addr, word) in program.iter() {
            m.poke(addr, word);
        }
        m
    }

    #[test]
    fn translation_stops_at_boundaries_and_control() {
        let m = imem_with(
            "       addi r0, #1
                    addi r1, #2
                    br   next
            next:   addi r2, #3
                    sinc #0
                    halt",
        );
        // Block at 0: two ADDIs + the BR terminator.
        let b = translate(0, &m);
        assert_eq!(b.len(), 3);
        assert_eq!(b.ops[2].class, OpClass::Control);
        // Block at 3: one ADDI, then stops *before* the SINC boundary.
        let b = translate(3, &m);
        assert_eq!(b.len(), 1);
        assert_eq!(b.ops[0].class, OpClass::Pure);
        // Block at the SINC itself: empty (untranslatable entry).
        assert!(translate(4, &m).is_empty());
    }

    #[test]
    fn cache_translates_only_past_the_threshold_and_then_hits() {
        let m = imem_with("loop: addi r0, #1\n br loop");
        let mut cache = TranslationCache::new(3);
        cache.revalidate(&m);
        for _ in 0..3 {
            assert!(cache.lookup_hot(0, &m).is_none(), "still cold");
        }
        let idx = cache.lookup_hot(0, &m).expect("hot now");
        assert_eq!(cache.stats().translations, 1);
        assert_eq!(cache.block(idx).len(), 2);
        assert_eq!(cache.lookup_hot(0, &m), Some(idx));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn revalidation_keeps_blocks_for_identical_im_and_drops_on_change() {
        let mut m = imem_with("loop: addi r0, #1\n br loop");
        let mut cache = TranslationCache::new(0);
        cache.revalidate(&m);
        let idx = cache.lookup_hot(0, &m).expect("threshold 0");
        assert_eq!(cache.blocks_cached(), 1);

        // Same program "reloaded": blocks survive, lookup is a hit.
        cache.begin_run();
        cache.mark_im_dirty();
        cache.revalidate(&m);
        assert_eq!(cache.blocks_cached(), 1);
        assert_eq!(cache.lookup_hot(0, &m), Some(idx));
        assert_eq!(cache.stats().translations, 0);
        assert_eq!(cache.stats().hits, 1);

        // Different program: everything is dropped.
        m.poke(0, 0);
        cache.mark_im_dirty();
        cache.revalidate(&m);
        assert_eq!(cache.blocks_cached(), 0);
    }

    #[test]
    fn snapshot_round_trip_rebuilds_blocks_and_counters() {
        let m = imem_with(
            "loop: addi r0, #1
                   br   loop
                   sinc #0
            cold:  addi r1, #1
                   halt",
        );
        let mut cache = TranslationCache::new(2);
        cache.revalidate(&m);
        // Make the loop hot (translated), probe the SINC (untranslatable)
        // and warm the cold block below threshold.
        for _ in 0..4 {
            cache.lookup_hot(0, &m);
        }
        for _ in 0..3 {
            assert!(cache.lookup_hot(2, &m).is_none());
        }
        assert!(cache.lookup_hot(3, &m).is_none(), "one probe: still cold");
        let snap = cache.save();
        assert_eq!(snap.translated, vec![0]);
        assert_eq!(snap.untranslatable, vec![2]);

        let mut restored = TranslationCache::new(0);
        assert!(restored.restore_from(&snap, &m));
        assert_eq!(restored.hot_threshold(), 2);
        assert_eq!(restored.blocks_cached(), 1);
        assert_eq!(restored.stats(), cache.stats());
        // The hot entry hits without a fresh translation...
        let before = restored.stats().translations;
        let idx = restored.lookup_hot(0, &m).expect("still hot");
        assert_eq!(restored.stats().translations, before);
        assert_eq!(restored.block(idx).len(), 2);
        // ...the untranslatable entry stays dead, and the cold entry
        // resumes from its saved count (1 probe done, threshold 2 → one
        // more miss, then hot).
        assert!(restored.lookup_hot(2, &m).is_none());
        assert!(restored.lookup_hot(3, &m).is_none());
        assert!(restored.lookup_hot(3, &m).is_some(), "count carried over");
        // Restore and a fresh cache agree on IM validity: no revalidation
        // drop afterwards.
        restored.mark_im_dirty();
        restored.revalidate(&m);
        assert_eq!(restored.blocks_cached(), 2);
    }

    #[test]
    fn snapshot_restore_rejects_mismatched_im() {
        let m = imem_with("loop: addi r0, #1\n br loop");
        let mut cache = TranslationCache::new(0);
        cache.revalidate(&m);
        cache.lookup_hot(0, &m).expect("threshold 0");
        let snap = cache.save();

        // An IM whose recorded-translated entry no longer decodes to a
        // trace: word 0 now holds a boundary.
        let other = imem_with("sinc #0\n halt");
        let mut restored = TranslationCache::new(0);
        assert!(!restored.restore_from(&snap, &other));
    }

    #[test]
    fn exec_tier_parses_and_displays() {
        assert_eq!("interpreted".parse(), Ok(ExecTier::Interpreted));
        assert_eq!("compiled".parse(), Ok(ExecTier::Compiled));
        assert!("native".parse::<ExecTier>().is_err());
        assert_eq!(ExecTier::Compiled.to_string(), "compiled");
    }

    #[test]
    fn jit_stats_merge_sums_every_counter() {
        let mut a = JitStats {
            translations: 1,
            hits: 2,
            compiled_cycles: 3,
            fallback_cycles: 4,
        };
        let b = JitStats {
            translations: 10,
            hits: 20,
            compiled_cycles: 30,
            fallback_cycles: 40,
        };
        a.merge(&b);
        assert_eq!(
            a,
            JitStats {
                translations: 11,
                hits: 22,
                compiled_cycles: 33,
                fallback_cycles: 44,
            }
        );
        assert!((a.compiled_fraction() - 33.0 / 77.0).abs() < 1e-12);
    }
}

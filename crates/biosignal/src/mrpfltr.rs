//! MRPFLTR — morphological ECG conditioning (Sun et al., 2002).
//!
//! Two stages, both built from the flat-element operators in
//! [`crate::morphology`]:
//!
//! 1. **Baseline wander correction** — the baseline is estimated by an
//!    opening with a structuring element longer than the QRS complex
//!    followed by a closing with a slightly longer one, then subtracted
//!    from the input.
//! 2. **Noise suppression** — the corrected signal is smoothed by
//!    averaging an opening/closing pair with a short element.
//!
//! All arithmetic is 16-bit exact (sums stay within ±8190 for 12-bit ADC
//! inputs; the average uses an arithmetic right shift) so the golden output
//! equals the assembly kernel's output bit for bit.

use crate::morphology::{closing, opening};

/// Structuring-element configuration of the MRPFLTR benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrpfltrConfig {
    /// Baseline-estimation opening element length (odd; ≈ 0.2 s of signal
    /// in the original paper).
    pub baseline_open: usize,
    /// Baseline-estimation closing element length (odd; ≈ 1.5× the
    /// opening element).
    pub baseline_close: usize,
    /// Noise-suppression element length (odd, short).
    pub noise: usize,
}

impl Default for MrpfltrConfig {
    fn default() -> Self {
        // Scaled for the 250 Hz synthetic ECG and a tractable simulated
        // instruction count; ratios follow Sun et al. (close ≈ 1.5 open).
        MrpfltrConfig {
            baseline_open: 15,
            baseline_close: 23,
            noise: 5,
        }
    }
}

/// Runs baseline correction and noise suppression; returns the filtered
/// signal.
///
/// # Panics
///
/// Panics if any configured element length is even or zero.
///
/// # Example
///
/// ```
/// use ulp_biosignal::{mrpfltr, MrpfltrConfig};
///
/// let noisy: Vec<i16> = (0..200).map(|i| ((i * 7) % 40) as i16 + 100).collect();
/// let y = mrpfltr(&noisy, &MrpfltrConfig::default());
/// assert_eq!(y.len(), noisy.len());
/// ```
pub fn mrpfltr(x: &[i16], cfg: &MrpfltrConfig) -> Vec<i16> {
    // Stage 1: baseline estimate b = closing(opening(x, Lo), Lc).
    let b = closing(&opening(x, cfg.baseline_open), cfg.baseline_close);
    let corrected: Vec<i16> = x.iter().zip(&b).map(|(&xi, &bi)| xi - bi).collect();

    // Stage 2: y = (opening(c, Ln) + closing(c, Ln)) >> 1  (floor average).
    let o = opening(&corrected, cfg.noise);
    let c = closing(&corrected, cfg.noise);
    o.iter().zip(&c).map(|(&oi, &ci)| (oi + ci) >> 1).collect()
}

/// The intermediate baseline estimate (exposed for tests and examples).
pub fn baseline_estimate(x: &[i16], cfg: &MrpfltrConfig) -> Vec<i16> {
    closing(&opening(x, cfg.baseline_open), cfg.baseline_close)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecg::{generate, EcgConfig};

    fn rms(x: &[i16]) -> f64 {
        (x.iter().map(|&v| (v as f64).powi(2)).sum::<f64>() / x.len() as f64).sqrt()
    }

    fn mean(x: &[i16]) -> f64 {
        x.iter().map(|&v| v as f64).sum::<f64>() / x.len() as f64
    }

    #[test]
    fn removes_constant_offset() {
        let x = vec![500i16; 200];
        let y = mrpfltr(&x, &MrpfltrConfig::default());
        assert!(y.iter().all(|&v| v == 0), "constant input -> zero output");
    }

    #[test]
    fn suppresses_slow_wander() {
        // Slow triangle wave (period >> elements) with no cardiac content.
        let x: Vec<i16> = (0..400)
            .map(|i| {
                let p = i % 200;
                (if p < 100 { p * 4 } else { (200 - p) * 4 }) as i16
            })
            .collect();
        let y = mrpfltr(&x, &MrpfltrConfig::default());
        assert!(
            rms(&y) < 0.15 * rms(&x),
            "wander must be attenuated: {} vs {}",
            rms(&y),
            rms(&x)
        );
    }

    #[test]
    fn preserves_qrs_amplitude_and_centres_baseline() {
        let cfg = EcgConfig {
            noise_rms: 15.0,
            ..EcgConfig::default()
        };
        let sig = generate(&cfg, 1500);
        let y = mrpfltr(&sig.samples, &MrpfltrConfig::default());

        // Output baseline sits near zero even though the input wandered
        // (the opening-based estimate carries a small positive bias from
        // the dominant upward R deflections — well under 5 % of R).
        assert!(mean(&y).abs() < 60.0, "residual offset {}", mean(&y));

        // R peaks survive with most of their amplitude.
        for &r in &sig.r_peaks {
            if r >= 20 && r + 20 < y.len() {
                let peak = *y[r - 3..=r + 3].iter().max().unwrap();
                assert!(peak > 600, "QRS flattened at {r}: {peak}");
            }
        }
    }

    #[test]
    fn suppresses_impulse_noise() {
        let mut x = vec![0i16; 128];
        for i in (7..128).step_by(17) {
            x[i] = if i % 2 == 0 { 180 } else { -180 };
        }
        let y = mrpfltr(&x, &MrpfltrConfig::default());
        assert!(
            y.iter().all(|&v| v.abs() <= 90),
            "single-sample spikes must shrink: {:?}",
            y.iter().map(|v| v.abs()).max()
        );
    }

    #[test]
    fn output_length_matches_input() {
        for n in [0usize, 1, 5, 64] {
            let x = vec![1i16; n];
            assert_eq!(mrpfltr(&x, &MrpfltrConfig::default()).len(), n);
        }
    }

    #[test]
    fn floor_average_matches_asr_semantics() {
        // (-3 + 0) >> 1 == -2 (arithmetic shift floors), unlike -3/2 == -1.
        // The kernel uses ASR, so the golden model must too.
        let x = vec![-3i16, -3, -3];
        let cfg = MrpfltrConfig {
            baseline_open: 1,
            baseline_close: 1,
            noise: 1,
        };
        // With unit elements: corrected = 0, o = c = 0 -> trivially fine;
        // check the shift directly instead.
        assert_eq!(-3i16 >> 1, -2);
        let _ = mrpfltr(&x, &cfg);
    }
}

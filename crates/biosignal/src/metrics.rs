//! Detection-quality metrics for delineation outputs.
//!
//! The standard figures of merit for QRS detectors (ANSI/AAMI EC57-style):
//! **sensitivity** (fraction of true events found) and **positive
//! predictivity** (fraction of detections that are true), with a matching
//! tolerance window, plus the mean absolute localization error of the
//! matched pairs.

use crate::mrpdln::Mark;

/// Score of a detector against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionScore {
    /// True events matched within the tolerance.
    pub true_positives: usize,
    /// True events with no detection nearby.
    pub false_negatives: usize,
    /// Detections with no true event nearby.
    pub false_positives: usize,
    /// Mean absolute distance (samples) of the matched pairs.
    pub mean_abs_error: f64,
}

impl DetectionScore {
    /// Sensitivity `TP / (TP + FN)`, 1.0 when there are no true events.
    pub fn sensitivity(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Positive predictivity `TP / (TP + FP)`, 1.0 when nothing was
    /// detected.
    pub fn positive_predictivity(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }
}

/// Greedily matches each true event to the nearest unused detection within
/// `tolerance` samples and scores the result.
///
/// # Example
///
/// ```
/// use ulp_biosignal::metrics::score_detections;
///
/// let truth = [100, 300, 500];
/// let detections = [101, 303, 420];
/// let score = score_detections(&truth, &detections, 5);
/// assert_eq!(score.true_positives, 2);
/// assert_eq!(score.false_negatives, 1);
/// assert_eq!(score.false_positives, 1);
/// assert!((score.mean_abs_error - 2.0).abs() < 1e-12);
/// ```
pub fn score_detections(truth: &[usize], detections: &[usize], tolerance: usize) -> DetectionScore {
    let mut used = vec![false; detections.len()];
    let mut true_positives = 0;
    let mut abs_err_sum = 0usize;
    for &t in truth {
        let best = detections
            .iter()
            .enumerate()
            .filter(|(i, &d)| !used[*i] && d.abs_diff(t) <= tolerance)
            .min_by_key(|(_, &d)| d.abs_diff(t));
        if let Some((i, &d)) = best {
            used[i] = true;
            true_positives += 1;
            abs_err_sum += d.abs_diff(t);
        }
    }
    let false_positives = used.iter().filter(|u| !**u).count();
    DetectionScore {
        true_positives,
        false_negatives: truth.len() - true_positives,
        false_positives,
        mean_abs_error: if true_positives == 0 {
            0.0
        } else {
            abs_err_sum as f64 / true_positives as f64
        },
    }
}

/// Extracts detection indices from a delineator mark stream (peaks and
/// pits both count as events — inverted leads mark the QRS as a pit).
pub fn detections_from_marks(marks: &[Mark]) -> Vec<usize> {
    marks
        .iter()
        .enumerate()
        .filter(|(_, m)| **m != Mark::None)
        .map(|(i, _)| i)
        .collect()
}

/// Convenience wrapper for the raw `u16` mark words read back from the
/// simulated platform's data memory.
pub fn detections_from_mark_words(words: &[u16]) -> Vec<usize> {
    words
        .iter()
        .enumerate()
        .filter(|(_, w)| **w != 0)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecg::{generate, EcgConfig};
    use crate::mrpdln::{delineate, DelineationConfig};

    #[test]
    fn perfect_detection() {
        let truth = [10, 20, 30];
        let s = score_detections(&truth, &truth, 0);
        assert_eq!(s.true_positives, 3);
        assert_eq!(s.false_negatives, 0);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.sensitivity(), 1.0);
        assert_eq!(s.positive_predictivity(), 1.0);
        assert_eq!(s.mean_abs_error, 0.0);
    }

    #[test]
    fn empty_cases() {
        let s = score_detections(&[], &[], 3);
        assert_eq!(s.sensitivity(), 1.0);
        assert_eq!(s.positive_predictivity(), 1.0);

        let s = score_detections(&[5], &[], 3);
        assert_eq!(s.sensitivity(), 0.0);
        assert_eq!(s.false_negatives, 1);

        let s = score_detections(&[], &[5], 3);
        assert_eq!(s.positive_predictivity(), 0.0);
        assert_eq!(s.false_positives, 1);
    }

    #[test]
    fn each_detection_matches_at_most_one_truth() {
        // Two true events, one detection between them: only one match.
        let s = score_detections(&[10, 14], &[12], 3);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_negatives, 1);
        assert_eq!(s.false_positives, 0);
    }

    #[test]
    fn nearest_detection_wins() {
        let s = score_detections(&[100], &[97, 99, 104], 5);
        assert_eq!(s.true_positives, 1);
        assert!((s.mean_abs_error - 1.0).abs() < 1e-12, "99 is nearest");
        assert_eq!(s.false_positives, 2);
    }

    #[test]
    fn end_to_end_delineator_score_is_high() {
        let cfg = EcgConfig {
            noise_rms: 10.0,
            ..EcgConfig::default()
        };
        let sig = generate(&cfg, 2500);
        let marks = delineate(&sig.samples, &DelineationConfig::default());
        let detections = detections_from_marks(&marks);
        let score = score_detections(&sig.r_peaks, &detections, 3);
        assert!(
            score.sensitivity() > 0.9,
            "sensitivity {:.2}",
            score.sensitivity()
        );
        assert!(
            score.mean_abs_error <= 2.0,
            "localization {:.2}",
            score.mean_abs_error
        );
    }

    #[test]
    fn mark_word_extraction() {
        let words = [0u16, 1, 0, 2, 0];
        assert_eq!(detections_from_mark_words(&words), vec![1, 3]);
        let marks = [Mark::None, Mark::Peak, Mark::Pit];
        assert_eq!(detections_from_marks(&marks), vec![1, 2]);
    }
}

//! SQRT32 — the 32-bit integer square-root kernel (Rolfe, 1987) used for
//! multi-lead ECG combination.
//!
//! Multi-lead combination forms a single rectified trace from several
//! leads as `y[i] = floor(sqrt(l0[i]² + l1[i]²))` — the root-sum-of-squares
//! magnitude of the cardiac vector. The square root itself is the classic
//! digit-by-digit (binary restoring) algorithm: two radicand bits enter the
//! remainder per round and a trial subtraction decides each result bit.
//! That per-round *conditional subtraction* is the data-dependent branch
//! that desynchronizes the cores of the baseline platform.

/// Exact floor square root of a 32-bit value, digit-by-digit.
///
/// # Example
///
/// ```
/// use ulp_biosignal::isqrt32;
/// assert_eq!(isqrt32(0), 0);
/// assert_eq!(isqrt32(99), 9);
/// assert_eq!(isqrt32(100), 10);
/// assert_eq!(isqrt32(u32::MAX), 65535);
/// ```
pub fn isqrt32(v: u32) -> u16 {
    let mut x = v;
    let mut rem: u32 = 0;
    let mut root: u32 = 0;
    for _ in 0..16 {
        // Two radicand bits enter the remainder per round.
        rem = (rem << 2) | (x >> 30);
        x <<= 2;
        let trial = (root << 2) | 1;
        root <<= 1;
        if rem >= trial {
            rem -= trial;
            root |= 1;
        }
    }
    root as u16
}

/// Applies [`isqrt32`] to every element.
pub fn isqrt_slice(values: &[u32]) -> Vec<u16> {
    values.iter().map(|&v| isqrt32(v)).collect()
}

/// Combines two ECG leads sample-wise into a root-sum-of-squares
/// magnitude trace: `floor(sqrt(a² + b²))`.
///
/// Inputs are 12-bit ADC samples (±2047), so the sum of squares fits a
/// `u32` with ample margin.
///
/// # Panics
///
/// Panics if the leads have different lengths.
pub fn combine_two_leads(a: &[i16], b: &[i16]) -> Vec<u16> {
    assert_eq!(a.len(), b.len(), "leads must have equal length");
    a.iter()
        .zip(b)
        .map(|(&ai, &bi)| {
            let sq = (ai as i32 * ai as i32) as u32 + (bi as i32 * bi as i32) as u32;
            isqrt32(sq)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_perfect_squares() {
        for r in [0u32, 1, 2, 3, 255, 256, 4096, 65535] {
            assert_eq!(isqrt32(r * r) as u32, r, "sqrt({})", r * r);
            if r > 0 {
                assert_eq!(isqrt32(r * r - 1) as u32, r - 1);
            }
        }
    }

    #[test]
    fn floor_property_holds_on_edges() {
        for v in [
            0u32,
            1,
            2,
            3,
            4,
            5,
            24,
            25,
            26,
            999,
            1000,
            0x7FFF_FFFF,
            0x8000_0000,
            u32::MAX - 1,
            u32::MAX,
        ] {
            let r = isqrt32(v) as u64;
            assert!(r * r <= v as u64, "v={v} r={r}");
            assert!((r + 1) * (r + 1) > v as u64, "v={v} r={r}");
        }
    }

    #[test]
    fn exhaustive_16bit_against_float() {
        for v in 0..=0xFFFFu32 {
            assert_eq!(isqrt32(v), (v as f64).sqrt().floor() as u16, "v={v}");
        }
    }

    #[test]
    fn slice_helper() {
        assert_eq!(isqrt_slice(&[0, 1, 4, 9, 16]), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn lead_combination_magnitude() {
        let a = [3i16, -3, 0, 2047];
        let b = [4i16, -4, 0, -2047];
        let y = combine_two_leads(&a, &b);
        assert_eq!(y[0], 5);
        assert_eq!(y[1], 5, "polarity must not matter");
        assert_eq!(y[2], 0);
        // sqrt(2 * 2047^2) = 2047 * sqrt(2) ≈ 2894.9 -> floor 2894.
        assert_eq!(y[3], 2894);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_leads_panic() {
        let _ = combine_two_leads(&[1, 2], &[1]);
    }
}

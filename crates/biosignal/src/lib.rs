//! # ulp-biosignal — synthetic ECG and golden reference DSP
//!
//! The paper evaluates its platform on three Electrocardiogram (ECG)
//! processing benchmarks (Section II):
//!
//! * **MRPFLTR** — baseline-wander correction and noise suppression by
//!   morphological filtering (Sun et al., *Computers in Biology and
//!   Medicine*, 2002) — [`mrpfltr()`](mrpfltr());
//! * **MRPDLN** — ECG delineation based on multiscale morphological
//!   derivatives (Sun et al., *BMC Cardiovascular Disorders*, 2005) —
//!   [`mrpdln`];
//! * **SQRT32** — a 32-bit integer square-root kernel used for multi-lead
//!   ECG combination (Rolfe, *SIGNUM Newsletter*, 1987) — [`sqrt32`].
//!
//! This crate provides bit-exact integer reference implementations of all
//! three (the *golden models* the assembly kernels of `ulp-kernels` are
//! validated against) plus a deterministic synthetic multi-channel ECG
//! generator ([`ecg`]) standing in for clinical recordings, which cannot be
//! redistributed here. The synthetic signal exercises the same
//! data-dependent control flow — per-sample min/max comparisons,
//! thresholding, conditional subtraction — that drives the lockstep
//! behaviour studied in the paper.
//!
//! All DSP uses 16-bit/32-bit integer arithmetic exactly as the 16-bit
//! platform cores do, so golden and simulated outputs can be compared for
//! equality, not merely similarity.

pub mod ecg;
pub mod metrics;
pub mod morphology;
pub mod mrpdln;
pub mod mrpfltr;
pub mod sqrt32;

pub use ecg::{
    generate, generate_channels, generate_channels_window, generate_window, EcgConfig, EcgSignal,
};
pub use metrics::{score_detections, DetectionScore};
pub use morphology::{closing, dilation, erosion, opening};
pub use mrpdln::{delineate, mmd, DelineationConfig, Mark};
pub use mrpfltr::{mrpfltr, MrpfltrConfig};
pub use sqrt32::{combine_two_leads, isqrt32, isqrt_slice};

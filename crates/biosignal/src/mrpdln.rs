//! MRPDLN — ECG delineation by multiscale morphological derivatives
//! (Sun, Chan and Krishnan, 2005).
//!
//! The **morphological derivative** at scale `s` is
//!
//! ```text
//! d_s(i) = dilation_s(x)(i) + erosion_s(x)(i) - 2·x(i)
//! ```
//!
//! which is strongly negative at peaks (the dilation cannot rise above a
//! peak faster than the erosion falls) and strongly positive at pits. The
//! delineator combines a small and a large scale — the small one localizes
//! sharp QRS edges, the large one rejects smooth T/P slopes — and then
//! classifies per-sample extrema against a threshold. The per-sample
//! compare-and-branch classification is precisely the data-dependent
//! program flow the paper's synchronizer is built for.

use crate::morphology::{dilation, erosion};

/// Per-sample classification produced by [`delineate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Mark {
    /// Nothing detected.
    None = 0,
    /// A peak (upward deflection, e.g. the R wave).
    Peak = 1,
    /// A pit (downward deflection, e.g. Q/S waves or inverted leads).
    Pit = 2,
}

impl From<Mark> for u16 {
    fn from(m: Mark) -> u16 {
        m as u16
    }
}

/// Configuration of the delineator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelineationConfig {
    /// Small-scale window half-width (samples).
    pub scale_small: usize,
    /// Large-scale window half-width (samples).
    pub scale_large: usize,
    /// Detection threshold in ADC units (applied to the combined
    /// derivative).
    pub threshold: i16,
}

impl Default for DelineationConfig {
    fn default() -> Self {
        DelineationConfig {
            scale_small: 3,
            scale_large: 9,
            threshold: 300,
        }
    }
}

/// The morphological derivative at half-width `s` (element length
/// `2s + 1`): `dilation + erosion - 2x`, computed in 16-bit arithmetic.
///
/// # Example
///
/// ```
/// use ulp_biosignal::mmd;
/// // A sharp peak of height h has derivative -h at its apex.
/// let x = [0i16, 0, 100, 0, 0];
/// let d = mmd(&x, 1);
/// assert_eq!(d[2], -100);
/// ```
pub fn mmd(x: &[i16], s: usize) -> Vec<i16> {
    let l = 2 * s + 1;
    let d = dilation(x, l);
    let e = erosion(x, l);
    d.iter()
        .zip(&e)
        .zip(x)
        .map(|((&di, &ei), &xi)| di + ei - 2 * xi)
        .collect()
}

/// Runs the multiscale delineator; returns one [`Mark`] per sample.
///
/// The combined derivative is the average of the small- and large-scale
/// derivatives (arithmetic right shift, matching the kernel). A sample is
/// marked when the combined derivative exceeds the threshold in magnitude
/// *and* is a local extremum of the derivative.
pub fn delineate(x: &[i16], cfg: &DelineationConfig) -> Vec<Mark> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let d1 = mmd(x, cfg.scale_small);
    let d2 = mmd(x, cfg.scale_large);
    let d: Vec<i16> = d1.iter().zip(&d2).map(|(&a, &b)| (a + b) >> 1).collect();

    let mut marks = vec![Mark::None; n];
    for i in 1..n.saturating_sub(1) {
        let v = d[i];
        if v < -cfg.threshold && v <= d[i - 1] && v < d[i + 1] {
            marks[i] = Mark::Peak; // derivative minimum = signal peak
        } else if v > cfg.threshold && v >= d[i - 1] && v > d[i + 1] {
            marks[i] = Mark::Pit;
        }
    }
    marks
}

/// Indices marked as peaks (convenience for validation).
pub fn peak_indices(marks: &[Mark]) -> Vec<usize> {
    marks
        .iter()
        .enumerate()
        .filter(|(_, m)| **m == Mark::Peak)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecg::{generate, EcgConfig};

    #[test]
    fn derivative_of_constant_is_zero() {
        let x = vec![42i16; 50];
        assert!(mmd(&x, 4).iter().all(|&v| v == 0));
    }

    #[test]
    fn derivative_sign_at_peak_and_pit() {
        let mut x = vec![0i16; 31];
        x[10] = 400; // peak
        x[20] = -400; // pit
        let d = mmd(&x, 2);
        assert!(d[10] <= -400, "peak apex: {}", d[10]);
        assert!(d[20] >= 400, "pit apex: {}", d[20]);
    }

    #[test]
    fn delineator_finds_r_peaks() {
        let cfg = EcgConfig {
            noise_rms: 10.0,
            baseline_wander: 100.0,
            ..EcgConfig::default()
        };
        let sig = generate(&cfg, 2500);
        let marks = delineate(&sig.samples, &DelineationConfig::default());
        let peaks = peak_indices(&marks);

        // Every ground-truth R peak has a mark within ±3 samples.
        let mut hits = 0;
        for &r in &sig.r_peaks {
            if peaks.iter().any(|&p| p.abs_diff(r) <= 3) {
                hits += 1;
            }
        }
        assert!(
            hits >= sig.r_peaks.len() - 1,
            "found {hits} of {} R peaks",
            sig.r_peaks.len()
        );
    }

    #[test]
    fn no_marks_on_silence() {
        let x = vec![0i16; 300];
        let marks = delineate(&x, &DelineationConfig::default());
        assert!(marks.iter().all(|&m| m == Mark::None));
    }

    #[test]
    fn threshold_controls_sensitivity() {
        let cfg = EcgConfig::default();
        let sig = generate(&cfg, 1500);
        let loose = DelineationConfig {
            threshold: 100,
            ..DelineationConfig::default()
        };
        let strict = DelineationConfig {
            threshold: 900,
            ..DelineationConfig::default()
        };
        let n_loose = peak_indices(&delineate(&sig.samples, &loose)).len();
        let n_strict = peak_indices(&delineate(&sig.samples, &strict)).len();
        assert!(n_loose >= n_strict);
    }

    #[test]
    fn marks_length_and_edges() {
        let x = vec![5i16; 10];
        let marks = delineate(&x, &DelineationConfig::default());
        assert_eq!(marks.len(), 10);
        assert_eq!(marks[0], Mark::None, "edges are never marked");
        assert_eq!(marks[9], Mark::None);
        assert!(delineate(&[], &DelineationConfig::default()).is_empty());
    }

    #[test]
    fn mark_encoding_for_kernels() {
        assert_eq!(u16::from(Mark::None), 0);
        assert_eq!(u16::from(Mark::Peak), 1);
        assert_eq!(u16::from(Mark::Pit), 2);
    }
}

//! Deterministic synthetic multi-channel ECG generation.
//!
//! Real clinical recordings (e.g. MIT-BIH) cannot be redistributed with
//! this repository, so experiments run on a synthetic ECG: a sum of
//! Gaussian bumps for the P, Q, R, S and T waves placed on a jittered
//! RR-interval grid, plus sinusoidal baseline wander (respiration) and
//! additive noise. Samples are quantized to 12-bit ADC units (±2047),
//! matching the 16-bit data path of the platform with ample headroom for
//! the downstream morphological operators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic ECG generator.
#[derive(Debug, Clone, PartialEq)]
pub struct EcgConfig {
    /// Sampling rate in Hz.
    pub fs: f64,
    /// Mean heart rate in beats per minute.
    pub heart_rate_bpm: f64,
    /// Relative RR-interval jitter (0.05 = ±5 %).
    pub hr_variability: f64,
    /// R-peak amplitude in ADC units.
    pub amplitude: f64,
    /// Baseline-wander amplitude in ADC units.
    pub baseline_wander: f64,
    /// Baseline-wander (respiration) frequency in Hz.
    pub wander_freq: f64,
    /// RMS of the additive noise in ADC units.
    pub noise_rms: f64,
    /// Seed of the beat-grid RNG. Channels of one recording share this
    /// seed, so every lead observes the same heart (identical R-peak
    /// times).
    pub seed: u64,
    /// Seed of the per-lead noise/wander RNG (varied per channel).
    pub noise_seed: u64,
    /// When set, [`generate_channels`] gives every channel its *own* beat
    /// grid (independent signal sources, e.g. separate sensor nodes)
    /// instead of eight leads of one heart. Independent channels maximize
    /// data-dependent divergence across the cores — the worst case for
    /// lockstep execution.
    pub independent_channels: bool,
}

impl Default for EcgConfig {
    fn default() -> Self {
        EcgConfig {
            fs: 250.0,
            heart_rate_bpm: 72.0,
            hr_variability: 0.05,
            amplitude: 1200.0,
            baseline_wander: 200.0,
            wander_freq: 0.33,
            noise_rms: 20.0,
            seed: 0xEC6_2013,
            noise_seed: 0xEC6_2013 ^ 0x5EED,
            independent_channels: false,
        }
    }
}

/// A generated ECG trace with its ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EcgSignal {
    /// The samples in ADC units, clamped to ±2047.
    pub samples: Vec<i16>,
    /// Ground-truth R-peak sample indices (for validating delineation).
    pub r_peaks: Vec<usize>,
}

impl EcgSignal {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// The five characteristic waves of one heartbeat: relative amplitude,
/// width (seconds) and offset from the R peak (seconds).
const WAVES: [(f64, f64, f64); 5] = [
    (0.15, 0.040, -0.180),  // P
    (-0.10, 0.012, -0.035), // Q
    (1.00, 0.014, 0.000),   // R
    (-0.22, 0.016, 0.030),  // S
    (0.30, 0.070, 0.250),   // T
];

/// Approximately standard-normal deviate (Irwin–Hall sum of 12 uniforms).
fn gauss(rng: &mut StdRng) -> f64 {
    let mut s = 0.0;
    for _ in 0..12 {
        s += rng.gen::<f64>();
    }
    s - 6.0
}

/// Generates one synthetic ECG channel.
///
/// # Example
///
/// ```
/// use ulp_biosignal::{generate, EcgConfig};
///
/// let sig = generate(&EcgConfig::default(), 1000);
/// assert_eq!(sig.len(), 1000);
/// assert!(!sig.r_peaks.is_empty());
/// // Deterministic for a fixed seed.
/// assert_eq!(sig, generate(&EcgConfig::default(), 1000));
/// ```
pub fn generate(cfg: &EcgConfig, n: usize) -> EcgSignal {
    // Two independent RNG streams: the beat grid is shared by every lead
    // of a recording, noise and wander phase are lead-specific.
    let mut beat_rng = StdRng::seed_from_u64(cfg.seed);
    let mut noise_rng = StdRng::seed_from_u64(cfg.noise_seed);
    let mut samples = vec![0f64; n];
    let mut nominal_peaks = Vec::new();

    // Place beats on a jittered RR grid covering the window.
    let rr_nominal = 60.0 / cfg.heart_rate_bpm;
    let mut t_beat = 0.3 * rr_nominal; // first R inside the window
    let t_end = n as f64 / cfg.fs;
    while t_beat < t_end + 0.5 {
        let r_idx = (t_beat * cfg.fs).round() as usize;
        if r_idx < n {
            nominal_peaks.push(r_idx);
        }
        for (amp, width, offset) in WAVES {
            let centre = t_beat + offset;
            let lo = ((centre - 4.0 * width) * cfg.fs).floor().max(0.0) as usize;
            let hi = (((centre + 4.0 * width) * cfg.fs).ceil() as usize).min(n);
            for (i, s) in samples.iter_mut().enumerate().take(hi).skip(lo) {
                let t = i as f64 / cfg.fs;
                let z = (t - centre) / width;
                *s += cfg.amplitude * amp * (-0.5 * z * z).exp();
            }
        }
        let jitter = 1.0 + cfg.hr_variability * gauss(&mut beat_rng) / 3.0;
        t_beat += rr_nominal * jitter.clamp(0.5, 1.5);
    }

    // Ground truth: the apex of the *clean* beat (overlapping Q/S/T waves
    // can shift it a sample off the nominal R centre).
    let polarity = if cfg.amplitude < 0.0 { -1.0 } else { 1.0 };
    let r_peaks: Vec<usize> = nominal_peaks
        .iter()
        .map(|&r| {
            let lo = r.saturating_sub(3);
            let hi = (r + 3).min(n - 1);
            (lo..=hi)
                .max_by(|&a, &b| {
                    (polarity * samples[a])
                        .partial_cmp(&(polarity * samples[b]))
                        .expect("finite samples")
                })
                .unwrap_or(r)
        })
        .collect();

    // Baseline wander and noise.
    let phase = noise_rng.gen::<f64>() * std::f64::consts::TAU;
    for (i, s) in samples.iter_mut().enumerate() {
        let t = i as f64 / cfg.fs;
        *s += cfg.baseline_wander * (std::f64::consts::TAU * cfg.wander_freq * t + phase).sin();
        *s += cfg.noise_rms * gauss(&mut noise_rng);
    }

    EcgSignal {
        samples: samples
            .into_iter()
            .map(|v| v.round().clamp(-2047.0, 2047.0) as i16)
            .collect(),
        r_peaks,
    }
}

/// Generates the window `range` of a `total`-sample recording.
///
/// The full recording is synthesized (generation is deterministic and
/// cheap next to simulating even one window) and the requested slice is
/// cut out, so the returned samples are **bit-identical** to the
/// corresponding region of `generate(cfg, total)` — the property the
/// workload-sharding subsystem builds on. Ground-truth R peaks falling
/// inside the window are kept, re-indexed relative to `range.start`.
///
/// # Panics
///
/// Panics if `range` does not lie within `0..total`.
///
/// # Example
///
/// ```
/// use ulp_biosignal::{generate, generate_window, EcgConfig};
///
/// let cfg = EcgConfig::default();
/// let full = generate(&cfg, 1000);
/// let window = generate_window(&cfg, 1000, 200..500);
/// assert_eq!(window.samples[..], full.samples[200..500]);
/// ```
pub fn generate_window(cfg: &EcgConfig, total: usize, range: std::ops::Range<usize>) -> EcgSignal {
    assert!(
        range.start <= range.end && range.end <= total,
        "window {range:?} outside recording of {total} samples"
    );
    let full = generate(cfg, total);
    EcgSignal {
        samples: full.samples[range.clone()].to_vec(),
        r_peaks: full
            .r_peaks
            .iter()
            .filter(|&&r| range.contains(&r))
            .map(|&r| r - range.start)
            .collect(),
    }
}

/// Generates a multi-channel recording: `channels` leads of the same heart
/// activity seen with per-lead gain, polarity and independent noise — the
/// workload shape of the paper's multi-channel analysis platform (one
/// channel per core).
pub fn generate_channels(cfg: &EcgConfig, channels: usize, n: usize) -> Vec<EcgSignal> {
    (0..channels)
        .map(|ch| generate(&lead_config(cfg, ch), n))
        .collect()
}

/// The window `range` of every lead of a `total`-sample multi-channel
/// recording: [`generate_channels`] restricted to a slice, bit-identical
/// to slicing the full recording (see [`generate_window`]). This is how a
/// workload shard materializes its input region of a long recording.
///
/// # Panics
///
/// Panics if `range` does not lie within `0..total`.
pub fn generate_channels_window(
    cfg: &EcgConfig,
    channels: usize,
    total: usize,
    range: std::ops::Range<usize>,
) -> Vec<EcgSignal> {
    (0..channels)
        .map(|ch| generate_window(&lead_config(cfg, ch), total, range.clone()))
        .collect()
}

/// The per-lead projection of one recording configuration: varied gain,
/// alternating polarity for some leads, lead-specific noise and wander
/// phase, and (for independent channels) a lead-specific heart.
fn lead_config(cfg: &EcgConfig, ch: usize) -> EcgConfig {
    let mut c = cfg.clone();
    let gain = 1.0 - 0.08 * (ch % 4) as f64;
    let polarity = if ch % 5 == 3 { -1.0 } else { 1.0 };
    c.amplitude *= gain * polarity;
    c.baseline_wander *= 1.0 + 0.15 * (ch % 3) as f64;
    // Lead-specific noise stream; optionally an independent heart.
    c.noise_seed = cfg
        .noise_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(ch as u64 + 1));
    if cfg.independent_channels {
        c.seed = cfg
            .seed
            .wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(ch as u64 + 1));
        c.heart_rate_bpm = cfg.heart_rate_bpm * (0.85 + 0.05 * (ch % 7) as f64);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = EcgConfig::default();
        assert_eq!(generate(&cfg, 500), generate(&cfg, 500));
        let other = EcgConfig {
            seed: 1,
            ..EcgConfig::default()
        };
        assert_ne!(generate(&cfg, 500), generate(&other, 500));
    }

    #[test]
    fn beat_count_matches_heart_rate() {
        let cfg = EcgConfig {
            hr_variability: 0.0,
            ..EcgConfig::default()
        };
        // 10 s at 72 bpm -> 12 beats expected (±1 for window edges).
        let sig = generate(&cfg, 2500);
        assert!(
            (11..=13).contains(&sig.r_peaks.len()),
            "beats: {}",
            sig.r_peaks.len()
        );
    }

    #[test]
    fn r_peaks_are_local_maxima_of_clean_signal() {
        let cfg = EcgConfig {
            baseline_wander: 0.0,
            noise_rms: 0.0,
            hr_variability: 0.0,
            ..EcgConfig::default()
        };
        let sig = generate(&cfg, 2000);
        for &r in &sig.r_peaks {
            if r > 2 && r + 2 < sig.len() {
                let w = &sig.samples[r - 2..=r + 2];
                let max = *w.iter().max().unwrap();
                assert!(
                    sig.samples[r] >= max - 2,
                    "R at {r} is not a local max: {w:?}"
                );
                assert!(sig.samples[r] > 800, "R amplitude too small");
            }
        }
    }

    #[test]
    fn samples_fit_adc_range() {
        let cfg = EcgConfig {
            amplitude: 4000.0, // deliberately excessive
            ..EcgConfig::default()
        };
        let sig = generate(&cfg, 1000);
        assert!(sig.samples.iter().all(|s| (-2047..=2047).contains(s)));
    }

    #[test]
    fn channels_differ_but_share_beat_grid() {
        let cfg = EcgConfig::default();
        let chans = generate_channels(&cfg, 8, 1000);
        assert_eq!(chans.len(), 8);
        for pair in chans.windows(2) {
            assert_ne!(pair[0].samples, pair[1].samples);
        }
        // All channels observe the same heart: identical R-peak grid.
        for ch in &chans[1..] {
            assert_eq!(ch.r_peaks, chans[0].r_peaks);
        }
    }

    #[test]
    fn inverted_lead_has_negative_r() {
        let cfg = EcgConfig {
            noise_rms: 0.0,
            baseline_wander: 0.0,
            ..EcgConfig::default()
        };
        let chans = generate_channels(&cfg, 8, 1000);
        // Channel 3 is generated with inverted polarity.
        let r = chans[3].r_peaks[0];
        assert!(chans[3].samples[r] < -500);
        assert!(chans[0].samples[r] > 500);
    }

    #[test]
    fn windows_match_full_recording_on_every_lead() {
        let cfg = EcgConfig {
            independent_channels: true,
            ..EcgConfig::default()
        };
        let total = 1200;
        let full = generate_channels(&cfg, 4, total);
        for range in [0..total, 0..300, 450..707, 900..total, 5..5] {
            let windows = generate_channels_window(&cfg, 4, total, range.clone());
            for (ch, w) in windows.iter().enumerate() {
                assert_eq!(
                    w.samples[..],
                    full[ch].samples[range.clone()],
                    "ch {ch} range {range:?}"
                );
                // R peaks inside the window survive, re-indexed.
                let expected: Vec<usize> = full[ch]
                    .r_peaks
                    .iter()
                    .filter(|&&r| range.contains(&r))
                    .map(|&r| r - range.start)
                    .collect();
                assert_eq!(w.r_peaks, expected, "ch {ch} range {range:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside recording")]
    fn window_outside_recording_panics() {
        let _ = generate_window(&EcgConfig::default(), 100, 50..101);
    }

    #[test]
    fn empty_request_is_fine() {
        let sig = generate(&EcgConfig::default(), 0);
        assert!(sig.is_empty());
        assert!(sig.r_peaks.is_empty());
    }
}

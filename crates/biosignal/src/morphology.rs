//! Flat-structuring-element morphological operators on integer signals.
//!
//! These are the primitives of both ECG benchmarks: erosion and dilation
//! are running minima/maxima over a sliding window of odd length `l`
//! (the *structuring element*), and opening/closing are their
//! compositions. At the borders the window is clipped to the signal — the
//! same convention the assembly kernels implement, so results are
//! bit-exact comparable.
//!
//! The straightforward `O(n·l)` inner loops with per-element `min`/`max`
//! comparisons are retained deliberately: the paper's benchmarks execute
//! exactly this data-dependent compare-and-update flow, which is what
//! breaks lockstep on the baseline multi-core.

/// Erosion: running minimum over a centred window of odd length `l`.
///
/// # Panics
///
/// Panics if `l` is even or zero.
///
/// # Example
///
/// ```
/// use ulp_biosignal::erosion;
/// assert_eq!(erosion(&[3, 1, 4, 1, 5], 3), vec![1, 1, 1, 1, 1]);
/// ```
pub fn erosion(x: &[i16], l: usize) -> Vec<i16> {
    window_scan(x, l, i16::min)
}

/// Dilation: running maximum over a centred window of odd length `l`.
///
/// # Panics
///
/// Panics if `l` is even or zero.
pub fn dilation(x: &[i16], l: usize) -> Vec<i16> {
    window_scan(x, l, i16::max)
}

/// Opening: erosion followed by dilation — removes positive peaks
/// narrower than the structuring element.
///
/// # Panics
///
/// Panics if `l` is even or zero.
pub fn opening(x: &[i16], l: usize) -> Vec<i16> {
    dilation(&erosion(x, l), l)
}

/// Closing: dilation followed by erosion — removes negative pits narrower
/// than the structuring element.
///
/// # Panics
///
/// Panics if `l` is even or zero.
pub fn closing(x: &[i16], l: usize) -> Vec<i16> {
    erosion(&dilation(x, l), l)
}

fn window_scan(x: &[i16], l: usize, f: fn(i16, i16) -> i16) -> Vec<i16> {
    assert!(
        l % 2 == 1,
        "structuring element length must be odd, got {l}"
    );
    let h = l / 2;
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(h);
        let hi = (i + h).min(n - 1);
        let mut acc = x[lo];
        for &v in &x[lo + 1..=hi] {
            acc = f(acc, v);
        }
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: [i16; 10] = [0, 5, -3, 8, 8, 2, -7, 4, 1, 0];

    #[test]
    fn erosion_dilation_bound_signal() {
        for l in [1, 3, 5, 7] {
            let e = erosion(&X, l);
            let d = dilation(&X, l);
            for i in 0..X.len() {
                assert!(e[i] <= X[i] && X[i] <= d[i], "l={l} i={i}");
            }
        }
    }

    #[test]
    fn length_one_is_identity() {
        assert_eq!(erosion(&X, 1), X.to_vec());
        assert_eq!(dilation(&X, 1), X.to_vec());
        assert_eq!(opening(&X, 1), X.to_vec());
        assert_eq!(closing(&X, 1), X.to_vec());
    }

    #[test]
    fn opening_removes_narrow_peak() {
        let mut x = vec![0i16; 21];
        x[10] = 100; // single-sample spike
        let o = opening(&x, 3);
        assert!(o.iter().all(|&v| v == 0), "{o:?}");
        // Closing leaves positive spikes alone.
        let c = closing(&x, 3);
        assert_eq!(c[10], 100);
    }

    #[test]
    fn closing_fills_narrow_pit() {
        let mut x = vec![0i16; 21];
        x[10] = -100;
        let c = closing(&x, 3);
        assert!(c.iter().all(|&v| v == 0), "{c:?}");
        let o = opening(&x, 3);
        assert_eq!(o[10], -100);
    }

    #[test]
    fn opening_closing_are_idempotent() {
        for l in [3, 5, 9] {
            let o = opening(&X, l);
            assert_eq!(opening(&o, l), o, "opening idempotence l={l}");
            let c = closing(&X, l);
            assert_eq!(closing(&c, l), c, "closing idempotence l={l}");
        }
    }

    #[test]
    fn anti_extensivity_and_extensivity() {
        for l in [3, 5] {
            let o = opening(&X, l);
            let c = closing(&X, l);
            for i in 0..X.len() {
                assert!(o[i] <= X[i], "opening is anti-extensive");
                assert!(c[i] >= X[i], "closing is extensive");
            }
        }
    }

    #[test]
    fn duality_under_negation() {
        // erosion(-x) == -dilation(x)
        let neg: Vec<i16> = X.iter().map(|v| -v).collect();
        let e = erosion(&neg, 5);
        let d = dilation(&X, 5);
        assert_eq!(e, d.iter().map(|v| -v).collect::<Vec<_>>());
    }

    #[test]
    fn border_windows_are_clipped() {
        let x = [9i16, 0, 0, 0, 9];
        // At index 0 the window [0..=1] has min 0, max 9.
        assert_eq!(erosion(&x, 3)[0], 0);
        assert_eq!(dilation(&x, 3)[0], 9);
        // At the centre the full window applies.
        assert_eq!(dilation(&x, 5)[2], 9);
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_element_rejected() {
        let _ = erosion(&X, 4);
    }

    #[test]
    fn constant_signal_is_fixed_point() {
        let x = vec![7i16; 32];
        for l in [3, 7, 11] {
            assert_eq!(erosion(&x, l), x);
            assert_eq!(dilation(&x, l), x);
            assert_eq!(opening(&x, l), x);
            assert_eq!(closing(&x, l), x);
        }
    }
}

//! The batch simulation service: a long-lived worker pool with per-worker
//! platform caches, bounded tenant-fair priority deques with work
//! stealing, and streamed results.

use crate::job::{
    JobArtifacts, JobError, JobId, JobOutput, JobResult, JobSpec, ObserverSelection, Priority,
    TenantId,
};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use ulp_kernels::{
    resume_benchmark_checkpointed, run_benchmark_checkpointed, run_benchmark_reusing_with,
    CheckpointControl, RunnerError,
};
use ulp_platform::{
    BankHeatMap, Checkpoint, ExecTier, PcTrace, Platform, PlatformConfig, VcdTracer,
};
use ulp_telemetry::{
    worker_track, Counter, EventKind, Histogram, Telemetry, Track, CLIENT_TRACK, NO_JOB,
};

/// Admission and fair-share policy for one tenant (or the default for
/// tenants without an explicit entry): how many of its jobs may be in the
/// service at once, and how large its slice of the scheduler's weighted
/// deficit round-robin is relative to other tenants in the same priority
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Max jobs the tenant may have in the service at once (queued +
    /// running + completed-but-unreceived results do not count — a slot
    /// frees the moment the worker finishes the job). `0` = unlimited.
    pub quota: usize,
    /// Fair-share weight inside a priority class: a tenant with weight 2
    /// is served two jobs per round for every one job of a weight-1
    /// tenant. `0` behaves as `1`.
    pub weight: u32,
}

impl Default for TenantPolicy {
    /// Unlimited quota, weight 1.
    fn default() -> TenantPolicy {
        TenantPolicy {
            quota: 0,
            weight: 1,
        }
    }
}

impl TenantPolicy {
    /// A policy with quota `quota` (`0` = unlimited) and weight 1.
    pub fn quota(quota: usize) -> TenantPolicy {
        TenantPolicy { quota, weight: 1 }
    }

    /// Sets the fair-share weight.
    #[must_use]
    pub fn with_weight(mut self, weight: u32) -> TenantPolicy {
        self.weight = weight;
        self
    }
}

/// Pool shape and tenant policy of a [`SimService`]. Built with
/// [`ServiceConfig::builder`]:
///
/// ```
/// use ulp_service::{ServiceConfig, TenantId, TenantPolicy};
///
/// let config = ServiceConfig::builder()
///     .workers(4)
///     .queue_capacity(64)
///     .tenant(TenantId(1), TenantPolicy::quota(8).with_weight(2))
///     .build();
/// assert_eq!(config.policy(TenantId(1)).quota, 8);
/// assert_eq!(config.policy(TenantId(2)).quota, 0); // default: unlimited
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Worker threads; `0` = one per available hardware thread.
    pub workers: usize,
    /// Bound on the queued (submitted but unclaimed) backlog; `0` =
    /// unbounded. At capacity, [`SimService::submit`] rejects with
    /// [`SubmitError::AtCapacity`] and [`SimService::submit_blocking`]
    /// blocks until the backlog drains to the watermark (half the
    /// capacity).
    pub queue_capacity: usize,
    /// Policy for tenants without an explicit [`ServiceConfig::tenants`]
    /// entry. The `Default` default is unlimited quota, weight 1.
    pub default_policy: TenantPolicy,
    /// Per-tenant policy overrides.
    pub tenants: Vec<(TenantId, TenantPolicy)>,
    /// Telemetry sink the pool records into: every job-lifecycle phase
    /// becomes a typed event on the submitting client's or executing
    /// worker's track, and the scheduler publishes its counters into the
    /// sink's metrics registry. The default ([`Telemetry::disabled`])
    /// makes every hook a single branch — no ring, no clock read.
    pub telemetry: Telemetry,
    /// Directory the pool persists checkpoints into: every time a
    /// migratable job checkpoints, the blob
    /// ([`ulp_platform::Checkpoint::to_bytes`]) is written to
    /// `job-<id>.ckpt` in this directory, latest-wins. Persistence is
    /// best-effort — a write failure never fails the job (migration rides
    /// the in-memory checkpoint; the files serve external inspection and
    /// restart tooling) — and files are left behind on completion.
    /// `None` (the default) persists nothing.
    pub checkpoint_dir: Option<std::path::PathBuf>,
}

impl ServiceConfig {
    /// Starts building a configuration (all-default: auto-sized pool,
    /// unbounded queue, unlimited quotas, equal weights).
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            config: ServiceConfig::default(),
        }
    }

    /// The policy governing `tenant`: its override, or the default.
    pub fn policy(&self, tenant: TenantId) -> TenantPolicy {
        self.tenants
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, p)| *p)
            .unwrap_or(self.default_policy)
    }

    /// The concrete pool size this configuration resolves to: `workers`,
    /// or one thread per available hardware thread when `workers == 0`.
    /// Public so clients sizing their own batches (e.g. the sweep runner
    /// capping the pool at the grid size) resolve exactly like the pool.
    pub fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// Chained constructor for [`ServiceConfig`] — see
/// [`ServiceConfig::builder`].
#[derive(Debug, Clone, Default)]
pub struct ServiceConfigBuilder {
    config: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Worker threads; `0` (the default) = one per available hardware
    /// thread.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> ServiceConfigBuilder {
        self.config.workers = workers;
        self
    }

    /// Bounds the queued backlog at `capacity` jobs (`0` = unbounded).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> ServiceConfigBuilder {
        self.config.queue_capacity = capacity;
        self
    }

    /// Policy for tenants without an explicit [`ServiceConfigBuilder::tenant`]
    /// entry (default: unlimited quota, weight 1).
    #[must_use]
    pub fn default_policy(mut self, policy: TenantPolicy) -> ServiceConfigBuilder {
        self.config.default_policy = policy;
        self
    }

    /// Attaches a telemetry sink (default: [`Telemetry::disabled`]).
    /// Pass [`Telemetry::enabled`] to record job-lifecycle events and
    /// scheduler metrics; keep a clone of the handle to export them.
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> ServiceConfigBuilder {
        self.config.telemetry = telemetry;
        self
    }

    /// Persists every checkpoint blob under `dir` (see
    /// [`ServiceConfig::checkpoint_dir`]; default: no persistence).
    #[must_use]
    pub fn checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> ServiceConfigBuilder {
        self.config.checkpoint_dir = Some(dir.into());
        self
    }

    /// Sets (or replaces) the policy for one tenant.
    #[must_use]
    pub fn tenant(mut self, tenant: TenantId, policy: TenantPolicy) -> ServiceConfigBuilder {
        if let Some(entry) = self.config.tenants.iter_mut().find(|(t, _)| *t == tenant) {
            entry.1 = policy;
        } else {
            self.config.tenants.push((tenant, policy));
        }
        self
    }

    /// The finished configuration.
    pub fn build(self) -> ServiceConfig {
        self.config
    }
}

/// Latency distribution of completed jobs (queue wait + run time).
/// `samples` and `max` cover the pool's whole lifetime; the percentiles
/// are computed over a sliding window of the most recent
/// [`LATENCY_WINDOW`] completions, so a long-lived service's memory stays
/// bounded and its percentiles track *current* traffic, not ancient
/// history.
///
/// Small-sample behaviour is well-defined (nearest-rank percentiles are
/// total functions of the window, not estimates):
///
/// - **0 samples**: every field is zero ([`LatencyStats::default`]).
/// - **1 sample**: `p50`, `p95` and `max` all equal that sample — the
///   only observation is every percentile.
/// - **2 samples**: `p50` is the *smaller* sample (nearest-rank:
///   `ceil(0.50 × 2) = 1` → 1st smallest), `p95` and `max` the larger
///   (`ceil(0.95 × 2) = 2` → 2nd smallest).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Completed jobs over the pool's lifetime.
    pub samples: u64,
    /// Median end-to-end latency (nearest-rank, recent window).
    pub p50: Duration,
    /// 95th-percentile end-to-end latency (nearest-rank, recent window —
    /// the tail CI gates on).
    pub p95: Duration,
    /// Worst end-to-end latency ever observed (not windowed).
    pub max: Duration,
}

impl LatencyStats {
    fn compute(total: u64, max_ns: u64, window: &[u64]) -> LatencyStats {
        // Empty window: all-zero stats rather than an indexing panic —
        // an idle pool has a well-defined (zero) distribution.
        if window.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = window.to_vec();
        sorted.sort_unstable();
        // Nearest-rank: the ceil(p/100 * N)-th smallest sample. The
        // `.max(1)` keeps tiny windows in range: for N = 1 every
        // percentile is the single sample (rank 1), never index -1.
        let rank = |p: usize| sorted[(p * sorted.len()).div_ceil(100).max(1) - 1];
        LatencyStats {
            samples: total,
            p50: Duration::from_nanos(rank(50)),
            p95: Duration::from_nanos(rank(95)),
            max: Duration::from_nanos(max_ns),
        }
    }

    /// The distribution as a JSON fragment (durations in nanoseconds).
    fn to_json(self) -> String {
        format!(
            "{{\"samples\":{},\"p50_ns\":{},\"p95_ns\":{},\"max_ns\":{}}}",
            self.samples,
            self.p50.as_nanos(),
            self.p95.as_nanos(),
            self.max.as_nanos()
        )
    }
}

/// Completions the latency percentiles are computed over (the ring's
/// bound). Big enough that quick-mode benches and tests see every sample,
/// small enough that a service running for months holds kilobytes, not
/// gigabytes.
pub const LATENCY_WINDOW: usize = 4096;

/// Fixed-memory recorder behind [`LatencyStats`]: a ring of the last
/// [`LATENCY_WINDOW`] total-latency samples plus lifetime count and max.
#[derive(Clone, Default)]
struct LatencyRing {
    window: Vec<u64>,
    next: usize,
    total: u64,
    max_ns: u64,
}

impl LatencyRing {
    fn record(&mut self, nanos: u64) {
        if self.window.len() < LATENCY_WINDOW {
            self.window.push(nanos);
        } else {
            self.window[self.next] = nanos;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
        self.total += 1;
        self.max_ns = self.max_ns.max(nanos);
    }

    fn stats(&self) -> LatencyStats {
        LatencyStats::compute(self.total, self.max_ns, &self.window)
    }
}

/// All of the pool's latency recorders, updated together on every
/// completion: the lifetime aggregate, one ring per priority class, and
/// one ring per tenant that has completed a job.
#[derive(Clone, Default)]
struct LatencyBook {
    aggregate: LatencyRing,
    per_priority: [LatencyRing; Priority::LEVELS],
    per_tenant: Vec<(TenantId, LatencyRing)>,
}

impl LatencyBook {
    fn record(&mut self, tenant: TenantId, priority: Priority, nanos: u64) {
        self.aggregate.record(nanos);
        self.per_priority[priority.index()].record(nanos);
        match self.per_tenant.iter_mut().find(|(t, _)| *t == tenant) {
            Some((_, ring)) => ring.record(nanos),
            None => {
                let mut ring = LatencyRing::default();
                ring.record(nanos);
                self.per_tenant.push((tenant, ring));
            }
        }
    }
}

/// Per-tenant slice of [`ServiceStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant the row describes.
    pub tenant: TenantId,
    /// High-water mark of the tenant's jobs in the service at once
    /// (queued + running) — never exceeds the tenant's configured quota.
    pub peak_admitted: u64,
    /// End-to-end latency distribution of the tenant's completed jobs;
    /// `latency.samples` is the tenant's completed-job count.
    pub latency: LatencyStats,
}

/// Scheduling observability: what the pool did. Snapshot via
/// [`SimService::stats`], final values from [`SimService::finish`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs executed to completion (success or error; evicted jobs are
    /// counted in [`ServiceStats::evictions`] instead).
    pub jobs_run: u64,
    /// Steal events: times an idle worker took a half-batch from another
    /// worker's deque.
    pub steals: u64,
    /// Jobs moved by steals, summed over every steal event (a job
    /// relocated twice counts twice).
    pub jobs_stolen: u64,
    /// Largest half-batch a single steal event moved.
    pub steal_batch_max: u64,
    /// Non-blocking submissions rejected at queue capacity
    /// ([`SubmitError::AtCapacity`]).
    pub rejections: u64,
    /// Non-blocking submissions rejected because the tenant was at its
    /// quota ([`SubmitError::QuotaExceeded`]).
    pub quota_rejections: u64,
    /// Queued jobs evicted because their deadline budget provably could
    /// not be met ([`JobError::Evicted`]).
    pub evictions: u64,
    /// Completed jobs whose run exceeded their simulated-cycle deadline.
    pub deadline_misses: u64,
    /// Jobs served from a worker's platform cache.
    pub platform_cache_hits: u64,
    /// Platforms constructed across all workers (the cache misses).
    pub platforms_built: u64,
    /// Mid-run platform checkpoints taken of migratable jobs
    /// ([`JobSpec::checkpoint_every`]).
    pub checkpoints_taken: u64,
    /// Times a partially-run job was parked at a checkpoint and
    /// re-queued — cooperative yields to [`Priority::High`] work plus
    /// in-flight jobs recovered from killed workers. A job migrated
    /// twice counts twice.
    pub jobs_migrated: u64,
    /// Worker threads lost over the pool's lifetime: injected failures
    /// ([`SimService::inject_worker_failure`]) and panics. Deaths whose
    /// in-flight job was recovered do not kill the pool — the remaining
    /// workers keep draining the queue.
    pub workers_died: u64,
    /// End-to-end latency distribution of completed jobs, pooled over
    /// every class and tenant.
    pub latency: LatencyStats,
    /// Latency distribution per priority class, indexed by
    /// [`Priority::index`] (0 = High).
    pub per_priority: [LatencyStats; Priority::LEVELS],
    /// Latency distribution and admission high-water mark per tenant,
    /// sorted by tenant id. Tenants appear once they have submitted a
    /// job.
    pub per_tenant: Vec<TenantStats>,
    /// Wall time since the pool started.
    pub wall: Duration,
}

impl ServiceStats {
    /// The per-tenant row for `tenant`, if it has submitted any job.
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantStats> {
        self.per_tenant.iter().find(|t| t.tenant == tenant)
    }

    /// The latency distribution of one priority class.
    pub fn priority_latency(&self, priority: Priority) -> &LatencyStats {
        &self.per_priority[priority.index()]
    }

    /// The full snapshot as one JSON object (schema 3: checkpoint and
    /// migration counters next to the schema-2 per-tenant rows), for the
    /// `--stats-json` flag of the sweep and shard CLIs and any other
    /// scripted consumer. Durations are nanoseconds; priority rows are
    /// keyed `"high"`/`"normal"`/`"low"`; tenant rows are sorted by
    /// tenant id.
    pub fn to_json(&self) -> String {
        let per_priority: Vec<String> = ["high", "normal", "low"]
            .iter()
            .zip(self.per_priority.iter())
            .map(|(name, stats)| format!("\"{name}\":{}", stats.to_json()))
            .collect();
        let per_tenant: Vec<String> = self
            .per_tenant
            .iter()
            .map(|row| {
                format!(
                    "{{\"tenant\":{},\"peak_admitted\":{},\"latency\":{}}}",
                    row.tenant.0,
                    row.peak_admitted,
                    row.latency.to_json()
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"schema\":3,\"workers\":{},\"jobs_run\":{},\"steals\":{},",
                "\"jobs_stolen\":{},\"steal_batch_max\":{},\"rejections\":{},",
                "\"quota_rejections\":{},\"evictions\":{},\"deadline_misses\":{},",
                "\"platform_cache_hits\":{},\"platforms_built\":{},",
                "\"checkpoints_taken\":{},\"jobs_migrated\":{},\"workers_died\":{},",
                "\"latency\":{},\"per_priority\":{{{}}},\"per_tenant\":[{}],",
                "\"wall_ns\":{}}}"
            ),
            self.workers,
            self.jobs_run,
            self.steals,
            self.jobs_stolen,
            self.steal_batch_max,
            self.rejections,
            self.quota_rejections,
            self.evictions,
            self.deadline_misses,
            self.platform_cache_hits,
            self.platforms_built,
            self.checkpoints_taken,
            self.jobs_migrated,
            self.workers_died,
            self.latency.to_json(),
            per_priority.join(","),
            per_tenant.join(","),
            self.wall.as_nanos()
        )
    }
}

/// Why [`SimService::submit`] / [`SimService::submit_blocking`] did not
/// enqueue a job. The rejecting variants carry the spec back so the
/// caller can retry it (after draining results, or through the blocking
/// path) without cloning up front.
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded queue is at capacity (backpressure). Only returned by
    /// the non-blocking [`SimService::submit`]; counted in
    /// [`ServiceStats::rejections`].
    AtCapacity {
        /// The job that was not enqueued, returned for retry.
        spec: JobSpec,
        /// The capacity the queue was full at.
        capacity: usize,
    },
    /// The spec's tenant is at its admission quota (queued + running
    /// jobs). Only returned by the non-blocking [`SimService::submit`];
    /// counted in [`ServiceStats::quota_rejections`].
    QuotaExceeded {
        /// The job that was not enqueued, returned for retry.
        spec: JobSpec,
        /// The tenant that hit its quota.
        tenant: TenantId,
        /// The quota it hit.
        quota: usize,
    },
    /// A worker thread panicked: the pool accepts no further work. Both
    /// submission paths return this rather than blocking on a drain that
    /// can never come.
    PoolDead,
}

impl SubmitError {
    /// Takes the rejected spec back out for a retry (`None` for
    /// [`SubmitError::PoolDead`] — there is nothing left to retry
    /// against).
    pub fn into_spec(self) -> Option<JobSpec> {
        match self {
            SubmitError::AtCapacity { spec, .. } => Some(spec),
            SubmitError::QuotaExceeded { spec, .. } => Some(spec),
            SubmitError::PoolDead => None,
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::AtCapacity { capacity, .. } => write!(
                f,
                "submission rejected: queue at capacity ({capacity} queued jobs)"
            ),
            SubmitError::QuotaExceeded { tenant, quota, .. } => write!(
                f,
                "submission rejected: tenant {tenant} at its quota of {quota} in-flight jobs"
            ),
            SubmitError::PoolDead => write!(f, "submission rejected: a service worker died"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The pool died (a worker thread panicked) with results still
/// outstanding — returned by [`SimService::checked_recv`] so clients can
/// surface worker death as a structured error instead of a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolDied {
    /// Submitted jobs whose results had not been received when the pool
    /// died; they are lost.
    pub outstanding: u64,
}

impl fmt::Display for PoolDied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "a service worker died with {} job result(s) outstanding",
            self.outstanding
        )
    }
}

impl std::error::Error for PoolDied {}

/// Cap on *cooperative* migrations of one job (parking at a checkpoint
/// to yield to queued [`Priority::High`] work). Bounds the extra restore
/// cost a job can accrue under sustained urgent traffic and rules out
/// park/resume livelock; recovery from a killed worker is not capped —
/// a job is never lost to the limit.
const MAX_MIGRATIONS: u32 = 3;

/// One queued unit of work: the spec plus the scheduling metadata the
/// deques track for it. `Clone` so the executing worker can park a copy
/// in the pool's in-flight registry ([`Shared::inflight`]) while it
/// runs — the clone is what a recovery re-queues.
#[derive(Clone)]
struct QueuedJob {
    id: JobId,
    spec: JobSpec,
    /// Set once a steal moves the job off the deque it was submitted to;
    /// survives relocation so the executing worker reports it faithfully.
    stolen: bool,
    /// When the job was (last) enqueued — queue-wait latency is measured
    /// from here to the executing worker's claim, across any relocations;
    /// a migration resets it to the re-queue instant.
    enqueued: Instant,
    /// The latest checkpoint of a partially-run migratable job: a worker
    /// claiming this job resumes the platform from here instead of
    /// starting the run over. `None` until the first checkpoint is taken.
    resume: Option<Arc<Checkpoint>>,
    /// Times the job has been parked at a checkpoint and re-queued.
    migrations: u32,
}

impl QueuedJob {
    /// EDF sort key: explicit deadlines first (earliest wins), then
    /// arrival order.
    fn deadline_key(&self) -> u64 {
        self.spec.deadline_cycles.unwrap_or(u64::MAX)
    }
}

/// One tenant's FIFO sub-queue inside a [`ClassQueue`], plus its deficit
/// round-robin bookkeeping.
#[derive(Default)]
struct Lane {
    tenant: TenantId,
    /// Fair-share weight (from the tenant's [`TenantPolicy`]); the quantum
    /// replenished into `deficit` when the round-robin reaches this lane.
    weight: u32,
    /// Jobs this lane may still serve in the current round. Every job
    /// costs one unit (job runtimes are not knowable up front), so weights
    /// buy *claims per round*, not cycles.
    deficit: u32,
    jobs: VecDeque<QueuedJob>,
}

impl Lane {
    /// The lane's claim: earliest-deadline-first among its jobs, oldest
    /// first among jobs with equal (or no) deadlines — so deadline jobs
    /// jump the lane while a pure-FIFO lane stays pure FIFO.
    fn pop_edf(&mut self) -> Option<QueuedJob> {
        let idx = self
            .jobs
            .iter()
            .enumerate()
            .min_by_key(|(i, job)| (job.deadline_key(), *i))?
            .0;
        self.jobs.remove(idx)
    }
}

/// One priority class of a worker's deque: per-tenant FIFO lanes served
/// by weighted deficit round-robin. Replaces the old flat per-class
/// segment, which let one tenant's burst starve everyone behind it.
#[derive(Default)]
struct ClassQueue {
    lanes: Vec<Lane>,
    /// The lane the round-robin serves next.
    cursor: usize,
}

impl ClassQueue {
    fn push(&mut self, job: QueuedJob, weight: u32) {
        let tenant = job.spec.tenant;
        match self.lanes.iter_mut().find(|lane| lane.tenant == tenant) {
            Some(lane) => lane.jobs.push_back(job),
            None => self.lanes.push(Lane {
                tenant,
                weight,
                deficit: 0,
                jobs: VecDeque::from([job]),
            }),
        }
    }

    fn is_empty(&self) -> bool {
        self.lanes.iter().all(|lane| lane.jobs.is_empty())
    }

    /// The weighted deficit round-robin claim (unit job cost): the cursor
    /// lane's quantum is replenished to its weight when it is reached
    /// fresh, each served job costs one unit, and the cursor advances when
    /// the quantum is spent or the lane runs dry — so over a contended
    /// round, tenants are served in proportion to their weights no matter
    /// how lopsided the backlog is.
    fn pop(&mut self) -> Option<QueuedJob> {
        let lanes = self.lanes.len();
        for _ in 0..lanes {
            if self.cursor >= lanes {
                self.cursor = 0;
            }
            let lane = &mut self.lanes[self.cursor];
            if lane.jobs.is_empty() {
                // An empty lane leaves the round; a stale quantum must not
                // carry over to its next burst.
                lane.deficit = 0;
                self.cursor += 1;
                continue;
            }
            if lane.deficit == 0 {
                lane.deficit = lane.weight.max(1);
            }
            lane.deficit -= 1;
            let job = lane.pop_edf();
            if lane.jobs.is_empty() {
                lane.deficit = 0;
            }
            if lane.deficit == 0 {
                self.cursor += 1;
            }
            return job;
        }
        None
    }

    /// A thief's cut: the older half (rounded up) of *every* tenant lane,
    /// so a steal relocates backlog without skewing the per-tenant
    /// balance the round-robin maintains.
    fn steal_half(&mut self) -> Vec<QueuedJob> {
        let mut batch = Vec::new();
        for lane in &mut self.lanes {
            let take = lane.jobs.len().div_ceil(2);
            batch.extend(lane.jobs.drain(..take));
            if lane.jobs.is_empty() {
                lane.deficit = 0;
            }
        }
        batch
    }

    fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.jobs.clear();
            lane.deficit = 0;
        }
    }
}

/// One worker's deque, segregated by priority class: class 0
/// ([`Priority::High`]) is always served before class 1, and so on.
/// Within a class, tenants are served by weighted deficit round-robin
/// over per-tenant FIFO lanes, with earliest-deadline-first among one
/// tenant's jobs — priorities express urgency, the round-robin bounds any
/// one tenant's damage, EDF spends each tenant's share on its most
/// urgent work. (The platform cache is keyed by `(design, cores)`, so pop
/// order costs no cache warmth.) Thieves take the front half of every
/// lane of the highest non-empty class.
struct WorkerQueue {
    classes: [ClassQueue; Priority::LEVELS],
}

impl WorkerQueue {
    fn new() -> WorkerQueue {
        WorkerQueue {
            classes: Default::default(),
        }
    }

    fn push(&mut self, job: QueuedJob, weight: u32) {
        self.classes[job.spec.priority.index()].push(job, weight);
    }

    /// The owner's claim: the round-robin pop of the most urgent
    /// non-empty class.
    fn pop_own(&mut self) -> Option<QueuedJob> {
        self.classes.iter_mut().find_map(|class| class.pop())
    }

    /// The owner's claim restricted to the [`Priority::High`] class
    /// (class 0) — the pool-wide-priority fast path.
    fn pop_high(&mut self) -> Option<QueuedJob> {
        self.classes[0].pop()
    }

    /// A thief's claim: half of every tenant lane of the most urgent
    /// non-empty class. Taking a batch instead of a single job amortizes
    /// the lock traffic of repeated steals on mixed grids — the thief
    /// runs one job and relocates the rest to its own deque, where they
    /// stay claimable by everyone.
    fn steal_half(&mut self) -> Vec<QueuedJob> {
        for class in &mut self.classes {
            if !class.is_empty() {
                return class.steal_half();
            }
        }
        Vec::new()
    }

    /// [`WorkerQueue::steal_half`] restricted to the [`Priority::High`]
    /// class.
    fn steal_half_high(&mut self) -> Vec<QueuedJob> {
        if self.classes[0].is_empty() {
            return Vec::new();
        }
        self.classes[0].steal_half()
    }

    fn clear(&mut self) {
        for class in &mut self.classes {
            class.clear();
        }
    }
}

/// Per-tenant admission bookkeeping, guarded by [`Shared::work`].
#[derive(Default)]
struct TenantLoad {
    /// The tenant's jobs currently in the service (queued + running) —
    /// the count its quota bounds.
    admitted: u64,
    /// Lifetime high-water mark of `admitted`, surfaced as
    /// [`TenantStats::peak_admitted`] so tests and operators can verify a
    /// quota was never breached.
    peak: u64,
}

/// Guarded by [`Shared::work`]: how many submitted jobs are not yet
/// claimed by a worker, per-tenant admission counts, and whether the
/// service is shutting down.
struct WorkState {
    /// Jobs pushed to some deque and not yet claimed. A worker claims by
    /// decrementing under the lock, then locates the job in the deques —
    /// the counter is the wait condition, the deques hold the payload.
    /// With a bounded queue this is also the backlog the capacity bounds.
    available: u64,
    /// Set by [`SimService::finish`]; workers exit once `available == 0`.
    closed: bool,
    /// Set when the service is dropped without `finish`: queued jobs are
    /// discarded and workers abandon in-flight claims instead of draining
    /// the backlog.
    cancelled: bool,
    /// Worker threads that panicked. A blocking
    /// [`SimService::submit_blocking`] parked on the space condvar checks
    /// this so a dying pool fails it fast instead of leaving it waiting on
    /// a drain that may never come (the result-channel death notice only
    /// reaches `recv`).
    dead_workers: usize,
    /// Per-tenant admitted counts and high-water marks.
    tenants: HashMap<TenantId, TenantLoad>,
}

impl WorkState {
    fn admitted(&self, tenant: TenantId) -> u64 {
        self.tenants.get(&tenant).map_or(0, |load| load.admitted)
    }

    fn admit(&mut self, tenant: TenantId) {
        let load = self.tenants.entry(tenant).or_default();
        load.admitted += 1;
        load.peak = load.peak.max(load.admitted);
    }

    fn release(&mut self, tenant: TenantId) {
        if let Some(load) = self.tenants.get_mut(&tenant) {
            load.admitted = load.admitted.saturating_sub(1);
        }
    }
}

/// What flows back over the result channel: completed jobs, or a death
/// notice a panicking worker emits while unwinding so blocked clients
/// fail fast instead of hanging (surviving workers keep the channel open,
/// so a plain disconnect is not observable in pools of 2+).
enum Message {
    Result(Box<JobResult>),
    WorkerDied,
}

/// Pre-registered metric handles the pool publishes into. Resolving the
/// handles once at startup keeps the hot path free of name lookups; with
/// disabled telemetry every handle is a no-op and each publish is one
/// branch.
struct ServiceMetrics {
    jobs_submitted: Counter,
    jobs_completed: Counter,
    steals: Counter,
    jobs_stolen: Counter,
    evictions: Counter,
    quota_rejections: Counter,
    capacity_rejections: Counter,
    deadline_misses: Counter,
    platforms_built: Counter,
    platform_cache_hits: Counter,
    checkpoints_taken: Counter,
    jobs_migrated: Counter,
    /// Simulated cycle each checkpoint was taken at — the distribution
    /// shows how deep into their runs migratable jobs snapshot.
    checkpoint_cycles: Histogram,
    queue_wait_us: Histogram,
    run_us: Histogram,
    jit_translations: Counter,
    jit_hits: Counter,
    jit_compiled_cycles: Counter,
    jit_fallback_cycles: Counter,
}

impl ServiceMetrics {
    fn new(telemetry: &Telemetry) -> ServiceMetrics {
        ServiceMetrics {
            jobs_submitted: telemetry.counter("service_jobs_submitted"),
            jobs_completed: telemetry.counter("service_jobs_completed"),
            steals: telemetry.counter("service_steals"),
            jobs_stolen: telemetry.counter("service_jobs_stolen"),
            evictions: telemetry.counter("service_evictions"),
            quota_rejections: telemetry.counter("service_quota_rejections"),
            capacity_rejections: telemetry.counter("service_capacity_rejections"),
            deadline_misses: telemetry.counter("service_deadline_misses"),
            platforms_built: telemetry.counter("service_platforms_built"),
            platform_cache_hits: telemetry.counter("service_platform_cache_hits"),
            checkpoints_taken: telemetry.counter("service_checkpoints_taken"),
            jobs_migrated: telemetry.counter("service_jobs_migrated"),
            checkpoint_cycles: telemetry.histogram("service_checkpoint_cycles"),
            queue_wait_us: telemetry.histogram("service_queue_wait_us"),
            run_us: telemetry.histogram("service_run_us"),
            jit_translations: telemetry.counter("jit_translations"),
            jit_hits: telemetry.counter("jit_hits"),
            jit_compiled_cycles: telemetry.counter("jit_compiled_cycles"),
            jit_fallback_cycles: telemetry.counter("jit_fallback_cycles"),
        }
    }
}

/// The telemetry wire code for an execution tier (`JobEvent::exec_tier`).
fn tier_code(tier: ExecTier) -> u8 {
    match tier {
        ExecTier::Interpreted => 0,
        ExecTier::Compiled => 1,
    }
}

/// The telemetry tags of one job spec: (job id, tenant, priority, tier).
fn event_tags(id: JobId, spec: &JobSpec) -> (u64, u32, u8, u8) {
    (
        id,
        spec.tenant.0,
        spec.priority.index() as u8,
        tier_code(spec.exec_tier),
    )
}

struct Shared {
    /// Bound on the unclaimed backlog; `0` = unbounded.
    capacity: usize,
    /// Policy for tenants without an override.
    default_policy: TenantPolicy,
    /// Per-tenant policy overrides (small: linear scan beats hashing).
    policies: Vec<(TenantId, TenantPolicy)>,
    /// Whether any quota (default or override) is non-zero: gates the
    /// completion-side condvar wake that quota waiters need.
    has_quotas: bool,
    /// One priority deque per worker (see [`WorkerQueue`]).
    queues: Vec<Mutex<WorkerQueue>>,
    work: Mutex<WorkState>,
    available: Condvar,
    /// Signalled (with [`Shared::work`]) every time a worker claims a job
    /// (frees backlog space) or completes one (frees the tenant's quota
    /// slot), so a [`SimService::submit_blocking`] parked here can
    /// re-check its admission conditions.
    space: Condvar,
    /// [`Priority::High`] jobs queued anywhere in the pool. Lets a claim
    /// serve the High class *pool-wide* — own deque, then a High-only
    /// steal scan — before touching its own lower classes, while keeping
    /// the common no-High case a single relaxed load. Incremented on
    /// submission, decremented when a High job is claimed for execution
    /// (relocated-but-still-queued jobs stay counted).
    queued_high: AtomicU64,
    /// One slot per worker: the migratable job it is currently running,
    /// kept current with the job's latest checkpoint. Recovery paths —
    /// the worker's own injected-failure park and the panic
    /// [`DeathWatch`] — take the slot and re-queue the job from here, so
    /// a lost worker loses at most one checkpoint interval of progress.
    /// Workers running non-migratable jobs leave their slot empty.
    inflight: Vec<Mutex<Option<QueuedJob>>>,
    /// One flag per worker, set by [`SimService::inject_worker_failure`].
    /// A worker observes its flag at the next checkpoint of a migratable
    /// job: it parks the job, re-queues it, and exits — simulating a
    /// worker lost mid-shard.
    kill_flags: Vec<AtomicBool>,
    /// Best-effort checkpoint persistence directory (see
    /// [`ServiceConfig::checkpoint_dir`]).
    checkpoint_dir: Option<std::path::PathBuf>,
    jobs_run: AtomicU64,
    steals: AtomicU64,
    jobs_stolen: AtomicU64,
    steal_batch_max: AtomicU64,
    rejections: AtomicU64,
    quota_rejections: AtomicU64,
    evictions: AtomicU64,
    deadline_misses: AtomicU64,
    cache_hits: AtomicU64,
    platforms_built: AtomicU64,
    checkpoints_taken: AtomicU64,
    jobs_migrated: AtomicU64,
    workers_died: AtomicU64,
    /// Bounded recorders behind [`ServiceStats::latency`],
    /// [`ServiceStats::per_priority`] and [`ServiceStats::per_tenant`].
    latencies: Mutex<LatencyBook>,
    /// The telemetry sink (possibly disabled) every lifecycle event and
    /// metric publish goes through.
    telemetry: Telemetry,
    /// Pre-registered metric handles (no-ops when telemetry is disabled).
    metrics: ServiceMetrics,
}

impl Shared {
    fn policy(&self, tenant: TenantId) -> TenantPolicy {
        self.policies
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, p)| *p)
            .unwrap_or(self.default_policy)
    }

    /// Puts a parked or recovered partially-run job back into the pool:
    /// bumps its migration count, restarts its queue-wait clock and lands
    /// it on the next worker's deque (the parking worker may be exiting;
    /// any idle worker can still steal it from there). Admission is *not*
    /// re-taken — the job never left the service, so its tenant slot
    /// stays held until it completes. Shared by cooperative parking,
    /// injected-failure parks and the panic [`DeathWatch`]; the latter
    /// runs during an unwind, so lock failures bail out instead of
    /// panicking (a poisoned pool lock means the pool is beyond rescue).
    fn requeue(&self, from: usize, mut job: QueuedJob) {
        job.migrations += 1;
        job.enqueued = Instant::now();
        if job.spec.priority == Priority::High {
            self.queued_high.fetch_add(1, Ordering::Relaxed);
        }
        self.jobs_migrated.fetch_add(1, Ordering::Relaxed);
        self.metrics.jobs_migrated.inc();
        let weight = self.policy(job.spec.tenant).weight;
        let target = (from + 1) % self.queues.len();
        match self.queues[target].lock() {
            Ok(mut queue) => queue.push(job, weight),
            Err(_) => return,
        }
        if let Ok(mut state) = self.work.lock() {
            state.available += 1;
        }
        self.available.notify_one();
    }
}

/// A pool of simulation workers behind a submission handle.
///
/// Jobs ([`JobSpec`]) are distributed over per-worker priority deques
/// (round-robin, or pinned via [`JobSpec::pinned`]); idle workers steal
/// half-batches from busy ones, so mixed-size grids — a 2-core SQRT32
/// cell next to an 8-core full-signal MRPDLN cell — keep every thread
/// busy. Queued [`Priority::High`] jobs are always claimed before queued
/// [`Priority::Normal`] and [`Priority::Low`] ones; *within* a class,
/// workers claim by weighted deficit round-robin across per-tenant FIFO
/// lanes (earliest-deadline-first among one tenant's jobs), so no tenant's
/// burst starves another tenant's queue wait. Admission is tenant-aware
/// too: a [`TenantPolicy::quota`] bounds one tenant's in-flight jobs, and
/// with a [`ServiceConfig::queue_capacity`] bound the submission path
/// exerts explicit backpressure — [`SimService::submit`] rejects with a
/// typed [`SubmitError`] carrying the spec back, and
/// [`SimService::submit_blocking`] parks until admission succeeds. A
/// queued job whose [`JobSpec::deadline_cycles`] budget provably cannot
/// be met is evicted ([`JobError::Evicted`]) instead of run. Each worker
/// keeps one [`Platform`] per `(design, cores)` key and reuses it via
/// [`ulp_kernels::run_benchmark_reusing_with`], so the dominant
/// allocations happen once per worker, not once per job. Completed
/// [`JobResult`]s stream back through [`SimService::recv`] as workers
/// finish them — a client never waits for the whole batch — and carry
/// per-job queue-wait and run latency; [`ServiceStats`] aggregates them
/// into pooled, per-priority and per-tenant p50/p95/max.
///
/// ```no_run
/// use std::sync::Arc;
/// use ulp_kernels::{Benchmark, WorkloadConfig};
/// use ulp_service::{JobSpec, ServiceConfig, SimService};
///
/// let mut service = SimService::start(ServiceConfig::default());
/// let workload = Arc::new(WorkloadConfig::quick_test());
/// for cores in [2, 4, 8] {
///     let spec = JobSpec::new(Benchmark::Sqrt32, cores, workload.clone());
///     service.submit(spec).expect("unbounded queue admits");
/// }
/// while let Some(result) = service.recv() {
///     let out = result.outcome.expect("job ran");
///     println!("{} cores: {} cycles", out.cores, out.run.stats.cycles);
/// }
/// let stats = service.finish();
/// assert_eq!(stats.jobs_run, 3);
/// ```
pub struct SimService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    results: mpsc::Receiver<Message>,
    next_queue: usize,
    submitted: u64,
    received: u64,
    started: Instant,
    /// Recording handle for client-side lifecycle events (submission and
    /// rejection), resolved once at start.
    client_track: Track,
}

impl SimService {
    /// Starts the worker pool.
    pub fn start(config: ServiceConfig) -> SimService {
        let workers = config.resolved_workers().max(1);
        let has_quotas =
            config.default_policy.quota != 0 || config.tenants.iter().any(|(_, p)| p.quota != 0);
        let telemetry = config.telemetry.clone();
        let metrics = ServiceMetrics::new(&telemetry);
        let client_track = telemetry.track(CLIENT_TRACK);
        let shared = Arc::new(Shared {
            capacity: config.queue_capacity,
            default_policy: config.default_policy,
            policies: config.tenants,
            has_quotas,
            queues: (0..workers)
                .map(|_| Mutex::new(WorkerQueue::new()))
                .collect(),
            work: Mutex::new(WorkState {
                available: 0,
                closed: false,
                cancelled: false,
                dead_workers: 0,
                tenants: HashMap::new(),
            }),
            available: Condvar::new(),
            space: Condvar::new(),
            queued_high: AtomicU64::new(0),
            inflight: (0..workers).map(|_| Mutex::new(None)).collect(),
            kill_flags: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            checkpoint_dir: config.checkpoint_dir,
            jobs_run: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            jobs_stolen: AtomicU64::new(0),
            steal_batch_max: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            quota_rejections: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            platforms_built: AtomicU64::new(0),
            checkpoints_taken: AtomicU64::new(0),
            jobs_migrated: AtomicU64::new(0),
            workers_died: AtomicU64::new(0),
            latencies: Mutex::new(LatencyBook::default()),
            telemetry,
            metrics,
        });
        let (tx, rx) = mpsc::channel();
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    /// On unwind: first tries to *rescue* the worker's
                    /// in-flight migratable job — taking it from the
                    /// pool's in-flight registry and re-queuing it from
                    /// its latest checkpoint, so the surviving workers
                    /// finish it bit-identically. Only when there is
                    /// nothing to rescue (the job, if any, was not
                    /// checkpointable) does the pool die: it emits
                    /// [`Message::WorkerDied`] so clients blocked in
                    /// `recv` fail instead of waiting on a result that
                    /// will never come, and raises the dead-worker flag +
                    /// wakes the space condvar so a client blocked in the
                    /// backpressured `submit_blocking` fails fast too (it
                    /// waits on a condvar, not the channel).
                    struct DeathWatch {
                        tx: mpsc::Sender<Message>,
                        shared: Arc<Shared>,
                        me: usize,
                    }
                    impl Drop for DeathWatch {
                        fn drop(&mut self) {
                            if !std::thread::panicking() {
                                return;
                            }
                            self.shared.workers_died.fetch_add(1, Ordering::Relaxed);
                            let rescued = self.shared.inflight[self.me]
                                .lock()
                                .ok()
                                .and_then(|mut slot| slot.take());
                            match rescued {
                                Some(job) => self.shared.requeue(self.me, job),
                                None => {
                                    if let Ok(mut state) = self.shared.work.lock() {
                                        state.dead_workers += 1;
                                    }
                                    self.shared.space.notify_all();
                                    let _ = self.tx.send(Message::WorkerDied);
                                }
                            }
                        }
                    }
                    let _watch = DeathWatch {
                        tx: tx.clone(),
                        shared: Arc::clone(&shared),
                        me,
                    };
                    worker_loop(me, &shared, &tx);
                })
            })
            .collect();
        SimService {
            shared,
            workers: handles,
            results: rx,
            next_queue: 0,
            submitted: 0,
            received: 0,
            started: Instant::now(),
            client_track,
        }
    }

    /// The telemetry handle the pool records into (a clone of the one
    /// configured at start; [`Telemetry::disabled`] by default). Export
    /// traces or snapshots through it after — or during — a run.
    pub fn telemetry(&self) -> Telemetry {
        self.shared.telemetry.clone()
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// The configured queue capacity (`0` = unbounded).
    pub fn queue_capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Fault injection: marks `worker` (modulo the pool size) for
    /// failure. The worker observes the flag at the next checkpoint of a
    /// migratable job ([`JobSpec::checkpoint_every`]): it parks the job,
    /// re-queues it from that checkpoint — counted in
    /// [`ServiceStats::jobs_migrated`] — and exits, simulating a worker
    /// lost mid-shard. The surviving workers resume the job and its
    /// result is bit-identical to an undisturbed run. A worker that never
    /// takes a checkpoint (idle, or running only non-migratable jobs)
    /// keeps the flag armed until it does.
    ///
    /// Meant for recovery tests and the CI migration smoke; a pool needs
    /// at least two workers for the killed worker's backlog to drain.
    pub fn inject_worker_failure(&self, worker: usize) {
        let n = self.shared.kill_flags.len();
        self.shared.kill_flags[worker % n].store(true, Ordering::Relaxed);
    }

    /// Non-blocking submission: enqueues the job and returns its id, or
    /// says exactly why admission failed — the bounded backlog is at
    /// capacity ([`SubmitError::AtCapacity`]), the spec's tenant is at
    /// its quota ([`SubmitError::QuotaExceeded`]), or the pool is dead
    /// ([`SubmitError::PoolDead`]). The rejecting variants carry the spec
    /// back, so the caller decides: drop it, retry after draining some
    /// results, or fall back to [`SimService::submit_blocking`]. On an
    /// unbounded queue with no quotas this only ever fails on a dead
    /// pool. The result arrives through [`SimService::recv`] whenever a
    /// worker completes it.
    ///
    /// A core count outside 1..=8 is not rejected here — the job
    /// completes with a [`ulp_platform::ConfigError`] outcome, like any
    /// other configuration the platform/kernels cannot run. An affinity
    /// pin ([`JobSpec::pinned`]) is validated against the actual pool
    /// size: out-of-range indices are clamped (modulo the worker count)
    /// onto a real deque, never a nonexistent one.
    ///
    /// # Errors
    ///
    /// [`SubmitError::AtCapacity`] and [`SubmitError::QuotaExceeded`]
    /// with the spec inside; [`SubmitError::PoolDead`] when a worker
    /// panicked.
    ///
    /// # Panics
    ///
    /// Panics on a workload size outside the kernel layout's capacity
    /// (the kernels would panic the worker on it), so that class of
    /// invalid submission fails in the submitting thread, not the pool.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.submit_inner(spec, false)
    }

    /// Blocking submission: like [`SimService::submit`], but parks until
    /// admission succeeds instead of rejecting. At queue capacity it
    /// resumes once workers drain the backlog to the watermark (half the
    /// capacity — the hysteresis stops a saturated client from thrashing
    /// on every single claim); at a tenant quota it resumes as soon as
    /// one of the tenant's jobs completes.
    ///
    /// # Errors
    ///
    /// [`SubmitError::PoolDead`] when a worker panicked — the only way a
    /// blocking submission fails.
    ///
    /// # Panics
    ///
    /// Like [`SimService::submit`], panics on a workload size outside the
    /// kernel layout's capacity.
    pub fn submit_blocking(&mut self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.submit_inner(spec, true)
    }

    fn submit_inner(&mut self, spec: JobSpec, block: bool) -> Result<JobId, SubmitError> {
        assert!(
            spec.workload.n >= 4 && spec.workload.n <= ulp_kernels::layout::MAX_N,
            "job workload n = {} outside supported range",
            spec.workload.n
        );
        let quota = self.shared.policy(spec.tenant).quota as u64;
        let capacity = self.shared.capacity as u64;
        // Admission control: reserve a backlog slot (and the tenant's
        // quota slot) under the work lock. The slot is reserved *before*
        // the push lands in a deque; the workers' claim/scan retry loop
        // already tolerates that gap (it is the same race as a claim
        // overlapping another worker's scan).
        {
            let mut state = self.shared.work.lock().expect("work lock");
            if !block {
                if state.dead_workers > 0 {
                    return Err(SubmitError::PoolDead);
                }
                if quota != 0 && state.admitted(spec.tenant) >= quota {
                    drop(state);
                    self.shared.quota_rejections.fetch_add(1, Ordering::Relaxed);
                    self.shared.metrics.quota_rejections.inc();
                    self.client_track.record(
                        EventKind::QuotaRejected,
                        NO_JOB,
                        spec.tenant.0,
                        spec.priority.index() as u8,
                        tier_code(spec.exec_tier),
                    );
                    return Err(SubmitError::QuotaExceeded {
                        tenant: spec.tenant,
                        quota: quota as usize,
                        spec,
                    });
                }
                if capacity != 0 && state.available >= capacity {
                    drop(state);
                    self.shared.rejections.fetch_add(1, Ordering::Relaxed);
                    self.shared.metrics.capacity_rejections.inc();
                    self.client_track.record(
                        EventKind::CapacityRejected,
                        NO_JOB,
                        spec.tenant.0,
                        spec.priority.index() as u8,
                        tier_code(spec.exec_tier),
                    );
                    return Err(SubmitError::AtCapacity {
                        spec,
                        capacity: self.shared.capacity,
                    });
                }
            } else {
                let watermark = capacity / 2;
                // Hysteresis: once the backlog hits capacity, stay parked
                // until it drains to the watermark.
                let mut draining = false;
                loop {
                    if state.dead_workers > 0 {
                        return Err(SubmitError::PoolDead);
                    }
                    if capacity != 0 && state.available >= capacity {
                        draining = true;
                    }
                    if draining && state.available <= watermark {
                        draining = false;
                    }
                    let over_quota = quota != 0 && state.admitted(spec.tenant) >= quota;
                    if !draining && !over_quota {
                        break;
                    }
                    state = self.shared.space.wait(state).expect("work lock");
                }
            }
            state.available += 1;
            state.admit(spec.tenant);
        }
        let id = self.submitted;
        self.submitted += 1;
        let queue = match spec.affinity {
            Some(worker) => worker % self.shared.queues.len(),
            None => {
                let q = self.next_queue;
                self.next_queue = (self.next_queue + 1) % self.shared.queues.len();
                q
            }
        };
        if spec.priority == Priority::High {
            self.shared.queued_high.fetch_add(1, Ordering::Relaxed);
        }
        let weight = self.shared.policy(spec.tenant).weight;
        self.shared.metrics.jobs_submitted.inc();
        if self.client_track.is_enabled() {
            let (job, tenant, priority, tier) = event_tags(id, &spec);
            self.client_track
                .record(EventKind::Submitted, job, tenant, priority, tier);
            self.client_track
                .record(EventKind::Queued, job, tenant, priority, tier);
        }
        self.shared.queues[queue].lock().expect("queue lock").push(
            QueuedJob {
                id,
                spec,
                stolen: false,
                enqueued: Instant::now(),
                resume: None,
                migrations: 0,
            },
            weight,
        );
        self.shared.available.notify_one();
        Ok(id)
    }

    /// The next completed job, blocking until a worker finishes one.
    /// Returns `None` once every submitted job's result has been received.
    ///
    /// # Panics
    ///
    /// Panics if the pool died (a worker panicked) with results still
    /// outstanding. Clients that must survive worker death (e.g. a shard
    /// runner reporting a structured error) use
    /// [`SimService::checked_recv`] instead.
    pub fn recv(&mut self) -> Option<JobResult> {
        self.checked_recv()
            .expect("a service worker died with jobs outstanding")
    }

    /// Like [`SimService::recv`], but reports pool death as a
    /// [`PoolDied`] error instead of panicking: `Ok(None)` once every
    /// submitted job's result has been received, `Ok(Some(..))` for the
    /// next completed job, `Err(PoolDied)` if a worker panicked with
    /// results still outstanding.
    ///
    /// After `Err(PoolDied)` the pool is dead: no further results will
    /// arrive, and the remaining submitted-but-unreceived jobs are lost.
    ///
    /// # Errors
    ///
    /// [`PoolDied`] when a worker thread panicked before every
    /// outstanding result was delivered.
    pub fn checked_recv(&mut self) -> Result<Option<JobResult>, PoolDied> {
        if self.received == self.submitted {
            return Ok(None);
        }
        match self.results.recv() {
            Ok(Message::Result(result)) => {
                self.received += 1;
                Ok(Some(*result))
            }
            Ok(Message::WorkerDied) | Err(mpsc::RecvError) => Err(PoolDied {
                outstanding: self.submitted - self.received,
            }),
        }
    }

    /// Like [`SimService::recv`] but non-blocking: `None` when no result
    /// is ready right now (or all results were already received).
    pub fn try_recv(&mut self) -> Option<JobResult> {
        if self.received == self.submitted {
            return None;
        }
        match self.results.try_recv() {
            Ok(Message::Result(result)) => {
                self.received += 1;
                Some(*result)
            }
            Ok(Message::WorkerDied) | Err(mpsc::TryRecvError::Disconnected) => {
                panic!("a service worker died with jobs outstanding")
            }
            Err(mpsc::TryRecvError::Empty) => None,
        }
    }

    /// Live snapshot of the scheduling counters and latency
    /// distributions (pooled, per-priority, per-tenant).
    pub fn stats(&self) -> ServiceStats {
        // Snapshot the rings under the lock, sort outside it: workers push
        // one sample per completed job and must not stall behind an
        // O(n log n) percentile computation.
        let book = self.shared.latencies.lock().expect("latency lock").clone();
        let peaks: Vec<(TenantId, u64)> = {
            let state = self.shared.work.lock().expect("work lock");
            state
                .tenants
                .iter()
                .map(|(tenant, load)| (*tenant, load.peak))
                .collect()
        };
        let mut per_tenant: Vec<TenantStats> = book
            .per_tenant
            .iter()
            .map(|(tenant, ring)| TenantStats {
                tenant: *tenant,
                peak_admitted: 0,
                latency: ring.stats(),
            })
            .collect();
        for (tenant, peak) in peaks {
            match per_tenant.iter_mut().find(|t| t.tenant == tenant) {
                Some(entry) => entry.peak_admitted = peak,
                None => per_tenant.push(TenantStats {
                    tenant,
                    peak_admitted: peak,
                    latency: LatencyStats::default(),
                }),
            }
        }
        per_tenant.sort_by_key(|t| t.tenant);
        ServiceStats {
            workers: self.shared.queues.len(),
            jobs_run: self.shared.jobs_run.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            jobs_stolen: self.shared.jobs_stolen.load(Ordering::Relaxed),
            steal_batch_max: self.shared.steal_batch_max.load(Ordering::Relaxed),
            rejections: self.shared.rejections.load(Ordering::Relaxed),
            quota_rejections: self.shared.quota_rejections.load(Ordering::Relaxed),
            evictions: self.shared.evictions.load(Ordering::Relaxed),
            deadline_misses: self.shared.deadline_misses.load(Ordering::Relaxed),
            platform_cache_hits: self.shared.cache_hits.load(Ordering::Relaxed),
            platforms_built: self.shared.platforms_built.load(Ordering::Relaxed),
            checkpoints_taken: self.shared.checkpoints_taken.load(Ordering::Relaxed),
            jobs_migrated: self.shared.jobs_migrated.load(Ordering::Relaxed),
            workers_died: self.shared.workers_died.load(Ordering::Relaxed),
            latency: book.aggregate.stats(),
            per_priority: std::array::from_fn(|i| book.per_priority[i].stats()),
            per_tenant,
            wall: self.started.elapsed(),
        }
    }

    /// Shuts the pool down and returns the final statistics. Workers first
    /// drain every job still queued (results of jobs not [received]
    /// beforehand are discarded), then exit and are joined.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked *unrecoverably* — a panicking
    /// worker whose in-flight migratable job was rescued and finished by
    /// the survivors (see [`JobSpec::checkpoint_every`]) counts in
    /// [`ServiceStats::workers_died`] but does not fail the shutdown.
    ///
    /// [received]: SimService::recv
    pub fn finish(mut self) -> ServiceStats {
        self.close(false);
        let mut panicked = false;
        for handle in self.workers.drain(..) {
            panicked |= handle.join().is_err();
        }
        if panicked && self.shared.work.lock().expect("work lock").dead_workers > 0 {
            panic!("service worker panicked");
        }
        self.stats()
    }

    /// Marks the pool closed and wakes every parked worker. With `cancel`,
    /// the queued backlog is discarded (and in-flight claims abandoned)
    /// instead of drained.
    fn close(&self, cancel: bool) {
        let mut state = self.shared.work.lock().expect("work lock");
        state.closed = true;
        if cancel {
            state.cancelled = true;
            state.available = 0;
        }
        drop(state);
        if cancel {
            for queue in &self.shared.queues {
                queue.lock().expect("queue lock").clear();
            }
        }
        self.shared.available.notify_all();
    }
}

impl Drop for SimService {
    /// A service dropped without [`SimService::finish`] (including during
    /// a panic) *cancels* the pool: queued jobs are discarded, each worker
    /// finishes at most its current job, and all workers are joined — so
    /// no thread outlives its handle and an unwinding client is not
    /// stalled behind the remaining backlog. Worker panics are swallowed
    /// here — `finish` is the path that surfaces them.
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.close(true);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Completion-side admission bookkeeping: releases the tenant's quota
/// slot and wakes quota waiters. Runs for executed *and* evicted jobs —
/// both leave the service.
fn release_admission(shared: &Shared, tenant: TenantId) {
    {
        let mut state = shared.work.lock().expect("work lock");
        state.release(tenant);
    }
    if shared.has_quotas {
        shared.space.notify_all();
    }
}

fn worker_loop(me: usize, shared: &Shared, results: &mpsc::Sender<Message>) {
    // One platform per (design, core-count), reused across jobs: the
    // dominant allocations (memories, cycle buffers) happen at most once
    // per key per worker.
    let mut cache: HashMap<(bool, usize), Platform> = HashMap::new();
    // The worker's recording handle, resolved once: each event is then a
    // clock read and a lock-free ring push (or one branch when disabled).
    let track = shared.telemetry.track(worker_track(me));
    loop {
        // Claim one unit of work (or learn the pool is closed and drained).
        {
            let mut state = shared.work.lock().expect("work lock");
            loop {
                if state.available > 0 {
                    state.available -= 1;
                    break;
                }
                if state.closed {
                    return;
                }
                state = shared.available.wait(state).expect("work lock");
            }
        }
        // With a bounded queue, a claim is exactly what frees backlog
        // space — wake a submitter blocked at capacity to re-check the
        // watermark.
        if shared.capacity != 0 {
            shared.space.notify_all();
        }
        // The claim guarantees a job exists in *some* deque; find it.
        // Priority is pool-wide: when the relaxed counter says a High job
        // is queued anywhere, serve the High class first — own deque,
        // then a High-only steal sweep — before touching lower classes on
        // the own deque. (The microsecond window where a submitter has
        // incremented the counter but not yet pushed simply falls through
        // to the general path.) The general path takes the own deque's
        // most urgent class (via the tenant round-robin), then steals half
        // of every tenant lane of another worker's highest class: the
        // thief runs the most urgent job of the batch now and relocates
        // the rest onto its own deque — still claimable by everyone — so
        // one lock acquisition pays for several future claims instead of
        // one. The retry loop covers the narrow race where another
        // claimant grabs the job this worker would have found mid-scan.
        let job = loop {
            if shared.queued_high.load(Ordering::Relaxed) > 0 {
                if let Some(job) = shared.queues[me].lock().expect("queue lock").pop_high() {
                    break job;
                }
                if let Some(job) = steal_scan(me, shared, true, &track) {
                    break job;
                }
            }
            if let Some(job) = shared.queues[me].lock().expect("queue lock").pop_own() {
                break job;
            }
            if let Some(job) = steal_scan(me, shared, false, &track) {
                break job;
            }
            // A fully failed scan normally means another claimant grabbed
            // the job this worker would have found — retry. But under
            // cancellation the deques were cleared, so the claim can never
            // be satisfied: abandon it and exit.
            if shared.work.lock().expect("work lock").cancelled {
                return;
            }
            std::thread::yield_now();
        };
        if job.spec.priority == Priority::High {
            // Exactly one decrement per High job, at the moment it is
            // claimed for execution (relocations keep it queued).
            shared.queued_high.fetch_sub(1, Ordering::Relaxed);
        }
        // Close the cancellation window: a job popped between `cancelled`
        // being set and the queues being cleared must not start — Drop
        // promises workers finish at most the job they were already
        // running.
        if shared.work.lock().expect("work lock").cancelled {
            return;
        }
        let queue_wait = job.enqueued.elapsed();
        let tags = event_tags(job.id, &job.spec);
        track.record(EventKind::Claimed, tags.0, tags.1, tags.2, tags.3);
        shared
            .metrics
            .queue_wait_us
            .observe(queue_wait.as_micros() as u64);
        // Deadline-infeasible eviction: a budget strictly below the
        // provable cycle floor can never be met, so running the job would
        // only burn a worker on a certain miss and push every queued
        // job's wait out further. Return it as a typed eviction instead.
        if let Some(budget) = job.spec.deadline_cycles {
            let min_cycles = job.spec.min_run_cycles();
            if budget < min_cycles {
                shared.evictions.fetch_add(1, Ordering::Relaxed);
                shared.metrics.evictions.inc();
                track.record(EventKind::Evicted, tags.0, tags.1, tags.2, tags.3);
                release_admission(shared, job.spec.tenant);
                let _ = results.send(Message::Result(Box::new(JobResult {
                    id: job.id,
                    tenant: job.spec.tenant,
                    worker: me,
                    migrations: job.migrations,
                    stolen: job.stolen,
                    cache_hit: false,
                    queue_wait,
                    run_time: Duration::ZERO,
                    deadline_missed: false,
                    outcome: Err(JobError::Evicted {
                        deadline_cycles: budget,
                        min_cycles,
                    }),
                })));
                continue;
            }
        }
        // A job with a checkpoint cadence runs on the parkable path: the
        // platform is snapshotted every `checkpoint_every` cycles, and the
        // snapshot keeps the pool's in-flight registry current so the job
        // survives this worker. VCD jobs are excluded — the tracer's text
        // stream is not part of the platform checkpoint.
        let migratable = job.spec.checkpoint_every.is_some()
            && !matches!(job.spec.observers, ObserverSelection::Vcd);
        let run_start = Instant::now();
        let (cache_hit, outcome) = if migratable {
            *shared.inflight[me].lock().expect("inflight lock") = Some(job.clone());
            let (cache_hit, run) = run_job_checkpointed(me, &job, &mut cache, shared, &track, tags);
            match run {
                Ok(Some(output)) => {
                    shared.inflight[me].lock().expect("inflight lock").take();
                    (cache_hit, Ok(output))
                }
                Ok(None) => {
                    // Parked at a checkpoint: re-queue the registry copy
                    // (it carries the latest checkpoint) instead of
                    // completing. No result is sent and the admission
                    // slot stays held — the job is still in the service.
                    let parked = shared.inflight[me]
                        .lock()
                        .expect("inflight lock")
                        .take()
                        .expect("parked job is registered in-flight");
                    track.record(EventKind::Migrated, tags.0, tags.1, tags.2, tags.3);
                    shared.requeue(me, parked);
                    if shared.kill_flags[me].swap(false, Ordering::Relaxed) {
                        // Injected failure: this worker is "lost". The
                        // survivors resume the job from its checkpoint.
                        shared.workers_died.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    continue;
                }
                Err(err) => {
                    shared.inflight[me].lock().expect("inflight lock").take();
                    (cache_hit, Err(err))
                }
            }
        } else {
            run_job(&job.spec, &mut cache, shared, &track, tags)
        };
        let run_time = run_start.elapsed();
        track.record(EventKind::RunEnd, tags.0, tags.1, tags.2, tags.3);
        shared.metrics.run_us.observe(run_time.as_micros() as u64);
        shared.metrics.jobs_completed.inc();
        if let Ok(out) = &outcome {
            let jit = &out.run.stats.jit;
            shared.metrics.jit_translations.add(jit.translations);
            shared.metrics.jit_hits.add(jit.hits);
            shared.metrics.jit_compiled_cycles.add(jit.compiled_cycles);
            shared.metrics.jit_fallback_cycles.add(jit.fallback_cycles);
        }
        let deadline_missed = match (&outcome, job.spec.deadline_cycles) {
            (Ok(out), Some(budget)) => out.run.stats.cycles > budget,
            _ => false,
        };
        if deadline_missed {
            shared.deadline_misses.fetch_add(1, Ordering::Relaxed);
            shared.metrics.deadline_misses.inc();
        }
        shared.latencies.lock().expect("latency lock").record(
            job.spec.tenant,
            job.spec.priority,
            (queue_wait + run_time).as_nanos() as u64,
        );
        shared.jobs_run.fetch_add(1, Ordering::Relaxed);
        release_admission(shared, job.spec.tenant);
        // A closed receiver (client finished without draining) is fine —
        // the result is simply discarded.
        let _ = results.send(Message::Result(Box::new(JobResult {
            id: job.id,
            tenant: job.spec.tenant,
            worker: me,
            migrations: job.migrations,
            stolen: job.stolen,
            cache_hit,
            queue_wait,
            run_time,
            deadline_missed,
            outcome: outcome.map_err(JobError::from),
        })));
    }
}

/// One full steal sweep over the other workers' deques: takes half of
/// every tenant lane of the first victim's highest matching class (the
/// [`Priority::High`] class only, with `high_only`), relocates the
/// surplus onto `me`'s own deque — still claimable by everyone — and
/// returns the most urgent stolen job (earliest deadline, then oldest)
/// to run now. `None` when no victim had matching work. Every relocated
/// job is recorded as a [`EventKind::Stolen`] event on the thief's
/// `track`.
fn steal_scan(me: usize, shared: &Shared, high_only: bool, track: &Track) -> Option<QueuedJob> {
    let n = shared.queues.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        let mut batch = {
            let mut queue = shared.queues[victim].lock().expect("queue lock");
            if high_only {
                queue.steal_half_high()
            } else {
                queue.steal_half()
            }
        };
        if batch.is_empty() {
            continue;
        }
        shared.steals.fetch_add(1, Ordering::Relaxed);
        shared
            .jobs_stolen
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        shared
            .steal_batch_max
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        shared.metrics.steals.inc();
        shared.metrics.jobs_stolen.add(batch.len() as u64);
        for job in &mut batch {
            job.stolen = true;
            if track.is_enabled() {
                let (id, tenant, priority, tier) = event_tags(job.id, &job.spec);
                track.record(EventKind::Stolen, id, tenant, priority, tier);
            }
        }
        let run_now = batch
            .iter()
            .enumerate()
            .min_by_key(|(_, job)| (job.deadline_key(), job.enqueued))
            .map(|(i, _)| i)
            .expect("non-empty batch");
        let first = batch.remove(run_now);
        if !batch.is_empty() {
            let mut own = shared.queues[me].lock().expect("queue lock");
            for job in batch {
                let weight = shared.policy(job.spec.tenant).weight;
                own.push(job, weight);
            }
        }
        return Some(first);
    }
    None
}

/// The worker's platform for `spec`, cache-hit or freshly built, with the
/// spec's cycle budget and execution tier adopted either way. Shared by
/// the plain and checkpointed run paths so both count cache traffic and
/// platform builds identically.
fn cached_platform<'c>(
    spec: &JobSpec,
    cache: &'c mut HashMap<(bool, usize), Platform>,
    shared: &Shared,
    track: &Track,
    tags: (u64, u32, u8, u8),
) -> Result<(bool, &'c mut Platform), RunnerError> {
    use std::collections::hash_map::Entry;
    match cache.entry((spec.with_sync, spec.cores)) {
        Entry::Occupied(e) => {
            shared.cache_hits.fetch_add(1, Ordering::Relaxed);
            shared.metrics.platform_cache_hits.inc();
            track.record(EventKind::PlatformCacheHit, tags.0, tags.1, tags.2, tags.3);
            let platform = e.into_mut();
            // Reused platforms keep their allocations but must adopt this
            // job's cycle budget and execution tier — both differ across
            // jobs. The translation cache survives, so a compiled-tier job
            // landing on a warm platform reuses the existing traces.
            platform.set_max_cycles(spec.workload.max_cycles);
            platform.set_exec_tier(spec.exec_tier);
            Ok((true, platform))
        }
        Entry::Vacant(e) => {
            let cfg = PlatformConfig::paper(spec.with_sync)
                .with_cores(spec.cores)
                .with_max_cycles(spec.workload.max_cycles)
                .with_exec_tier(spec.exec_tier);
            let platform = Platform::new(cfg)?;
            shared.platforms_built.fetch_add(1, Ordering::Relaxed);
            shared.metrics.platforms_built.inc();
            track.record(EventKind::PlatformBuilt, tags.0, tags.1, tags.2, tags.3);
            Ok((false, e.insert(platform)))
        }
    }
}

fn run_job(
    spec: &JobSpec,
    cache: &mut HashMap<(bool, usize), Platform>,
    shared: &Shared,
    track: &Track,
    tags: (u64, u32, u8, u8),
) -> (bool, Result<JobOutput, RunnerError>) {
    // The kernels assume one private DM bank per core (≤ 8); larger
    // baseline platforms would build fine but panic the worker inside the
    // kernel runner, so reject the job with an error outcome instead.
    if spec.cores == 0 || spec.cores > 8 {
        track.record(EventKind::RunStart, tags.0, tags.1, tags.2, tags.3);
        return (
            false,
            Err(ulp_platform::ConfigError::BadCoreCount(spec.cores).into()),
        );
    }
    let (cache_hit, platform) = match cached_platform(spec, cache, shared, track, tags) {
        Ok(pair) => pair,
        Err(err) => {
            track.record(EventKind::RunStart, tags.0, tags.1, tags.2, tags.3);
            return (false, Err(err));
        }
    };
    track.record(EventKind::RunStart, tags.0, tags.1, tags.2, tags.3);
    let outcome = match &spec.observers {
        ObserverSelection::None => {
            run_benchmark_reusing_with(spec.benchmark, platform, &spec.workload, &mut [])
                .map(|run| (run, JobArtifacts::None))
        }
        ObserverSelection::PcTrace { limit } => {
            let mut trace = PcTrace::new(*limit);
            run_benchmark_reusing_with(spec.benchmark, platform, &spec.workload, &mut [&mut trace])
                .map(|run| (run, JobArtifacts::PcTrace(trace.rows().to_vec())))
        }
        ObserverSelection::Vcd => {
            let mut vcd = VcdTracer::new(platform);
            run_benchmark_reusing_with(spec.benchmark, platform, &spec.workload, &mut [&mut vcd])
                .map(|run| (run, JobArtifacts::Vcd(vcd.finish())))
        }
        ObserverSelection::BankHeatMap { window } => {
            let mut map = BankHeatMap::for_dm(platform.config(), *window);
            run_benchmark_reusing_with(spec.benchmark, platform, &spec.workload, &mut [&mut map])
                .map(|run| (run, JobArtifacts::BankHeatMap(map.rows().to_vec())))
        }
    };
    (
        cache_hit,
        outcome.map(|(run, artifacts)| JobOutput {
            cores: spec.cores,
            run,
            artifacts,
        }),
    )
}

/// The parkable run path for migratable jobs: snapshots the platform
/// every [`JobSpec::checkpoint_every`] cycles, keeps the pool's in-flight
/// registry pointed at the latest checkpoint, and parks
/// (`Ok(None)`) when the worker is marked for failure or urgent work is
/// queued pool-wide. Resumed jobs ([`QueuedJob::resume`]) restore the
/// platform from their checkpoint instead of starting over; results are
/// bit-identical to an uninterrupted run either way.
///
/// Observers ride the handle API ([`Platform::attach`]) rather than the
/// borrowed-slice path, so their state is captured by every checkpoint
/// and survives migration with the job.
fn run_job_checkpointed(
    me: usize,
    job: &QueuedJob,
    cache: &mut HashMap<(bool, usize), Platform>,
    shared: &Shared,
    track: &Track,
    tags: (u64, u32, u8, u8),
) -> (bool, Result<Option<JobOutput>, RunnerError>) {
    let spec = &job.spec;
    // Same guard as `run_job`: the kernels assume ≤ 8 cores.
    if spec.cores == 0 || spec.cores > 8 {
        track.record(EventKind::RunStart, tags.0, tags.1, tags.2, tags.3);
        return (
            false,
            Err(ulp_platform::ConfigError::BadCoreCount(spec.cores).into()),
        );
    }
    let (cache_hit, platform) = match cached_platform(spec, cache, shared, track, tags) {
        Ok(pair) => pair,
        Err(err) => {
            track.record(EventKind::RunStart, tags.0, tags.1, tags.2, tags.3);
            return (false, Err(err));
        }
    };
    // Attached (not slice-borrowed) observers: the checkpoint captures
    // their state, and on resume `restore_from` reloads it into the
    // freshly attached instances by label. Detached again below — the
    // cached platform must not leak this job's observers into later jobs.
    let handle = match &spec.observers {
        ObserverSelection::None | ObserverSelection::Vcd => None,
        ObserverSelection::PcTrace { limit } => {
            Some(platform.attach(Box::new(PcTrace::new(*limit))))
        }
        ObserverSelection::BankHeatMap { window } => {
            let map = BankHeatMap::for_dm(platform.config(), *window);
            Some(platform.attach(Box::new(map)))
        }
    };
    if job.resume.is_some() {
        track.record(EventKind::Restored, tags.0, tags.1, tags.2, tags.3);
    }
    track.record(EventKind::RunStart, tags.0, tags.1, tags.2, tags.3);
    let every = spec.checkpoint_every.unwrap_or(u64::MAX).max(1);
    let migrations = job.migrations;
    let on_checkpoint = |ckpt: Checkpoint| {
        shared.checkpoints_taken.fetch_add(1, Ordering::Relaxed);
        shared.metrics.checkpoints_taken.inc();
        shared.metrics.checkpoint_cycles.observe(ckpt.cycle);
        track.record(EventKind::Snapshot, tags.0, tags.1, tags.2, tags.3);
        // Best-effort persistence: the blob backs external inspection
        // and restart tooling; migration itself rides the in-memory
        // checkpoint, so a full disk must not fail the job.
        if let Some(dir) = &shared.checkpoint_dir {
            let _ = std::fs::write(dir.join(format!("job-{}.ckpt", tags.0)), ckpt.to_bytes());
        }
        let ckpt = Arc::new(ckpt);
        if let Ok(mut slot) = shared.inflight[me].lock() {
            if let Some(inflight) = slot.as_mut() {
                inflight.resume = Some(ckpt);
            }
        }
        let killed = shared.kill_flags[me].load(Ordering::Relaxed);
        // Cooperative yield: a non-urgent job parks (a bounded number of
        // times) when urgent work is queued anywhere in the pool, so a
        // High job never waits out a long migratable run.
        let yield_to_high = spec.priority != Priority::High
            && migrations < MAX_MIGRATIONS
            && shared.queued_high.load(Ordering::Relaxed) > 0;
        if killed || yield_to_high {
            CheckpointControl::Park
        } else {
            CheckpointControl::Continue
        }
    };
    let run = match job.resume.as_deref() {
        Some(ckpt) => resume_benchmark_checkpointed(
            spec.benchmark,
            platform,
            &spec.workload,
            ckpt,
            every,
            on_checkpoint,
        ),
        None => run_benchmark_checkpointed(
            spec.benchmark,
            platform,
            &spec.workload,
            every,
            on_checkpoint,
        ),
    };
    let outcome = match run {
        Ok(Some(run)) => {
            let artifacts = match (&spec.observers, &handle) {
                (ObserverSelection::PcTrace { .. }, Some(handle)) => JobArtifacts::PcTrace(
                    platform
                        .observer_as::<PcTrace>(handle)
                        .map(|trace| trace.rows().to_vec())
                        .unwrap_or_default(),
                ),
                (ObserverSelection::BankHeatMap { .. }, Some(handle)) => JobArtifacts::BankHeatMap(
                    platform
                        .observer_as::<BankHeatMap>(handle)
                        .map(|map| map.rows().to_vec())
                        .unwrap_or_default(),
                ),
                _ => JobArtifacts::None,
            };
            Ok(Some(JobOutput {
                cores: spec.cores,
                run,
                artifacts,
            }))
        }
        other => other.map(|_| None),
    };
    if let Some(handle) = handle {
        platform.detach(handle);
    }
    (cache_hit, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_empty_window_is_all_zero() {
        let stats = LatencyStats::compute(0, 0, &[]);
        assert_eq!(stats, LatencyStats::default());
        assert_eq!(stats.samples, 0);
        assert_eq!(stats.p50, Duration::ZERO);
        assert_eq!(stats.p95, Duration::ZERO);
        assert_eq!(stats.max, Duration::ZERO);
    }

    #[test]
    fn latency_stats_single_sample_is_every_percentile() {
        let stats = LatencyStats::compute(1, 700, &[700]);
        assert_eq!(stats.samples, 1);
        assert_eq!(stats.p50, Duration::from_nanos(700));
        assert_eq!(stats.p95, Duration::from_nanos(700));
        assert_eq!(stats.max, Duration::from_nanos(700));
    }

    #[test]
    fn latency_stats_two_samples_split_lower_upper() {
        // Nearest-rank over N = 2: p50 is the 1st smallest (the lower
        // sample), p95 the 2nd (the upper). Order of the window must not
        // matter.
        for window in [[100u64, 900], [900, 100]] {
            let stats = LatencyStats::compute(2, 900, &window);
            assert_eq!(stats.p50, Duration::from_nanos(100));
            assert_eq!(stats.p95, Duration::from_nanos(900));
            assert_eq!(stats.max, Duration::from_nanos(900));
        }
    }

    #[test]
    fn latency_stats_lifetime_fields_exceed_window() {
        // A ring that has wrapped reports lifetime samples/max alongside
        // windowed percentiles.
        let stats = LatencyStats::compute(10_000, 5_000, &[10, 20, 30]);
        assert_eq!(stats.samples, 10_000);
        assert_eq!(stats.max, Duration::from_nanos(5_000));
        assert_eq!(stats.p50, Duration::from_nanos(20));
    }

    #[test]
    fn service_stats_to_json_shape() {
        let mut stats = ServiceStats {
            workers: 2,
            jobs_run: 5,
            ..ServiceStats::default()
        };
        stats.per_tenant.push(TenantStats {
            tenant: TenantId(7),
            peak_admitted: 3,
            latency: LatencyStats::compute(1, 50, &[50]),
        });
        let json = stats.to_json();
        assert!(json.starts_with("{\"schema\":3,\"workers\":2,\"jobs_run\":5,"));
        assert!(json.contains("\"checkpoints_taken\":0,\"jobs_migrated\":0,\"workers_died\":0,"));
        assert!(json.contains("\"per_priority\":{\"high\":{"));
        assert!(json.contains("\"per_tenant\":[{\"tenant\":7,\"peak_admitted\":3,"));
        assert!(json.contains("\"p50_ns\":50"));
        assert!(json.ends_with('}'));
        // Balanced braces/brackets — the cheap structural validity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}

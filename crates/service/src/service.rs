//! The batch simulation service: a long-lived worker pool with per-worker
//! platform caches, work-stealing deques and streamed results.

use crate::job::{JobArtifacts, JobId, JobOutput, JobResult, JobSpec, ObserverSelection};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use ulp_kernels::{run_benchmark_reusing_with, RunnerError};
use ulp_platform::{BankHeatMap, PcTrace, Platform, PlatformConfig, VcdTracer};

/// Pool shape of a [`SimService`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceConfig {
    /// Worker threads; `0` = one per available hardware thread.
    pub workers: usize,
}

impl ServiceConfig {
    /// A pool with exactly `workers` threads.
    pub fn with_workers(workers: usize) -> ServiceConfig {
        ServiceConfig { workers }
    }

    /// The concrete pool size this configuration resolves to: `workers`,
    /// or one thread per available hardware thread when `workers == 0`.
    /// Public so clients sizing their own batches (e.g. the sweep runner
    /// capping the pool at the grid size) resolve exactly like the pool.
    pub fn resolved_workers(self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// Scheduling observability: what the pool did. Snapshot via
/// [`SimService::stats`], final values from [`SimService::finish`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs executed to completion (success or error).
    pub jobs_run: u64,
    /// Jobs a worker took from another worker's deque.
    pub steals: u64,
    /// Jobs served from a worker's platform cache.
    pub platform_cache_hits: u64,
    /// Platforms constructed across all workers (the cache misses).
    pub platforms_built: u64,
    /// Wall time since the pool started.
    pub wall: Duration,
}

/// Guarded by [`Shared::work`]: how many submitted jobs are not yet
/// claimed by a worker, and whether the service is shutting down.
struct WorkState {
    /// Jobs pushed to some deque and not yet claimed. A worker claims by
    /// decrementing under the lock, then locates the job in the deques —
    /// the counter is the wait condition, the deques hold the payload.
    available: u64,
    /// Set by [`SimService::finish`]; workers exit once `available == 0`.
    closed: bool,
    /// Set when the service is dropped without `finish`: queued jobs are
    /// discarded and workers abandon in-flight claims instead of draining
    /// the backlog.
    cancelled: bool,
}

/// What flows back over the result channel: completed jobs, or a death
/// notice a panicking worker emits while unwinding so blocked clients
/// fail fast instead of hanging (surviving workers keep the channel open,
/// so a plain disconnect is not observable in pools of 2+).
enum Message {
    Result(Box<JobResult>),
    WorkerDied,
}

struct Shared {
    /// One deque per worker. Owners pop from the back (LIFO keeps their
    /// platform cache warm), thieves steal from the front (FIFO takes the
    /// oldest, largest-backlog work first).
    queues: Vec<Mutex<VecDeque<(JobId, JobSpec)>>>,
    work: Mutex<WorkState>,
    available: Condvar,
    jobs_run: AtomicU64,
    steals: AtomicU64,
    cache_hits: AtomicU64,
    platforms_built: AtomicU64,
}

/// A pool of simulation workers behind a submission handle.
///
/// Jobs ([`JobSpec`]) are distributed over per-worker deques (round-robin,
/// or pinned via [`JobSpec::pinned`]); idle workers steal from busy ones,
/// so mixed-size grids — a 2-core SQRT32 cell next to an 8-core
/// full-signal MRPDLN cell — keep every thread busy. Each worker keeps one
/// [`Platform`] per `(design, cores)` key and reuses it via
/// [`ulp_kernels::run_benchmark_reusing_with`], so the dominant
/// allocations happen once per worker, not once per job. Completed
/// [`JobResult`]s stream back through [`SimService::recv`] as workers
/// finish them — a client never waits for the whole batch.
///
/// ```no_run
/// use std::sync::Arc;
/// use ulp_kernels::{Benchmark, WorkloadConfig};
/// use ulp_service::{JobSpec, ServiceConfig, SimService};
///
/// let mut service = SimService::start(ServiceConfig::default());
/// let workload = Arc::new(WorkloadConfig::quick_test());
/// for cores in [2, 4, 8] {
///     service.submit(JobSpec::new(Benchmark::Sqrt32, true, cores, workload.clone()));
/// }
/// while let Some(result) = service.recv() {
///     let out = result.outcome.expect("job ran");
///     println!("{} cores: {} cycles", out.cores, out.run.stats.cycles);
/// }
/// let stats = service.finish();
/// assert_eq!(stats.jobs_run, 3);
/// ```
pub struct SimService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    results: mpsc::Receiver<Message>,
    next_queue: usize,
    submitted: u64,
    received: u64,
    started: Instant,
}

impl SimService {
    /// Starts the worker pool.
    pub fn start(config: ServiceConfig) -> SimService {
        let workers = config.resolved_workers().max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            work: Mutex::new(WorkState {
                available: 0,
                closed: false,
                cancelled: false,
            }),
            available: Condvar::new(),
            jobs_run: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            platforms_built: AtomicU64::new(0),
        });
        let (tx, rx) = mpsc::channel();
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    /// Emits [`Message::WorkerDied`] if the worker unwinds,
                    /// so clients blocked in `recv` panic instead of
                    /// waiting on a result that will never come.
                    struct DeathWatch(mpsc::Sender<Message>);
                    impl Drop for DeathWatch {
                        fn drop(&mut self) {
                            if std::thread::panicking() {
                                let _ = self.0.send(Message::WorkerDied);
                            }
                        }
                    }
                    let _watch = DeathWatch(tx.clone());
                    worker_loop(me, &shared, &tx);
                })
            })
            .collect();
        SimService {
            shared,
            workers: handles,
            results: rx,
            next_queue: 0,
            submitted: 0,
            received: 0,
            started: Instant::now(),
        }
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Enqueues a job and returns its id. The result arrives through
    /// [`SimService::recv`] whenever a worker completes it. A core count
    /// outside 1..=8 is not rejected here — the job completes with a
    /// [`ulp_platform::ConfigError`] outcome, like any other
    /// configuration the platform/kernels cannot run. An affinity pin
    /// ([`JobSpec::pinned`]) is validated against the actual pool size:
    /// out-of-range indices are clamped (modulo the worker count) onto a
    /// real deque, never a nonexistent one.
    ///
    /// # Panics
    ///
    /// Panics on a workload size outside the kernel layout's capacity
    /// (the kernels would panic the worker on it), so that class of
    /// invalid submission fails in the submitting thread, not the pool.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        assert!(
            spec.workload.n >= 4 && spec.workload.n <= ulp_kernels::layout::MAX_N,
            "job workload n = {} outside supported range",
            spec.workload.n
        );
        let id = self.submitted;
        self.submitted += 1;
        let queue = match spec.affinity {
            Some(worker) => worker % self.shared.queues.len(),
            None => {
                let q = self.next_queue;
                self.next_queue = (self.next_queue + 1) % self.shared.queues.len();
                q
            }
        };
        self.shared.queues[queue]
            .lock()
            .expect("queue lock")
            .push_back((id, spec));
        let mut state = self.shared.work.lock().expect("work lock");
        state.available += 1;
        drop(state);
        self.shared.available.notify_one();
        id
    }

    /// The next completed job, blocking until a worker finishes one.
    /// Returns `None` once every submitted job's result has been received.
    ///
    /// # Panics
    ///
    /// Panics if the pool died (a worker panicked) with results still
    /// outstanding.
    pub fn recv(&mut self) -> Option<JobResult> {
        if self.received == self.submitted {
            return None;
        }
        match self.results.recv() {
            Ok(Message::Result(result)) => {
                self.received += 1;
                Some(*result)
            }
            Ok(Message::WorkerDied) | Err(mpsc::RecvError) => {
                panic!("a service worker died with jobs outstanding")
            }
        }
    }

    /// Like [`SimService::recv`] but non-blocking: `None` when no result
    /// is ready right now (or all results were already received).
    pub fn try_recv(&mut self) -> Option<JobResult> {
        if self.received == self.submitted {
            return None;
        }
        match self.results.try_recv() {
            Ok(Message::Result(result)) => {
                self.received += 1;
                Some(*result)
            }
            Ok(Message::WorkerDied) | Err(mpsc::TryRecvError::Disconnected) => {
                panic!("a service worker died with jobs outstanding")
            }
            Err(mpsc::TryRecvError::Empty) => None,
        }
    }

    /// Live snapshot of the scheduling counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            workers: self.shared.queues.len(),
            jobs_run: self.shared.jobs_run.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            platform_cache_hits: self.shared.cache_hits.load(Ordering::Relaxed),
            platforms_built: self.shared.platforms_built.load(Ordering::Relaxed),
            wall: self.started.elapsed(),
        }
    }

    /// Shuts the pool down and returns the final statistics. Workers first
    /// drain every job still queued (results of jobs not [received]
    /// beforehand are discarded), then exit and are joined.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    ///
    /// [received]: SimService::recv
    pub fn finish(mut self) -> ServiceStats {
        self.close(false);
        for handle in self.workers.drain(..) {
            handle.join().expect("service worker panicked");
        }
        self.stats()
    }

    /// Marks the pool closed and wakes every parked worker. With `cancel`,
    /// the queued backlog is discarded (and in-flight claims abandoned)
    /// instead of drained.
    fn close(&self, cancel: bool) {
        let mut state = self.shared.work.lock().expect("work lock");
        state.closed = true;
        if cancel {
            state.cancelled = true;
            state.available = 0;
        }
        drop(state);
        if cancel {
            for queue in &self.shared.queues {
                queue.lock().expect("queue lock").clear();
            }
        }
        self.shared.available.notify_all();
    }
}

impl Drop for SimService {
    /// A service dropped without [`SimService::finish`] (including during
    /// a panic) *cancels* the pool: queued jobs are discarded, each worker
    /// finishes at most its current job, and all workers are joined — so
    /// no thread outlives its handle and an unwinding client is not
    /// stalled behind the remaining backlog. Worker panics are swallowed
    /// here — `finish` is the path that surfaces them.
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.close(true);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(me: usize, shared: &Shared, results: &mpsc::Sender<Message>) {
    // One platform per (design, core-count), reused across jobs: the
    // dominant allocations (memories, cycle buffers) happen at most once
    // per key per worker.
    let mut cache: HashMap<(bool, usize), Platform> = HashMap::new();
    loop {
        // Claim one unit of work (or learn the pool is closed and drained).
        {
            let mut state = shared.work.lock().expect("work lock");
            loop {
                if state.available > 0 {
                    state.available -= 1;
                    break;
                }
                if state.closed {
                    return;
                }
                state = shared.available.wait(state).expect("work lock");
            }
        }
        // The claim guarantees a job exists in *some* deque; find it. Own
        // deque first (back = most recently pushed, cache-warm), then
        // steal from the front of the others. The retry loop covers the
        // narrow race where another claimant grabs the job this worker
        // would have found mid-scan.
        let (id, spec, stolen) = loop {
            if let Some((id, spec)) = shared.queues[me].lock().expect("queue lock").pop_back() {
                break (id, spec, false);
            }
            let n = shared.queues.len();
            let mut found = None;
            for offset in 1..n {
                let victim = (me + offset) % n;
                if let Some(job) = shared.queues[victim]
                    .lock()
                    .expect("queue lock")
                    .pop_front()
                {
                    found = Some(job);
                    break;
                }
            }
            if let Some((id, spec)) = found {
                break (id, spec, true);
            }
            // A fully failed scan normally means another claimant grabbed
            // the job this worker would have found — retry. But under
            // cancellation the deques were cleared, so the claim can never
            // be satisfied: abandon it and exit.
            if shared.work.lock().expect("work lock").cancelled {
                return;
            }
            std::thread::yield_now();
        };
        // Close the cancellation window: a job popped between `cancelled`
        // being set and the queues being cleared must not start — Drop
        // promises workers finish at most the job they were already
        // running.
        if shared.work.lock().expect("work lock").cancelled {
            return;
        }
        if stolen {
            shared.steals.fetch_add(1, Ordering::Relaxed);
        }
        let (cache_hit, outcome) = run_job(&spec, &mut cache, shared);
        shared.jobs_run.fetch_add(1, Ordering::Relaxed);
        // A closed receiver (client finished without draining) is fine —
        // the result is simply discarded.
        let _ = results.send(Message::Result(Box::new(JobResult {
            id,
            worker: me,
            stolen,
            cache_hit,
            outcome,
        })));
    }
}

fn run_job(
    spec: &JobSpec,
    cache: &mut HashMap<(bool, usize), Platform>,
    shared: &Shared,
) -> (bool, Result<JobOutput, RunnerError>) {
    use std::collections::hash_map::Entry;
    // The kernels assume one private DM bank per core (≤ 8); larger
    // baseline platforms would build fine but panic the worker inside the
    // kernel runner, so reject the job with an error outcome instead.
    if spec.cores == 0 || spec.cores > 8 {
        return (
            false,
            Err(ulp_platform::ConfigError::BadCoreCount(spec.cores).into()),
        );
    }
    let (cache_hit, platform) = match cache.entry((spec.with_sync, spec.cores)) {
        Entry::Occupied(e) => {
            shared.cache_hits.fetch_add(1, Ordering::Relaxed);
            let platform = e.into_mut();
            // Reused platforms keep their allocations but must adopt this
            // job's cycle budget — workloads differ across jobs.
            platform.set_max_cycles(spec.workload.max_cycles);
            (true, platform)
        }
        Entry::Vacant(e) => {
            let cfg = PlatformConfig::paper(spec.with_sync)
                .with_cores(spec.cores)
                .with_max_cycles(spec.workload.max_cycles);
            match Platform::new(cfg) {
                Ok(platform) => {
                    shared.platforms_built.fetch_add(1, Ordering::Relaxed);
                    (false, e.insert(platform))
                }
                Err(err) => return (false, Err(err.into())),
            }
        }
    };
    let outcome = match &spec.observers {
        ObserverSelection::None => {
            run_benchmark_reusing_with(spec.benchmark, platform, &spec.workload, &mut [])
                .map(|run| (run, JobArtifacts::None))
        }
        ObserverSelection::PcTrace { limit } => {
            let mut trace = PcTrace::new(*limit);
            run_benchmark_reusing_with(spec.benchmark, platform, &spec.workload, &mut [&mut trace])
                .map(|run| (run, JobArtifacts::PcTrace(trace.rows().to_vec())))
        }
        ObserverSelection::Vcd => {
            let mut vcd = VcdTracer::new(platform);
            run_benchmark_reusing_with(spec.benchmark, platform, &spec.workload, &mut [&mut vcd])
                .map(|run| (run, JobArtifacts::Vcd(vcd.finish())))
        }
        ObserverSelection::BankHeatMap { window } => {
            let mut map = BankHeatMap::for_dm(platform.config(), *window);
            run_benchmark_reusing_with(spec.benchmark, platform, &spec.workload, &mut [&mut map])
                .map(|run| (run, JobArtifacts::BankHeatMap(map.rows().to_vec())))
        }
    };
    (
        cache_hit,
        outcome.map(|(run, artifacts)| JobOutput {
            cores: spec.cores,
            run,
            artifacts,
        }),
    )
}

//! The batch simulation service: a long-lived worker pool with per-worker
//! platform caches, bounded priority deques with work stealing, and
//! streamed results.

use crate::job::{JobArtifacts, JobId, JobOutput, JobResult, JobSpec, ObserverSelection, Priority};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use ulp_kernels::{run_benchmark_reusing_with, RunnerError};
use ulp_platform::{BankHeatMap, PcTrace, Platform, PlatformConfig, VcdTracer};

/// Pool shape of a [`SimService`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceConfig {
    /// Worker threads; `0` = one per available hardware thread.
    pub workers: usize,
    /// Bound on the queued (submitted but unclaimed) backlog; `0` =
    /// unbounded. At capacity, [`SimService::try_submit`] rejects and
    /// [`SimService::submit`] blocks until the backlog drains to the
    /// watermark (half the capacity).
    pub queue_capacity: usize,
}

impl ServiceConfig {
    /// A pool with exactly `workers` threads and an unbounded queue.
    pub fn with_workers(workers: usize) -> ServiceConfig {
        ServiceConfig {
            workers,
            queue_capacity: 0,
        }
    }

    /// Bounds the queued backlog at `capacity` jobs (`0` = unbounded).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServiceConfig {
        self.queue_capacity = capacity;
        self
    }

    /// The concrete pool size this configuration resolves to: `workers`,
    /// or one thread per available hardware thread when `workers == 0`.
    /// Public so clients sizing their own batches (e.g. the sweep runner
    /// capping the pool at the grid size) resolve exactly like the pool.
    pub fn resolved_workers(self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// Latency distribution of completed jobs (queue wait + run time).
/// `samples` and `max` cover the pool's whole lifetime; the percentiles
/// are computed over a sliding window of the most recent
/// [`LATENCY_WINDOW`] completions, so a long-lived service's memory stays
/// bounded and its percentiles track *current* traffic, not ancient
/// history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Completed jobs over the pool's lifetime.
    pub samples: u64,
    /// Median end-to-end latency (nearest-rank, recent window).
    pub p50: Duration,
    /// 95th-percentile end-to-end latency (nearest-rank, recent window —
    /// the tail CI gates on).
    pub p95: Duration,
    /// Worst end-to-end latency ever observed (not windowed).
    pub max: Duration,
}

impl LatencyStats {
    fn compute(total: u64, max_ns: u64, window: &[u64]) -> LatencyStats {
        if window.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = window.to_vec();
        sorted.sort_unstable();
        // Nearest-rank: the ceil(p/100 * N)-th smallest sample.
        let rank = |p: usize| sorted[(p * sorted.len()).div_ceil(100).max(1) - 1];
        LatencyStats {
            samples: total,
            p50: Duration::from_nanos(rank(50)),
            p95: Duration::from_nanos(rank(95)),
            max: Duration::from_nanos(max_ns),
        }
    }
}

/// Completions the latency percentiles are computed over (the ring's
/// bound). Big enough that quick-mode benches and tests see every sample,
/// small enough that a service running for months holds kilobytes, not
/// gigabytes.
pub const LATENCY_WINDOW: usize = 4096;

/// Fixed-memory recorder behind [`LatencyStats`]: a ring of the last
/// [`LATENCY_WINDOW`] total-latency samples plus lifetime count and max.
struct LatencyRing {
    window: Vec<u64>,
    next: usize,
    total: u64,
    max_ns: u64,
}

impl LatencyRing {
    fn new() -> LatencyRing {
        LatencyRing {
            window: Vec::new(),
            next: 0,
            total: 0,
            max_ns: 0,
        }
    }

    fn record(&mut self, nanos: u64) {
        if self.window.len() < LATENCY_WINDOW {
            self.window.push(nanos);
        } else {
            self.window[self.next] = nanos;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
        self.total += 1;
        self.max_ns = self.max_ns.max(nanos);
    }
}

/// Scheduling observability: what the pool did. Snapshot via
/// [`SimService::stats`], final values from [`SimService::finish`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs executed to completion (success or error).
    pub jobs_run: u64,
    /// Steal events: times an idle worker took a half-batch from another
    /// worker's deque.
    pub steals: u64,
    /// Jobs moved by steals, summed over every steal event (a job
    /// relocated twice counts twice).
    pub jobs_stolen: u64,
    /// Largest half-batch a single steal event moved.
    pub steal_batch_max: u64,
    /// Submissions [`SimService::try_submit`] rejected at capacity.
    pub rejections: u64,
    /// Completed jobs whose run exceeded their simulated-cycle deadline.
    pub deadline_misses: u64,
    /// Jobs served from a worker's platform cache.
    pub platform_cache_hits: u64,
    /// Platforms constructed across all workers (the cache misses).
    pub platforms_built: u64,
    /// End-to-end latency distribution of completed jobs.
    pub latency: LatencyStats,
    /// Wall time since the pool started.
    pub wall: Duration,
}

/// Backpressure signal of [`SimService::try_submit`]: the bounded queue
/// is at capacity. Carries the spec back so the caller can retry it
/// (after draining results, or through the blocking [`SimService::submit`]
/// path) without cloning up front.
#[derive(Debug)]
pub struct Rejected {
    /// The job that was not enqueued, returned for retry.
    pub spec: JobSpec,
    /// The capacity the queue was full at.
    pub capacity: usize,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "submission rejected: queue at capacity ({} queued jobs)",
            self.capacity
        )
    }
}

impl std::error::Error for Rejected {}

/// The pool died (a worker thread panicked) with results still
/// outstanding — returned by [`SimService::checked_recv`] so clients can
/// surface worker death as a structured error instead of a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolDied {
    /// Submitted jobs whose results had not been received when the pool
    /// died; they are lost.
    pub outstanding: u64,
}

impl fmt::Display for PoolDied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "a service worker died with {} job result(s) outstanding",
            self.outstanding
        )
    }
}

impl std::error::Error for PoolDied {}

/// One queued unit of work: the spec plus the scheduling metadata the
/// deques track for it.
struct QueuedJob {
    id: JobId,
    spec: JobSpec,
    /// Set once a steal moves the job off the deque it was submitted to;
    /// survives relocation so the executing worker reports it faithfully.
    stolen: bool,
    /// When the job was enqueued — queue-wait latency is measured from
    /// here to the executing worker's claim, across any relocations.
    enqueued: Instant,
}

/// One worker's deque, segregated by priority class: level 0
/// ([`Priority::High`]) is always served before level 1, and so on.
/// Within a class both owners and thieves serve the *oldest* work first
/// (FIFO): priorities express urgency, arrival order bounds queue wait —
/// a LIFO pop would starve the oldest job until the backlog drains,
/// exactly the tail latency the stats exist to police. (The platform
/// cache is keyed by `(design, cores)`, so pop order costs no cache
/// warmth.) Thieves take the front half of the highest non-empty level.
struct WorkerQueue {
    levels: [VecDeque<QueuedJob>; Priority::LEVELS],
}

impl WorkerQueue {
    fn new() -> WorkerQueue {
        WorkerQueue {
            levels: Default::default(),
        }
    }

    fn push(&mut self, job: QueuedJob) {
        self.levels[job.spec.priority.index()].push_back(job);
    }

    /// The owner's claim: oldest job of the most urgent non-empty class.
    fn pop_own(&mut self) -> Option<QueuedJob> {
        self.levels.iter_mut().find_map(|level| level.pop_front())
    }

    /// The owner's claim restricted to the [`Priority::High`] class
    /// (level 0) — the pool-wide-priority fast path.
    fn pop_high(&mut self) -> Option<QueuedJob> {
        self.levels[0].pop_front()
    }

    /// A thief's claim: the older *half* (rounded up) of the most urgent
    /// non-empty class, oldest first. Taking a batch instead of a single
    /// job amortizes the lock traffic of repeated steals on mixed grids —
    /// the thief runs the first job and relocates the rest to its own
    /// deque, where they stay claimable by everyone.
    fn steal_half(&mut self) -> VecDeque<QueuedJob> {
        for level in &mut self.levels {
            if !level.is_empty() {
                let take = level.len().div_ceil(2);
                return level.drain(..take).collect();
            }
        }
        VecDeque::new()
    }

    /// [`WorkerQueue::steal_half`] restricted to the [`Priority::High`]
    /// class.
    fn steal_half_high(&mut self) -> VecDeque<QueuedJob> {
        let level = &mut self.levels[0];
        if level.is_empty() {
            return VecDeque::new();
        }
        let take = level.len().div_ceil(2);
        level.drain(..take).collect()
    }

    fn clear(&mut self) {
        for level in &mut self.levels {
            level.clear();
        }
    }
}

/// Guarded by [`Shared::work`]: how many submitted jobs are not yet
/// claimed by a worker, and whether the service is shutting down.
struct WorkState {
    /// Jobs pushed to some deque and not yet claimed. A worker claims by
    /// decrementing under the lock, then locates the job in the deques —
    /// the counter is the wait condition, the deques hold the payload.
    /// With a bounded queue this is also the backlog the capacity bounds.
    available: u64,
    /// Set by [`SimService::finish`]; workers exit once `available == 0`.
    closed: bool,
    /// Set when the service is dropped without `finish`: queued jobs are
    /// discarded and workers abandon in-flight claims instead of draining
    /// the backlog.
    cancelled: bool,
    /// Worker threads that panicked. A blocking [`SimService::submit`]
    /// parked on the space condvar checks this so a dying pool fails it
    /// fast instead of leaving it waiting on a drain that may never come
    /// (the result-channel death notice only reaches `recv`).
    dead_workers: usize,
}

/// What flows back over the result channel: completed jobs, or a death
/// notice a panicking worker emits while unwinding so blocked clients
/// fail fast instead of hanging (surviving workers keep the channel open,
/// so a plain disconnect is not observable in pools of 2+).
enum Message {
    Result(Box<JobResult>),
    WorkerDied,
}

struct Shared {
    /// Bound on the unclaimed backlog; `0` = unbounded.
    capacity: usize,
    /// One priority deque per worker (see [`WorkerQueue`]).
    queues: Vec<Mutex<WorkerQueue>>,
    work: Mutex<WorkState>,
    available: Condvar,
    /// Signalled (with [`Shared::work`]) every time a worker claims a
    /// job, so a [`SimService::submit`] blocked at capacity can re-check
    /// the watermark. Only waited on when `capacity != 0`.
    space: Condvar,
    /// [`Priority::High`] jobs queued anywhere in the pool. Lets a claim
    /// serve the High class *pool-wide* — own deque, then a High-only
    /// steal scan — before touching its own lower classes, while keeping
    /// the common no-High case a single relaxed load. Incremented on
    /// submission, decremented when a High job is claimed for execution
    /// (relocated-but-still-queued jobs stay counted).
    queued_high: AtomicU64,
    jobs_run: AtomicU64,
    steals: AtomicU64,
    jobs_stolen: AtomicU64,
    steal_batch_max: AtomicU64,
    rejections: AtomicU64,
    deadline_misses: AtomicU64,
    cache_hits: AtomicU64,
    platforms_built: AtomicU64,
    /// Bounded recorder behind [`ServiceStats::latency`].
    latencies: Mutex<LatencyRing>,
}

/// A pool of simulation workers behind a submission handle.
///
/// Jobs ([`JobSpec`]) are distributed over per-worker priority deques
/// (round-robin, or pinned via [`JobSpec::pinned`]); idle workers steal
/// half-batches from busy ones, so mixed-size grids — a 2-core SQRT32
/// cell next to an 8-core full-signal MRPDLN cell — keep every thread
/// busy, and within a priority class the oldest job is always served
/// first, so queue wait stays bounded under sustained traffic. Queued
/// [`Priority::High`] jobs are always claimed before queued
/// [`Priority::Normal`] and [`Priority::Low`] ones. With a
/// [`ServiceConfig::queue_capacity`] bound, the submission path exerts
/// explicit backpressure: [`SimService::try_submit`] rejects at capacity
/// and [`SimService::submit`] blocks until the backlog drains to the
/// watermark. Each worker keeps one [`Platform`] per `(design, cores)`
/// key and reuses it via [`ulp_kernels::run_benchmark_reusing_with`], so
/// the dominant allocations happen once per worker, not once per job.
/// Completed [`JobResult`]s stream back through [`SimService::recv`] as
/// workers finish them — a client never waits for the whole batch — and
/// carry per-job queue-wait and run latency; [`ServiceStats::latency`]
/// aggregates them into p50/p95/max.
///
/// ```no_run
/// use std::sync::Arc;
/// use ulp_kernels::{Benchmark, WorkloadConfig};
/// use ulp_service::{JobSpec, ServiceConfig, SimService};
///
/// let mut service = SimService::start(ServiceConfig::default());
/// let workload = Arc::new(WorkloadConfig::quick_test());
/// for cores in [2, 4, 8] {
///     service.submit(JobSpec::new(Benchmark::Sqrt32, true, cores, workload.clone()));
/// }
/// while let Some(result) = service.recv() {
///     let out = result.outcome.expect("job ran");
///     println!("{} cores: {} cycles", out.cores, out.run.stats.cycles);
/// }
/// let stats = service.finish();
/// assert_eq!(stats.jobs_run, 3);
/// ```
pub struct SimService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    results: mpsc::Receiver<Message>,
    next_queue: usize,
    submitted: u64,
    received: u64,
    started: Instant,
}

impl SimService {
    /// Starts the worker pool.
    pub fn start(config: ServiceConfig) -> SimService {
        let workers = config.resolved_workers().max(1);
        let shared = Arc::new(Shared {
            capacity: config.queue_capacity,
            queues: (0..workers)
                .map(|_| Mutex::new(WorkerQueue::new()))
                .collect(),
            work: Mutex::new(WorkState {
                available: 0,
                closed: false,
                cancelled: false,
                dead_workers: 0,
            }),
            available: Condvar::new(),
            space: Condvar::new(),
            queued_high: AtomicU64::new(0),
            jobs_run: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            jobs_stolen: AtomicU64::new(0),
            steal_batch_max: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            platforms_built: AtomicU64::new(0),
            latencies: Mutex::new(LatencyRing::new()),
        });
        let (tx, rx) = mpsc::channel();
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    /// On unwind: emits [`Message::WorkerDied`] so clients
                    /// blocked in `recv` panic instead of waiting on a
                    /// result that will never come, and raises the
                    /// dead-worker flag + wakes the space condvar so a
                    /// client blocked in the backpressured `submit` fails
                    /// fast too (it waits on a condvar, not the channel).
                    struct DeathWatch(mpsc::Sender<Message>, Arc<Shared>);
                    impl Drop for DeathWatch {
                        fn drop(&mut self) {
                            if std::thread::panicking() {
                                if let Ok(mut state) = self.1.work.lock() {
                                    state.dead_workers += 1;
                                }
                                self.1.space.notify_all();
                                let _ = self.0.send(Message::WorkerDied);
                            }
                        }
                    }
                    let _watch = DeathWatch(tx.clone(), Arc::clone(&shared));
                    worker_loop(me, &shared, &tx);
                })
            })
            .collect();
        SimService {
            shared,
            workers: handles,
            results: rx,
            next_queue: 0,
            submitted: 0,
            received: 0,
            started: Instant::now(),
        }
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// The configured queue capacity (`0` = unbounded).
    pub fn queue_capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Enqueues a job and returns its id, *blocking* while a bounded
    /// queue is at capacity: admission resumes once workers drain the
    /// backlog to the watermark (half the capacity — the hysteresis stops
    /// a saturated client from thrashing on every single claim). The
    /// result arrives through [`SimService::recv`] whenever a worker
    /// completes it. A core count outside 1..=8 is not rejected here —
    /// the job completes with a [`ulp_platform::ConfigError`] outcome,
    /// like any other configuration the platform/kernels cannot run. An
    /// affinity pin ([`JobSpec::pinned`]) is validated against the actual
    /// pool size: out-of-range indices are clamped (modulo the worker
    /// count) onto a real deque, never a nonexistent one.
    ///
    /// # Panics
    ///
    /// Panics on a workload size outside the kernel layout's capacity
    /// (the kernels would panic the worker on it), so that class of
    /// invalid submission fails in the submitting thread, not the pool.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        match self.submit_inner(spec, true) {
            Ok(id) => id,
            Err(_) => unreachable!("blocking submit never rejects"),
        }
    }

    /// Non-blocking submission for the bounded queue: enqueues like
    /// [`SimService::submit`] unless the backlog is at capacity, in which
    /// case the spec comes straight back as [`Rejected`] (counted in
    /// [`ServiceStats::rejections`]) and the caller decides — drop it,
    /// retry after draining some results, or fall back to the blocking
    /// path. On an unbounded queue this never rejects.
    ///
    /// # Errors
    ///
    /// [`Rejected`] when the bounded backlog is full; the spec is
    /// returned inside the error.
    ///
    /// # Panics
    ///
    /// Like [`SimService::submit`], panics on a workload size outside the
    /// kernel layout's capacity.
    pub fn try_submit(&mut self, spec: JobSpec) -> Result<JobId, Rejected> {
        self.submit_inner(spec, false)
    }

    fn submit_inner(&mut self, spec: JobSpec, block: bool) -> Result<JobId, Rejected> {
        assert!(
            spec.workload.n >= 4 && spec.workload.n <= ulp_kernels::layout::MAX_N,
            "job workload n = {} outside supported range",
            spec.workload.n
        );
        // Admission control: reserve a backlog slot under the work lock.
        // The slot is reserved *before* the push lands in a deque; the
        // workers' claim/scan retry loop already tolerates that gap (it
        // is the same race as a claim overlapping another worker's scan).
        {
            let mut state = self.shared.work.lock().expect("work lock");
            let capacity = self.shared.capacity as u64;
            if capacity != 0 && state.available >= capacity {
                if !block {
                    drop(state);
                    self.shared.rejections.fetch_add(1, Ordering::Relaxed);
                    return Err(Rejected {
                        spec,
                        capacity: self.shared.capacity,
                    });
                }
                let watermark = capacity / 2;
                while state.available > watermark {
                    assert!(
                        state.dead_workers == 0,
                        "a service worker died while a submission was blocked on backpressure"
                    );
                    state = self.shared.space.wait(state).expect("work lock");
                }
            }
            state.available += 1;
        }
        let id = self.submitted;
        self.submitted += 1;
        let queue = match spec.affinity {
            Some(worker) => worker % self.shared.queues.len(),
            None => {
                let q = self.next_queue;
                self.next_queue = (self.next_queue + 1) % self.shared.queues.len();
                q
            }
        };
        if spec.priority == Priority::High {
            self.shared.queued_high.fetch_add(1, Ordering::Relaxed);
        }
        self.shared.queues[queue]
            .lock()
            .expect("queue lock")
            .push(QueuedJob {
                id,
                spec,
                stolen: false,
                enqueued: Instant::now(),
            });
        self.shared.available.notify_one();
        Ok(id)
    }

    /// The next completed job, blocking until a worker finishes one.
    /// Returns `None` once every submitted job's result has been received.
    ///
    /// # Panics
    ///
    /// Panics if the pool died (a worker panicked) with results still
    /// outstanding. Clients that must survive worker death (e.g. a shard
    /// runner reporting a structured error) use
    /// [`SimService::checked_recv`] instead.
    pub fn recv(&mut self) -> Option<JobResult> {
        self.checked_recv()
            .expect("a service worker died with jobs outstanding")
    }

    /// Like [`SimService::recv`], but reports pool death as a
    /// [`PoolDied`] error instead of panicking: `Ok(None)` once every
    /// submitted job's result has been received, `Ok(Some(..))` for the
    /// next completed job, `Err(PoolDied)` if a worker panicked with
    /// results still outstanding.
    ///
    /// After `Err(PoolDied)` the pool is dead: no further results will
    /// arrive, and the remaining submitted-but-unreceived jobs are lost.
    ///
    /// # Errors
    ///
    /// [`PoolDied`] when a worker thread panicked before every
    /// outstanding result was delivered.
    pub fn checked_recv(&mut self) -> Result<Option<JobResult>, PoolDied> {
        if self.received == self.submitted {
            return Ok(None);
        }
        match self.results.recv() {
            Ok(Message::Result(result)) => {
                self.received += 1;
                Ok(Some(*result))
            }
            Ok(Message::WorkerDied) | Err(mpsc::RecvError) => Err(PoolDied {
                outstanding: self.submitted - self.received,
            }),
        }
    }

    /// Like [`SimService::recv`] but non-blocking: `None` when no result
    /// is ready right now (or all results were already received).
    pub fn try_recv(&mut self) -> Option<JobResult> {
        if self.received == self.submitted {
            return None;
        }
        match self.results.try_recv() {
            Ok(Message::Result(result)) => {
                self.received += 1;
                Some(*result)
            }
            Ok(Message::WorkerDied) | Err(mpsc::TryRecvError::Disconnected) => {
                panic!("a service worker died with jobs outstanding")
            }
            Err(mpsc::TryRecvError::Empty) => None,
        }
    }

    /// Live snapshot of the scheduling counters and latency distribution.
    pub fn stats(&self) -> ServiceStats {
        // Snapshot the ring under the lock, sort outside it: workers push
        // one sample per completed job and must not stall behind an
        // O(n log n) percentile computation.
        let (total, max_ns, window) = {
            let ring = self.shared.latencies.lock().expect("latency lock");
            (ring.total, ring.max_ns, ring.window.clone())
        };
        let latency = LatencyStats::compute(total, max_ns, &window);
        ServiceStats {
            workers: self.shared.queues.len(),
            jobs_run: self.shared.jobs_run.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            jobs_stolen: self.shared.jobs_stolen.load(Ordering::Relaxed),
            steal_batch_max: self.shared.steal_batch_max.load(Ordering::Relaxed),
            rejections: self.shared.rejections.load(Ordering::Relaxed),
            deadline_misses: self.shared.deadline_misses.load(Ordering::Relaxed),
            platform_cache_hits: self.shared.cache_hits.load(Ordering::Relaxed),
            platforms_built: self.shared.platforms_built.load(Ordering::Relaxed),
            latency,
            wall: self.started.elapsed(),
        }
    }

    /// Shuts the pool down and returns the final statistics. Workers first
    /// drain every job still queued (results of jobs not [received]
    /// beforehand are discarded), then exit and are joined.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    ///
    /// [received]: SimService::recv
    pub fn finish(mut self) -> ServiceStats {
        self.close(false);
        for handle in self.workers.drain(..) {
            handle.join().expect("service worker panicked");
        }
        self.stats()
    }

    /// Marks the pool closed and wakes every parked worker. With `cancel`,
    /// the queued backlog is discarded (and in-flight claims abandoned)
    /// instead of drained.
    fn close(&self, cancel: bool) {
        let mut state = self.shared.work.lock().expect("work lock");
        state.closed = true;
        if cancel {
            state.cancelled = true;
            state.available = 0;
        }
        drop(state);
        if cancel {
            for queue in &self.shared.queues {
                queue.lock().expect("queue lock").clear();
            }
        }
        self.shared.available.notify_all();
    }
}

impl Drop for SimService {
    /// A service dropped without [`SimService::finish`] (including during
    /// a panic) *cancels* the pool: queued jobs are discarded, each worker
    /// finishes at most its current job, and all workers are joined — so
    /// no thread outlives its handle and an unwinding client is not
    /// stalled behind the remaining backlog. Worker panics are swallowed
    /// here — `finish` is the path that surfaces them.
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.close(true);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(me: usize, shared: &Shared, results: &mpsc::Sender<Message>) {
    // One platform per (design, core-count), reused across jobs: the
    // dominant allocations (memories, cycle buffers) happen at most once
    // per key per worker.
    let mut cache: HashMap<(bool, usize), Platform> = HashMap::new();
    loop {
        // Claim one unit of work (or learn the pool is closed and drained).
        {
            let mut state = shared.work.lock().expect("work lock");
            loop {
                if state.available > 0 {
                    state.available -= 1;
                    break;
                }
                if state.closed {
                    return;
                }
                state = shared.available.wait(state).expect("work lock");
            }
        }
        // With a bounded queue, a claim is exactly what frees backlog
        // space — wake a submitter blocked at capacity to re-check the
        // watermark.
        if shared.capacity != 0 {
            shared.space.notify_all();
        }
        // The claim guarantees a job exists in *some* deque; find it.
        // Priority is pool-wide: when the relaxed counter says a High job
        // is queued anywhere, serve the High class first — own deque,
        // then a High-only steal sweep — before touching lower classes on
        // the own deque. (The microsecond window where a submitter has
        // incremented the counter but not yet pushed simply falls through
        // to the general path.) The general path takes the own deque's
        // most urgent class, then steals the front *half* of another
        // worker's highest class: the thief runs the oldest job of the
        // batch now and relocates the rest onto its own deque — still
        // claimable by everyone — so one lock acquisition pays for
        // several future claims instead of one. The retry loop covers the
        // narrow race where another claimant grabs the job this worker
        // would have found mid-scan.
        let job = loop {
            if shared.queued_high.load(Ordering::Relaxed) > 0 {
                if let Some(job) = shared.queues[me].lock().expect("queue lock").pop_high() {
                    break job;
                }
                if let Some(job) = steal_scan(me, shared, true) {
                    break job;
                }
            }
            if let Some(job) = shared.queues[me].lock().expect("queue lock").pop_own() {
                break job;
            }
            if let Some(job) = steal_scan(me, shared, false) {
                break job;
            }
            // A fully failed scan normally means another claimant grabbed
            // the job this worker would have found — retry. But under
            // cancellation the deques were cleared, so the claim can never
            // be satisfied: abandon it and exit.
            if shared.work.lock().expect("work lock").cancelled {
                return;
            }
            std::thread::yield_now();
        };
        if job.spec.priority == Priority::High {
            // Exactly one decrement per High job, at the moment it is
            // claimed for execution (relocations keep it queued).
            shared.queued_high.fetch_sub(1, Ordering::Relaxed);
        }
        // Close the cancellation window: a job popped between `cancelled`
        // being set and the queues being cleared must not start — Drop
        // promises workers finish at most the job they were already
        // running.
        if shared.work.lock().expect("work lock").cancelled {
            return;
        }
        let queue_wait = job.enqueued.elapsed();
        let run_start = Instant::now();
        let (cache_hit, outcome) = run_job(&job.spec, &mut cache, shared);
        let run_time = run_start.elapsed();
        let deadline_missed = match (&outcome, job.spec.deadline_cycles) {
            (Ok(out), Some(budget)) => out.run.stats.cycles > budget,
            _ => false,
        };
        if deadline_missed {
            shared.deadline_misses.fetch_add(1, Ordering::Relaxed);
        }
        shared
            .latencies
            .lock()
            .expect("latency lock")
            .record((queue_wait + run_time).as_nanos() as u64);
        shared.jobs_run.fetch_add(1, Ordering::Relaxed);
        // A closed receiver (client finished without draining) is fine —
        // the result is simply discarded.
        let _ = results.send(Message::Result(Box::new(JobResult {
            id: job.id,
            worker: me,
            stolen: job.stolen,
            cache_hit,
            queue_wait,
            run_time,
            deadline_missed,
            outcome,
        })));
    }
}

/// One full steal sweep over the other workers' deques: takes the older
/// half of the first victim with matching work (the [`Priority::High`]
/// class only, with `high_only`), relocates the surplus onto `me`'s own
/// deque — still claimable by everyone — and returns the oldest stolen
/// job to run now. `None` when no victim had matching work.
fn steal_scan(me: usize, shared: &Shared, high_only: bool) -> Option<QueuedJob> {
    let n = shared.queues.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        let mut batch = {
            let mut queue = shared.queues[victim].lock().expect("queue lock");
            if high_only {
                queue.steal_half_high()
            } else {
                queue.steal_half()
            }
        };
        if batch.is_empty() {
            continue;
        }
        shared.steals.fetch_add(1, Ordering::Relaxed);
        shared
            .jobs_stolen
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        shared
            .steal_batch_max
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        for job in &mut batch {
            job.stolen = true;
        }
        let first = batch.pop_front().expect("non-empty batch");
        if !batch.is_empty() {
            let mut own = shared.queues[me].lock().expect("queue lock");
            for job in batch {
                own.push(job);
            }
        }
        return Some(first);
    }
    None
}

fn run_job(
    spec: &JobSpec,
    cache: &mut HashMap<(bool, usize), Platform>,
    shared: &Shared,
) -> (bool, Result<JobOutput, RunnerError>) {
    use std::collections::hash_map::Entry;
    // The kernels assume one private DM bank per core (≤ 8); larger
    // baseline platforms would build fine but panic the worker inside the
    // kernel runner, so reject the job with an error outcome instead.
    if spec.cores == 0 || spec.cores > 8 {
        return (
            false,
            Err(ulp_platform::ConfigError::BadCoreCount(spec.cores).into()),
        );
    }
    let (cache_hit, platform) = match cache.entry((spec.with_sync, spec.cores)) {
        Entry::Occupied(e) => {
            shared.cache_hits.fetch_add(1, Ordering::Relaxed);
            let platform = e.into_mut();
            // Reused platforms keep their allocations but must adopt this
            // job's cycle budget and execution tier — both differ across
            // jobs. The translation cache survives, so a compiled-tier job
            // landing on a warm platform reuses the existing traces.
            platform.set_max_cycles(spec.workload.max_cycles);
            platform.set_exec_tier(spec.exec_tier);
            (true, platform)
        }
        Entry::Vacant(e) => {
            let cfg = PlatformConfig::paper(spec.with_sync)
                .with_cores(spec.cores)
                .with_max_cycles(spec.workload.max_cycles)
                .with_exec_tier(spec.exec_tier);
            match Platform::new(cfg) {
                Ok(platform) => {
                    shared.platforms_built.fetch_add(1, Ordering::Relaxed);
                    (false, e.insert(platform))
                }
                Err(err) => return (false, Err(err.into())),
            }
        }
    };
    let outcome = match &spec.observers {
        ObserverSelection::None => {
            run_benchmark_reusing_with(spec.benchmark, platform, &spec.workload, &mut [])
                .map(|run| (run, JobArtifacts::None))
        }
        ObserverSelection::PcTrace { limit } => {
            let mut trace = PcTrace::new(*limit);
            run_benchmark_reusing_with(spec.benchmark, platform, &spec.workload, &mut [&mut trace])
                .map(|run| (run, JobArtifacts::PcTrace(trace.rows().to_vec())))
        }
        ObserverSelection::Vcd => {
            let mut vcd = VcdTracer::new(platform);
            run_benchmark_reusing_with(spec.benchmark, platform, &spec.workload, &mut [&mut vcd])
                .map(|run| (run, JobArtifacts::Vcd(vcd.finish())))
        }
        ObserverSelection::BankHeatMap { window } => {
            let mut map = BankHeatMap::for_dm(platform.config(), *window);
            run_benchmark_reusing_with(spec.benchmark, platform, &spec.workload, &mut [&mut map])
                .map(|run| (run, JobArtifacts::BankHeatMap(map.rows().to_vec())))
        }
    };
    (
        cache_hit,
        outcome.map(|(run, artifacts)| JobOutput {
            cores: spec.cores,
            run,
            artifacts,
        }),
    )
}

//! The service's job model: what a client submits and what it gets back.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;
use ulp_kernels::{Benchmark, BenchmarkRun, RunnerError, WorkloadConfig};
use ulp_platform::ExecTier;

/// Urgency class of a job. Each worker deque is segregated by priority:
/// owners and thieves always serve the highest non-empty class first, so a
/// [`High`] job overtakes any backlog of [`Normal`]/[`Low`] jobs that are
/// still queued (jobs already claimed by a worker are never preempted).
///
/// The ordering follows scheduling urgency: `High < Normal < Low`, so
/// sorting job specs by priority yields most-urgent-first.
///
/// [`High`]: Priority::High
/// [`Normal`]: Priority::Normal
/// [`Low`]: Priority::Low
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Served before everything else still queued — e.g. shards of a
    /// recording whose merge a client is blocked on.
    High,
    /// The default class for grid cells and ad-hoc jobs.
    #[default]
    Normal,
    /// Background work: served only when no higher class is queued.
    Low,
}

impl Priority {
    /// Number of priority classes (one deque segment per class).
    pub const LEVELS: usize = 3;

    /// Dense index of the class, `0` = most urgent — the scan order of
    /// the per-worker deque segments, and the index into
    /// [`crate::ServiceStats::per_priority`].
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Identity of the client a job is submitted on behalf of. Tenants are
/// the unit of admission control and fairness: each tenant can carry a
/// quota (max in-flight + queued jobs, enforced at submission) and a
/// fair-share weight (its slice of the weighted deficit round-robin claim
/// inside a priority class) — see [`crate::TenantPolicy`]. Jobs that
/// never set one run as [`TenantId::DEFAULT`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The anonymous tenant jobs run as when the spec sets none.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier assigned by [`crate::SimService::submit`], monotonically
/// increasing from 0 in submission order. Results carry it so streamed
/// completions can be matched back to submissions regardless of the order
/// in which workers finish them.
pub type JobId = u64;

/// One unit of work for the service: a benchmark kernel, the platform
/// design and core count to run it on, the workload, the tenant it is
/// submitted on behalf of, and which observers (if any) to attach to the
/// run. Built with [`JobSpec::new`] plus chained setters:
///
/// ```
/// use std::sync::Arc;
/// use ulp_kernels::{Benchmark, WorkloadConfig};
/// use ulp_service::{JobSpec, Priority, TenantId};
///
/// let workload = Arc::new(WorkloadConfig::quick_test());
/// let spec = JobSpec::new(Benchmark::Sqrt32, 4, workload)
///     .with_sync(false)
///     .priority(Priority::High)
///     .deadline_cycles(500_000)
///     .tenant(TenantId(7));
/// ```
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The benchmark kernel to execute.
    pub benchmark: Benchmark,
    /// `true` = improved design (hardware synchronizer), `false` =
    /// baseline. Defaults to `true`.
    pub with_sync: bool,
    /// Core count of the platform (1..=8; the kernels assume one private
    /// DM bank per core).
    pub cores: usize,
    /// The workload; shared so a grid of jobs clones a pointer, not the
    /// config.
    pub workload: Arc<WorkloadConfig>,
    /// Instrumentation attached to the run.
    pub observers: ObserverSelection,
    /// Placement hint: push the job onto this worker's deque (modulo the
    /// pool size) instead of the round-robin default. The job may still be
    /// *stolen* and executed by another worker — affinity shapes the
    /// initial distribution, not execution.
    pub affinity: Option<usize>,
    /// Urgency class: queued [`Priority::High`] jobs are claimed before
    /// queued [`Priority::Normal`] ones, which beat [`Priority::Low`].
    pub priority: Priority,
    /// Simulated-cycle budget. A job whose run takes more platform cycles
    /// than this is completed and returned, but flagged as a deadline miss
    /// ([`JobResult::deadline_missed`]) and counted in
    /// [`crate::ServiceStats::deadline_misses`]. A *queued* job whose
    /// budget provably cannot be met (`deadline_cycles <`
    /// [`JobSpec::min_run_cycles`]) is not run at all: it comes back as
    /// [`JobError::Evicted`]. `None` = no deadline.
    pub deadline_cycles: Option<u64>,
    /// The tenant the job is submitted on behalf of (quota and fair-share
    /// accounting). Defaults to [`TenantId::DEFAULT`].
    pub tenant: TenantId,
    /// Execution tier of the platform run: the interpreter by default, or
    /// the compiled hot-block tier — bit-identical results, faster on
    /// lockstep-heavy kernels.
    pub exec_tier: ExecTier,
    /// Checkpoint cadence in simulated cycles. When set, the executing
    /// worker snapshots the platform every `checkpoint_every` cycles
    /// ([`ulp_platform::Platform::snapshot`]), which makes the job
    /// *migratable*: it can be parked at a checkpoint boundary to yield
    /// to queued [`Priority::High`] work, and a killed or panicking
    /// worker's in-flight run is re-queued from its last checkpoint and
    /// finished — bit-identically — by another worker. `None` (the
    /// default) runs the job in one uninterruptible stint.
    ///
    /// [`ObserverSelection::Vcd`] jobs ignore the cadence: the VCD
    /// tracer's text stream is not part of the platform checkpoint, so
    /// such jobs always run in one stint.
    pub checkpoint_every: Option<u64>,
}

impl JobSpec {
    /// A job on the improved (hardware-synchronizer) design with no
    /// observers, round-robin placement, [`Priority::Normal`], no
    /// deadline, and the default tenant.
    pub fn new(benchmark: Benchmark, cores: usize, workload: Arc<WorkloadConfig>) -> JobSpec {
        JobSpec {
            benchmark,
            with_sync: true,
            cores,
            workload,
            observers: ObserverSelection::None,
            affinity: None,
            priority: Priority::Normal,
            deadline_cycles: None,
            tenant: TenantId::DEFAULT,
            exec_tier: ExecTier::Interpreted,
            checkpoint_every: None,
        }
    }

    /// Selects the platform design: `true` = improved (hardware
    /// synchronizer, the default), `false` = baseline.
    #[must_use]
    pub fn with_sync(mut self, with_sync: bool) -> JobSpec {
        self.with_sync = with_sync;
        self
    }

    /// Assigns the job's urgency class (the default is
    /// [`Priority::Normal`]).
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Attaches a simulated-cycle deadline budget: runs longer than
    /// `cycles` are flagged as deadline misses on the result, and queued
    /// jobs whose budget provably cannot be met are evicted
    /// ([`JobError::Evicted`]) instead of run.
    #[must_use]
    pub fn deadline_cycles(mut self, cycles: u64) -> JobSpec {
        self.deadline_cycles = Some(cycles);
        self
    }

    /// Tags the job with the tenant it is submitted on behalf of (the
    /// default is [`TenantId::DEFAULT`]).
    #[must_use]
    pub fn tenant(mut self, tenant: TenantId) -> JobSpec {
        self.tenant = tenant;
        self
    }

    /// Attaches an observer selection.
    #[must_use]
    pub fn observers(mut self, observers: ObserverSelection) -> JobSpec {
        self.observers = observers;
        self
    }

    /// Selects the execution tier of the platform run (the default is
    /// [`ExecTier::Interpreted`]).
    #[must_use]
    pub fn exec_tier(mut self, tier: ExecTier) -> JobSpec {
        self.exec_tier = tier;
        self
    }

    /// Makes the job migratable: the executing worker checkpoints the
    /// platform every `cycles` simulated cycles, so the run can be
    /// parked, re-queued and resumed — on any worker — from its latest
    /// checkpoint (see [`JobSpec::checkpoint_every`]). A cadence of `0`
    /// behaves as `1`.
    #[must_use]
    pub fn checkpoint_every(mut self, cycles: u64) -> JobSpec {
        self.checkpoint_every = Some(cycles.max(1));
        self
    }

    /// Pins the job's initial placement to `worker`'s deque. The index is
    /// validated against the actual pool size at submission —
    /// [`crate::SimService::submit`] clamps it (modulo the worker count),
    /// so a pin computed against a larger pool than the one the job lands
    /// on still places onto a real deque instead of stranding the job.
    #[must_use]
    pub fn pinned(mut self, worker: usize) -> JobSpec {
        self.affinity = Some(worker);
        self
    }

    /// A sound lower bound on the simulated cycles this job's run must
    /// take: every kernel iterates its full per-channel window, and each
    /// of the `n` samples costs at least one instruction cycle on the
    /// core that owns its channel. A [`JobSpec::deadline_cycles`] budget
    /// below this bound can provably never be met, so the scheduler
    /// evicts such a job at claim time instead of running it to certain
    /// failure.
    pub fn min_run_cycles(&self) -> u64 {
        self.workload.n as u64
    }
}

/// Which observers a job wants attached to its run. Everything here rides
/// on the engine's [`ulp_platform::Observer`] hook layer, so adding a
/// variant never touches the cycle loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum ObserverSelection {
    /// Statistics only (the default — the allocation-free fast path).
    #[default]
    None,
    /// Record per-core fetch PCs for the first `limit` cycles.
    PcTrace {
        /// Maximum traced cycles.
        limit: usize,
    },
    /// Produce a VCD change dump of the whole run.
    Vcd,
    /// Record a per-bank data-memory heat map: served core accesses per
    /// DM bank, bucketed into `window`-cycle rows
    /// ([`ulp_platform::BankHeatMap`]).
    BankHeatMap {
        /// Cycles per heat-map row.
        window: u64,
    },
}

impl ObserverSelection {
    /// The [`JobArtifacts::kind`] string a run under this selection
    /// produces — what a consumer (e.g. the shard merge) should expect on
    /// every result of a job batch sharing one selection.
    pub fn artifact_kind(&self) -> &'static str {
        match self {
            ObserverSelection::None => "none",
            ObserverSelection::PcTrace { .. } => "pc-trace",
            ObserverSelection::Vcd => "vcd",
            ObserverSelection::BankHeatMap { .. } => "bank-heat-map",
        }
    }
}

/// Observer output carried back in a [`JobOutput`], mirroring the job's
/// [`ObserverSelection`].
#[derive(Debug, Clone, Default)]
pub enum JobArtifacts {
    /// No observers were attached.
    #[default]
    None,
    /// Rows of per-core fetch PCs, one row per traced cycle.
    PcTrace(Vec<Vec<Option<u16>>>),
    /// The VCD text of the run.
    Vcd(String),
    /// Heat-map rows: one per cycle window, one served-access count per
    /// DM bank.
    BankHeatMap(Vec<Vec<u64>>),
}

impl JobArtifacts {
    /// Stable name of the variant, matching
    /// [`ObserverSelection::artifact_kind`] for the selection that
    /// produced it. Used by consumers (the shard merge, JSON emitters) to
    /// validate and label artifacts without matching on the enum.
    pub fn kind(&self) -> &'static str {
        match self {
            JobArtifacts::None => "none",
            JobArtifacts::PcTrace(_) => "pc-trace",
            JobArtifacts::Vcd(_) => "vcd",
            JobArtifacts::BankHeatMap(_) => "bank-heat-map",
        }
    }

    /// The PC-trace rows, if this is a [`JobArtifacts::PcTrace`].
    pub fn pc_trace(&self) -> Option<&[Vec<Option<u16>>]> {
        match self {
            JobArtifacts::PcTrace(rows) => Some(rows),
            _ => None,
        }
    }

    /// The VCD text, if this is a [`JobArtifacts::Vcd`].
    pub fn vcd(&self) -> Option<&str> {
        match self {
            JobArtifacts::Vcd(text) => Some(text),
            _ => None,
        }
    }

    /// The heat-map rows, if this is a [`JobArtifacts::BankHeatMap`].
    pub fn bank_heat_map(&self) -> Option<&[Vec<u64>]> {
        match self {
            JobArtifacts::BankHeatMap(rows) => Some(rows),
            _ => None,
        }
    }
}

/// What a successful job produced.
#[derive(Debug)]
pub struct JobOutput {
    /// Core count the job ran on (mirrors the spec; kept here so a result
    /// is self-describing without the submission side-table).
    pub cores: usize,
    /// The benchmark run: statistics, outputs, golden expectations.
    pub run: BenchmarkRun,
    /// Observer output, per the job's selection.
    pub artifacts: JobArtifacts,
}

/// Why a job produced no [`JobOutput`]: it ran and hit an error, or the
/// scheduler evicted it from the queue because its deadline budget could
/// provably no longer be met.
#[derive(Debug)]
pub enum JobError {
    /// The job executed and the kernel runner hit an error.
    Run(RunnerError),
    /// The job was claimed with a [`JobSpec::deadline_cycles`] budget
    /// strictly below the provable [`JobSpec::min_run_cycles`] floor, so
    /// the scheduler dropped it instead of running it to certain failure.
    /// Counted in [`crate::ServiceStats::evictions`].
    Evicted {
        /// The budget the spec carried.
        deadline_cycles: u64,
        /// The lower bound that proved the budget infeasible.
        min_cycles: u64,
    },
}

impl JobError {
    /// `true` if this is a deadline eviction (the job never ran).
    pub fn is_eviction(&self) -> bool {
        matches!(self, JobError::Evicted { .. })
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Run(err) => err.fmt(f),
            JobError::Evicted {
                deadline_cycles,
                min_cycles,
            } => write!(
                f,
                "evicted: deadline budget of {deadline_cycles} cycles cannot be met \
                 (the run takes at least {min_cycles})"
            ),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Run(err) => Some(err),
            JobError::Evicted { .. } => None,
        }
    }
}

impl From<RunnerError> for JobError {
    fn from(err: RunnerError) -> JobError {
        JobError::Run(err)
    }
}

/// One completed job, streamed back to the client as soon as the worker
/// finishes (or evicts) it.
#[derive(Debug)]
pub struct JobResult {
    /// The id [`crate::SimService::submit`] returned for this job.
    pub id: JobId,
    /// Tenant the job was submitted as — results stream in completion
    /// order across all tenants, so clients attribute them from here
    /// rather than from a side table.
    pub tenant: TenantId,
    /// Index of the worker that *completed* the job. A migrated job
    /// ([`JobResult::migrations`] `> 0`) may have started on a different
    /// worker; latency and tenant attribution follow the job, not the
    /// workers it visited.
    pub worker: usize,
    /// How many times the job was parked at a checkpoint and re-queued
    /// before completing — cooperative yields to [`Priority::High`] work
    /// plus recoveries from killed workers. Always `0` for jobs without
    /// [`JobSpec::checkpoint_every`].
    pub migrations: u32,
    /// Whether the job was ever moved by a steal: claimed directly by a
    /// thief, or relocated to the thief's deque as part of a half-batch
    /// (scheduling observability; stolen results are bit-identical to
    /// local ones).
    pub stolen: bool,
    /// Whether the worker served the job from its platform cache rather
    /// than constructing a platform.
    pub cache_hit: bool,
    /// Wall time the job spent queued before a worker claimed it — for
    /// migrated jobs, the wait since the *latest* re-queue.
    pub queue_wait: Duration,
    /// Wall time the executing worker spent running the job (zero for
    /// evicted jobs — they never run; for migrated jobs, the final
    /// stint).
    pub run_time: Duration,
    /// Whether the run exceeded the spec's [`JobSpec::deadline_cycles`]
    /// budget (always `false` for jobs without a deadline, and for jobs
    /// whose outcome is an error).
    pub deadline_missed: bool,
    /// The run, the first error it hit, or the eviction that kept it from
    /// running.
    pub outcome: Result<JobOutput, JobError>,
}

impl JobResult {
    /// End-to-end latency of the job: queue wait plus run time.
    pub fn latency(&self) -> Duration {
        self.queue_wait + self.run_time
    }
}

//! The service's job model: what a client submits and what it gets back.

use std::sync::Arc;
use ulp_kernels::{Benchmark, BenchmarkRun, RunnerError, WorkloadConfig};

/// Identifier assigned by [`crate::SimService::submit`], monotonically
/// increasing from 0 in submission order. Results carry it so streamed
/// completions can be matched back to submissions regardless of the order
/// in which workers finish them.
pub type JobId = u64;

/// One unit of work for the service: a benchmark kernel, the platform
/// design and core count to run it on, the workload, and which observers
/// (if any) to attach to the run.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The benchmark kernel to execute.
    pub benchmark: Benchmark,
    /// `true` = improved design (hardware synchronizer), `false` =
    /// baseline.
    pub with_sync: bool,
    /// Core count of the platform (1..=8; the kernels assume one private
    /// DM bank per core).
    pub cores: usize,
    /// The workload; shared so a grid of jobs clones a pointer, not the
    /// config.
    pub workload: Arc<WorkloadConfig>,
    /// Instrumentation attached to the run.
    pub observers: ObserverSelection,
    /// Placement hint: push the job onto this worker's deque (modulo the
    /// pool size) instead of the round-robin default. The job may still be
    /// *stolen* and executed by another worker — affinity shapes the
    /// initial distribution, not execution.
    pub affinity: Option<usize>,
}

impl JobSpec {
    /// A job with no observers and round-robin placement.
    pub fn new(
        benchmark: Benchmark,
        with_sync: bool,
        cores: usize,
        workload: Arc<WorkloadConfig>,
    ) -> JobSpec {
        JobSpec {
            benchmark,
            with_sync,
            cores,
            workload,
            observers: ObserverSelection::None,
            affinity: None,
        }
    }

    /// Attaches an observer selection.
    #[must_use]
    pub fn with_observers(mut self, observers: ObserverSelection) -> JobSpec {
        self.observers = observers;
        self
    }

    /// Pins the job's initial placement to `worker`'s deque. The index is
    /// validated against the actual pool size at submission —
    /// [`crate::SimService::submit`] clamps it (modulo the worker count),
    /// so a pin computed against a larger pool than the one the job lands
    /// on still places onto a real deque instead of stranding the job.
    #[must_use]
    pub fn pinned(mut self, worker: usize) -> JobSpec {
        self.affinity = Some(worker);
        self
    }
}

/// Which observers a job wants attached to its run. Everything here rides
/// on the engine's [`ulp_platform::Observer`] hook layer, so adding a
/// variant never touches the cycle loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum ObserverSelection {
    /// Statistics only (the default — the allocation-free fast path).
    #[default]
    None,
    /// Record per-core fetch PCs for the first `limit` cycles.
    PcTrace {
        /// Maximum traced cycles.
        limit: usize,
    },
    /// Produce a VCD change dump of the whole run.
    Vcd,
    /// Record a per-bank data-memory heat map: served core accesses per
    /// DM bank, bucketed into `window`-cycle rows
    /// ([`ulp_platform::BankHeatMap`]).
    BankHeatMap {
        /// Cycles per heat-map row.
        window: u64,
    },
}

/// Observer output carried back in a [`JobOutput`], mirroring the job's
/// [`ObserverSelection`].
#[derive(Debug, Clone, Default)]
pub enum JobArtifacts {
    /// No observers were attached.
    #[default]
    None,
    /// Rows of per-core fetch PCs, one row per traced cycle.
    PcTrace(Vec<Vec<Option<u16>>>),
    /// The VCD text of the run.
    Vcd(String),
    /// Heat-map rows: one per cycle window, one served-access count per
    /// DM bank.
    BankHeatMap(Vec<Vec<u64>>),
}

/// What a successful job produced.
#[derive(Debug)]
pub struct JobOutput {
    /// Core count the job ran on (mirrors the spec; kept here so a result
    /// is self-describing without the submission side-table).
    pub cores: usize,
    /// The benchmark run: statistics, outputs, golden expectations.
    pub run: BenchmarkRun,
    /// Observer output, per the job's selection.
    pub artifacts: JobArtifacts,
}

/// One completed job, streamed back to the client as soon as the worker
/// finishes it.
#[derive(Debug)]
pub struct JobResult {
    /// The id [`crate::SimService::submit`] returned for this job.
    pub id: JobId,
    /// Index of the worker that executed the job.
    pub worker: usize,
    /// Whether the executing worker stole the job from another worker's
    /// deque (scheduling observability; stolen results are bit-identical
    /// to local ones).
    pub stolen: bool,
    /// Whether the worker served the job from its platform cache rather
    /// than constructing a platform.
    pub cache_hit: bool,
    /// The run, or the first error it hit.
    pub outcome: Result<JobOutput, RunnerError>,
}

//! The service's job model: what a client submits and what it gets back.

use std::sync::Arc;
use std::time::Duration;
use ulp_kernels::{Benchmark, BenchmarkRun, RunnerError, WorkloadConfig};
use ulp_platform::ExecTier;

/// Urgency class of a job. Each worker deque is segregated by priority:
/// owners and thieves always serve the highest non-empty class first, so a
/// [`High`] job overtakes any backlog of [`Normal`]/[`Low`] jobs that are
/// still queued (jobs already claimed by a worker are never preempted).
///
/// The ordering follows scheduling urgency: `High < Normal < Low`, so
/// sorting job specs by priority yields most-urgent-first.
///
/// [`High`]: Priority::High
/// [`Normal`]: Priority::Normal
/// [`Low`]: Priority::Low
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Served before everything else still queued — e.g. shards of a
    /// recording whose merge a client is blocked on.
    High,
    /// The default class for grid cells and ad-hoc jobs.
    #[default]
    Normal,
    /// Background work: served only when no higher class is queued.
    Low,
}

impl Priority {
    /// Number of priority classes (one deque segment per class).
    pub const LEVELS: usize = 3;

    /// Dense index of the class, `0` = most urgent — the scan order of
    /// the per-worker deque segments.
    pub(crate) fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Identifier assigned by [`crate::SimService::submit`], monotonically
/// increasing from 0 in submission order. Results carry it so streamed
/// completions can be matched back to submissions regardless of the order
/// in which workers finish them.
pub type JobId = u64;

/// One unit of work for the service: a benchmark kernel, the platform
/// design and core count to run it on, the workload, and which observers
/// (if any) to attach to the run.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The benchmark kernel to execute.
    pub benchmark: Benchmark,
    /// `true` = improved design (hardware synchronizer), `false` =
    /// baseline.
    pub with_sync: bool,
    /// Core count of the platform (1..=8; the kernels assume one private
    /// DM bank per core).
    pub cores: usize,
    /// The workload; shared so a grid of jobs clones a pointer, not the
    /// config.
    pub workload: Arc<WorkloadConfig>,
    /// Instrumentation attached to the run.
    pub observers: ObserverSelection,
    /// Placement hint: push the job onto this worker's deque (modulo the
    /// pool size) instead of the round-robin default. The job may still be
    /// *stolen* and executed by another worker — affinity shapes the
    /// initial distribution, not execution.
    pub affinity: Option<usize>,
    /// Urgency class: queued [`Priority::High`] jobs are claimed before
    /// queued [`Priority::Normal`] ones, which beat [`Priority::Low`].
    pub priority: Priority,
    /// Simulated-cycle budget: a job whose run takes more platform cycles
    /// than this is still completed and returned, but flagged as a
    /// deadline miss ([`JobResult::deadline_missed`]) and counted in
    /// [`crate::ServiceStats::deadline_misses`]. `None` = no deadline.
    pub deadline_cycles: Option<u64>,
    /// Execution tier of the platform run: the interpreter by default, or
    /// the compiled hot-block tier — bit-identical results, faster on
    /// lockstep-heavy kernels.
    pub exec_tier: ExecTier,
}

impl JobSpec {
    /// A job with no observers and round-robin placement.
    pub fn new(
        benchmark: Benchmark,
        with_sync: bool,
        cores: usize,
        workload: Arc<WorkloadConfig>,
    ) -> JobSpec {
        JobSpec {
            benchmark,
            with_sync,
            cores,
            workload,
            observers: ObserverSelection::None,
            affinity: None,
            priority: Priority::Normal,
            deadline_cycles: None,
            exec_tier: ExecTier::Interpreted,
        }
    }

    /// Assigns the job's urgency class (the default is
    /// [`Priority::Normal`]).
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Attaches a simulated-cycle deadline budget: runs longer than
    /// `cycles` are flagged as deadline misses on the result.
    #[must_use]
    pub fn with_deadline_cycles(mut self, cycles: u64) -> JobSpec {
        self.deadline_cycles = Some(cycles);
        self
    }

    /// Attaches an observer selection.
    #[must_use]
    pub fn with_observers(mut self, observers: ObserverSelection) -> JobSpec {
        self.observers = observers;
        self
    }

    /// Selects the execution tier of the platform run (the default is
    /// [`ExecTier::Interpreted`]).
    #[must_use]
    pub fn with_exec_tier(mut self, tier: ExecTier) -> JobSpec {
        self.exec_tier = tier;
        self
    }

    /// Pins the job's initial placement to `worker`'s deque. The index is
    /// validated against the actual pool size at submission —
    /// [`crate::SimService::submit`] clamps it (modulo the worker count),
    /// so a pin computed against a larger pool than the one the job lands
    /// on still places onto a real deque instead of stranding the job.
    #[must_use]
    pub fn pinned(mut self, worker: usize) -> JobSpec {
        self.affinity = Some(worker);
        self
    }
}

/// Which observers a job wants attached to its run. Everything here rides
/// on the engine's [`ulp_platform::Observer`] hook layer, so adding a
/// variant never touches the cycle loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum ObserverSelection {
    /// Statistics only (the default — the allocation-free fast path).
    #[default]
    None,
    /// Record per-core fetch PCs for the first `limit` cycles.
    PcTrace {
        /// Maximum traced cycles.
        limit: usize,
    },
    /// Produce a VCD change dump of the whole run.
    Vcd,
    /// Record a per-bank data-memory heat map: served core accesses per
    /// DM bank, bucketed into `window`-cycle rows
    /// ([`ulp_platform::BankHeatMap`]).
    BankHeatMap {
        /// Cycles per heat-map row.
        window: u64,
    },
}

impl ObserverSelection {
    /// The [`JobArtifacts::kind`] string a run under this selection
    /// produces — what a consumer (e.g. the shard merge) should expect on
    /// every result of a job batch sharing one selection.
    pub fn artifact_kind(&self) -> &'static str {
        match self {
            ObserverSelection::None => "none",
            ObserverSelection::PcTrace { .. } => "pc-trace",
            ObserverSelection::Vcd => "vcd",
            ObserverSelection::BankHeatMap { .. } => "bank-heat-map",
        }
    }
}

/// Observer output carried back in a [`JobOutput`], mirroring the job's
/// [`ObserverSelection`].
#[derive(Debug, Clone, Default)]
pub enum JobArtifacts {
    /// No observers were attached.
    #[default]
    None,
    /// Rows of per-core fetch PCs, one row per traced cycle.
    PcTrace(Vec<Vec<Option<u16>>>),
    /// The VCD text of the run.
    Vcd(String),
    /// Heat-map rows: one per cycle window, one served-access count per
    /// DM bank.
    BankHeatMap(Vec<Vec<u64>>),
}

impl JobArtifacts {
    /// Stable name of the variant, matching
    /// [`ObserverSelection::artifact_kind`] for the selection that
    /// produced it. Used by consumers (the shard merge, JSON emitters) to
    /// validate and label artifacts without matching on the enum.
    pub fn kind(&self) -> &'static str {
        match self {
            JobArtifacts::None => "none",
            JobArtifacts::PcTrace(_) => "pc-trace",
            JobArtifacts::Vcd(_) => "vcd",
            JobArtifacts::BankHeatMap(_) => "bank-heat-map",
        }
    }

    /// The PC-trace rows, if this is a [`JobArtifacts::PcTrace`].
    pub fn pc_trace(&self) -> Option<&[Vec<Option<u16>>]> {
        match self {
            JobArtifacts::PcTrace(rows) => Some(rows),
            _ => None,
        }
    }

    /// The VCD text, if this is a [`JobArtifacts::Vcd`].
    pub fn vcd(&self) -> Option<&str> {
        match self {
            JobArtifacts::Vcd(text) => Some(text),
            _ => None,
        }
    }

    /// The heat-map rows, if this is a [`JobArtifacts::BankHeatMap`].
    pub fn bank_heat_map(&self) -> Option<&[Vec<u64>]> {
        match self {
            JobArtifacts::BankHeatMap(rows) => Some(rows),
            _ => None,
        }
    }
}

/// What a successful job produced.
#[derive(Debug)]
pub struct JobOutput {
    /// Core count the job ran on (mirrors the spec; kept here so a result
    /// is self-describing without the submission side-table).
    pub cores: usize,
    /// The benchmark run: statistics, outputs, golden expectations.
    pub run: BenchmarkRun,
    /// Observer output, per the job's selection.
    pub artifacts: JobArtifacts,
}

/// One completed job, streamed back to the client as soon as the worker
/// finishes it.
#[derive(Debug)]
pub struct JobResult {
    /// The id [`crate::SimService::submit`] returned for this job.
    pub id: JobId,
    /// Index of the worker that executed the job.
    pub worker: usize,
    /// Whether the job was ever moved by a steal: claimed directly by a
    /// thief, or relocated to the thief's deque as part of a half-batch
    /// (scheduling observability; stolen results are bit-identical to
    /// local ones).
    pub stolen: bool,
    /// Whether the worker served the job from its platform cache rather
    /// than constructing a platform.
    pub cache_hit: bool,
    /// Wall time the job spent queued before a worker claimed it.
    pub queue_wait: Duration,
    /// Wall time the executing worker spent running the job.
    pub run_time: Duration,
    /// Whether the run exceeded the spec's [`JobSpec::deadline_cycles`]
    /// budget (always `false` for jobs without a deadline, and for jobs
    /// whose outcome is an error).
    pub deadline_missed: bool,
    /// The run, or the first error it hit.
    pub outcome: Result<JobOutput, RunnerError>,
}

impl JobResult {
    /// End-to-end latency of the job: queue wait plus run time.
    pub fn latency(&self) -> Duration {
        self.queue_wait + self.run_time
    }
}

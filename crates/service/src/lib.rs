//! # ulp-service — the batch simulation service
//!
//! A long-lived front-end over the cycle engine: clients submit
//! [`JobSpec`]s (benchmark + platform design + core count + workload +
//! tenant + observer selection) to a [`SimService`] and receive
//! [`JobResult`]s as a stream, in completion order. The pool is built for
//! *grids* — the (benchmark × design × cores) sweeps that every
//! experiment in this repository runs — and for mixed multi-tenant
//! traffic in particular:
//!
//! * **Tenants, quotas and fair share.** Every job carries a
//!   [`TenantId`]; a [`TenantPolicy`] gives a tenant an admission quota
//!   (max in-flight + queued jobs, enforced at submission) and a
//!   fair-share weight. Within a priority class workers claim by
//!   weighted deficit round-robin across per-tenant FIFO lanes, so one
//!   tenant's burst cannot starve another tenant's queue wait.
//! * **Priorities.** Every job carries a [`Priority`] class; queued
//!   `High` jobs are claimed before queued `Normal` and `Low` ones, so a
//!   blocked client's urgent work (e.g. the shards a recording merge
//!   waits on) overtakes a deep background backlog.
//! * **Deadlines and eviction.** A job may carry a simulated-cycle
//!   budget ([`JobSpec::deadline_cycles`]); runs that exceed it are
//!   flagged as deadline misses, and a tenant's eligible jobs are served
//!   earliest-deadline-first. A queued job whose budget provably cannot
//!   be met ([`JobSpec::min_run_cycles`]) is *evicted* with a typed
//!   outcome ([`JobError::Evicted`]) instead of run to certain failure.
//! * **Bounded queues with backpressure.** With a
//!   [`ServiceConfig::queue_capacity`] bound, [`SimService::submit`]
//!   rejects at capacity or quota with a typed [`SubmitError`] carrying
//!   the spec back for retry, and [`SimService::submit_blocking`] parks
//!   until admission succeeds — sustained traffic cannot grow an
//!   unbounded backlog.
//! * **Half-batch work stealing.** Jobs land on per-worker priority
//!   deques (round-robin or pinned); idle workers steal half of every
//!   tenant lane of a victim's highest class in one lock acquisition,
//!   relocating the surplus to their own deque — so a 2-core SQRT32 cell
//!   finishing early frees its worker to steal the tail of an 8-core
//!   full-signal MRPDLN backlog without skewing the per-tenant balance.
//! * **Checkpoints and mid-run migration.** A job with
//!   [`JobSpec::checkpoint_every`] snapshots its platform every N cycles
//!   ([`ulp_platform::Checkpoint`]); at a checkpoint the worker can
//!   *park* the run — to yield to queued `High` work, or because the
//!   worker was killed ([`SimService::inject_worker_failure`], or a
//!   panic recovered by the pool) — and the partially-run job re-queues
//!   from its latest checkpoint for any worker to resume. Migrated
//!   results are bit-identical to uninterrupted ones, observer state
//!   included, and latency/tenant attribution follows the job
//!   ([`JobResult::migrations`], [`ServiceStats::jobs_migrated`]).
//! * **Platform caching.** Each worker keeps one [`ulp_platform::Platform`]
//!   per `(design, cores)` key, reset and reused between jobs
//!   ([`ulp_kernels::run_benchmark_reusing_with`]) so memories and cycle
//!   buffers are allocated once per worker, not once per job.
//! * **Streaming.** Results flow back over a channel the moment a worker
//!   finishes; long sweeps report incrementally instead of joining at the
//!   end.
//! * **Observability.** Every [`JobResult`] carries queue-wait and run
//!   latency; [`ServiceStats`] aggregates p50/p95/max latency
//!   ([`LatencyStats`]) pooled, per priority class and per tenant
//!   ([`TenantStats`]), next to jobs run, steal events and batch sizes,
//!   capacity and quota rejections, evictions, deadline misses,
//!   platform-cache hits and platforms built, so scheduling quality *and*
//!   tail latency are measurable (the `service_throughput` and
//!   `service_latency` benches gate both in CI).
//!
//! Observer output rides back on every result as [`JobArtifacts`],
//! mirroring the spec's [`ObserverSelection`]; artifacts are first-class
//! payload, not a side channel — the workload-sharding layer merges the
//! per-shard artifacts of a recording onto global cycle/sample axes
//! (`ulp_shard::MergedRun::artifacts`) and the sweep carries them per
//! cell, so instrumentation survives every aggregation boundary.
//!
//! `ulp_bench::run_sweep` is a thin client of this service; use the
//! service directly when jobs arrive over time, need observers attached,
//! or don't form a rectangular grid.

mod job;
mod service;

pub use job::{
    JobArtifacts, JobError, JobId, JobOutput, JobResult, JobSpec, ObserverSelection, Priority,
    TenantId,
};
pub use service::{
    LatencyStats, PoolDied, ServiceConfig, ServiceConfigBuilder, ServiceStats, SimService,
    SubmitError, TenantPolicy, TenantStats, LATENCY_WINDOW,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ulp_kernels::{Benchmark, WorkloadConfig};

    fn quick() -> Arc<WorkloadConfig> {
        let mut w = WorkloadConfig::quick_test();
        w.n = 16;
        Arc::new(w)
    }

    fn pool(workers: usize) -> SimService {
        SimService::start(ServiceConfig::builder().workers(workers).build())
    }

    #[test]
    fn results_stream_before_finish() {
        let mut service = pool(2);
        let workload = quick();
        let a = service
            .submit(JobSpec::new(Benchmark::Sqrt32, 2, workload.clone()))
            .expect("unbounded queue admits");
        let b = service
            .submit(JobSpec::new(Benchmark::Sqrt32, 2, workload).with_sync(false))
            .expect("unbounded queue admits");
        let mut ids = vec![
            service.recv().expect("first result").id,
            service.recv().expect("second result").id,
        ];
        ids.sort_unstable();
        assert_eq!(ids, vec![a, b]);
        assert!(service.recv().is_none(), "all results received");
        let stats = service.finish();
        assert_eq!(stats.jobs_run, 2);
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn idle_pool_finishes_immediately() {
        let service = pool(1);
        let stats = service.finish();
        assert_eq!(stats.jobs_run, 0);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.platforms_built, 0);
    }

    #[test]
    fn try_recv_is_non_blocking() {
        let mut service = pool(1);
        assert!(service.try_recv().is_none(), "nothing submitted");
        service
            .submit(JobSpec::new(Benchmark::Sqrt32, 2, quick()))
            .expect("unbounded queue admits");
        // Poll until the single job lands; try_recv never blocks.
        let result = loop {
            if let Some(r) = service.try_recv() {
                break r;
            }
            std::thread::yield_now();
        };
        assert_eq!(result.id, 0);
        assert!(result.outcome.is_ok());
        service.finish();
    }

    #[test]
    fn pc_trace_observer_selection_returns_rows() {
        let mut service = pool(1);
        let spec = JobSpec::new(Benchmark::Sqrt32, 2, quick())
            .observers(ObserverSelection::PcTrace { limit: 32 });
        service.submit(spec).expect("unbounded queue admits");
        let result = service.recv().expect("job completes");
        let out = result.outcome.expect("job runs");
        match out.artifacts {
            JobArtifacts::PcTrace(rows) => {
                assert_eq!(rows.len(), 32);
                assert!(rows.iter().all(|row| row.len() == 2));
            }
            other => panic!("expected a PC trace, got {other:?}"),
        }
        service.finish();
    }

    #[test]
    fn bank_heat_map_observer_selection_returns_rows() {
        let mut service = pool(1);
        let spec = JobSpec::new(Benchmark::Sqrt32, 2, quick())
            .observers(ObserverSelection::BankHeatMap { window: 64 });
        service.submit(spec).expect("unbounded queue admits");
        let result = service.recv().expect("job completes");
        let out = result.outcome.expect("job runs");
        match out.artifacts {
            JobArtifacts::BankHeatMap(rows) => {
                assert!(!rows.is_empty(), "the run spans at least one window");
                // The paper platform has 16 DM banks.
                assert!(rows.iter().all(|row| row.len() == 16));
                let total: u64 = rows.iter().flatten().sum();
                assert!(total > 0, "the kernel reads and writes data memory");
            }
            other => panic!("expected a heat map, got {other:?}"),
        }
        service.finish();
    }

    /// Regression: a pin beyond the pool size must land on a real deque
    /// (clamped modulo the worker count), not strand the job — this would
    /// hang in `recv` if the job were pushed somewhere no worker scans.
    #[test]
    fn out_of_range_pin_is_clamped_onto_a_real_worker() {
        let mut service = pool(2);
        let workload = quick();
        for pin in [2usize, 7, usize::MAX] {
            service
                .submit(JobSpec::new(Benchmark::Sqrt32, 2, workload.clone()).pinned(pin))
                .expect("unbounded queue admits");
        }
        for _ in 0..3 {
            let result = service.recv().expect("pinned job completes");
            assert!(result.worker < 2, "executed by a real worker");
            assert!(result.outcome.is_ok());
        }
        let stats = service.finish();
        assert_eq!(stats.jobs_run, 3);
    }

    #[test]
    fn drop_with_backlog_cancels_instead_of_draining() {
        let mut service = pool(2);
        let workload = quick();
        for _ in 0..32 {
            service
                .submit(JobSpec::new(Benchmark::Sqrt32, 8, workload.clone()))
                .expect("unbounded queue admits");
        }
        let first = service.recv().expect("at least one job completes");
        assert!(first.outcome.is_ok());
        // Dropping with a deep backlog must cancel the queued jobs and
        // join promptly — workers finish at most their current job. A
        // livelock in claim abandonment would hang this test.
        drop(service);
    }

    #[test]
    fn invalid_core_count_yields_an_error_outcome() {
        let mut service = pool(1);
        for cores in [0, 9, 16] {
            service
                .submit(JobSpec::new(Benchmark::Sqrt32, cores, quick()))
                .expect("unbounded queue admits");
        }
        for _ in 0..3 {
            let result = service.recv().expect("job completes");
            let err = result.outcome.expect_err("bad core count must error");
            assert!(
                !err.is_eviction(),
                "a bad core count is a run error, not an eviction"
            );
            assert!(
                err.to_string().contains("core count"),
                "unexpected error: {err}"
            );
        }
        let stats = service.finish();
        assert_eq!(stats.jobs_run, 3);
        assert_eq!(
            stats.platforms_built, 0,
            "no platform is built for bad specs"
        );
    }

    #[test]
    fn config_builder_resolves_policies() {
        let config = ServiceConfig::builder()
            .workers(3)
            .queue_capacity(16)
            .default_policy(TenantPolicy::quota(4))
            .tenant(TenantId(1), TenantPolicy::quota(2).with_weight(5))
            .tenant(TenantId(1), TenantPolicy::quota(3)) // replaces
            .build();
        assert_eq!(config.workers, 3);
        assert_eq!(config.queue_capacity, 16);
        assert_eq!(config.policy(TenantId(1)).quota, 3);
        assert_eq!(config.policy(TenantId(1)).weight, 1);
        assert_eq!(config.policy(TenantId(9)).quota, 4, "default applies");
        assert_eq!(config.resolved_workers(), 3);
    }
}

//! Integration tests of the service's telemetry: every accepted job must
//! leave a complete, well-ordered span set (submitted → queued → claimed,
//! then evicted *or* platform → run-start → run-end) attributed to the
//! tenant that submitted it, under deterministic smoke shapes and under a
//! property test that churns random submit/steal/evict/complete
//! interleavings across 2–4 workers.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use ulp_kernels::{Benchmark, WorkloadConfig};
use ulp_service::{
    JobError, JobId, JobSpec, Priority, ServiceConfig, SimService, SubmitError, TenantId,
    TenantPolicy,
};
use ulp_telemetry::{EventKind, JobEvent, Telemetry, NO_JOB};

fn workload(n: usize) -> Arc<WorkloadConfig> {
    let mut w = WorkloadConfig::quick_test();
    w.n = n;
    Arc::new(w)
}

fn traced_pool(workers: usize, telemetry: &Telemetry) -> SimService {
    SimService::start(
        ServiceConfig::builder()
            .workers(workers)
            .telemetry(telemetry.clone())
            .build(),
    )
}

/// The per-job lifecycle events, grouped and time-ordered. Admission
/// rejections (tagged `NO_JOB`) are excluded — they never name a job.
fn events_by_job(telemetry: &Telemetry) -> HashMap<u64, Vec<JobEvent>> {
    telemetry.collect();
    let mut by_job: HashMap<u64, Vec<JobEvent>> = HashMap::new();
    for event in telemetry.events() {
        if event.job != NO_JOB {
            by_job.entry(event.job).or_default().push(event);
        }
    }
    for events in by_job.values_mut() {
        events.sort_by_key(|e| e.at_ns);
    }
    by_job
}

/// First timestamp of `kind` within one job's events.
fn at(events: &[JobEvent], kind: EventKind) -> Option<u64> {
    events.iter().find(|e| e.kind == kind).map(|e| e.at_ns)
}

fn count(events: &[JobEvent], kind: EventKind) -> usize {
    events.iter().filter(|e| e.kind == kind).count()
}

/// Asserts one job's span set is complete and causally ordered; `evicted`
/// selects which terminal chain is required. Returns an error string so
/// the proptest can surface it through `prop_assert!`.
fn check_chain(id: u64, events: &[JobEvent], evicted: bool) -> Result<(), String> {
    let fail = |msg: String| Err(format!("job {id}: {msg} (events: {events:?})"));
    for kind in [EventKind::Submitted, EventKind::Queued, EventKind::Claimed] {
        if count(events, kind) != 1 {
            return fail(format!("expected exactly one {} event", kind.name()));
        }
    }
    let submitted = at(events, EventKind::Submitted).unwrap();
    let queued = at(events, EventKind::Queued).unwrap();
    let claimed = at(events, EventKind::Claimed).unwrap();
    if submitted > queued || queued > claimed {
        return fail("submitted/queued/claimed out of order".into());
    }
    if evicted {
        if count(events, EventKind::Evicted) != 1 {
            return fail("expected exactly one evicted event".into());
        }
        if count(events, EventKind::RunStart) != 0 || count(events, EventKind::RunEnd) != 0 {
            return fail("an evicted job must never run".into());
        }
        if claimed > at(events, EventKind::Evicted).unwrap() {
            return fail("evicted before claimed".into());
        }
    } else {
        for kind in [EventKind::RunStart, EventKind::RunEnd] {
            if count(events, kind) != 1 {
                return fail(format!("expected exactly one {} event", kind.name()));
            }
        }
        let run_start = at(events, EventKind::RunStart).unwrap();
        let run_end = at(events, EventKind::RunEnd).unwrap();
        if claimed > run_start || run_start > run_end {
            return fail("claimed/run-start/run-end out of order".into());
        }
        // The platform phase (build or cache hit) sits between the claim
        // and the run.
        let platform = at(events, EventKind::PlatformBuilt)
            .or_else(|| at(events, EventKind::PlatformCacheHit));
        match platform {
            None => return fail("no platform build or cache-hit event".into()),
            Some(t) if claimed > t || t > run_start => {
                return fail("platform phase outside claimed..run-start".into())
            }
            Some(_) => {}
        }
    }
    Ok(())
}

/// A deterministic smoke: a small two-worker grid leaves one complete
/// chain per job, on the right tenants, and the Chrome exporter renders a
/// track per worker with the chains as complete spans.
#[test]
fn every_job_leaves_a_complete_chain_on_its_tenant() {
    let telemetry = Telemetry::enabled();
    let mut service = traced_pool(2, &telemetry);
    let w = workload(16);
    let mut tenant_of: HashMap<JobId, u32> = HashMap::new();
    for i in 0..8u32 {
        let tenant = TenantId(i % 3);
        let id = service
            .submit(
                JobSpec::new(Benchmark::Sqrt32, 2, w.clone())
                    .with_sync(i % 2 == 0)
                    .tenant(tenant),
            )
            .expect("unbounded queue admits");
        tenant_of.insert(id, tenant.0);
    }
    let mut done = 0;
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        done += 1;
    }
    assert_eq!(done, 8);
    service.finish();

    let by_job = events_by_job(&telemetry);
    assert_eq!(by_job.len(), 8, "every job left events");
    for (&id, events) in &by_job {
        check_chain(id, events, false).unwrap();
        let expected = tenant_of[&id];
        for event in events {
            assert_eq!(
                event.tenant,
                expected,
                "job {id} event {} attributed to tenant {} (submitted as {expected})",
                event.kind.name(),
                event.tenant
            );
        }
    }
    assert_eq!(telemetry.dropped(), 0);

    let trace = telemetry.chrome_trace();
    assert!(trace.contains("\"worker 0\""));
    assert!(trace.contains("\"queued\""));
    assert!(trace.contains("\"run\""));
}

/// A pool started without a telemetry handle records nothing and exports
/// the empty snapshot — the zero-cost default.
#[test]
fn default_pool_is_untraced() {
    let mut service = SimService::start(ServiceConfig::builder().workers(1).build());
    service
        .submit(JobSpec::new(Benchmark::Sqrt32, 2, workload(16)))
        .expect("unbounded queue admits");
    while service.recv().is_some() {}
    let telemetry = service.telemetry();
    service.finish();
    assert!(!telemetry.is_enabled());
    assert_eq!(telemetry.collect(), 0);
    assert!(telemetry.events().is_empty());
    assert_eq!(telemetry.snapshot_json(), "{}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Churn: random submit interleavings across 2–4 workers with pins
    /// (forcing steals), infeasible deadlines (forcing evictions), mixed
    /// priorities, tenants (one quota-bounded, forcing rejections) and
    /// both submit paths. Every accepted job must leave a complete,
    /// well-ordered span set; no event may name the wrong tenant; the
    /// rejection events must match what the client saw; nothing may be
    /// dropped at these volumes.
    #[test]
    fn churned_interleavings_leave_complete_chains_on_the_right_tenants(
        workers in 2usize..=4,
        ops in prop::collection::vec(
            // (cores selector, priority selector, pin selector,
            //  tenant selector, evict this job, use the blocking path)
            (0usize..3, 0usize..3, 0usize..5, 0usize..3, 0usize..2, 0usize..2),
            1..28,
        ),
    ) {
        let telemetry = Telemetry::enabled();
        let quota_tenant = TenantId(2);
        let mut service = SimService::start(
            ServiceConfig::builder()
                .workers(workers)
                .tenant(quota_tenant, TenantPolicy::quota(2))
                .telemetry(telemetry.clone())
                .build(),
        );
        let w = workload(16);
        let mut tenant_of: HashMap<JobId, u32> = HashMap::new();
        let mut doomed: Vec<JobId> = Vec::new();
        let mut over_quota = 0u64;
        for &(cores_sel, prio_sel, pin_sel, tenant_sel, evict_sel, blocking_sel) in &ops {
            let (evict, blocking) = (evict_sel == 1, blocking_sel == 1);
            let tenant = TenantId(tenant_sel as u32);
            let mut spec = JobSpec::new(Benchmark::Sqrt32, [1, 2, 4][cores_sel], w.clone())
                .with_sync(cores_sel == 0)
                .priority([Priority::High, Priority::Normal, Priority::Low][prio_sel])
                .tenant(tenant);
            if evict {
                // Budget 4 < the 16-cycle floor: provably infeasible, so
                // the claiming worker evicts instead of running.
                spec = spec.deadline_cycles(4);
            }
            if pin_sel < 4 {
                // Lopsided pins force other workers to steal.
                spec = spec.pinned(pin_sel % workers);
            }
            let outcome = if blocking {
                service.submit_blocking(spec).map_err(|_| ())
            } else {
                match service.submit(spec) {
                    Ok(id) => Ok(id),
                    Err(SubmitError::QuotaExceeded { tenant: t, .. }) => {
                        prop_assert_eq!(t, quota_tenant);
                        over_quota += 1;
                        continue;
                    }
                    Err(_) => Err(()),
                }
            };
            // The blocking path parks on quota pressure until slots free,
            // so it only errors on a dead pool — which fails the test.
            let id = outcome.expect("pool alive");
            tenant_of.insert(id, tenant.0);
            if evict {
                doomed.push(id);
            }
        }
        let mut evicted: Vec<JobId> = Vec::new();
        while let Some(result) = service.recv() {
            match &result.outcome {
                Ok(_) => prop_assert!(!doomed.contains(&result.id)),
                Err(JobError::Evicted { .. }) => evicted.push(result.id),
                Err(other) => panic!("job failed: {other}"),
            }
        }
        evicted.sort_unstable();
        doomed.sort_unstable();
        prop_assert_eq!(&evicted, &doomed, "exactly the infeasible jobs evict");
        service.finish();

        prop_assert_eq!(telemetry.dropped(), 0, "nothing drops at these volumes");
        let by_job = events_by_job(&telemetry);
        prop_assert_eq!(by_job.len(), tenant_of.len(), "every accepted job left events");
        for (&id, events) in &by_job {
            if let Err(msg) = check_chain(id, events, doomed.contains(&id)) {
                panic!("{msg}");
            }
            let expected = tenant_of[&id];
            for event in events {
                prop_assert_eq!(
                    event.tenant, expected,
                    "job {} event {} attributed to tenant {} (submitted as {})",
                    id, event.kind.name(), event.tenant, expected
                );
            }
        }
        // Quota rejections leave their own (job-less) events, one per
        // client-visible rejection.
        let rejections = telemetry
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::QuotaRejected)
            .count() as u64;
        prop_assert_eq!(rejections, over_quota);
    }
}

//! Deterministic fairness tests of the tenant-aware scheduler: weighted
//! deficit round-robin across per-tenant lanes inside a priority class,
//! earliest-deadline-first within a lane, and the starvation protection
//! the quotas + round-robin buy a polite tenant against a saturating one.
//!
//! Determinism: every test uses a single worker pinned down by a long
//! blocker job (8-core full-window MRPFLTR — many milliseconds) while the
//! microsecond-scale submissions below pile up behind it, so the entire
//! backlog exists before the first claim and completion order *is* claim
//! order.

use std::sync::Arc;
use ulp_kernels::{Benchmark, WorkloadConfig};
use ulp_service::{JobId, JobSpec, ServiceConfig, SimService, TenantId, TenantPolicy};

fn workload(n: usize) -> Arc<WorkloadConfig> {
    let mut w = WorkloadConfig::quick_test();
    w.n = n;
    Arc::new(w)
}

/// Occupies the single worker long enough for every quick submission to
/// land before the first real claim.
fn submit_blocker(service: &mut SimService) -> JobId {
    service
        .submit(JobSpec::new(Benchmark::Mrpfltr, 8, workload(256)).tenant(TenantId(99)))
        .expect("blocker admits")
}

fn quick_spec(tenant: TenantId) -> JobSpec {
    JobSpec::new(Benchmark::Sqrt32, 2, workload(16)).tenant(tenant)
}

/// The acceptance criterion pinned as a test: two equal-weight tenants
/// saturating a bounded queue complete within 20% of each other — not
/// just at the end of the run, but at every prefix of it. The adversarial
/// submission order (all of A's jobs queued before any of B's) is exactly
/// what the old flat per-class FIFO turned into starvation.
#[test]
fn equal_weight_tenants_share_claims_within_twenty_percent() {
    let a = TenantId(1);
    let b = TenantId(2);
    let mut service = SimService::start(ServiceConfig::builder().workers(1).build());
    let blocker = submit_blocker(&mut service);
    let jobs_each = 20usize;
    let mut of_a = Vec::new();
    let mut of_b = Vec::new();
    for _ in 0..jobs_each {
        of_a.push(service.submit(quick_spec(a)).expect("admits"));
    }
    for _ in 0..jobs_each {
        of_b.push(service.submit(quick_spec(b)).expect("admits"));
    }

    let mut order: Vec<JobId> = Vec::new();
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        if result.id != blocker {
            order.push(result.id);
        }
    }
    assert_eq!(order.len(), 2 * jobs_each);
    // At every prefix, the completed counts differ by at most
    // max(1, 20% of the prefix) — the deficit round-robin actually
    // alternates, so the slack is generosity, not necessity.
    let mut count_a = 0i64;
    let mut count_b = 0i64;
    for (done, id) in order.iter().enumerate() {
        if of_a.contains(id) {
            count_a += 1;
        } else {
            assert!(of_b.contains(id));
            count_b += 1;
        }
        let bound = 1i64.max((done as i64 + 1) / 5);
        assert!(
            (count_a - count_b).abs() <= bound,
            "unfair prefix after {} completions: A={count_a} B={count_b} (bound {bound})",
            done + 1
        );
    }
    assert_eq!(count_a, count_b, "equal backlogs fully drain equally");

    let stats = service.finish();
    let sa = stats.tenant(a).expect("tenant A stats").latency.samples;
    let sb = stats.tenant(b).expect("tenant B stats").latency.samples;
    assert_eq!(sa, jobs_each as u64);
    assert_eq!(sb, jobs_each as u64);
}

/// Weights buy claims per round: a weight-2 tenant is served two jobs for
/// every one of a weight-1 tenant while both have backlog.
#[test]
fn weighted_tenant_gets_proportional_share() {
    let heavy = TenantId(1);
    let light = TenantId(2);
    let mut service = SimService::start(
        ServiceConfig::builder()
            .workers(1)
            .tenant(heavy, TenantPolicy::default().with_weight(2))
            .build(),
    );
    let blocker = submit_blocker(&mut service);
    let mut of_heavy = Vec::new();
    for _ in 0..12 {
        of_heavy.push(service.submit(quick_spec(heavy)).expect("admits"));
    }
    let mut of_light = Vec::new();
    for _ in 0..12 {
        of_light.push(service.submit(quick_spec(light)).expect("admits"));
    }

    let mut order: Vec<JobId> = Vec::new();
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        if result.id != blocker {
            order.push(result.id);
        }
    }
    // While both lanes have backlog (the first 18 completions = 12 heavy
    // + 6 light at a 2:1 ratio), the heavy tenant's share tracks 2/3 of
    // the claims, within one round-robin quantum.
    let mut heavy_done = 0i64;
    for (done, id) in order.iter().take(18).enumerate() {
        if of_heavy.contains(id) {
            heavy_done += 1;
        }
        let expected = 2 * (done as i64 + 1) / 3;
        assert!(
            (heavy_done - expected).abs() <= 2,
            "after {} completions the weight-2 tenant had {heavy_done} (expected ~{expected})",
            done + 1
        );
    }
    service.finish();
}

/// Starvation protection: a tenant flooding 40 jobs cannot push a polite
/// tenant's claims to the back of the queue — the round-robin serves the
/// polite tenant's k-th job by roughly its 2k-th claim, and the polite
/// tenant's p95 latency stays at or below the flooder's (whose own tail
/// waits behind its whole flood).
#[test]
fn saturating_tenant_cannot_starve_a_polite_one() {
    let greedy = TenantId(1);
    let polite = TenantId(2);
    let mut service = SimService::start(ServiceConfig::builder().workers(1).build());
    let blocker = submit_blocker(&mut service);
    let mut flood = Vec::new();
    for _ in 0..40 {
        flood.push(service.submit(quick_spec(greedy)).expect("admits"));
    }
    // The polite tenant arrives *after* the flood is fully queued.
    let polite_jobs: Vec<JobId> = (0..6)
        .map(|_| service.submit(quick_spec(polite)).expect("admits"))
        .collect();

    let mut order: Vec<JobId> = Vec::new();
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        if result.id != blocker {
            order.push(result.id);
        }
    }
    let position = |id: JobId| order.iter().position(|&x| x == id).expect("id completed");
    for (k, &job) in polite_jobs.iter().enumerate() {
        let pos = position(job);
        // Round-robin alternation: the k-th polite job is served by
        // roughly the 2(k+1)-th claim; 4 claims of slack absorb the
        // claim-order boundary effects. Under the old flat FIFO this
        // position would be 40 + k.
        assert!(
            pos <= 2 * (k + 1) + 4,
            "polite job {k} completed at position {pos}, starved behind the flood: {order:?}"
        );
    }

    let stats = service.finish();
    let greedy_stats = stats.tenant(greedy).expect("greedy stats");
    let polite_stats = stats.tenant(polite).expect("polite stats");
    assert_eq!(polite_stats.latency.samples, 6);
    assert!(
        polite_stats.latency.p95 <= greedy_stats.latency.p95,
        "the flooder's own tail must absorb its flood: polite p95 {:?} > greedy p95 {:?}",
        polite_stats.latency.p95,
        greedy_stats.latency.p95
    );
}

/// EDF within one tenant's lane: among a tenant's queued jobs, the one
/// with the earliest deadline is claimed first, ahead of older
/// no-deadline jobs — while jobs without deadlines keep FIFO order among
/// themselves.
#[test]
fn earliest_deadline_first_within_a_tenant_lane() {
    let tenant = TenantId(1);
    let mut service = SimService::start(ServiceConfig::builder().workers(1).build());
    let blocker = submit_blocker(&mut service);
    let no_deadline_1 = service.submit(quick_spec(tenant)).expect("admits");
    let loose = service
        .submit(quick_spec(tenant).deadline_cycles(1_000_000))
        .expect("admits");
    let tight = service
        .submit(quick_spec(tenant).deadline_cycles(500_000))
        .expect("admits");
    let no_deadline_2 = service.submit(quick_spec(tenant)).expect("admits");

    let mut order: Vec<JobId> = Vec::new();
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        if result.id != blocker {
            order.push(result.id);
        }
    }
    assert_eq!(
        order,
        vec![tight, loose, no_deadline_1, no_deadline_2],
        "deadlines first (earliest wins), then FIFO"
    );
    service.finish();
}

//! Integration tests of the hardened submission path: bounded queues
//! with explicit backpressure (typed `SubmitError` rejection, blocking
//! `submit_blocking` with a watermark), tenant quotas, priority ordering,
//! deadline accounting and eviction, per-job latency, and a property test
//! that random multi-tenant submit interleavings under bounded queues and
//! quotas never lose or duplicate a job and never breach a quota.

use proptest::prelude::*;
use std::sync::Arc;
use ulp_kernels::{Benchmark, WorkloadConfig};
use ulp_service::{
    JobError, JobId, JobSpec, Priority, ServiceConfig, SimService, SubmitError, TenantId,
    TenantPolicy,
};

fn workload(n: usize) -> Arc<WorkloadConfig> {
    let mut w = WorkloadConfig::quick_test();
    w.n = n;
    Arc::new(w)
}

fn bounded_pool(workers: usize, capacity: usize) -> SimService {
    SimService::start(
        ServiceConfig::builder()
            .workers(workers)
            .queue_capacity(capacity)
            .build(),
    )
}

/// A burst far beyond a tiny queue's capacity: the non-blocking `submit`
/// must reject with `AtCapacity` (counted in the stats), and every job
/// that *was* accepted must come back exactly once.
#[test]
fn submit_rejects_at_capacity_and_accepted_jobs_complete() {
    let capacity = 2;
    let mut service = bounded_pool(1, capacity);
    assert_eq!(service.queue_capacity(), capacity);
    // Jobs long enough that the single worker cannot drain a 32-job
    // burst while it is being submitted.
    let w = workload(128);
    let mut accepted: Vec<JobId> = Vec::new();
    let mut rejected = 0u64;
    for i in 0..32 {
        let spec = JobSpec::new(Benchmark::Sqrt32, 2, w.clone()).with_sync(i % 2 == 0);
        match service.submit(spec) {
            Ok(id) => accepted.push(id),
            Err(SubmitError::AtCapacity { capacity: c, .. }) => {
                assert_eq!(c, capacity);
                rejected += 1;
            }
            Err(other) => panic!("expected AtCapacity, got {other}"),
        }
    }
    assert!(rejected >= 1, "a 32-job burst must overflow capacity 2");
    assert_eq!(accepted.len() as u64 + rejected, 32);

    let mut received: Vec<JobId> = Vec::new();
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        received.push(result.id);
    }
    received.sort_unstable();
    assert_eq!(received, accepted, "exactly the accepted jobs complete");

    let stats = service.finish();
    assert_eq!(stats.rejections, rejected);
    assert_eq!(stats.jobs_run, accepted.len() as u64);
}

/// The blocking path never rejects on backpressure: at capacity it parks
/// the submitter until workers drain the backlog to the watermark, then
/// admits.
#[test]
fn blocking_submit_throttles_but_never_rejects() {
    let mut service = bounded_pool(2, 2);
    let w = workload(32);
    for i in 0..12 {
        let spec = JobSpec::new(Benchmark::Sqrt32, 2, w.clone()).with_sync(i % 2 == 0);
        service.submit_blocking(spec).expect("pool alive");
    }
    let mut completed = 0;
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        completed += 1;
    }
    assert_eq!(completed, 12);
    let stats = service.finish();
    assert_eq!(stats.jobs_run, 12);
    assert_eq!(
        stats.rejections, 0,
        "blocking submissions are never rejected"
    );
}

/// A rejected spec comes back inside the error so the caller can retry it
/// — here through the blocking path, which must then complete it.
#[test]
fn rejected_spec_is_returned_for_retry() {
    let mut service = bounded_pool(1, 1);
    let w = workload(128);
    // Occupies the worker for tens of milliseconds...
    let blocker = JobSpec::new(Benchmark::Sqrt32, 2, w.clone());
    service.submit_blocking(blocker).expect("pool alive");
    // ...so this one stays queued, filling the capacity-1 queue...
    let filler = JobSpec::new(Benchmark::Sqrt32, 2, w.clone()).with_sync(false);
    service.submit_blocking(filler).expect("pool alive");
    // ...and this one must bounce, spec intact.
    let spec = JobSpec::new(Benchmark::Mrpfltr, 2, w.clone()).priority(Priority::High);
    let rejection = service
        .submit(spec)
        .expect_err("queue of capacity 1 is full");
    match &rejection {
        SubmitError::AtCapacity { capacity, spec } => {
            assert_eq!(*capacity, 1);
            assert_eq!(spec.benchmark, Benchmark::Mrpfltr);
            assert_eq!(spec.priority, Priority::High);
        }
        other => panic!("expected AtCapacity, got {other}"),
    }
    // Retry the very spec the error handed back, on the blocking path.
    let retried = service
        .submit_blocking(rejection.into_spec().expect("spec returned"))
        .expect("pool alive");
    let mut seen = Vec::new();
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        seen.push(result.id);
    }
    assert!(seen.contains(&retried));
    let stats = service.finish();
    assert_eq!(stats.jobs_run, 3);
    assert_eq!(stats.rejections, 1);
}

/// Priority ordering: with one worker pinned down by a long normal job, a
/// high-priority submission must overtake an already-queued backlog of
/// low-priority jobs.
#[test]
fn high_priority_overtakes_queued_low_backlog() {
    let mut service = bounded_pool(1, 0);
    // The blocker occupies the single worker for many milliseconds while
    // the microsecond-scale submissions below pile up behind it.
    service
        .submit(JobSpec::new(Benchmark::Sqrt32, 2, workload(256)))
        .expect("unbounded queue admits");
    let quick = workload(16);
    let lows: Vec<JobId> = (0..8)
        .map(|_| {
            service
                .submit(JobSpec::new(Benchmark::Sqrt32, 2, quick.clone()).priority(Priority::Low))
                .expect("unbounded queue admits")
        })
        .collect();
    let high = service
        .submit(
            JobSpec::new(Benchmark::Sqrt32, 2, quick.clone())
                .with_sync(false)
                .priority(Priority::High),
        )
        .expect("unbounded queue admits");

    let mut order: Vec<JobId> = Vec::new();
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        order.push(result.id);
    }
    let position = |id: JobId| order.iter().position(|&x| x == id).expect("id completed");
    for &low in &lows {
        assert!(
            position(high) < position(low),
            "high-priority job must complete before every queued low job: {order:?}"
        );
    }
    service.finish();
}

/// Priority is pool-wide, not per-deque: a high-priority job pinned onto
/// one worker's deque must overtake a normal-priority backlog pinned onto
/// the *other* worker's deque — the first worker to free up has to serve
/// the High class across deques before its own normal jobs.
///
/// The scheduler guarantees *claim* order, not completion order, so the
/// test keeps worker 1 busy for the whole interesting interval: its
/// blocker (8-core full-window MRPFLTR) outlasts worker 0's short
/// blocker by an order of magnitude, so worker 0 alone claims — and
/// therefore completes — the whole quick backlog, making completion
/// order observe claim order deterministically.
#[test]
fn high_priority_is_served_pool_wide_across_deques() {
    let mut service = bounded_pool(2, 0);
    let blocker = workload(256);
    // Short blocker on worker 0, ~10x longer blocker on worker 1.
    service
        .submit(JobSpec::new(Benchmark::Sqrt32, 2, blocker.clone()).pinned(0))
        .expect("unbounded queue admits");
    service
        .submit(
            JobSpec::new(Benchmark::Mrpfltr, 8, blocker.clone())
                .with_sync(false)
                .pinned(1),
        )
        .expect("unbounded queue admits");
    let quick = workload(16);
    // The normal backlog piles onto worker 0's deque...
    let normals: Vec<JobId> = (0..6)
        .map(|_| {
            service
                .submit(JobSpec::new(Benchmark::Sqrt32, 2, quick.clone()).pinned(0))
                .expect("unbounded queue admits")
        })
        .collect();
    // ...while the lone high-priority job sits on busy worker 1's deque:
    // worker 0, freeing first, must steal it before its own normals.
    let high = service
        .submit(
            JobSpec::new(Benchmark::Sqrt32, 2, quick.clone())
                .with_sync(false)
                .priority(Priority::High)
                .pinned(1),
        )
        .expect("unbounded queue admits");

    let mut order: Vec<JobId> = Vec::new();
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        order.push(result.id);
    }
    let position = |id: JobId| order.iter().position(|&x| x == id).expect("id completed");
    for &normal in &normals {
        assert!(
            position(high) < position(normal),
            "the queued high-priority job must be claimed before normal \
             jobs queued on another deque: {order:?}"
        );
    }
    service.finish();
}

/// Deadline accounting: a run over its simulated-cycle budget is flagged
/// and counted; a generous budget and an errored job are not. The missed
/// job's budget sits exactly on the provable floor (`min_run_cycles`), so
/// it is *not* evicted — it runs, and the real run blows the budget.
#[test]
fn deadline_misses_are_flagged_and_counted() {
    let mut service = bounded_pool(1, 0);
    let w = workload(16);
    // Budget == the provable floor: feasible on paper, so the scheduler
    // runs it — and the real run (far more than one cycle per sample)
    // misses.
    let missed = service
        .submit(JobSpec::new(Benchmark::Sqrt32, 2, w.clone()).deadline_cycles(16))
        .expect("unbounded queue admits");
    // No run exhausts u64: never a miss.
    let met = service
        .submit(JobSpec::new(Benchmark::Sqrt32, 2, w.clone()).deadline_cycles(u64::MAX))
        .expect("unbounded queue admits");
    // An errored job (bad core count) has no run to miss a deadline.
    let errored = service
        .submit(JobSpec::new(Benchmark::Sqrt32, 9, w.clone()).deadline_cycles(u64::MAX))
        .expect("unbounded queue admits");

    let mut results = Vec::new();
    while let Some(result) = service.recv() {
        results.push(result);
    }
    let by_id = |id: JobId| results.iter().find(|r| r.id == id).expect("completed");
    assert!(by_id(missed).deadline_missed);
    assert!(by_id(missed).outcome.is_ok(), "missed jobs still complete");
    assert!(!by_id(met).deadline_missed);
    assert!(!by_id(errored).deadline_missed);
    assert!(by_id(errored).outcome.is_err());

    let stats = service.finish();
    assert_eq!(stats.deadline_misses, 1);
    assert_eq!(stats.evictions, 0, "all budgets were >= the floor");
}

/// Deadline eviction: a queued job whose budget is provably infeasible
/// (below `min_run_cycles`) never runs — it comes back as a typed
/// `JobError::Evicted` with zero run time, counted in the stats, and
/// does not hold the worker.
#[test]
fn infeasible_deadline_evicts_instead_of_running() {
    let mut service = bounded_pool(1, 0);
    let w = workload(16);
    let feasible = service
        .submit(JobSpec::new(Benchmark::Sqrt32, 2, w.clone()))
        .expect("unbounded queue admits");
    // Budget 4 < the 16-cycle floor of a 16-sample workload.
    let doomed_spec = JobSpec::new(Benchmark::Sqrt32, 2, w.clone()).deadline_cycles(4);
    assert_eq!(doomed_spec.min_run_cycles(), 16);
    let doomed = service.submit(doomed_spec).expect("unbounded queue admits");

    let mut results = Vec::new();
    while let Some(result) = service.recv() {
        results.push(result);
    }
    let by_id = |id: JobId| results.iter().find(|r| r.id == id).expect("completed");
    assert!(by_id(feasible).outcome.is_ok());
    let evicted = by_id(doomed);
    assert_eq!(evicted.run_time, std::time::Duration::ZERO);
    assert!(!evicted.deadline_missed, "evictions are not misses");
    match &evicted.outcome {
        Err(JobError::Evicted {
            deadline_cycles,
            min_cycles,
        }) => {
            assert_eq!(*deadline_cycles, 4);
            assert_eq!(*min_cycles, 16);
        }
        other => panic!("expected an eviction, got {other:?}"),
    }
    assert!(evicted.outcome.as_ref().err().unwrap().is_eviction());

    let stats = service.finish();
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.deadline_misses, 0);
    assert_eq!(stats.jobs_run, 1, "the evicted job never executed");
    assert_eq!(
        stats.latency.samples, 1,
        "evicted jobs do not pollute the latency distribution"
    );
}

/// Tenant quotas bound admission: with the single worker pinned down, a
/// tenant at its quota is rejected with `QuotaExceeded` (spec returned),
/// while other tenants keep submitting — and the slot frees once the
/// tenant's jobs complete.
#[test]
fn quota_is_enforced_at_admission_and_freed_on_completion() {
    let polite = TenantId(1);
    let greedy = TenantId(2);
    let mut service = SimService::start(
        ServiceConfig::builder()
            .workers(1)
            .tenant(greedy, TenantPolicy::quota(3))
            .build(),
    );
    // Pin the worker down so nothing drains while we probe admission.
    service
        .submit(JobSpec::new(Benchmark::Mrpfltr, 8, workload(256)).tenant(polite))
        .expect("no quota for the polite tenant");
    let quick = workload(16);
    for _ in 0..3 {
        service
            .submit(JobSpec::new(Benchmark::Sqrt32, 2, quick.clone()).tenant(greedy))
            .expect("under quota");
    }
    let over = service
        .submit(JobSpec::new(Benchmark::Sqrt32, 2, quick.clone()).tenant(greedy))
        .expect_err("fourth in-flight job breaches quota 3");
    match &over {
        SubmitError::QuotaExceeded {
            tenant,
            quota,
            spec,
        } => {
            assert_eq!(*tenant, greedy);
            assert_eq!(*quota, 3);
            assert_eq!(spec.benchmark, Benchmark::Sqrt32);
        }
        other => panic!("expected QuotaExceeded, got {other}"),
    }
    // Other tenants are unaffected by the greedy tenant's quota.
    service
        .submit(JobSpec::new(Benchmark::Sqrt32, 2, quick.clone()).tenant(polite))
        .expect("polite tenant admits fine");
    // The blocking path parks on the quota and resumes as completions
    // free slots — the retried spec must eventually land.
    let retried = service
        .submit_blocking(over.into_spec().expect("spec returned"))
        .expect("pool alive");
    let mut received = Vec::new();
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        received.push(result.id);
    }
    assert!(received.contains(&retried));
    assert_eq!(received.len(), 6);

    let stats = service.finish();
    assert_eq!(stats.quota_rejections, 1);
    assert_eq!(stats.rejections, 0, "no capacity bound was configured");
    let greedy_stats = stats.tenant(greedy).expect("greedy tenant has stats");
    assert!(
        greedy_stats.peak_admitted <= 3,
        "quota was never breached: peak {}",
        greedy_stats.peak_admitted
    );
    assert_eq!(greedy_stats.latency.samples, 4);
    assert_eq!(
        stats.tenant(polite).expect("polite stats").latency.samples,
        2
    );
}

/// Per-priority and per-tenant latency distributions are populated and
/// consistent with the pooled aggregate.
#[test]
fn latency_fields_match_the_aggregate_distribution() {
    let mut service = bounded_pool(2, 0);
    let w = workload(16);
    let tenant_a = TenantId(10);
    let tenant_b = TenantId(11);
    for i in 0..8 {
        let spec = JobSpec::new(Benchmark::Sqrt32, 2, w.clone())
            .with_sync(i % 2 == 0)
            .priority(if i < 2 {
                Priority::High
            } else {
                Priority::Normal
            })
            .tenant(if i % 2 == 0 { tenant_a } else { tenant_b });
        service.submit(spec).expect("unbounded queue admits");
    }
    let mut latencies = Vec::new();
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        assert!(result.run_time > std::time::Duration::ZERO);
        assert_eq!(result.latency(), result.queue_wait + result.run_time);
        latencies.push(result.latency());
    }
    let stats = service.finish();
    assert_eq!(stats.latency.samples, 8);
    assert!(stats.latency.p50 <= stats.latency.p95);
    assert!(stats.latency.p95 <= stats.latency.max);
    // The aggregate max is exactly the worst per-result latency (both are
    // computed from the same recorded samples).
    assert_eq!(stats.latency.max, latencies.iter().copied().max().unwrap());
    // Per-priority rows partition the aggregate.
    assert_eq!(stats.priority_latency(Priority::High).samples, 2);
    assert_eq!(stats.priority_latency(Priority::Normal).samples, 6);
    assert_eq!(stats.priority_latency(Priority::Low).samples, 0);
    // Per-tenant rows partition it too, and no row's max exceeds the
    // pooled max.
    assert_eq!(stats.per_tenant.len(), 2);
    let a = stats.tenant(tenant_a).expect("tenant A has stats");
    let b = stats.tenant(tenant_b).expect("tenant B has stats");
    assert_eq!(a.latency.samples + b.latency.samples, 8);
    assert!(a.latency.max <= stats.latency.max);
    assert!(b.latency.max <= stats.latency.max);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under random pool shapes, queue bounds, tenant quotas, priorities,
    /// pins and submit/submit_blocking interleavings from 2–4 tenants,
    /// the service neither loses nor duplicates jobs (the set of received
    /// ids is exactly the set of accepted ids), never admits a tenant
    /// beyond its quota (checked against the pool's own high-water mark),
    /// and the rejection counters agree with what the client saw.
    #[test]
    fn random_multi_tenant_interleavings_preserve_jobs_and_quotas(
        workers in 1usize..4,
        capacity in 0usize..5,
        quotas in prop::collection::vec(0usize..5, 2..=4),
        ops in prop::collection::vec(
            // (cores selector, priority selector, pin selector,
            //  tenant selector, use the non-blocking path)
            (0usize..3, 0usize..3, 0usize..5, 0usize..4, 0usize..2),
            1..24,
        ),
    ) {
        let mut config = ServiceConfig::builder()
            .workers(workers)
            .queue_capacity(capacity);
        for (i, &quota) in quotas.iter().enumerate() {
            config = config.tenant(
                TenantId(i as u32),
                TenantPolicy::quota(quota).with_weight(1 + i as u32),
            );
        }
        let mut service = SimService::start(config.build());
        let w = workload(16);
        let mut accepted: Vec<JobId> = Vec::new();
        let mut at_capacity = 0u64;
        let mut over_quota = 0u64;
        for &(cores_sel, prio_sel, pin_sel, tenant_sel, non_blocking) in &ops {
            let tenant = TenantId((tenant_sel % quotas.len()) as u32);
            let mut spec = JobSpec::new(Benchmark::Sqrt32, [1, 2, 4][cores_sel], w.clone())
                .with_sync(cores_sel == 0)
                .priority([Priority::High, Priority::Normal, Priority::Low][prio_sel])
                .tenant(tenant);
            if pin_sel < 4 {
                // Deliberately allowed to exceed the pool size (clamped).
                spec = spec.pinned(pin_sel);
            }
            if non_blocking == 1 {
                match service.submit(spec) {
                    Ok(id) => accepted.push(id),
                    Err(SubmitError::AtCapacity { .. }) => at_capacity += 1,
                    Err(SubmitError::QuotaExceeded { tenant: t, .. }) => {
                        prop_assert_eq!(t, tenant);
                        over_quota += 1;
                    }
                    Err(SubmitError::PoolDead) => panic!("pool died"),
                }
            } else {
                accepted.push(service.submit_blocking(spec).expect("pool alive"));
            }
        }
        let mut received: Vec<JobId> = Vec::new();
        while let Some(result) = service.recv() {
            prop_assert!(result.outcome.is_ok());
            received.push(result.id);
        }
        received.sort_unstable();
        // `accepted` is already sorted: ids are assigned in submission
        // order. Equality means no job lost, none duplicated.
        prop_assert_eq!(&received, &accepted);
        let stats = service.finish();
        prop_assert_eq!(stats.jobs_run, accepted.len() as u64);
        prop_assert_eq!(stats.rejections, at_capacity);
        prop_assert_eq!(stats.quota_rejections, over_quota);
        prop_assert_eq!(stats.latency.samples, accepted.len() as u64);
        // The pool's own high-water marks prove no quota was ever
        // breached, even transiently.
        for (i, &quota) in quotas.iter().enumerate() {
            if quota == 0 {
                continue; // unlimited
            }
            if let Some(t) = stats.tenant(TenantId(i as u32)) {
                prop_assert!(
                    t.peak_admitted <= quota as u64,
                    "tenant {} peaked at {} > quota {}",
                    i, t.peak_admitted, quota
                );
            }
        }
        // Per-tenant completion counts partition the total.
        let tenant_total: u64 = stats.per_tenant.iter().map(|t| t.latency.samples).sum();
        prop_assert_eq!(tenant_total, accepted.len() as u64);
    }
}

//! Integration tests of the hardened submission path: bounded queues
//! with explicit backpressure (`try_submit` rejection, blocking `submit`
//! with a watermark), priority ordering, deadline accounting, per-job
//! latency, and a property test that random submit/steal interleavings
//! under a bounded queue never lose or duplicate jobs.

use proptest::prelude::*;
use std::sync::Arc;
use ulp_kernels::{Benchmark, WorkloadConfig};
use ulp_service::{JobId, JobSpec, Priority, ServiceConfig, SimService};

fn workload(n: usize) -> Arc<WorkloadConfig> {
    let mut w = WorkloadConfig::quick_test();
    w.n = n;
    Arc::new(w)
}

/// A burst far beyond a tiny queue's capacity: `try_submit` must reject
/// (counted in the stats), and every job that *was* accepted must come
/// back exactly once.
#[test]
fn try_submit_rejects_at_capacity_and_accepted_jobs_complete() {
    let capacity = 2;
    let mut service =
        SimService::start(ServiceConfig::with_workers(1).with_queue_capacity(capacity));
    assert_eq!(service.queue_capacity(), capacity);
    // Jobs long enough that the single worker cannot drain a 32-job
    // burst while it is being submitted.
    let w = workload(128);
    let mut accepted: Vec<JobId> = Vec::new();
    let mut rejected = 0u64;
    for i in 0..32 {
        match service.try_submit(JobSpec::new(Benchmark::Sqrt32, i % 2 == 0, 2, w.clone())) {
            Ok(id) => accepted.push(id),
            Err(rejection) => {
                assert_eq!(rejection.capacity, capacity);
                rejected += 1;
            }
        }
    }
    assert!(rejected >= 1, "a 32-job burst must overflow capacity 2");
    assert_eq!(accepted.len() as u64 + rejected, 32);

    let mut received: Vec<JobId> = Vec::new();
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        received.push(result.id);
    }
    received.sort_unstable();
    assert_eq!(received, accepted, "exactly the accepted jobs complete");

    let stats = service.finish();
    assert_eq!(stats.rejections, rejected);
    assert_eq!(stats.jobs_run, accepted.len() as u64);
}

/// The blocking path never rejects: at capacity it parks the submitter
/// until workers drain the backlog to the watermark, then admits.
#[test]
fn blocking_submit_throttles_but_never_rejects() {
    let mut service = SimService::start(ServiceConfig::with_workers(2).with_queue_capacity(2));
    let w = workload(32);
    for i in 0..12 {
        service.submit(JobSpec::new(Benchmark::Sqrt32, i % 2 == 0, 2, w.clone()));
    }
    let mut completed = 0;
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        completed += 1;
    }
    assert_eq!(completed, 12);
    let stats = service.finish();
    assert_eq!(stats.jobs_run, 12);
    assert_eq!(
        stats.rejections, 0,
        "blocking submissions are never rejected"
    );
}

/// A rejected spec comes back inside the error so the caller can retry it
/// — here through the blocking path, which must then complete it.
#[test]
fn rejected_spec_is_returned_for_retry() {
    let mut service = SimService::start(ServiceConfig::with_workers(1).with_queue_capacity(1));
    let w = workload(128);
    // Occupies the worker for tens of milliseconds...
    service.submit(JobSpec::new(Benchmark::Sqrt32, true, 2, w.clone()));
    // ...so this one stays queued, filling the capacity-1 queue...
    service.submit(JobSpec::new(Benchmark::Sqrt32, false, 2, w.clone()));
    // ...and this one must bounce, spec intact.
    let spec = JobSpec::new(Benchmark::Mrpfltr, true, 2, w.clone()).with_priority(Priority::High);
    let rejection = service
        .try_submit(spec)
        .expect_err("queue of capacity 1 is full");
    assert_eq!(rejection.capacity, 1);
    assert_eq!(rejection.spec.benchmark, Benchmark::Mrpfltr);
    assert_eq!(rejection.spec.priority, Priority::High);
    // Retry the very spec the error handed back, on the blocking path.
    let retried = service.submit(rejection.spec);
    let mut seen = Vec::new();
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        seen.push(result.id);
    }
    assert!(seen.contains(&retried));
    let stats = service.finish();
    assert_eq!(stats.jobs_run, 3);
    assert_eq!(stats.rejections, 1);
}

/// Priority ordering: with one worker pinned down by a long normal job, a
/// high-priority submission must overtake an already-queued backlog of
/// low-priority jobs.
#[test]
fn high_priority_overtakes_queued_low_backlog() {
    let mut service = SimService::start(ServiceConfig::with_workers(1));
    // The blocker occupies the single worker for many milliseconds while
    // the microsecond-scale submissions below pile up behind it.
    service.submit(JobSpec::new(Benchmark::Sqrt32, true, 2, workload(256)));
    let quick = workload(16);
    let lows: Vec<JobId> = (0..8)
        .map(|_| {
            service.submit(
                JobSpec::new(Benchmark::Sqrt32, true, 2, quick.clone())
                    .with_priority(Priority::Low),
            )
        })
        .collect();
    let high = service.submit(
        JobSpec::new(Benchmark::Sqrt32, false, 2, quick.clone()).with_priority(Priority::High),
    );

    let mut order: Vec<JobId> = Vec::new();
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        order.push(result.id);
    }
    let position = |id: JobId| order.iter().position(|&x| x == id).expect("id completed");
    for &low in &lows {
        assert!(
            position(high) < position(low),
            "high-priority job must complete before every queued low job: {order:?}"
        );
    }
    service.finish();
}

/// Priority is pool-wide, not per-deque: a high-priority job pinned onto
/// one worker's deque must overtake a normal-priority backlog pinned onto
/// the *other* worker's deque — the first worker to free up has to serve
/// the High class across deques before its own normal jobs.
///
/// The scheduler guarantees *claim* order, not completion order, so the
/// test keeps worker 1 busy for the whole interesting interval: its
/// blocker (8-core full-window MRPFLTR) outlasts worker 0's short
/// blocker by an order of magnitude, so worker 0 alone claims — and
/// therefore completes — the whole quick backlog, making completion
/// order observe claim order deterministically.
#[test]
fn high_priority_is_served_pool_wide_across_deques() {
    let mut service = SimService::start(ServiceConfig::with_workers(2));
    let blocker = workload(256);
    // Short blocker on worker 0, ~10x longer blocker on worker 1.
    service.submit(JobSpec::new(Benchmark::Sqrt32, true, 2, blocker.clone()).pinned(0));
    service.submit(JobSpec::new(Benchmark::Mrpfltr, false, 8, blocker.clone()).pinned(1));
    let quick = workload(16);
    // The normal backlog piles onto worker 0's deque...
    let normals: Vec<JobId> = (0..6)
        .map(|_| service.submit(JobSpec::new(Benchmark::Sqrt32, true, 2, quick.clone()).pinned(0)))
        .collect();
    // ...while the lone high-priority job sits on busy worker 1's deque:
    // worker 0, freeing first, must steal it before its own normals.
    let high = service.submit(
        JobSpec::new(Benchmark::Sqrt32, false, 2, quick.clone())
            .with_priority(Priority::High)
            .pinned(1),
    );

    let mut order: Vec<JobId> = Vec::new();
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        order.push(result.id);
    }
    let position = |id: JobId| order.iter().position(|&x| x == id).expect("id completed");
    for &normal in &normals {
        assert!(
            position(high) < position(normal),
            "the queued high-priority job must be claimed before normal \
             jobs queued on another deque: {order:?}"
        );
    }
    service.finish();
}

/// Deadline accounting: a run over its simulated-cycle budget is flagged
/// and counted; a generous budget and an errored job are not.
#[test]
fn deadline_misses_are_flagged_and_counted() {
    let mut service = SimService::start(ServiceConfig::with_workers(1));
    let w = workload(16);
    // Any run takes more than one simulated cycle: guaranteed miss.
    let missed =
        service.submit(JobSpec::new(Benchmark::Sqrt32, true, 2, w.clone()).with_deadline_cycles(1));
    // No run exhausts u64: never a miss.
    let met = service
        .submit(JobSpec::new(Benchmark::Sqrt32, true, 2, w.clone()).with_deadline_cycles(u64::MAX));
    // An errored job (bad core count) has no run to miss a deadline.
    let errored =
        service.submit(JobSpec::new(Benchmark::Sqrt32, true, 9, w.clone()).with_deadline_cycles(1));

    let mut results = Vec::new();
    while let Some(result) = service.recv() {
        results.push(result);
    }
    results.sort_by_key(|r| r.id);
    let by_id = |id: JobId| results.iter().find(|r| r.id == id).expect("completed");
    assert!(by_id(missed).deadline_missed);
    assert!(by_id(missed).outcome.is_ok(), "missed jobs still complete");
    assert!(!by_id(met).deadline_missed);
    assert!(!by_id(errored).deadline_missed);
    assert!(by_id(errored).outcome.is_err());

    let stats = service.finish();
    assert_eq!(stats.deadline_misses, 1);
}

/// Per-job latency is populated and consistent with the aggregate
/// distribution the stats report.
#[test]
fn latency_fields_match_the_aggregate_distribution() {
    let mut service = SimService::start(ServiceConfig::with_workers(2));
    let w = workload(16);
    for i in 0..8 {
        service.submit(JobSpec::new(Benchmark::Sqrt32, i % 2 == 0, 2, w.clone()));
    }
    let mut latencies = Vec::new();
    while let Some(result) = service.recv() {
        assert!(result.outcome.is_ok());
        assert!(result.run_time > std::time::Duration::ZERO);
        assert_eq!(result.latency(), result.queue_wait + result.run_time);
        latencies.push(result.latency());
    }
    let stats = service.finish();
    assert_eq!(stats.latency.samples, 8);
    assert!(stats.latency.p50 <= stats.latency.p95);
    assert!(stats.latency.p95 <= stats.latency.max);
    // The aggregate max is exactly the worst per-result latency (both are
    // computed from the same recorded samples).
    assert_eq!(stats.latency.max, latencies.iter().copied().max().unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under random pool shapes, queue bounds, priorities, pins and
    /// submit/try_submit interleavings, the service neither loses nor
    /// duplicates jobs: the set of received ids is exactly the set of
    /// accepted ids, and the counters agree.
    #[test]
    fn random_interleavings_never_lose_or_duplicate_jobs(
        workers in 1usize..4,
        capacity in 0usize..5,
        ops in prop::collection::vec(
            // (cores selector, priority selector, pin selector, use try_submit)
            (0usize..3, 0usize..3, 0usize..5, 0usize..2),
            1..24,
        ),
    ) {
        let mut service = SimService::start(
            ServiceConfig::with_workers(workers).with_queue_capacity(capacity),
        );
        let w = workload(16);
        let mut accepted: Vec<JobId> = Vec::new();
        let mut rejected = 0u64;
        for &(cores_sel, prio_sel, pin_sel, use_try) in &ops {
            let mut spec = JobSpec::new(
                Benchmark::Sqrt32,
                cores_sel == 0,
                [1, 2, 4][cores_sel],
                w.clone(),
            )
            .with_priority([Priority::High, Priority::Normal, Priority::Low][prio_sel]);
            if pin_sel < 4 {
                // Deliberately allowed to exceed the pool size (clamped).
                spec = spec.pinned(pin_sel);
            }
            if use_try == 1 {
                match service.try_submit(spec) {
                    Ok(id) => accepted.push(id),
                    Err(_) => rejected += 1,
                }
            } else {
                accepted.push(service.submit(spec));
            }
        }
        let mut received: Vec<JobId> = Vec::new();
        while let Some(result) = service.recv() {
            prop_assert!(result.outcome.is_ok());
            received.push(result.id);
        }
        received.sort_unstable();
        // `accepted` is already sorted: ids are assigned in submission
        // order. Equality means no job lost, none duplicated.
        prop_assert_eq!(&received, &accepted);
        let stats = service.finish();
        prop_assert_eq!(stats.jobs_run, accepted.len() as u64);
        prop_assert_eq!(stats.rejections, rejected);
        prop_assert_eq!(stats.latency.samples, accepted.len() as u64);
    }
}

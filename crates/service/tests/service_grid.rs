//! Integration tests of the batch simulation service: work stealing on
//! mixed-size grids, platform-cache reuse, and bit-identical results
//! against the serial runner.

use std::sync::Arc;
use ulp_kernels::{run_benchmark_on, Benchmark, WorkloadConfig};
use ulp_platform::PlatformConfig;
use ulp_service::{JobResult, JobSpec, ServiceConfig, SimService};

fn quick() -> Arc<WorkloadConfig> {
    Arc::new(WorkloadConfig::quick_test())
}

fn drain(service: &mut SimService) -> Vec<JobResult> {
    let mut results = Vec::new();
    while let Some(result) = service.recv() {
        results.push(result);
    }
    results
}

/// A mixed-size grid — small 2-core cells next to 8-core cells — must
/// complete every job, and every result must be bit-identical to running
/// the same configuration serially through `run_benchmark_on`.
#[test]
fn mixed_size_grid_is_bit_identical_to_serial() {
    let workload = quick();
    let grid: Vec<(Benchmark, bool, usize)> = vec![
        (Benchmark::Sqrt32, true, 2),
        (Benchmark::Mrpfltr, false, 8),
        (Benchmark::Sqrt32, false, 8),
        (Benchmark::Mrpfltr, true, 2),
        (Benchmark::Sqrt32, true, 8),
        (Benchmark::Mrpfltr, false, 2),
    ];

    let mut service = SimService::start(ServiceConfig::builder().workers(2).build());
    let ids: Vec<u64> = grid
        .iter()
        .map(|&(benchmark, with_sync, cores)| {
            service
                .submit(JobSpec::new(benchmark, cores, workload.clone()).with_sync(with_sync))
                .expect("unbounded queue admits")
        })
        .collect();
    assert_eq!(ids, (0..grid.len() as u64).collect::<Vec<_>>());

    let mut results = drain(&mut service);
    assert_eq!(results.len(), grid.len(), "every job completes");
    results.sort_by_key(|r| r.id);

    for (result, &(benchmark, with_sync, cores)) in results.iter().zip(&grid) {
        let out = result.outcome.as_ref().expect("job ran");
        out.run.verify().expect("outputs match golden model");
        assert_eq!(out.run.benchmark, benchmark);
        assert_eq!(out.run.with_sync, with_sync);
        assert_eq!(out.cores, cores);
        let serial = run_benchmark_on(
            benchmark,
            PlatformConfig::paper(with_sync)
                .with_cores(cores)
                .with_max_cycles(workload.max_cycles),
            &workload,
        )
        .expect("serial run");
        assert_eq!(out.run.stats, serial.stats, "{benchmark} @ {cores} cores");
        assert_eq!(out.run.outputs, serial.outputs);
    }

    let stats = service.finish();
    assert_eq!(stats.jobs_run, grid.len() as u64);
    assert_eq!(stats.workers, 2);
    assert_eq!(
        stats.platform_cache_hits + stats.platforms_built,
        grid.len() as u64,
        "every job either built or reused a platform"
    );
}

/// Repeated jobs on one (design, cores) key must be served from the
/// worker's platform cache after the first build — and reuse must not
/// perturb the results.
#[test]
fn repeated_key_jobs_hit_the_platform_cache() {
    let workload = quick();
    let mut service = SimService::start(ServiceConfig::builder().workers(1).build());
    for _ in 0..3 {
        service
            .submit(JobSpec::new(Benchmark::Sqrt32, 2, workload.clone()))
            .expect("unbounded queue admits");
    }
    let results = drain(&mut service);
    assert_eq!(results.len(), 3);
    let runs: Vec<_> = results
        .iter()
        .map(|r| r.outcome.as_ref().expect("job ran"))
        .collect();
    for out in &runs {
        assert_eq!(out.run.stats, runs[0].run.stats, "reuse is deterministic");
        assert_eq!(out.run.outputs, runs[0].run.outputs);
    }
    // First job builds, the other two reuse.
    assert_eq!(results.iter().filter(|r| r.cache_hit).count(), 2);

    let stats = service.finish();
    assert_eq!(stats.jobs_run, 3);
    assert_eq!(stats.platforms_built, 1);
    assert!(
        stats.platform_cache_hits >= 2,
        "repeated (design, cores) jobs must hit the cache: {stats:?}"
    );
}

/// A backlog pinned entirely onto one worker's deque must be rebalanced by
/// stealing: with a second idle worker in the pool, at least one job runs
/// on a worker it was not submitted to — and steals move *half-batches*,
/// so one steal event can relocate several jobs at once.
#[test]
fn pinned_backlog_is_rebalanced_by_stealing() {
    let workload = quick();
    let jobs = 8;
    let mut service = SimService::start(ServiceConfig::builder().workers(2).build());
    for _ in 0..jobs {
        // All eight 8-core cells pile onto worker 0; worker 1 starts idle.
        service
            .submit(JobSpec::new(Benchmark::Sqrt32, 8, workload.clone()).pinned(0))
            .expect("unbounded queue admits");
    }
    let results = drain(&mut service);
    assert_eq!(results.len(), jobs, "all jobs complete");
    for result in &results {
        let out = result.outcome.as_ref().expect("job ran");
        out.run.verify().expect("stolen jobs are bit-identical too");
        // Everything was pinned to worker 0, so a job can only reach
        // worker 1 by being stolen. (The converse does not hold: a job
        // relocated by a half-batch steal stays marked stolen even if
        // worker 0 later steals it back.)
        assert!(
            result.worker == 0 || result.stolen,
            "a job on worker 1 must have been stolen: {result:?}"
        );
    }

    let stats = service.finish();
    assert_eq!(stats.jobs_run, jobs as u64);
    assert!(
        stats.steals >= 1,
        "an idle worker must steal from the pinned backlog: {stats:?}"
    );
    // Every steal event moves at least one job, and every result marked
    // stolen was relocated at least once (re-steals can double-count).
    assert!(stats.jobs_stolen >= stats.steals);
    assert!(stats.jobs_stolen >= results.iter().filter(|r| r.stolen).count() as u64);
    assert!(
        (1..=jobs as u64).contains(&stats.steal_batch_max),
        "batch sizes are bounded by the backlog: {stats:?}"
    );
    // With eight jobs piled on one deque, the first steal should take a
    // real batch, not a single job.
    assert!(
        stats.steal_batch_max >= 2,
        "half-batch stealing must move more than one job from a deep \
         pinned backlog: {stats:?}"
    );
}

//! Mid-run migration of checkpointable jobs: a worker lost mid-shard
//! hands its in-flight run to the survivors through the job's latest
//! checkpoint, and a long run parks at a checkpoint to let urgent work
//! overtake it — in both cases the final result (statistics, outputs,
//! observer artifacts) is bit-identical to an undisturbed run, and
//! latency/tenant attribution follows the *job*, not the workers it
//! visited.

use std::sync::Arc;
use std::time::{Duration, Instant};
use ulp_kernels::{run_benchmark, Benchmark, WorkloadConfig};
use ulp_service::{
    JobArtifacts, JobSpec, ObserverSelection, Priority, ServiceConfig, SimService, TenantId,
};

/// A run long enough (full 256-sample MRPFLTR on 8 cores — many
/// milliseconds of wall time) that checkpoints, failure injection and
/// preemption all land mid-run with wide margins.
fn long_workload() -> Arc<WorkloadConfig> {
    let mut w = WorkloadConfig::quick_test();
    w.n = 256;
    Arc::new(w)
}

/// Kill a worker mid-shard: its partially-run job re-queues from the
/// last checkpoint and the surviving worker finishes it bit-identically —
/// including the attached observer's artifact. Also pins down satellite
/// attribution semantics: the migrated job completes on a different
/// worker than it started on, yet every latency sample and tenant row is
/// recorded exactly once, under the job's own tenant and priority.
#[test]
fn injected_worker_failure_migrates_in_flight_job_bit_identically() {
    let workload = long_workload();
    let golden = run_benchmark(Benchmark::Mrpfltr, true, &workload).expect("golden run");
    // ~4 checkpoints per run: the first park loses real progress and the
    // resumed stint still spans several checkpoint boundaries.
    let every = (golden.stats.cycles / 5).max(1);

    let service_config = ServiceConfig::builder().workers(2).build();
    let mut service = SimService::start(service_config);
    // Armed before any claim: worker 0 parks its first checkpointable
    // job at that job's first checkpoint and exits.
    service.inject_worker_failure(0);
    let spec = |tenant, priority| {
        JobSpec::new(Benchmark::Mrpfltr, 8, workload.clone())
            .tenant(tenant)
            .priority(priority)
            .checkpoint_every(every)
            .observers(ObserverSelection::BankHeatMap { window: 4096 })
    };
    service
        .submit(spec(TenantId(7), Priority::Low).pinned(0))
        .expect("admits");
    service
        .submit(spec(TenantId(3), Priority::Normal).pinned(1))
        .expect("admits");

    let mut migrated = None;
    let mut heat_maps = Vec::new();
    for _ in 0..2 {
        let result = service
            .recv()
            .expect("both jobs complete despite the killed worker");
        let out = result.outcome.as_ref().expect("job runs");
        assert_eq!(
            out.run.stats, golden.stats,
            "simulation statistics bit-identical to the golden run"
        );
        assert_eq!(out.run.outputs, golden.outputs, "outputs bit-identical");
        assert_eq!(out.run.outputs, out.run.expected, "golden model holds");
        match &out.artifacts {
            JobArtifacts::BankHeatMap(rows) => heat_maps.push(rows.clone()),
            other => panic!("expected a heat map, got {}", other.kind()),
        }
        if result.migrations > 0 {
            migrated = Some(result);
        }
    }
    // Both jobs ran the same kernel on the same workload, so the heat
    // maps must match — the migrated job's observer state survived the
    // park/resume round trip inside the checkpoint.
    assert_eq!(
        heat_maps[0], heat_maps[1],
        "observer artifact survives migration"
    );
    let migrated = migrated.expect("the killed worker's job was migrated");
    // Started on worker 0 (the killed one — only it parks), completed by
    // the survivor.
    assert_eq!(migrated.worker, 1, "completed by the surviving worker");

    let stats = service.finish();
    assert_eq!(stats.jobs_run, 2);
    assert_eq!(stats.workers_died, 1);
    assert!(stats.jobs_migrated >= 1, "the in-flight job re-queued");
    assert!(stats.checkpoints_taken >= 2, "both stints checkpointed");
    // Attribution follows the job: one sample per job, under the job's
    // own tenant and priority, no matter how many workers ran it.
    assert_eq!(stats.latency.samples, 2);
    assert_eq!(stats.tenant(TenantId(7)).expect("row").latency.samples, 1);
    assert_eq!(stats.tenant(TenantId(3)).expect("row").latency.samples, 1);
    assert_eq!(
        stats.tenant(migrated.tenant).expect("row").latency.samples,
        1
    );
    assert_eq!(stats.per_priority[Priority::Low.index()].samples, 1);
    assert_eq!(stats.per_priority[Priority::Normal.index()].samples, 1);
    assert_eq!(stats.per_priority[Priority::High.index()].samples, 0);
}

/// A queued High job preempts a long migratable run at its next
/// checkpoint: the single worker parks the run, serves the urgent job
/// first, then resumes the parked run from its checkpoint — and the
/// resumed run is still bit-identical to the golden uninterrupted one.
#[test]
fn queued_high_job_preempts_migratable_run_at_a_checkpoint() {
    let workload = long_workload();
    let golden = run_benchmark(Benchmark::Mrpfltr, true, &workload).expect("golden run");
    // Fine cadence: the first checkpoint lands ~2% into the run, leaving
    // the rest of the run for the preemption to interrupt.
    let every = (golden.stats.cycles / 50).max(1);

    let mut service = SimService::start(ServiceConfig::builder().workers(1).build());
    let low = service
        .submit(JobSpec::new(Benchmark::Mrpfltr, 8, workload.clone()).checkpoint_every(every))
        .expect("admits");
    // Wait until the run is demonstrably under way (it has checkpointed
    // at least once), then submit the urgent job.
    let deadline = Instant::now() + Duration::from_secs(60);
    while service.stats().checkpoints_taken == 0 {
        assert!(Instant::now() < deadline, "first checkpoint never arrived");
        std::thread::yield_now();
    }
    let high = service
        .submit(
            JobSpec::new(Benchmark::Sqrt32, 2, Arc::new(WorkloadConfig::quick_test()))
                .priority(Priority::High),
        )
        .expect("admits");

    let first = service.recv().expect("first completion");
    let second = service.recv().expect("second completion");
    assert_eq!(first.id, high, "the urgent job overtakes the parked run");
    assert_eq!(second.id, low, "the parked run completes after it");
    assert!(
        second.migrations >= 1,
        "the long run was parked at least once"
    );
    let out = second.outcome.expect("resumed run completes");
    assert_eq!(
        out.run.stats, golden.stats,
        "bit-identical despite the park"
    );
    assert_eq!(out.run.outputs, golden.outputs);

    let stats = service.finish();
    assert!(stats.jobs_migrated >= 1);
    assert_eq!(stats.workers_died, 0, "cooperative parking kills no worker");
}

/// An undisturbed checkpointable job — no failure, no urgent traffic —
/// completes in one stint with zero migrations, and its result matches
/// the golden run exactly (checkpointing is observational overhead, not
/// a behaviour change).
#[test]
fn undisturbed_checkpointable_job_never_migrates() {
    let workload = long_workload();
    let golden = run_benchmark(Benchmark::Mrpfltr, true, &workload).expect("golden run");
    let mut service = SimService::start(ServiceConfig::builder().workers(1).build());
    service
        .submit(
            JobSpec::new(Benchmark::Mrpfltr, 8, workload.clone())
                .checkpoint_every((golden.stats.cycles / 4).max(1)),
        )
        .expect("admits");
    let result = service.recv().expect("job completes");
    assert_eq!(result.migrations, 0);
    let out = result.outcome.expect("job runs");
    assert_eq!(out.run.stats, golden.stats);
    assert_eq!(out.run.outputs, golden.outputs);
    let stats = service.finish();
    assert!(stats.checkpoints_taken >= 1, "the cadence fired mid-run");
    assert_eq!(stats.jobs_migrated, 0);
    assert_eq!(stats.workers_died, 0);
}

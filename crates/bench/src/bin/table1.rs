//! Regenerates Table I of the paper: per-component dynamic power at a
//! workload of 8 MOps/s and 1.2 V, for the designs with and without the
//! synchronization feature, as min-max ranges over the three benchmarks.

use ulp_bench::{calibrate, gather, table1_report};
use ulp_kernels::WorkloadConfig;

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!("usage: table1");
        println!(
            "Regenerates Table I of the paper: per-component dynamic power at \
             8 MOps/s and 1.2 V for both designs. Takes no arguments."
        );
        return;
    }
    if let Some(arg) = std::env::args().nth(1) {
        eprintln!("table1: unexpected argument {arg:?} (takes no arguments)");
        std::process::exit(2);
    }
    let cfg = WorkloadConfig::paper();
    eprintln!("running 3 benchmarks x 2 designs (n = {}) ...", cfg.n);
    let data = gather(&cfg).expect("benchmark runs valid");
    let model = calibrate(&data);
    println!("{}", table1_report(&data, &model));
    println!("(baseline column calibrated to the paper's mid-ranges; the");
    println!(" with-synchronizer column is predicted from simulated activity)");
}
